"""Table 2 (bottom) — OpenSSH latency: login and scp.

Paper result (seconds)::

                     Vanilla   Wedge
    ssh login delay    0.145    0.148
    10MB scp delay     0.376    0.370

Shape: Wedge's primitives add *negligible latency* to the interactive
application — login and file-transfer times are essentially unchanged.
The scp payload here is 2 MiB (the simulated cipher is the bottleneck,
not the compartments, exactly as in the paper's full-size run).
"""

import pytest

from repro.apps.sshd import MonolithicSshd, WedgeSshd
from repro.crypto import DetRNG
from repro.net import Network
from repro.sshlib import SshClient

SCP_SIZE = 2 * 1024 * 1024

SERVERS = {"vanilla": MonolithicSshd, "wedge": WedgeSshd}


def start_server(flavor, addr):
    return SERVERS[flavor](Network(), addr).start()


def login_op(server):
    counter = [0]

    def op():
        counter[0] += 1
        client = SshClient(
            DetRNG(f"bench-login{counter[0]}"),
            expected_host_key=server.env.host_key.public())
        conn = client.connect(server.network, server.addr)
        conn.auth_password("alice", b"wonderland")
        conn.close()

    return op


def scp_op(server, payload):
    counter = [0]

    def op():
        counter[0] += 1
        client = SshClient(
            DetRNG(f"bench-scp{counter[0]}"),
            expected_host_key=server.env.host_key.public())
        conn = client.connect(server.network, server.addr)
        conn.auth_password("alice", b"wonderland")
        conn.scp_upload("/home/alice/upload.bin", payload)
        conn.close()

    return op


@pytest.mark.parametrize("flavor", list(SERVERS))
def test_ssh_login_delay(benchmark, flavor):
    server = start_server(flavor, f"t2-login-{flavor}:22")
    try:
        benchmark.pedantic(login_op(server), rounds=6, iterations=1,
                           warmup_rounds=1)
        benchmark.extra_info["variant"] = flavor
        assert server.errors == []
    finally:
        server.stop()


@pytest.mark.parametrize("flavor", list(SERVERS))
def test_scp_delay(benchmark, flavor):
    server = start_server(flavor, f"t2-scp-{flavor}:22")
    payload = bytes(range(256)) * (SCP_SIZE // 256)
    try:
        benchmark.pedantic(scp_op(server, payload), rounds=3,
                           iterations=1, warmup_rounds=1)
        benchmark.extra_info["variant"] = flavor
        benchmark.extra_info["payload_bytes"] = len(payload)
        assert server.errors == []
    finally:
        server.stop()


def test_table2_openssh_shape(benchmark):
    """Both rows side by side; asserts the negligible-delta shape."""
    import time

    def best_of(op, n=3):
        best = None
        for _ in range(n):
            start = time.perf_counter()
            op()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    payload = bytes(range(256)) * (SCP_SIZE // 256)
    results = {}
    for flavor in SERVERS:
        server = start_server(flavor, f"t2-ssh-shape-{flavor}:22")
        try:
            results[(flavor, "login")] = best_of(login_op(server))
            results[(flavor, "scp")] = best_of(
                scp_op(server, payload), n=2)
        finally:
            server.stop()

    print("\nTable 2 (bottom): seconds")
    print(f"  {'operation':18s} {'vanilla':>9s} {'wedge':>9s} "
          f"{'wedge/van':>10s}")
    for operation in ("login", "scp"):
        vanilla = results[("vanilla", operation)]
        wedge = results[("wedge", operation)]
        print(f"  {operation:18s} {vanilla:9.4f} {wedge:9.4f} "
              f"{wedge/vanilla:9.2f}")
        benchmark.extra_info[operation] = {
            "vanilla": round(vanilla, 4), "wedge": round(wedge, 4)}

    # Wedge introduces negligible latency: within 2x on login (the
    # paper is within 2%; interpreter noise is larger, the claim is
    # "no order-of-magnitude penalty") and within 50% on scp, where
    # bulk crypto dominates either way.
    assert results[("wedge", "login")] < \
        2.0 * results[("vanilla", "login")]
    assert results[("wedge", "scp")] < \
        1.5 * results[("vanilla", "scp")]
    benchmark(lambda: None)
