"""Figure 8 — memory calls: malloc vs tag_new vs mmap.

Paper result (ns per operation): ``malloc ≈ 50, tag_new(best case,
reused) ≈ 4x malloc, mmap ≈ 22x malloc``; a fresh (non-reused) tag_new
costs about the same as mmap.  smalloc costs about the same as malloc
(substantially the same allocator).
"""

from conftest import cycles_of


def test_malloc(benchmark, fresh_kernel):
    kernel = fresh_kernel
    allocations = []

    def op():
        allocations.append(kernel.malloc(64))
        if len(allocations) > 256:
            for addr in allocations:
                kernel.free(addr)
            allocations.clear()

    benchmark.extra_info["model_cycles"] = cycles_of(
        kernel, lambda: kernel.free(kernel.malloc(64)))
    benchmark(op)


def test_smalloc(benchmark, fresh_kernel):
    kernel = fresh_kernel
    tag = kernel.tag_new()
    allocations = []

    def op():
        allocations.append(kernel.smalloc(48, tag))
        if len(allocations) > 64:
            for addr in allocations:
                kernel.sfree(addr)
            allocations.clear()

    benchmark.extra_info["model_cycles"] = cycles_of(
        kernel, lambda: kernel.sfree(kernel.smalloc(48, tag)))
    benchmark(op)


def test_tag_new_reused(benchmark, fresh_kernel):
    """Best case: the free-list cache always has a segment (paper §4.1)."""
    kernel = fresh_kernel
    seed = kernel.tag_new()
    kernel.tag_delete(seed)

    def op():
        tag = kernel.tag_new()
        kernel.tag_delete(tag)

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_tag_new_fresh(benchmark):
    """Worst case: no reuse possible — every tag_new is an mmap."""
    from repro.core.kernel import Kernel
    kernel = Kernel(tag_cache=False, name="bench-nocache")
    kernel.start_main()

    def op():
        tag = kernel.tag_new()
        kernel.tag_delete(tag)

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_mmap_equivalent(benchmark, fresh_kernel):
    """Raw anonymous-mmap cost: segment creation without tag plumbing."""
    kernel = fresh_kernel

    def op():
        seg = kernel.space.create_segment(4 * 4096, kind="anon")
        kernel.costs.charge("syscall")
        kernel.costs.charge("segment_create")
        kernel.space.destroy_segment(seg)

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_figure8_shape(benchmark, fresh_kernel):
    """Asserts the orderings on model cycles; prints the figure row."""
    kernel = fresh_kernel
    tag = kernel.tag_new()
    malloc_cycles = cycles_of(kernel,
                              lambda: kernel.free(kernel.malloc(64)))
    smalloc_cycles = cycles_of(kernel,
                               lambda: kernel.sfree(
                                   kernel.smalloc(64, tag)))
    seed = kernel.tag_new()
    kernel.tag_delete(seed)

    def reuse_op():
        t = kernel.tag_new()
        kernel.tag_delete(t)

    reuse_cycles = cycles_of(kernel, reuse_op)

    from repro.core.kernel import Kernel
    nocache = Kernel(tag_cache=False)
    nocache.start_main()

    def fresh_op():
        t = nocache.tag_new()
        nocache.tag_delete(t)

    fresh_cycles = cycles_of(nocache, fresh_op)

    print("\nFigure 8 (model cycles, x over malloc):")
    rows = [("malloc", malloc_cycles), ("smalloc", smalloc_cycles),
            ("tag_new (reused)", reuse_cycles),
            ("tag_new (fresh) / mmap", fresh_cycles)]
    for name, value in rows:
        print(f"  {name:24s} {value:7d}  {value/malloc_cycles:5.1f}x")
        benchmark.extra_info[name] = value

    assert smalloc_cycles <= 3 * malloc_cycles
    assert malloc_cycles < reuse_cycles < fresh_cycles
    assert reuse_cycles < fresh_cycles / 2       # reuse is the win
    assert fresh_cycles / malloc_cycles > 10     # mmap ≫ malloc
    benchmark(lambda: None)
