"""Ablation — the simulated TLB fast path on the memory bus.

Real MMUs amortise the page-table walk with a TLB; the simulation now
does the same, and this bench quantifies it at two levels:

* a hot single-page load/store loop (the pure bus fast path), where the
  model cost per access drops from a full ``pt_walk`` (50 cycles) to a
  ``tlb_hit`` (2) and the interpreter skips the walk loop entirely;
* the Apache hot path — cached-session requests against the monolithic
  httpd (Table 2's "vanilla, sessions cached" row), whose per-request
  cost is dominated by bus traffic rather than compartment creation, and
  against the Figures-3-5 partitioned httpd for the partitioned view.

The model-cycle numbers are deterministic; wall time is the noisy
corroboration.  ``benchmarks/bench_json.py`` re-measures the same
quantities and emits them as the ``BENCH_tlb.json`` artifact that CI
diffs against the committed baseline.
"""

import time

import pytest

from repro.apps.httpd import MitmPartitionHttpd, MonolithicHttpd
from repro.apps.httpd.content import build_request
from repro.core.kernel import Kernel
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient

HOT_ACCESSES = 4000


def hot_loop_kernel(tlb):
    kernel = Kernel(name=f"tlb-hot-{tlb}", tlb=tlb)
    kernel.start_main()
    addr = kernel.malloc(256)
    kernel.mem_write(addr, b"\x5a" * 256)
    return kernel, addr


def hot_loop_op(kernel, addr):
    def op():
        for _ in range(HOT_ACCESSES // 2):
            kernel.mem_read(addr, 64)
            kernel.mem_write(addr, b"\xa5" * 64)
    return op


@pytest.mark.parametrize("tlb", [True, False],
                         ids=["tlb-on", "tlb-off"])
def test_hot_loop(benchmark, tlb):
    kernel, addr = hot_loop_kernel(tlb)
    op = hot_loop_op(kernel, addr)
    checkpoint = kernel.costs.checkpoint()
    op()
    cycles = kernel.costs.delta(checkpoint)
    benchmark.pedantic(op, rounds=8, iterations=1, warmup_rounds=1)
    benchmark.extra_info["tlb"] = tlb
    benchmark.extra_info["model_cycles_per_access"] = \
        round(cycles / HOT_ACCESSES, 2)


def start_server(cls, tlb, addr):
    saved = Kernel.DEFAULT_TLB
    Kernel.DEFAULT_TLB = tlb
    try:
        return cls(Network(), addr).start()
    finally:
        Kernel.DEFAULT_TLB = saved


def cached_request_op(server):
    client = TlsClient(DetRNG("tlb-bench"),
                       expected_server_key=server.public_key)
    client.connect(server.network, server.addr).request(
        build_request("/"))  # seed the session cache

    def op():
        conn = client.connect(server.network, server.addr)
        conn.request(build_request("/"))

    return op


@pytest.mark.parametrize("tlb", [True, False],
                         ids=["tlb-on", "tlb-off"])
def test_apache_cached_request(benchmark, tlb):
    server = start_server(MonolithicHttpd, tlb, f"tlb-apache-{tlb}:443")
    try:
        benchmark.pedantic(cached_request_op(server), rounds=8,
                           iterations=2, warmup_rounds=1)
        benchmark.extra_info["tlb"] = tlb
        benchmark.extra_info["tlb_stats"] = server.kernel.tlb_stats()
        assert server.errors == []
    finally:
        server.stop()


def _measure(cls, tlb, addr, rounds=16):
    server = start_server(cls, tlb, addr)
    try:
        op = cached_request_op(server)
        op()  # warm
        checkpoint = server.kernel.costs.checkpoint()
        before = server.kernel.tlb_stats()
        start = time.perf_counter()
        for _ in range(rounds):
            op()
        wall = (time.perf_counter() - start) / rounds
        cycles = server.kernel.costs.delta(checkpoint) / rounds
        after = server.kernel.tlb_stats()
        return {
            "wall_seconds_per_request": wall,
            "model_cycles_per_request": cycles,
            "hits_per_request": (after["hits"] - before["hits"]) / rounds,
            "walks_per_request":
                (after["walks"] - before["walks"]) / rounds,
        }
    finally:
        server.stop()


def test_tlb_ablation_shape(benchmark):
    """The headline numbers: the TLB measurably cuts the Apache hot
    path in model cycles AND wall time, without touching behaviour."""
    # model cycles are deterministic; wall time is best-of-3 with the
    # two configurations interleaved, so a host-load spike hits both
    results = {}
    for rep in range(3):
        for tlb in (True, False):
            r = _measure(MonolithicHttpd, tlb,
                         f"tlb-shape-{tlb}-{rep}:443")
            if tlb in results:
                results[tlb]["wall_seconds_per_request"] = min(
                    results[tlb]["wall_seconds_per_request"],
                    r["wall_seconds_per_request"])
            else:
                results[tlb] = r
    on, off = results[True], results[False]

    cycle_saving = 1 - (on["model_cycles_per_request"]
                        / off["model_cycles_per_request"])
    wall_saving = 1 - (on["wall_seconds_per_request"]
                       / off["wall_seconds_per_request"])
    hit_rate = on["hits_per_request"] / (
        on["hits_per_request"] + on["walks_per_request"])
    print("\nTLB ablation (vanilla Apache, cached sessions, per request):")
    print(f"  tlb on : {on['model_cycles_per_request']:9,.0f} cycles  "
          f"{on['wall_seconds_per_request']*1e3:6.2f} ms  "
          f"hit rate {hit_rate:.1%}")
    print(f"  tlb off: {off['model_cycles_per_request']:9,.0f} cycles  "
          f"{off['wall_seconds_per_request']*1e3:6.2f} ms")
    print(f"  saving: {cycle_saving:.1%} model cycles, "
          f"{wall_saving:.1%} wall")
    benchmark.extra_info["cycles_on"] = on["model_cycles_per_request"]
    benchmark.extra_info["cycles_off"] = off["model_cycles_per_request"]
    benchmark.extra_info["cycle_saving"] = round(cycle_saving, 3)
    benchmark.extra_info["wall_saving"] = round(wall_saving, 3)
    benchmark.extra_info["hit_rate"] = round(hit_rate, 3)

    # the fast path fired and it pays: >90% hits, >20% model saving
    assert hit_rate > 0.9
    assert cycle_saving > 0.2
    # wall time moves the same direction (looser: interpreter noise)
    assert wall_saving > 0
    benchmark(lambda: None)


def test_partitioned_httpd_still_benefits(benchmark):
    """On the partitioned httpd the per-request cost is dominated by
    compartment creation (so totals move <1%), but the *translation*
    slice — hits at 2 cycles vs walks at 50 — shrinks several-fold."""
    from repro.core.costs import WEIGHTS

    def translation_cycles(r):
        return (r["hits_per_request"] * WEIGHTS["tlb_hit"]
                + r["walks_per_request"] * WEIGHTS["pt_walk"])

    results = {}
    for tlb in (True, False):
        results[tlb] = _measure(MitmPartitionHttpd, tlb,
                                f"tlb-mitm-{tlb}:443", rounds=8)
    on, off = results[True], results[False]
    assert on["hits_per_request"] > 0
    assert translation_cycles(on) < translation_cycles(off) / 2
    benchmark.extra_info["cycles_on"] = on["model_cycles_per_request"]
    benchmark.extra_info["cycles_off"] = off["model_cycles_per_request"]
    benchmark.extra_info["translation_cycles_on"] = translation_cycles(on)
    benchmark.extra_info["translation_cycles_off"] = \
        translation_cycles(off)
    benchmark(lambda: None)
