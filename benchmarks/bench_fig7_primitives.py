"""Figure 7 — sthread calls: primitive creation latency.

Paper result (8-core Xeon, µs per operation)::

    pthread ≈ 8   recycled ≈ 8   sthread ≈ 62   callgate ≈ 63   fork ≈ 66

i.e. sthreads and callgates cost about as much as fork; recycled
callgates cost about as much as pthread creation; sthreads are ~8x
pthreads.  Each benchmark measures create + immediate-exit + destroy
from a minimal parent, like the paper's microbenchmark, and attaches
the deterministic model-cycle count as extra_info.
"""

from conftest import cycles_of

from repro.core.policy import SecurityContext


def _noop(arg):
    return None


def _gate_entry(trusted, arg):
    return None


def test_pthread_create(benchmark, fresh_kernel):
    kernel = fresh_kernel

    def op():
        kernel.sthread_join(kernel.pthread_create(_noop, spawn="inline"))

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_recycled_callgate(benchmark, fresh_kernel):
    kernel = fresh_kernel
    gate = kernel.create_gate(_gate_entry, SecurityContext(),
                              recycled=True)
    kernel.cgate(gate.id)   # warm the persistent compartment

    def op():
        kernel.cgate(gate.id)

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_sthread_create(benchmark, fresh_kernel):
    kernel = fresh_kernel

    def op():
        kernel.sthread_join(kernel.sthread_create(
            SecurityContext(), _noop, spawn="inline"))

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_callgate(benchmark, fresh_kernel):
    kernel = fresh_kernel
    gate = kernel.create_gate(_gate_entry, SecurityContext())

    def op():
        kernel.cgate(gate.id)

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_fork(benchmark, fresh_kernel):
    kernel = fresh_kernel

    def op():
        kernel.sthread_join(kernel.fork(_noop, spawn="inline"))

    benchmark.extra_info["model_cycles"] = cycles_of(kernel, op)
    benchmark(op)


def test_figure7_shape(benchmark, fresh_kernel):
    """Asserts the figure's orderings on model cycles, and prints the
    row the paper plots."""
    kernel = fresh_kernel
    gate = kernel.create_gate(_gate_entry, SecurityContext())
    recycled = kernel.create_gate(_gate_entry, SecurityContext(),
                                  recycled=True)
    kernel.cgate(recycled.id)

    cycles = {
        "pthread": cycles_of(kernel, lambda: kernel.sthread_join(
            kernel.pthread_create(_noop, spawn="inline"))),
        "recycled": cycles_of(kernel, lambda: kernel.cgate(recycled.id)),
        "sthread": cycles_of(kernel, lambda: kernel.sthread_join(
            kernel.sthread_create(SecurityContext(), _noop,
                                  spawn="inline"))),
        "callgate": cycles_of(kernel, lambda: kernel.cgate(gate.id)),
        "fork": cycles_of(kernel, lambda: kernel.sthread_join(
            kernel.fork(_noop, spawn="inline"))),
    }
    base = cycles["pthread"]
    print("\nFigure 7 (model cycles, x over pthread):")
    for name in ("pthread", "recycled", "sthread", "callgate", "fork"):
        print(f"  {name:9s} {cycles[name]:8d}  {cycles[name]/base:5.2f}x")
    for name, value in cycles.items():
        benchmark.extra_info[name] = value

    assert cycles["recycled"] < 2 * cycles["pthread"]
    assert 5 < cycles["sthread"] / cycles["pthread"] < 12
    assert 0.8 < cycles["callgate"] / cycles["sthread"] < 1.3
    assert cycles["fork"] >= cycles["sthread"] * 0.8
    assert cycles["callgate"] / cycles["recycled"] > 4
    benchmark(lambda: None)
