"""Shared benchmark fixtures and the results collector.

Every benchmark in this directory reproduces one figure or table from
the paper's evaluation (section 6).  Run with::

    pytest benchmarks/ --benchmark-only

Absolute numbers will not match the paper's 2008 hardware; the *shape*
(orderings, rough ratios, crossovers) is the reproduced quantity and is
asserted where stable.  Model-cycle counts from the kernel's cost
account are attached as ``extra_info`` so results are robust to host
noise.
"""

import pytest


@pytest.fixture
def fresh_kernel():
    from repro.core.kernel import Kernel
    from repro.net import Network
    kernel = Kernel(net=Network(), name="bench")
    kernel.start_main()
    return kernel


def cycles_of(kernel, fn):
    """Model cycles charged by one invocation of *fn*."""
    checkpoint = kernel.costs.checkpoint()
    fn()
    return kernel.costs.delta(checkpoint)
