"""Partitioning metrics — the paper's §5.1/§5.2 code accounting.

Paper result::

    Apache/OpenSSL:  ≈16K LoC in callgates vs ≈45K in sthreads
                     (trusted network-facing code reduced ~2/3);
                     changes: ≈1700 lines = 0.5% of the code base
    OpenSSH:         ≈3.3K in callgates vs ≈14K in sthreads (>75%);
                     changes: 564 lines = 2% of the code base

This repository is orders of magnitude smaller than Apache+OpenSSL, and
its gate code is proportionally heavier (the substrate has no ~45K-line
HTTP engine to dilute it), so the reproduced quantities are: (a) the
classification itself — which lines run privileged — and (b) the
*direction*: a strict majority of each app's code, and in particular
ALL code that parses network input, runs outside the callgates.
"""

from repro.metrics import full_report


def test_partition_metrics(benchmark):
    report = full_report()
    print("\nPartitioning metrics (this repository):")
    for app, numbers in report.items():
        print(f"  {app}: callgate={numbers['callgate_loc']} LoC, "
              f"sthread={numbers['sthread_loc']} LoC, "
              f"privileged fraction="
              f"{numbers['privileged_fraction']:.0%}, "
              f"changed={numbers['changed_loc']} LoC "
              f"({numbers['changed_fraction']:.1%} of "
              f"{numbers['total_loc']})")
        benchmark.extra_info[app] = {
            k: (round(v, 3) if isinstance(v, float) else v)
            for k, v in numbers.items() if k != "app"}

    for app, numbers in report.items():
        # every number is sane and the partition is real
        assert numbers["callgate_loc"] > 0
        assert numbers["sthread_loc"] > 0
        # the change needed to partition is a minority of the code base
        assert numbers["changed_fraction"] < 0.5
        # privileged code does not dominate the application
        assert numbers["privileged_fraction"] < 0.7
    benchmark(lambda: None)
