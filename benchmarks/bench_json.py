#!/usr/bin/env python
"""Emit the repo's machine-readable perf trajectory: ``BENCH_*.json``.

Re-measures the Figure 7 / Figure 8 shapes and the TLB ablation with the
kernel's deterministic cost model and writes one JSON artifact each::

    python benchmarks/bench_json.py --out bench-out [--rounds N]
    python benchmarks/bench_json.py --out bench-out --check benchmarks/baselines

Each artifact separates ``metrics`` (model-cycle costs — deterministic,
*checked*: higher is a regression) from ``wall`` (host wall-clock —
recorded for the trajectory, never checked) and ``info`` (counters and
ratios for context).  ``--check DIR`` compares every metric against the
same-named artifact in *DIR* and exits non-zero if any model-cycle cost
regressed by more than ``TOLERANCE`` (10%), which is what the CI
``bench-smoke`` job runs on every push.

Committed baselines live in ``benchmarks/baselines/``; refresh them with
``--out benchmarks/baselines`` when a PR deliberately moves the numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "src"))

#: A checked metric may grow this much before --check fails.
TOLERANCE = 0.10

#: Per-artifact overrides.  ``observe`` re-measures the Figure 7
#: primitives with the (default, disabled) kernel event bus in place:
#: the disabled path is one attribute test and must cost nothing, so it
#: is held to 2% instead of the generic 10%.
TOLERANCES = {"observe": 0.02}


def _meter(kernel, fn):
    checkpoint = kernel.costs.checkpoint()
    fn()
    return kernel.costs.delta(checkpoint)


def bench_fig7(rounds):
    """Primitive-creation costs (Figure 7) in model cycles."""
    from repro.core.kernel import Kernel
    from repro.core.policy import SecurityContext
    kernel = Kernel(name="bench-fig7")
    kernel.start_main()
    gate = kernel.create_gate(lambda t, a: None, SecurityContext())
    recycled = kernel.create_gate(lambda t, a: None, SecurityContext(),
                                  recycled=True)
    kernel.cgate(recycled.id)
    ops = {
        "pthread": lambda: kernel.sthread_join(
            kernel.pthread_create(lambda a: None, spawn="inline")),
        "recycled_cgate": lambda: kernel.cgate(recycled.id),
        "sthread": lambda: kernel.sthread_join(kernel.sthread_create(
            SecurityContext(), lambda a: None, spawn="inline")),
        "callgate": lambda: kernel.cgate(gate.id),
        "fork": lambda: kernel.sthread_join(
            kernel.fork(lambda a: None, spawn="inline")),
    }
    # meter model cycles for every op before any wall loop runs: fork's
    # COW-mark cost scales with the pages mapped so far, so interleaving
    # wall iterations would make the metric depend on --rounds
    metrics = {name + "_cycles": _meter(kernel, op)
               for name, op in ops.items()}
    wall = {}
    for name, op in ops.items():
        start = time.perf_counter()
        for _ in range(rounds):
            op()
        wall[name + "_seconds"] = (time.perf_counter() - start) / rounds
    info = {"sthread_over_pthread":
            round(metrics["sthread_cycles"]
                  / metrics["pthread_cycles"], 2)}
    return {"artifact": "fig7", "metrics": metrics, "wall": wall,
            "info": info}


def bench_fig8(rounds):
    """malloc / smalloc / tag_new costs (Figure 8) in model cycles."""
    from repro.core.kernel import Kernel
    kernel = Kernel(name="bench-fig8")
    kernel.start_main()
    tag = kernel.tag_new()
    metrics = {
        "malloc_cycles": _meter(
            kernel, lambda: kernel.free(kernel.malloc(64))),
        "smalloc_cycles": _meter(
            kernel, lambda: kernel.sfree(kernel.smalloc(64, tag))),
    }
    seed = kernel.tag_new()
    kernel.tag_delete(seed)
    metrics["tag_new_reused_cycles"] = _meter(
        kernel, lambda: kernel.tag_delete(kernel.tag_new()))
    nocache = Kernel(name="bench-fig8-nocache", tag_cache=False)
    nocache.start_main()
    nocache.tag_delete(nocache.tag_new())
    metrics["tag_new_fresh_cycles"] = _meter(
        nocache, lambda: nocache.tag_delete(nocache.tag_new()))
    info = {"fresh_over_malloc":
            round(metrics["tag_new_fresh_cycles"]
                  / metrics["malloc_cycles"], 1)}
    return {"artifact": "fig8", "metrics": metrics, "wall": {},
            "info": info}


def _apache_cached(tlb, rounds, addr, certify=False):
    """Model cycles + wall per cached-session request (vanilla httpd)."""
    from repro.apps.httpd import MonolithicHttpd
    from repro.apps.httpd.content import build_request
    from repro.core.kernel import Kernel
    from repro.crypto import DetRNG
    from repro.net import Network
    from repro.tls import TlsClient

    saved = Kernel.DEFAULT_TLB
    Kernel.DEFAULT_TLB = tlb
    try:
        server = MonolithicHttpd(Network(), addr).start()
    finally:
        Kernel.DEFAULT_TLB = saved
    try:
        if certify:
            from repro.analysis.verify import certify_monolithic_httpd
            certify_monolithic_httpd(server)
        client = TlsClient(DetRNG("bench-json"),
                           expected_server_key=server.public_key)
        client.connect(server.network, server.addr).request(
            build_request("/"))

        def op():
            conn = client.connect(server.network, server.addr)
            conn.request(build_request("/"))

        op()  # warm
        checkpoint = server.kernel.costs.checkpoint()
        before = server.kernel.tlb_stats()
        vbefore = server.kernel.verified_stats()
        start = time.perf_counter()
        for _ in range(rounds):
            op()
        wall = (time.perf_counter() - start) / rounds
        cycles = server.kernel.costs.delta(checkpoint) / rounds
        after = server.kernel.tlb_stats()
        vafter = server.kernel.verified_stats()
        return {
            "cycles_per_request": round(cycles, 1),
            "wall_seconds_per_request": wall,
            "hits_per_request":
                (after["hits"] - before["hits"]) / rounds,
            "walks_per_request":
                (after["walks"] - before["walks"]) / rounds,
            "verified_accesses_per_request":
                (vafter["accesses"] - vbefore["accesses"]) / rounds,
            "verified_syscalls_per_request":
                (vafter["syscalls"] - vbefore["syscalls"]) / rounds,
        }
    finally:
        server.stop()


def _hot_loop(tlb, accesses=4000):
    """The pure bus fast path: single-page loads/stores, model + wall."""
    from repro.core.kernel import Kernel
    kernel = Kernel(name=f"bench-hot-{tlb}", tlb=tlb)
    kernel.start_main()
    addr = kernel.malloc(256)
    kernel.mem_write(addr, b"\x5a" * 256)
    checkpoint = kernel.costs.checkpoint()
    start = time.perf_counter()
    for _ in range(accesses // 2):
        kernel.mem_read(addr, 64)
        kernel.mem_write(addr, b"\xa5" * 64)
    wall = time.perf_counter() - start
    cycles = kernel.costs.delta(checkpoint)
    return {"cycles_per_access": round(cycles / accesses, 2),
            "wall_seconds": wall}


def bench_tlb(rounds):
    """The TLB ablation: Apache hot path and the raw bus loop."""
    apache = {tlb: _apache_cached(tlb, rounds,
                                  f"bench-json-{tlb}:443")
              for tlb in (True, False)}
    hot = {tlb: _hot_loop(tlb) for tlb in (True, False)}
    on, off = apache[True], apache[False]
    hit_rate = on["hits_per_request"] / max(
        1, on["hits_per_request"] + on["walks_per_request"])
    metrics = {
        "apache_cached_cycles_per_request_tlb_on":
            on["cycles_per_request"],
        "apache_cached_cycles_per_request_tlb_off":
            off["cycles_per_request"],
        "hot_loop_cycles_per_access_tlb_on":
            hot[True]["cycles_per_access"],
        "hot_loop_cycles_per_access_tlb_off":
            hot[False]["cycles_per_access"],
    }
    wall = {
        "apache_cached_wall_seconds_per_request_tlb_on":
            on["wall_seconds_per_request"],
        "apache_cached_wall_seconds_per_request_tlb_off":
            off["wall_seconds_per_request"],
        "hot_loop_wall_seconds_tlb_on": hot[True]["wall_seconds"],
        "hot_loop_wall_seconds_tlb_off": hot[False]["wall_seconds"],
    }
    info = {
        "apache_hit_rate_tlb_on": round(hit_rate, 3),
        "apache_cycle_saving": round(
            1 - on["cycles_per_request"] / off["cycles_per_request"], 3),
        "apache_wall_saving": round(
            1 - on["wall_seconds_per_request"]
            / off["wall_seconds_per_request"], 3),
        "hot_loop_wall_speedup": round(
            hot[False]["wall_seconds"] / hot[True]["wall_seconds"], 2),
        "rounds": rounds,
    }
    return {"artifact": "tlb", "metrics": metrics, "wall": wall,
            "info": info}


def bench_observe(rounds):
    """Figure 7 primitives under the default no-op observability path.

    Every kernel carries an :class:`~repro.observe.bus.EventBus`; with
    no sink attached each chokepoint costs a single attribute test and
    charges zero model cycles, so the ``noop_*`` metrics must track the
    ``fig7`` artifact exactly (TOLERANCES holds them to 2% in CI).
    ``info`` additionally records the *enabled* cost of two primitives
    with a counting sink attached — context for the overhead model in
    DESIGN.md, never checked.
    """
    base = bench_fig7(rounds)
    metrics = {f"noop_{key}": value
               for key, value in base["metrics"].items()}

    from repro.core.kernel import Kernel
    from repro.core.policy import SecurityContext
    from repro.observe.counters import CounterRegistry
    kernel = Kernel(name="bench-observe-on")
    kernel.start_main()
    kernel.observe.add_sink(CounterRegistry())
    enabled = {
        "pthread": _meter(kernel, lambda: kernel.sthread_join(
            kernel.pthread_create(lambda a: None, spawn="inline"))),
        "sthread": _meter(kernel, lambda: kernel.sthread_join(
            kernel.sthread_create(SecurityContext(), lambda a: None,
                                  spawn="inline"))),
    }
    info = {
        "enabled_pthread_cycles": enabled["pthread"],
        "enabled_sthread_cycles": enabled["sthread"],
        "enabled_sthread_overhead": round(
            enabled["sthread"] / base["metrics"]["sthread_cycles"] - 1,
            4),
    }
    return {"artifact": "observe", "metrics": metrics, "wall": {},
            "info": info}


def bench_verified(rounds):
    """The certificate ablation: proof-carrying fast path vs checked.

    Re-measures the monolithic httpd cached-session request with the
    accept loop certified (``repro.analysis.verify``) and without, both
    with the TLB on — so the verified number is an *additional* saving
    past the PR-4 TLB fast path.  The hot loop isolates the raw bus:
    a certified single-page access costs ``verified_access`` (1) against
    ``tlb_hit`` + resolution (2+) on the checked path.
    """
    on = _apache_cached(True, rounds, "bench-verified-on:443",
                        certify=True)
    off = _apache_cached(True, rounds, "bench-verified-off:443")

    from repro.analysis.verify import PolicyCertificate
    from repro.core.kernel import Kernel
    kernel = Kernel(name="bench-verified-hot")
    kernel.start_main()
    addr = kernel.malloc(256)
    kernel.mem_write(addr, b"\x5a" * 256)
    cert = PolicyCertificate(kernel.main.name, id(kernel.main.table),
                             {}, {}, (), ())
    cert.signature = kernel.sign_policy(cert.payload())
    kernel.enter_verified(cert, kernel.main)
    accesses = 4000
    checkpoint = kernel.costs.checkpoint()
    start = time.perf_counter()
    for _ in range(accesses // 2):
        kernel.mem_read(addr, 64)
        kernel.mem_write(addr, b"\xa5" * 64)
    hot_wall = time.perf_counter() - start
    hot_cycles = kernel.costs.delta(checkpoint) / accesses

    metrics = {
        "apache_cached_cycles_per_request_verified":
            on["cycles_per_request"],
        "apache_cached_cycles_per_request_checked":
            off["cycles_per_request"],
        "hot_loop_cycles_per_access_verified": round(hot_cycles, 2),
    }
    wall = {
        "apache_cached_wall_seconds_per_request_verified":
            on["wall_seconds_per_request"],
        "apache_cached_wall_seconds_per_request_checked":
            off["wall_seconds_per_request"],
        "hot_loop_wall_seconds_verified": hot_wall,
    }
    info = {
        "apache_verified_speedup": round(
            off["cycles_per_request"]
            / max(1, on["cycles_per_request"]), 2),
        "verified_accesses_per_request":
            on["verified_accesses_per_request"],
        "verified_syscalls_per_request":
            on["verified_syscalls_per_request"],
        "rounds": rounds,
    }
    return {"artifact": "verified", "metrics": metrics, "wall": wall,
            "info": info}


BENCHES = {"fig7": bench_fig7, "fig8": bench_fig8, "tlb": bench_tlb,
           "observe": bench_observe, "verified": bench_verified}


def check(out_dir, baseline_dir, names=None):
    """Compare checked metrics against the baselines; True iff clean."""
    clean = True
    for name in (names if names is not None else BENCHES):
        base_path = baseline_dir / f"BENCH_{name}.json"
        new_path = out_dir / f"BENCH_{name}.json"
        if not base_path.exists():
            print(f"  {name}: no baseline at {base_path}, skipping")
            continue
        base = json.loads(base_path.read_text())["metrics"]
        new = json.loads(new_path.read_text())["metrics"]
        tolerance = TOLERANCES.get(name, TOLERANCE)
        for key, old_value in sorted(base.items()):
            value = new.get(key)
            if value is None:
                print(f"  {name}.{key}: MISSING from new run")
                clean = False
                continue
            ratio = value / old_value if old_value else float("inf")
            flag = "ok"
            if ratio > 1 + tolerance:
                flag = f"REGRESSION (+{(ratio - 1):.1%})"
                clean = False
            elif ratio < 1 - tolerance:
                flag = f"improved ({(ratio - 1):+.1%})"
            print(f"  {name}.{key}: {old_value:,.1f} -> {value:,.1f} "
                  f"[{flag}]")
    return clean


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="emit BENCH_*.json perf artifacts")
    parser.add_argument("--out", default="bench-out",
                        help="directory to write BENCH_*.json into")
    parser.add_argument("--rounds", type=int, default=16,
                        help="requests per measurement (CI uses fewer)")
    parser.add_argument("--check", default=None, metavar="BASELINE_DIR",
                        help="compare against committed baselines; exit "
                             "1 on >10%% model-cycle regression")
    parser.add_argument("--only", choices=sorted(BENCHES), default=None,
                        help="run a single artifact")
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = [args.only] if args.only else list(BENCHES)
    for name in names:
        result = BENCHES[name](args.rounds)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(result, indent=2, sort_keys=True)
                        + "\n")
        print(f"wrote {path}")
        for key, value in sorted(result["metrics"].items()):
            print(f"  {key} = {value:,}")

    if args.check is not None:
        print(f"checking against {args.check} "
              f"(tolerance {TOLERANCE:.0%}):")
        if not check(out_dir, pathlib.Path(args.check), names):
            print("FAIL: model-cycle regression past tolerance")
            return 1
        print("ok: no model-cycle regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
