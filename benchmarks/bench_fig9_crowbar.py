"""Figure 9 — cb-log overhead across applications.

Paper result: completion time under cb-log ≫ under bare Pin ≫ native;
the instrumented/Pin ratio printed above each application's bars ranges
from 2.4x (ssh) through ~9x (apache, gobmk) to 90x (h264ref) — network
servers, which compute more per memory access, suffer least.

Here each workload runs natively, under the Pin stub, and under cb-log;
the per-workload benchmark measures the cb-log (dominant) case, and the
summary test prints the full three-bar table with ratios and asserts
the shape: native < pin < crowbar for every kernel workload, and the
server applications (ssh, apache) having the smallest crowbar ratio.
"""

import pytest

from repro.workloads import SPEC_KERNELS, run_spec, run_workload
from repro.workloads.runner import FIGURE9_ORDER, MODES


@pytest.mark.parametrize("name", sorted(SPEC_KERNELS))
def test_crowbar_spec(benchmark, name):
    result = benchmark.pedantic(
        lambda: run_spec(name, "crowbar", "quick"), rounds=3,
        iterations=1)
    benchmark.extra_info["events"] = result[2]


@pytest.mark.parametrize("name", sorted(SPEC_KERNELS))
def test_native_spec(benchmark, name):
    benchmark.pedantic(lambda: run_spec(name, "native", "quick"),
                       rounds=3, iterations=1)


@pytest.mark.parametrize("name", ["ssh", "apache"])
def test_crowbar_apps(benchmark, name):
    benchmark.pedantic(lambda: run_workload(name, "crowbar", "quick"),
                       rounds=2, iterations=1)


def test_figure9_table(benchmark):
    """The full figure: three bars per application plus ratios."""
    rows = {}
    for name in FIGURE9_ORDER:
        times = {}
        for mode in MODES:
            best = None
            repeats = 2 if name in SPEC_KERNELS else 1
            for _ in range(repeats):
                elapsed, _, _ = run_workload(name, mode, "quick")
                best = elapsed if best is None else min(best, elapsed)
            times[mode] = best
        rows[name] = times

    print("\nFigure 9 (seconds; ratio = crowbar/pin as the paper "
          "annotates):")
    print(f"  {'app':8s} {'native':>9s} {'pin':>9s} {'crowbar':>9s} "
          f"{'ratio':>7s}")
    for name, times in rows.items():
        ratio = times["crowbar"] / times["pin"]
        print(f"  {name:8s} {times['native']:9.4f} {times['pin']:9.4f} "
              f"{times['crowbar']:9.4f} {ratio:6.1f}x")
        benchmark.extra_info[name] = {
            mode: round(value, 5) for mode, value in times.items()}

    # shape assertions — on the deterministic-enough kernel workloads
    for name in SPEC_KERNELS:
        times = rows[name]
        assert times["native"] < times["pin"] < times["crowbar"], name
    # the server applications suffer the least under cb-log
    app_ratios = [rows[n]["crowbar"] / rows[n]["native"]
                  for n in ("ssh", "apache")]
    spec_ratios = [rows[n]["crowbar"] / rows[n]["native"]
                   for n in SPEC_KERNELS]
    assert max(app_ratios) < min(spec_ratios)
    benchmark(lambda: None)
