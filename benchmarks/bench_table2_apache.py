"""Table 2 (top) — Apache throughput in requests per second.

Paper result (requests/s)::

                        Vanilla   Wedge   Recycled
    sessions cached       1238      238       339
    sessions not cached    247      132       170

Shape: vanilla > recycled > wedge in both workloads; partitioning hurts
*relatively more* when sessions are cached (no RSA work to amortise the
compartment-creation cost against): wedge reaches ~19%/27% of vanilla
cached vs ~53%/69% uncached.  Recycled callgates buy back 42%/29%.

pytest-benchmark's OPS column is the requests/s the table reports.
"""

import pytest

from repro.apps.httpd import MitmPartitionHttpd, MonolithicHttpd
from repro.apps.httpd.content import build_request
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient

SERVERS = {
    "vanilla": (MonolithicHttpd, {}),
    "wedge": (MitmPartitionHttpd, {"gate_mode": "fresh"}),
    "recycled": (MitmPartitionHttpd, {"gate_mode": "recycled"}),
}


def start_server(flavor, addr):
    cls, kwargs = SERVERS[flavor]
    return cls(Network(), addr, **kwargs).start()


def cached_request_op(server):
    """One request on a cached (resumed) session."""
    client = TlsClient(DetRNG("bench-cached"),
                       expected_server_key=server.public_key)
    # seed the session cache once
    client.connect(server.network, server.addr).request(
        build_request("/"))

    def op():
        conn = client.connect(server.network, server.addr)
        conn.request(build_request("/"))
        assert conn.resumed

    return op


def uncached_request_op(server):
    """One request with a full handshake every time."""
    counter = [0]

    def op():
        counter[0] += 1
        client = TlsClient(DetRNG(f"bench-fresh{counter[0]}"),
                           expected_server_key=server.public_key)
        conn = client.connect(server.network, server.addr,
                              resume=False)
        conn.request(build_request("/"))
        assert not conn.resumed

    return op


@pytest.mark.parametrize("flavor", list(SERVERS))
def test_sessions_cached(benchmark, flavor):
    server = start_server(flavor, f"t2-cached-{flavor}:443")
    try:
        benchmark.pedantic(cached_request_op(server), rounds=8,
                           iterations=2, warmup_rounds=1)
        benchmark.extra_info["variant"] = flavor
        benchmark.extra_info["workload"] = "cached"
        assert server.errors == []
    finally:
        server.stop()


@pytest.mark.parametrize("flavor", list(SERVERS))
def test_sessions_not_cached(benchmark, flavor):
    server = start_server(flavor, f"t2-fresh-{flavor}:443")
    try:
        benchmark.pedantic(uncached_request_op(server), rounds=8,
                           iterations=2, warmup_rounds=1)
        benchmark.extra_info["variant"] = flavor
        benchmark.extra_info["workload"] = "not-cached"
        assert server.errors == []
    finally:
        server.stop()


def test_table2_apache_shape(benchmark):
    """Measures all six cells, prints the table, asserts the shape."""
    import time

    def throughput(server, op, n=10):
        op()  # warm
        start = time.perf_counter()
        for _ in range(n):
            op()
        return n / (time.perf_counter() - start)

    table = {}
    for workload, op_factory in (("cached", cached_request_op),
                                 ("not-cached", uncached_request_op)):
        for flavor in SERVERS:
            server = start_server(flavor,
                                  f"t2-shape-{workload}-{flavor}:443")
            try:
                table[(workload, flavor)] = throughput(
                    server, op_factory(server))
            finally:
                server.stop()

    print("\nTable 2 (top): requests/s")
    print(f"  {'workload':12s} {'vanilla':>9s} {'wedge':>9s} "
          f"{'recycled':>9s} {'wedge/van':>10s} {'rec/van':>8s}")
    for workload in ("cached", "not-cached"):
        vanilla = table[(workload, "vanilla")]
        wedge = table[(workload, "wedge")]
        recycled = table[(workload, "recycled")]
        print(f"  {workload:12s} {vanilla:9.1f} {wedge:9.1f} "
              f"{recycled:9.1f} {wedge/vanilla:9.2f} "
              f"{recycled/vanilla:7.2f}")
        benchmark.extra_info[workload] = {
            "vanilla": round(vanilla, 1), "wedge": round(wedge, 1),
            "recycled": round(recycled, 1)}

    for workload in ("cached", "not-cached"):
        vanilla = table[(workload, "vanilla")]
        wedge = table[(workload, "wedge")]
        recycled = table[(workload, "recycled")]
        # who wins: vanilla > recycled > wedge
        assert vanilla > recycled > wedge, workload
    # partitioning hurts relatively more on the cached workload
    cached_frac = table[("cached", "wedge")] / table[("cached",
                                                      "vanilla")]
    fresh_frac = table[("not-cached", "wedge")] / \
        table[("not-cached", "vanilla")]
    assert cached_frac < fresh_frac
    benchmark(lambda: None)
