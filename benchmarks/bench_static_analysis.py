"""Analyzer runtime over every shipped application (static leg only).

The interprocedural fixpoint has to stay cheap enough to run in CI on
every commit (`python -m repro lint --strict`); this benchmark records
per-app wall time, rounds-to-convergence, and graph size so regressions
in the engine show up as numbers rather than as a slow CI job.
"""

import time

from repro.analysis import lint_app
from repro.analysis.targets import APP_NAMES


def test_static_analysis_runtime(benchmark):
    print("\nStatic analyzer runtime (per shipped app):")
    timings = {}
    for app in APP_NAMES:
        start = time.perf_counter()
        results = lint_app(app, with_trace=False)
        elapsed = time.perf_counter() - start
        rounds = max(r.inferred.rounds for r in results)
        visited = max(r.inferred.visited for r in results)
        timings[app] = elapsed
        print(f"  {app:14s} {elapsed:7.3f}s  "
              f"{len(results)} compartments, "
              f"{visited} functions, {rounds} rounds")
        benchmark.extra_info[app] = {
            "seconds": round(elapsed, 4),
            "compartments": len(results),
            "functions": visited,
            "rounds": rounds,
        }
        assert all(r.inferred.converged for r in results)
        assert all(r.findings == [] for r in results)

    # the whole static sweep must stay interactive
    assert sum(timings.values()) < 30.0
    benchmark(lambda: None)
