"""Ablation — ephemeral (forward-secret) RSA handshakes (§5.1.1).

The paper's threat analysis presumes ephemeral per-connection RSA keys
are not in use: "they are rarely used in practice because of their high
computational cost".  That presumption is load-bearing — it is *why*
protecting the long-term private key matters so much (a stolen key
decrypts every recorded session, which
``tests/tls/test_ephemeral.py::test_static_mode_lacks_forward_secrecy``
demonstrates).  This ablation quantifies the cost the paper cites:
handshakes per second with static vs per-connection keys.
"""

import threading
import time

import pytest

from repro.crypto import DetRNG, rsa
from repro.net import Network
from repro.tls import SessionCache, StreamTransport, TlsClient
from repro.tls.records import RT_APPDATA
from repro.tls.server_core import ServerHandshake


def serve_forever(net, addr, key, *, ephemeral, stop):
    listener = net.listen(addr)

    def run():
        index = 0
        while not stop.is_set():
            try:
                sock = listener.accept(timeout=0.5)
            except Exception:
                continue
            index += 1
            try:
                handshake = ServerHandshake(
                    StreamTransport(sock, 5), key,
                    DetRNG(f"srv{index}"), session_cache=SessionCache(),
                    ephemeral=ephemeral, ephemeral_bits=384)
                channel = handshake.run()
                channel.recv_record()
                channel.send_record(RT_APPDATA, b"ok")
            except Exception:
                pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def handshake_op(net, addr, key):
    counter = [0]

    def op():
        counter[0] += 1
        client = TlsClient(DetRNG(f"cli{counter[0]}"),
                           expected_server_key=key.public())
        conn = client.connect(net, addr, resume=False)
        conn.request(b"ping")

    return op


@pytest.mark.parametrize("mode", ["static", "ephemeral"])
def test_full_handshake(benchmark, mode):
    net = Network()
    key = rsa.generate_keypair(DetRNG("ablation-eph"))
    stop = threading.Event()
    serve_forever(net, f"eph-bench-{mode}:443", key,
                  ephemeral=(mode == "ephemeral"), stop=stop)
    try:
        benchmark.pedantic(
            handshake_op(net, f"eph-bench-{mode}:443", key),
            rounds=6, iterations=1, warmup_rounds=1)
        benchmark.extra_info["mode"] = mode
    finally:
        stop.set()


def test_ephemeral_ablation_shape(benchmark):
    """Static vs ephemeral side by side, with the cost factor."""
    results = {}
    key = rsa.generate_keypair(DetRNG("ablation-eph2"))
    for mode in ("static", "ephemeral"):
        net = Network()
        stop = threading.Event()
        serve_forever(net, f"eph-shape-{mode}:443", key,
                      ephemeral=(mode == "ephemeral"), stop=stop)
        op = handshake_op(net, f"eph-shape-{mode}:443", key)
        op()   # warm
        start = time.perf_counter()
        n = 6
        for _ in range(n):
            op()
        results[mode] = n / (time.perf_counter() - start)
        stop.set()

    factor = results["static"] / results["ephemeral"]
    print("\nEphemeral-RSA ablation (full handshakes/s):")
    print(f"  static key    : {results['static']:7.1f} hs/s")
    print(f"  ephemeral key : {results['ephemeral']:7.1f} hs/s")
    print(f"  cost factor   : {factor:.1f}x — the paper's 'high "
          f"computational cost'")
    benchmark.extra_info["static_hs_per_s"] = round(results["static"], 1)
    benchmark.extra_info["ephemeral_hs_per_s"] = round(
        results["ephemeral"], 1)
    benchmark.extra_info["factor"] = round(factor, 2)
    # the paper's premise: ephemeral keys are substantially slower
    assert factor > 2
    benchmark(lambda: None)
