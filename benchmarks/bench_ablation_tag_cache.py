"""Ablation — the tag free-list cache (paper §4.1's 20% claim).

"Indeed, this mechanism improved the throughput of our partitioned
Apache server by 20%": the master creates per-client tags, so recycling
completed clients' segments saves an mmap-equivalent per connection.

This bench runs the Figures-3-5 Apache with the cache enabled and
disabled and reports both wall throughput and the model-cycle cost per
request; the model cost is the stable signal on an interpreted host.
"""

import time

import pytest

from repro.apps.httpd import MitmPartitionHttpd
from repro.apps.httpd.content import build_request
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient


def start_server(tag_cache, addr):
    return MitmPartitionHttpd(Network(), addr,
                              tag_cache=tag_cache).start()


def settle(kernel):
    """Wait until the server's connection threads stop charging costs.

    ``conn.request()`` returns once the client has its response, but the
    server-side connection thread still runs teardown; metering before
    it quiesces attributes that work to the wrong side of a checkpoint.
    """
    prev = kernel.costs.cycles()
    while True:
        time.sleep(0.02)
        cur = kernel.costs.cycles()
        if cur == prev:
            return
        prev = cur


def request_op(server):
    client = TlsClient(DetRNG("ablation"),
                       expected_server_key=server.public_key)
    client.connect(server.network, server.addr).request(
        build_request("/"))  # warm the session cache + tag cache

    def op():
        conn = client.connect(server.network, server.addr)
        conn.request(build_request("/"))

    return op


@pytest.mark.parametrize("cache", [True, False],
                         ids=["cache-on", "cache-off"])
def test_request_with_tag_cache(benchmark, cache):
    server = start_server(cache, f"ablation-{cache}:443")
    try:
        benchmark.pedantic(request_op(server), rounds=8, iterations=2,
                           warmup_rounds=1)
        benchmark.extra_info["tag_cache"] = cache
    finally:
        server.stop()


def test_ablation_shape(benchmark):
    results = {}
    for cache in (True, False):
        server = start_server(cache, f"ablation-shape-{cache}:443")
        try:
            op = request_op(server)
            settle(server.kernel)
            # model cycles per request, averaged over the loop with
            # quiescence at both window edges so each side counts
            # exactly its own requests' work
            checkpoint = server.kernel.costs.checkpoint()
            start = time.perf_counter()
            for _ in range(10):
                op()
            wall = 10 / (time.perf_counter() - start)
            settle(server.kernel)
            cycles = server.kernel.costs.delta(checkpoint) // 10
            results[cache] = {"cycles": cycles, "rps": wall,
                              "reused": server.kernel.tags.stats[
                                  "reused"]}
        finally:
            server.stop()

    on, off = results[True], results[False]
    print("\nTag-cache ablation (per cached-session request):")
    print(f"  cache on : {on['cycles']:9d} cycles  {on['rps']:7.1f} "
          f"req/s  ({on['reused']} reuses)")
    print(f"  cache off: {off['cycles']:9d} cycles  {off['rps']:7.1f} "
          f"req/s")
    saving = 1 - on["cycles"] / off["cycles"]
    print(f"  model-cost saving from reuse: {saving:.1%}")
    benchmark.extra_info["cycles_on"] = on["cycles"]
    benchmark.extra_info["cycles_off"] = off["cycles"]
    benchmark.extra_info["saving"] = round(saving, 3)

    # the cache actually fired, and it reduces per-request model cost
    assert on["reused"] > 0
    assert on["cycles"] < off["cycles"]
    benchmark(lambda: None)
