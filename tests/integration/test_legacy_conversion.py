"""The §3.2 legacy-conversion aids, used as the paper intends.

"When partitioning existing applications, one may need to tag global
variables, or convert many malloc calls within a function to use
smalloc instead, which may not even be possible for allocations in
binary-only libraries."  The two aids:

* ``smalloc_on/off`` — every ``malloc`` between the two calls lands in
  the given tag, even mallocs inside a library we cannot edit;
* ``BOUNDARY_VAR``/``BOUNDARY_TAG`` — statically-initialised globals
  carved into their own page-aligned section so they can be granted
  (or withheld) like any tag.
"""

from repro.core.boundary import BOUNDARY_TAG, BOUNDARY_VAR
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import SecurityContext, sc_mem_add


def legacy_session_library(kernel, payload):
    """A 'binary-only' library: allocates scratch internally with plain
    malloc and returns the allocation's address.  We cannot edit it."""
    scratch = kernel.malloc(len(payload) + 16)
    kernel.mem_write(scratch, payload)
    return scratch


class TestSmallocOnConversion:
    def test_library_allocations_become_tagged(self, kernel):
        session_tag = kernel.tag_new(name="session-objects")
        kernel.smalloc_on(session_tag)
        try:
            addr = legacy_session_library(kernel, b"session-state")
        finally:
            kernel.smalloc_off()
        segment, _ = kernel.space.find(addr)
        assert segment.tag_id == session_tag.id

    def test_converted_allocations_are_shareable(self, kernel):
        """The point of the conversion: another sthread can now be
        granted access to the library's objects."""
        session_tag = kernel.tag_new(name="shared-session")
        kernel.smalloc_on(session_tag)
        addr = legacy_session_library(kernel, b"to-be-shared!")
        kernel.smalloc_off()

        sc = sc_mem_add(SecurityContext(), session_tag, PROT_READ)
        reader = kernel.sthread_create(
            sc, lambda a: kernel.mem_read(addr, 13), spawn="inline")
        assert kernel.sthread_join(reader) == b"to-be-shared!"

    def test_unconverted_allocations_stay_private(self, kernel):
        addr = legacy_session_library(kernel, b"still-private")
        reader = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.mem_read(addr, 13),
            spawn="inline")
        assert reader.faulted

    def test_interleaved_conversion_windows(self, kernel):
        """Only the calls inside the window convert — the surgical
        precision the mechanism exists for."""
        tag = kernel.tag_new(name="window")
        before = legacy_session_library(kernel, b"before")
        kernel.smalloc_on(tag)
        inside = legacy_session_library(kernel, b"inside")
        kernel.smalloc_off()
        after = legacy_session_library(kernel, b"after")
        seg_of = lambda addr: kernel.space.find(addr)[0].tag_id
        assert seg_of(before) is None
        assert seg_of(inside) == tag.id
        assert seg_of(after) is None


class TestBoundaryConversion:
    def test_sensitive_static_global_withheld(self, bare_kernel):
        """A statically-initialised credential is carved out of the
        default snapshot: workers cannot read it, a gate granted the
        boundary tag can."""
        kernel = bare_kernel
        # ordinary global: part of every sthread's snapshot
        kernel.declare_global("motd", 16, b"welcome!")
        # sensitive global: its own section via BOUNDARY_VAR
        BOUNDARY_VAR(kernel, 7, "api_token", 24, b"static-secret-token")
        kernel.start_main()
        token_tag = BOUNDARY_TAG(kernel, 7)
        token_addr = kernel.boundary.section(7).addr_of("api_token")
        motd_addr = kernel.image.addr_of("motd")

        def worker_body(arg):
            motd = kernel.mem_read(motd_addr, 8)     # snapshot: fine
            try:
                kernel.mem_read(token_addr, 19)
                return (motd, "TOKEN-LEAKED")
            except Exception:
                return (motd, "token-denied")

        worker = kernel.sthread_create(SecurityContext(), worker_body,
                                       spawn="inline")
        assert kernel.sthread_join(worker) == (b"welcome!",
                                               "token-denied")

        sc = sc_mem_add(SecurityContext(), token_tag, PROT_READ)
        trusted = kernel.sthread_create(
            sc, lambda a: kernel.mem_read(token_addr, 19),
            spawn="inline")
        assert kernel.sthread_join(trusted) == b"static-secret-token"

    def test_boundary_section_shared_read_write(self, bare_kernel):
        """The other advertised use: sharing global state between
        sthreads at tag granularity."""
        kernel = bare_kernel
        BOUNDARY_VAR(kernel, 8, "counter", 8, (0).to_bytes(8, "big"))
        kernel.start_main()
        tag = BOUNDARY_TAG(kernel, 8)
        addr = kernel.boundary.section(8).addr_of("counter")

        def bump(arg):
            value = int.from_bytes(kernel.mem_read(addr, 8), "big")
            kernel.mem_write(addr, (value + 1).to_bytes(8, "big"))

        sc = sc_mem_add(SecurityContext(), tag, PROT_RW)
        for _ in range(3):
            child = kernel.sthread_create(sc, bump, spawn="inline")
            kernel.sthread_join(child)
        # unlike snapshot globals, the writes are SHARED
        assert int.from_bytes(kernel.mem_read(addr, 8), "big") == 3
