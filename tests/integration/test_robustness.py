"""Failure injection: servers must survive hostile or flaky peers.

A compartment dying on bad input is fine (that is the design); the
*server* — master plus subsequent connections — must keep working.
"""

import time

import pytest

from repro.apps.httpd import MitmPartitionHttpd, SimplePartitionHttpd
from repro.apps.httpd.content import build_request, response_body
from repro.apps.sshd import WedgeSshd
from repro.crypto import DetRNG
from repro.net import Network
from repro.sshlib import SshClient
from repro.tls import TlsClient
from repro.tls.records import frame, RT_HANDSHAKE


def assert_still_serves(server):
    client = TlsClient(DetRNG(f"recheck{time.time()}"),
                       expected_server_key=server.public_key)
    conn = client.connect(server.network, server.addr)
    response = conn.request(build_request("/"))
    assert response.startswith(b"HTTP/1.0 200")


class TestHttpdRobustness:
    @pytest.fixture(params=[SimplePartitionHttpd, MitmPartitionHttpd],
                    ids=["simple", "mitm"])
    def server(self, request):
        net = Network()
        srv = request.param(net,
                            f"robust-{request.node.name}:443").start()
        yield srv
        srv.stop()

    def test_garbage_bytes_then_real_client(self, server):
        sock = server.network.connect(server.addr)
        sock.send(b"\x00\xff" * 50)
        sock.close()
        time.sleep(0.1)
        assert_still_serves(server)

    def test_client_disconnects_mid_handshake(self, server):
        sock = server.network.connect(server.addr)
        from repro.tls.handshake import ClientHello
        sock.send(frame(RT_HANDSHAKE,
                        ClientHello(b"r" * 32, b"", b"").pack()))
        sock.close()   # vanish before the key exchange
        time.sleep(0.1)
        assert_still_serves(server)

    def test_malformed_hello_record(self, server):
        sock = server.network.connect(server.addr)
        sock.send(frame(RT_HANDSHAKE, b"\x01not-a-valid-hello"))
        time.sleep(0.1)
        assert_still_serves(server)

    def test_oversized_frame_header(self, server):
        sock = server.network.connect(server.addr)
        sock.send(bytes([RT_HANDSHAKE]) + (1 << 24).to_bytes(4, "big"))
        time.sleep(0.1)
        assert_still_serves(server)

    def test_half_frame_then_silence(self, server):
        sock = server.network.connect(server.addr)
        sock.send(bytes([RT_HANDSHAKE]) + (100).to_bytes(4, "big") +
                  b"only-part")
        sock.shutdown_write()
        time.sleep(0.1)
        assert_still_serves(server)

    def test_many_bad_clients_in_a_row(self, server):
        for i in range(5):
            sock = server.network.connect(server.addr)
            sock.send(bytes([i]) * (i + 1))
            sock.close()
        time.sleep(0.2)
        assert_still_serves(server)


class TestSshdRobustness:
    def test_bad_version_then_real_login(self):
        net = Network()
        server = WedgeSshd(net, "robust-ssh:22").start()
        try:
            sock = net.connect("robust-ssh:22")
            sock.send(frame(40, b"HTTP/1.0 GET /"))   # wrong protocol
            sock.close()
            time.sleep(0.1)
            client = SshClient(
                DetRNG("after"),
                expected_host_key=server.env.host_key.public())
            conn = client.connect(net, "robust-ssh:22")
            conn.auth_password("alice", b"wonderland")
            assert b"alice" in conn.exec("whoami")
            conn.close()
        finally:
            server.stop()

    def test_degenerate_dh_public_rejected(self):
        """A client sending e=1 must not yield a usable channel."""
        from repro.sshlib.transport import (FT_KEXINIT, FT_VERSION,
                                            pack_kexinit)
        from repro.tls.records import read_frame, StreamTransport
        net = Network()
        server = WedgeSshd(net, "robust-dh:22").start()
        try:
            sock = net.connect("robust-dh:22")
            transport = StreamTransport(sock, 2)
            read_frame(transport)                     # server version
            sock.send(frame(FT_VERSION, b"SSH-SIM-1.0-evil"))
            sock.send(frame(FT_KEXINIT, pack_kexinit(b"r" * 32, 1)))
            # the worker rejects the degenerate value and hangs up
            time.sleep(0.2)
            worker = server.workers[0]
            assert worker.status in ("error", "exited", "faulted")
            # and the server still serves honest clients
            client = SshClient(
                DetRNG("honest"),
                expected_host_key=server.env.host_key.public())
            conn = client.connect(net, "robust-dh:22")
            conn.auth_password("alice", b"wonderland")
            conn.close()
        finally:
            server.stop()

    def test_auth_attempt_limit(self):
        from repro.core.errors import AuthenticationFailure
        net = Network()
        server = WedgeSshd(net, "robust-auth:22").start()
        try:
            client = SshClient(
                DetRNG("bruteforce"),
                expected_host_key=server.env.host_key.public())
            conn = client.connect(net, "robust-auth:22")
            for i in range(6):
                with pytest.raises(AuthenticationFailure):
                    conn.auth_password("alice", f"guess{i}".encode())
            # the worker gave up; the connection is dead
            with pytest.raises(Exception):
                conn.auth_password("alice", b"wonderland")
        finally:
            server.stop()
