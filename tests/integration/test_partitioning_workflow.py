"""Integration: the full Crowbar-assisted partitioning workflow (§3.4).

The paper's development story, end to end on a toy application:

1. run the monolithic code under cb-log on an innocuous workload;
2. ask cb-analyze which memory a procedure (and descendants) needs;
3. put the procedure in a default-deny sthread with exactly those
   grants — it runs;
4. refactor the code so it touches something new — it faults;
5. re-run under the emulation library + cb-log, learn the missing
   grant, extend the policy — it runs again.
"""

from repro.core.emulation import emulated_sthread_create
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import SecurityContext, sc_mem_add
from repro.crowbar import CbLog, emulation_gaps, suggest_policy


def test_full_workflow(bare_kernel):
    kernel = bare_kernel
    kernel.start_main()

    # the application's data: three tagged stores
    accounts_tag = kernel.tag_new(name="accounts")
    audit_tag = kernel.tag_new(name="audit-log")
    secrets_tag = kernel.tag_new(name="secrets")
    accounts = kernel.alloc_buf(64, tag=accounts_tag,
                                init=b"alice=100;bob=50" + bytes(48))
    audit = kernel.alloc_buf(64, tag=audit_tag, init=bytes(64))
    secrets = kernel.alloc_buf(16, tag=secrets_tag, init=b"api-key-123")

    # the monolithic procedure we want to compartmentalise
    def post_transaction():
        ledger = kernel.mem_read(accounts.addr, 16)
        kernel.mem_write(audit.addr, b"posted:" + ledger[:8])
        return ledger

    # -- step 1+2: trace a run, query the permissions ---------------------
    with CbLog(kernel, label="innocuous") as log:
        post_transaction()
    grants, untaggable = suggest_policy(log.trace, "post_transaction")
    assert grants == {accounts_tag.id: "r", audit_tag.id: "rw"}
    assert untaggable == []

    # -- step 3: apply exactly those grants --------------------------------
    def grants_to_sc(grant_map):
        sc = SecurityContext()
        for tag_id, mode in grant_map.items():
            sc_mem_add(sc, tag_id,
                       PROT_RW if mode == "rw" else PROT_READ)
        return sc

    worker = kernel.sthread_create(
        grants_to_sc(grants), lambda a: post_transaction(),
        spawn="inline")
    assert kernel.sthread_join(worker) is not None
    assert not worker.faulted
    # and the secrets stayed out of reach by construction
    probe = kernel.sthread_create(
        grants_to_sc(grants),
        lambda a: kernel.mem_read(secrets.addr, 11), spawn="inline")
    assert probe.faulted

    # -- step 4: refactoring adds a new dependency — crash ----------------
    def post_transaction_v2():
        ledger = post_transaction()
        kernel.mem_read(secrets.addr, 11)   # new: signs with the key
        return ledger

    crashed = kernel.sthread_create(
        grants_to_sc(grants), lambda a: post_transaction_v2(),
        spawn="inline")
    assert crashed.faulted

    # -- step 5: emulation + cb-log reveal the gap -------------------------
    with CbLog(kernel, label="emulated") as log2:
        emulated = emulated_sthread_create(
            kernel, grants_to_sc(grants),
            lambda a: post_transaction_v2())
        kernel.sthread_join(emulated)
    assert not emulated.faulted   # emulation keeps it alive
    gaps = emulation_gaps(log2.trace)
    gap_tags = {item.tag_id for item in gaps}
    assert secrets_tag.id in gap_tags

    # extend the policy with the discovered grant: green again
    grants[secrets_tag.id] = "r"
    fixed = kernel.sthread_create(
        grants_to_sc(grants), lambda a: post_transaction_v2(),
        spawn="inline")
    kernel.sthread_join(fixed)
    assert not fixed.faulted


def test_query3_feeds_query2(bare_kernel):
    """§3.4: find where sensitive data flows, then who touches it."""
    from repro.crowbar import procedures_using, writes_of_procedure
    kernel = bare_kernel
    kernel.start_main()
    keys_tag = kernel.tag_new(name="keymat")
    out = kernel.alloc_buf(32, tag=keys_tag)

    def derive_key():
        kernel.mem_write(out.addr, b"derived-key-bytes")

    def use_key():
        return kernel.mem_read(out.addr, 17)

    def main_flow():
        derive_key()
        use_key()

    with CbLog(kernel) as log:
        main_flow()
    # query 3: where does derive_key write?
    written = writes_of_procedure(log.trace, "derive_key")
    assert written
    # query 2: who uses those items? -> the callgate candidate set
    users = procedures_using(log.trace, list(written),
                             innermost_only=True)
    assert users == {"derive_key", "use_key"}
