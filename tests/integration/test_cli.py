"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (["fig7"], ["fig8"], ["fig9", "--scale", "quick"],
                     ["table2-apache", "-n", "3"], ["table2-ssh"],
                     ["metrics"], ["trace", "mcf"],
                     ["lint", "--strict", "--no-trace"],
                     ["lint", "--app", "pop3"],
                     ["attack", "mitm"],
                     ["chaos", "--app", "pop3", "--flight-dump"],
                     ["observe", "--app", "httpd", "-n", "2",
                      "--export", "t.json", "--tlb-events"],
                     ["observe", "--validate", "t.json"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)


class TestCommands:
    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "pthread" in out and "sthread" in out
        assert "Figure 7" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "tag_new (reused)" in out

    def test_metrics(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "httpd" in out and "sshd" in out

    def test_trace(self, capsys):
        assert main(["trace", "mcf"]) == 0
        out = capsys.readouterr().out
        assert "traced mcf" in out
        assert "alloc_words" in out

    def test_trace_unknown_workload(self, capsys):
        assert main(["trace", "nope"]) == 2

    def test_trace_with_procedure(self, capsys):
        assert main(["trace", "bzip2", "--procedure", "bzip2"]) == 0

    def test_lint_one_app(self, capsys):
        assert main(["lint", "--app", "pop3", "--no-trace",
                     "--strict"]) == 0
        out = capsys.readouterr().out
        assert "pop3.partitioned/handler" in out
        assert "compartments analyzed: 0 errors, 0 warnings" in out

    def test_lint_unknown_app(self, capsys):
        assert main(["lint", "--app", "nope"]) == 2

    @pytest.mark.slow
    def test_lint_all_with_traces(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "25 compartments analyzed: 0 errors, 0 warnings" in out

    def test_attack_unknown_scenario(self, capsys):
        assert main(["attack", "nothing"]) == 2

    @pytest.mark.slow
    def test_attack_mitm(self, capsys):
        assert main(["attack", "mitm"]) == 0
        out = capsys.readouterr().out
        assert "STOLEN" in out and "safe" in out

    @pytest.mark.slow
    def test_table2_ssh(self, capsys):
        assert main(["table2-ssh"]) == 0
        out = capsys.readouterr().out
        assert "vanilla" in out and "wedge" in out
