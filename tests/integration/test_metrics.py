"""Tests for the partitioning-metrics module."""

from repro.metrics import (app_total_loc, count_lines, full_report,
                           partition_report)


class TestCountLines:
    def test_counts_a_function(self):
        def three_lines():
            x = 1
            return x

        assert count_lines(three_lines) == 3

    def test_counts_a_module(self):
        import repro.apps.sshd.pam as pam
        assert count_lines(pam) > 20


class TestReports:
    def test_both_apps_reported(self):
        report = full_report()
        assert set(report) == {"httpd", "sshd"}

    def test_fraction_arithmetic(self):
        for app in ("httpd", "sshd"):
            numbers = partition_report(app)
            total = numbers["callgate_loc"] + numbers["sthread_loc"]
            assert abs(numbers["privileged_fraction"] -
                       numbers["callgate_loc"] / total) < 1e-9
            assert 0 < numbers["changed_fraction"] < 1
            assert numbers["total_loc"] > numbers["changed_loc"]

    def test_unknown_app(self):
        import pytest
        with pytest.raises(ValueError):
            partition_report("nginx")
        with pytest.raises(ValueError):
            app_total_loc("nginx")

    def test_gate_bodies_are_counted_as_callgate_code(self):
        """The five httpd gates and four sshd gates are in the
        privileged set — the enumerable audit surface."""
        from repro.metrics.partition import httpd_units, sshd_units
        httpd_gates, _, _ = httpd_units()
        names = {getattr(u, "__name__", "") for u in httpd_gates}
        assert {"setup_session_key_gate", "receive_finished_gate",
                "send_finished_gate", "ssl_read_gate",
                "ssl_write_gate"} <= names
        sshd_gates, _, _ = sshd_units()
        names = {getattr(u, "__name__", "") for u in sshd_gates}
        assert {"dsa_sign_gate", "password_gate", "dsa_auth_gate",
                "skey_gate"} <= names
