"""Concurrent connection handling: overlapping clients, isolated workers."""

import threading
import time

import pytest

from repro.apps.httpd import MitmPartitionHttpd, SimplePartitionHttpd
from repro.apps.httpd.content import build_request, response_body
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient


class TestConcurrentHttpd:
    def test_slow_client_does_not_block_others(self):
        """Client A opens a connection and stalls mid-handshake; client
        B must still be served — the paper's one-worker-per-connection
        model, not a serial accept loop."""
        net = Network()
        server = SimplePartitionHttpd(net, "conc:443",
                                      concurrent=True).start()
        try:
            stalled = net.connect("conc:443")   # says nothing at all
            fast = TlsClient(DetRNG("fast"),
                             expected_server_key=server.public_key)
            conn = fast.connect(net, "conc:443")
            response = conn.request(build_request("/"))
            assert response.startswith(b"HTTP/1.0 200")
            stalled.close()
        finally:
            server.stop()

    def test_parallel_clients_all_served(self):
        net = Network()
        server = MitmPartitionHttpd(net, "conc2:443",
                                    concurrent=True).start()
        results = {}
        errors = []

        def one_client(index):
            try:
                client = TlsClient(
                    DetRNG(f"par{index}"),
                    expected_server_key=server.public_key)
                conn = client.connect(net, "conc2:443")
                response = conn.request(build_request("/about"))
                results[index] = response_body(response)
            except Exception as exc:   # noqa: BLE001
                errors.append((index, exc))

        try:
            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(20)
            assert errors == []
            assert len(results) == 4
            assert all(b"Wedge" in body for body in results.values())
        finally:
            server.stop()

    def test_concurrent_workers_remain_isolated(self):
        """Two live workers at once: each still cannot read the other's
        session state (isolation is per-compartment, not per-time)."""
        net = Network()
        server = MitmPartitionHttpd(net, "conc3:443",
                                    concurrent=True).start()
        try:
            barrier = threading.Barrier(2, timeout=20)

            def one_client(index):
                client = TlsClient(
                    DetRNG(f"iso{index}"),
                    expected_server_key=server.public_key)
                conn = client.connect(net, "conc3:443")
                barrier.wait()      # both sessions established at once
                conn.request(build_request("/"))

            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(20)
            time.sleep(0.2)
            assert server.errors == []
            # the two connections got distinct session tags
            names = {st.name for st in server.handshake_sthreads}
            assert len(names) == 2
        finally:
            server.stop()
