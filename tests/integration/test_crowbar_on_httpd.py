"""Crowbar applied to the real application, as the paper did.

Paper §5.1: "we relied heavily on Crowbar during our partitioning of
Apache/OpenSSL.  For example, enforcing a boundary between [the] worker
and master sthreads required identifying 222 heap objects and 389
globals.  Missing even one of these results in a protection violation
and crash."  These tests run cb-log over the *monolithic* httpd serving
a live HTTPS request and do that identification on this code base.
"""

import threading

from repro.apps.httpd import MonolithicHttpd
from repro.apps.httpd.content import build_request
from repro.crowbar import (CbLog, memory_for_procedure,
                           procedures_using, suggest_policy)
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient


def traced_request(server):
    """Serve one request with cb-log attached to the server kernel."""
    with CbLog(server.kernel, label="one-request") as log:
        client = TlsClient(DetRNG("tracer"),
                           expected_server_key=server.public_key)
        conn = client.connect(server.network, server.addr)
        conn.request(build_request("/"))
    return log.trace


class TestCrowbarOnHttpd:
    def test_inventory_of_session_handling_memory(self):
        """The paper's object-counting exercise on this httpd: how many
        distinct heap objects does one request's handling touch?"""
        net = Network()
        server = MonolithicHttpd(net, "cb-httpd:443").start()
        try:
            trace = traced_request(server)
            assert len(trace) > 20
            heap_items = {record.item for record in trace.accesses
                          if record.item.category == "heap"}
            # the request handling touches multiple distinct objects
            # scattered through the heap — the burden the paper
            # describes (its Apache: 222 heap objects, 389 globals)
            assert len(heap_items) >= 2
            # and the identification is by allocation site, which is
            # what lets a programmer convert mallocs to smallocs
            sites = {item.name for item in heap_items}
            assert any("monolithic" in site or "pre-trace" in site
                       for site in sites)
        finally:
            server.stop()

    def test_query_finds_the_key_users(self):
        """Query 2 over a live run: which procedures touch the private
        key buffer — the callgate candidate set for the partitioning."""
        net = Network()
        server = MonolithicHttpd(net, "cb-httpd2:443").start()
        try:
            trace = traced_request(server)
            key_items = set()
            for record in trace.accesses:
                segment, _ = server.kernel.space.find(
                    server.key_buf.addr)
                if record.item.segment_name == segment.name and \
                        record.item.category == "heap":
                    key_items.add(record.item)
            # the key bytes were written at startup (pre-trace) and the
            # monolithic handler reads them during the handshake
            key_items = {record.item for record in trace.accesses
                         if "pre-trace" in record.item.name}
            users = procedures_using(trace, key_items,
                                     innermost_only=True)
            assert users    # somebody touched startup-allocated state
        finally:
            server.stop()

    def test_derived_policy_matches_tagged_reality(self):
        """suggest_policy on the monolithic trace shows the problem the
        paper's aids solve: the interesting objects live in *untagged*
        private memory, so no grant can name them until the programmer
        converts the allocations (smalloc_on / BOUNDARY_VAR)."""
        net = Network()
        server = MonolithicHttpd(net, "cb-httpd3:443").start()
        try:
            trace = traced_request(server)
            grants, untaggable = suggest_policy(trace,
                                                "handle_connection")
            # monolithic httpd has no tags at all: everything the
            # handler touches is unnameable by a policy
            assert grants == {}
            assert untaggable
        finally:
            server.stop()

    def test_partitioned_server_traces_show_tagged_grants(self):
        """The same analysis on the Figures-3-5 server: the session
        state is tagged, so policies can name it."""
        from repro.apps.httpd import MitmPartitionHttpd
        net = Network()
        server = MitmPartitionHttpd(net, "cb-httpd4:443").start()
        try:
            trace = traced_request(server)
            tagged = {record.item.tag_id for record in trace.accesses
                      if record.item.tag_id is not None}
            assert len(tagged) >= 2   # key tag + per-session tags
        finally:
            server.stop()
