"""Workload kernels: functional determinism and instrumentation shape."""

import pytest

from repro.workloads import SPEC_KERNELS, run_spec, run_workload
from repro.workloads.memlib import Xorshift, make_kernel


class TestMemlib:
    def test_xorshift_deterministic(self):
        a = Xorshift(42)
        b = Xorshift(42)
        assert [a.next() for _ in range(10)] == \
            [b.next() for _ in range(10)]

    def test_xorshift_below(self):
        rng = Xorshift(7)
        assert all(0 <= rng.below(13) < 13 for _ in range(100))


from repro.workloads import ALL_KERNELS


class TestKernelsFunctional:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_deterministic_checksum(self, name):
        _, c1, _ = run_spec(name, "native", "quick")
        _, c2, _ = run_spec(name, "native", "quick")
        assert c1 == c2

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_instrumentation_preserves_semantics(self, name):
        """The same answer under native, Pin, and Crowbar."""
        checks = {mode: run_spec(name, mode, "quick")[1]
                  for mode in ("native", "pin", "crowbar")}
        assert len(set(checks.values())) == 1

    def test_extras_off_the_figure(self):
        """perlbench and gcc are runnable but not plotted — matching
        the paper's 'we omit three of these ... for brevity'."""
        from repro.workloads import EXTRA_KERNELS, FIGURE9_ORDER
        assert set(EXTRA_KERNELS) == {"perlbench", "gcc"}
        assert not set(EXTRA_KERNELS) & set(FIGURE9_ORDER)

    def test_unknown_scale(self):
        kernel = make_kernel("t")
        with pytest.raises(ValueError):
            SPEC_KERNELS["mcf"](kernel, "galactic")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            run_spec("mcf", "turbo", "quick")


class TestInstrumentationShape:
    def test_crowbar_slower_than_native(self):
        native, _, _ = run_spec("bzip2", "native", "quick")
        crowbar, _, _ = run_spec("bzip2", "crowbar", "quick")
        assert crowbar > 2 * native

    def test_pin_between_native_and_crowbar(self):
        native, _, _ = run_spec("hmmer", "native", "quick")
        pin, _, events = run_spec("hmmer", "pin", "quick")
        crowbar, _, _ = run_spec("hmmer", "crowbar", "quick")
        assert native < pin < crowbar
        assert events > 0

    def test_crowbar_records_events(self):
        _, _, events = run_spec("mcf", "crowbar", "quick")
        assert events > 100


@pytest.mark.slow
class TestAppWorkloads:
    def test_ssh_login_workload(self):
        elapsed, checksum, _ = run_workload("ssh", "native", "quick")
        assert checksum > 0

    def test_apache_request_workload(self):
        elapsed, checksum, _ = run_workload("apache", "native", "quick")
        assert checksum > 0

    def test_apps_have_lower_ratio_than_spec(self):
        """Figure 9's key contrast: servers suffer least under cb-log."""
        ssh_native, _, _ = run_workload("ssh", "native", "quick")
        ssh_crowbar, _, _ = run_workload("ssh", "crowbar", "quick")
        spec_native, _, _ = run_spec("h264ref", "native", "quick")
        spec_crowbar, _, _ = run_spec("h264ref", "crowbar", "quick")
        ssh_ratio = ssh_crowbar / ssh_native
        spec_ratio = spec_crowbar / spec_native
        assert ssh_ratio < spec_ratio
