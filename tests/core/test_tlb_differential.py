"""Differential harness: the TLB fast path may change cycles, never
behaviour.

Every scenario here runs twice — ``tlb=True`` and ``tlb=False`` — under
the same deterministic seeds, and asserts the two runs are observably
identical: byte-identical application stores, identical client-visible
responses, and identical :class:`~repro.core.errors.MemoryViolation`
sites.  The chaos campaigns additionally pin the full injection trace
(sites, hit counts, session/restart totals) so the fast path provably
does not perturb the fault schedule either.
"""

import pytest

from repro.core.errors import MemoryViolation
from repro.core.kernel import Kernel
from repro.core.policy import SecurityContext
from repro.faults.chaos import (CHAOS_APP_NAMES, CHAOS_TARGETS,
                                default_policy, run_chaos)


def _make_server(app, tlb):
    """Build an app server with Kernel.DEFAULT_TLB forced to *tlb*.

    The shipped apps construct their kernels internally, so the class
    default is the only ablation knob that reaches them.
    """
    saved = Kernel.DEFAULT_TLB
    Kernel.DEFAULT_TLB = tlb
    try:
        return CHAOS_TARGETS[app].make(default_policy())
    finally:
        Kernel.DEFAULT_TLB = saved


def _run_app(app, tlb, sessions=3):
    """Serve *sessions* deterministic clean sessions; return observables."""
    target = CHAOS_TARGETS[app]
    server = _make_server(app, tlb)
    server.start()
    try:
        responses = [target.session(server, i, strict=True)
                     for i in range(sessions)]
        store = target.snapshot(server)
        stats = server.kernel.tlb_stats()
    finally:
        server.stop()
    return responses, store, stats


@pytest.mark.parametrize("app", CHAOS_APP_NAMES)
def test_app_identical_with_and_without_tlb(app):
    responses_on, store_on, stats_on = _run_app(app, True)
    responses_off, store_off, stats_off = _run_app(app, False)
    # identical client-visible responses, byte-identical stores
    assert responses_on == responses_off
    assert store_on == store_off
    # the comparison was not vacuous: the TLB run really used the TLB
    assert stats_on["enabled"] and stats_on["hits"] > 0
    # and the ablated run really walked every access
    assert not stats_off["enabled"]
    assert stats_off["hits"] == 0 and stats_off["entries"] == 0


def _violation_sites(tlb):
    """Provoke read and write violations after warming the TLB."""
    kernel = Kernel(name="diff", tlb=tlb)
    kernel.start_main()
    secret = kernel.alloc_buf(16, init=b"top-secret-bytes")
    seen = {}

    def body(arg):
        own = kernel.malloc(64)
        # warm this sthread's TLB with legitimate traffic first, so a
        # buggy fast path would have cached state to get wrong
        kernel.mem_write(own, b"x" * 64)
        seen["own"] = kernel.mem_read(own, 64)
        try:
            kernel.mem_read(secret.addr, 4)
        except MemoryViolation as exc:
            seen["read"] = (exc.addr, exc.op, str(exc))
        try:
            kernel.mem_write(secret.addr, b"!!")
        except MemoryViolation as exc:
            seen["write"] = (exc.addr, exc.op, str(exc))
        return b"done"

    st = kernel.sthread_create(SecurityContext(), body, name="probe",
                               spawn="inline")
    assert kernel.sthread_join(st) == b"done"
    return seen


def test_violation_sites_identical():
    """Same addresses, ops and messages with the TLB on and off."""
    assert _violation_sites(True) == _violation_sites(False)


def _emulated_violations(tlb):
    """Emulation mode records (instead of raising) identically."""
    kernel = Kernel(name="emu", tlb=tlb)
    kernel.start_main()
    secret = kernel.alloc_buf(16, init=b"grant-all probes")

    def body(arg):
        kernel.mem_read(secret.addr, 8)
        kernel.mem_write(secret.addr + 4, b"??")
        return kernel.mem_read(secret.addr, 8)

    st = kernel.sthread_create(SecurityContext(), body, name="emu",
                               spawn="inline", emulate=True)
    result = kernel.sthread_join(st)
    return result, [(v.addr, v.op, str(v)) for v in st.table.violations]


def test_emulation_mode_identical():
    assert _emulated_violations(True) == _emulated_violations(False)


def _campaign_fingerprint(report):
    return {
        "passed": report.passed,
        "injected": report.injected,
        "sessions": report.sessions,
        "failed": report.failed_sessions,
        "degraded": report.degraded_sessions,
        "restarts": report.restarts,
        "by_site": dict(report.by_site),
        "violations": report.violations,
        "baseline_obs": report.baseline_obs,
        "probe_obs": report.probe_obs,
        "store": report.final_snapshot,
    }


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chaos_campaign_identical_with_and_without_tlb(seed):
    on = run_chaos("pop3", seed=seed, faults=10, tlb=True)
    off = run_chaos("pop3", seed=seed, faults=10, tlb=False)
    assert on.passed, on.format()
    assert _campaign_fingerprint(on) == _campaign_fingerprint(off)


def test_chaos_httpd_campaign_identical():
    on = run_chaos("httpd-simple", seed=1, faults=10, tlb=True)
    off = run_chaos("httpd-simple", seed=1, faults=10, tlb=False)
    assert on.passed, on.format()
    assert _campaign_fingerprint(on) == _campaign_fingerprint(off)
