"""Unit tests for callgates and recycled callgates (paper §3.3, §4.1)."""

import pytest

from repro.core.errors import (CallgateError, MemoryViolation,
                               PolicyError)
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import (FD_RW, SecurityContext, sc_cgate_add,
                               sc_fd_add, sc_mem_add)


@pytest.fixture
def secret(kernel):
    """A tagged secret plus a gate security context that can read it."""
    tag = kernel.tag_new(name="secret")
    buf = kernel.alloc_buf(16, tag=tag, init=b"the-secret-value")
    gate_sc = sc_mem_add(SecurityContext(), tag, PROT_READ)
    return tag, buf, gate_sc


def spawn_with_gate(kernel, entry, gate_sc, trusted=None, body=None,
                    recycled=False, extra_sc=None):
    """Create a child sthread holding one gate; run *body* inside it."""
    sc = extra_sc or SecurityContext()
    sc_cgate_add(sc, entry, gate_sc, trusted, recycled=recycled)

    def default_body(arg):
        gate_id = next(iter(kernel.current().gates))
        return kernel.cgate(gate_id)

    child = kernel.sthread_create(sc, body or default_body,
                                  spawn="inline")
    return child


class TestBasics:
    def test_gate_reads_what_caller_cannot(self, kernel, secret):
        tag, buf, gate_sc = secret

        def entry(trusted, arg):
            return kernel.mem_read(trusted, 16)

        child = spawn_with_gate(kernel, entry, gate_sc,
                                trusted=buf.addr)
        assert kernel.sthread_join(child) == b"the-secret-value"

    def test_caller_still_cannot_read_directly(self, kernel, secret):
        tag, buf, gate_sc = secret

        def entry(trusted, arg):
            return "unused"

        def body(arg):
            return kernel.mem_read(buf.addr, 16)

        child = spawn_with_gate(kernel, entry, gate_sc, body=body)
        assert child.faulted

    def test_invocation_requires_grant(self, kernel, secret):
        tag, buf, gate_sc = secret

        def entry(trusted, arg):
            return 1

        # create the gate bound to child A...
        record_holder = {}

        def body_a(arg):
            record_holder["gate"] = next(iter(kernel.current().gates))

        child_a = spawn_with_gate(kernel, entry, gate_sc, body=body_a)
        kernel.sthread_join(child_a)

        # ...child B (no grant) may not invoke it
        def body_b(arg):
            return kernel.cgate(record_holder["gate"])

        child_b = kernel.sthread_create(SecurityContext(), body_b,
                                        spawn="inline")
        assert isinstance(child_b.error, CallgateError)

    def test_unknown_gate(self, kernel):
        with pytest.raises(CallgateError):
            kernel.cgate(40404)

    def test_gate_receives_caller_argument(self, kernel):
        def entry(trusted, arg):
            return arg["x"] + 1

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            return kernel.cgate(gate_id, None, {"x": 41})

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body)
        assert kernel.sthread_join(child) == 42

    def test_gate_perms_must_subset_creator(self, kernel):
        """A callgate's permissions ⊆ its creator's (paper §3.3)."""
        tag = kernel.tag_new()
        gate_sc = sc_mem_add(SecurityContext(), tag, PROT_RW)

        def body(arg):
            # this privilege-less sthread tries to mint a powerful gate
            evil = SecurityContext()
            sc_cgate_add(evil, lambda t, a: None, gate_sc)
            kernel.sthread_create(evil, lambda a: None, spawn="inline")

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert isinstance(child.error, PolicyError)


class TestTrustedArgument:
    def test_trusted_arg_is_kernel_side(self, kernel):
        """The caller cannot observe or swap the trusted argument."""
        witness = {"value": "creator-chosen"}

        def entry(trusted, arg):
            return trusted["value"]

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            # the record is in kernel space; all the caller can do is
            # invoke; the trusted value round-trips unmodified
            return kernel.cgate(gate_id, None, {"value": "evil"})

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                trusted=witness, body=body)
        assert kernel.sthread_join(child) == "creator-chosen"


class TestCallerPerms:
    def test_arg_tag_delegation(self, kernel):
        """The normal pattern: caller smallocs the arg, grants the gate
        read access to the arg's tag for the call."""
        arg_tag = kernel.tag_new(name="args")

        def entry(trusted, arg):
            return kernel.mem_read(arg["addr"], arg["len"])

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            buf = kernel.alloc_buf(8, tag=arg_tag, init=b"request!")
            perms = sc_mem_add(SecurityContext(), arg_tag, PROT_READ)
            return kernel.cgate(gate_id, perms,
                                {"addr": buf.addr, "len": 8})

        sc = sc_mem_add(SecurityContext(), arg_tag, PROT_RW)
        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, extra_sc=sc)
        assert kernel.sthread_join(child) == b"request!"

    def test_caller_cannot_delegate_unheld_perms(self, kernel, secret):
        tag, buf, gate_sc = secret

        def entry(trusted, arg):
            return kernel.mem_read(arg, 16)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            # caller holds nothing on the secret tag, tries to grant it
            perms = sc_mem_add(SecurityContext(), tag, PROT_READ)
            return kernel.cgate(gate_id, perms, buf.addr)

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body)
        assert isinstance(child.error, PolicyError)

    def test_gate_without_grant_cannot_read_arg(self, kernel):
        arg_tag = kernel.tag_new()

        def entry(trusted, arg):
            return kernel.mem_read(arg, 8)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            buf = kernel.alloc_buf(8, tag=arg_tag, init=b"hidden!!")
            # deliberately NOT passing perms: the gate cannot read it
            return kernel.cgate(gate_id, None, buf.addr)

        sc = sc_mem_add(SecurityContext(), arg_tag, PROT_RW)
        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, extra_sc=sc)
        assert isinstance(child.error, CallgateError)


class TestIdentityInheritance:
    def test_gate_inherits_creator_uid_and_root(self, kernel):
        """Paper §3.3/§5.2: creator's identity, not the caller's."""
        kernel.vfs.write_file("/etc/shadow", b"root-only", owner=0,
                              mode=0o600)
        kernel.vfs.mkdir("/var/empty")

        def entry(trusted, arg):
            fd = kernel.open("/etc/shadow", "r")
            data = kernel.read(fd, 64)
            kernel.close(fd)
            return data

        # worker runs as uid 1000 in an empty chroot
        sc = SecurityContext(uid=1000, root="/var/empty")

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            return kernel.cgate(gate_id)

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, extra_sc=sc)
        assert kernel.sthread_join(child) == b"root-only"

    def test_gate_can_promote_caller(self, kernel):
        """The authentication idiom: gate changes the caller's uid."""
        def entry(trusted, arg):
            kernel.promote(kernel.caller(), uid=1000, root="/")
            return True

        sc = SecurityContext(uid=22)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            before = kernel.getuid()
            kernel.cgate(gate_id)
            return (before, kernel.getuid())

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, extra_sc=sc)
        assert kernel.sthread_join(child) == (22, 1000)


class TestFaults:
    def test_gate_fault_propagates_as_callgate_error(self, kernel):
        secret_tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=secret_tag)

        def entry(trusted, arg):
            # the gate itself violates protections (no grant on tag)
            return kernel.mem_read(buf.addr, 8)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            try:
                kernel.cgate(gate_id)
            except CallgateError:
                return "gate-died"

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body)
        assert kernel.sthread_join(child) == "gate-died"

    def test_caller_survives_gate_fault(self, kernel):
        def entry(trusted, arg):
            raise MemoryViolation("synthetic fault")

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            try:
                kernel.cgate(gate_id)
            except CallgateError:
                pass
            return "caller-alive"

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body)
        assert kernel.sthread_join(child) == "caller-alive"


class TestRecycled:
    def test_recycled_gate_reuses_compartment(self, kernel):
        seen = []

        def entry(trusted, arg):
            seen.append(id(kernel.current()))
            return len(seen)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            kernel.cgate(gate_id)
            kernel.cgate(gate_id)

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, recycled=True)
        kernel.sthread_join(child)
        assert len(set(seen)) == 1    # same compartment both times

    def test_fresh_gate_gets_new_compartment_each_call(self, kernel):
        seen = []

        def entry(trusted, arg):
            seen.append(id(kernel.current()))

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            kernel.cgate(gate_id)
            kernel.cgate(gate_id)

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body)
        kernel.sthread_join(child)
        assert len(set(seen)) == 2

    def test_recycled_residue_across_invocations(self, kernel):
        """The isolation trade-off the paper warns about: heap residue
        from one caller's invocation is visible to the next."""
        def entry(trusted, arg):
            if arg["op"] == "write":
                buf = kernel.alloc_buf(32, init=arg["data"])
                return buf.addr
            return kernel.mem_read(arg["addr"], 16)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            addr = kernel.cgate(gate_id, None,
                                {"op": "write",
                                 "data": b"alice's-password"})
            # a later invocation (imagine: another principal's request)
            # can read the residue
            return kernel.cgate(gate_id, None,
                                {"op": "read", "addr": addr})

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, recycled=True)
        assert kernel.sthread_join(child) == b"alice's-password"

    def test_fresh_gates_have_no_residue(self, kernel):
        def entry(trusted, arg):
            if arg["op"] == "write":
                buf = kernel.alloc_buf(32, init=arg["data"])
                return buf.addr
            return kernel.mem_read(arg["addr"], 16)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            addr = kernel.cgate(gate_id, None,
                                {"op": "write", "data": b"secret"})
            try:
                kernel.cgate(gate_id, None, {"op": "read", "addr": addr})
            except CallgateError:
                return "no-residue"

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body)
        assert kernel.sthread_join(child) == "no-residue"

    def test_recycled_cheaper_than_fresh(self, kernel):
        def entry(trusted, arg):
            return None

        costs = {}

        def body_factory(label):
            def body(arg):
                gate_id = next(iter(kernel.current().gates))
                kernel.cgate(gate_id)     # warm (recycled builds here)
                cp = kernel.costs.checkpoint()
                kernel.cgate(gate_id)
                costs[label] = kernel.costs.delta(cp)
            return body

        fresh = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body_factory("fresh"))
        kernel.sthread_join(fresh)
        recycled = spawn_with_gate(kernel, entry, SecurityContext(),
                                   body=body_factory("recycled"),
                                   recycled=True)
        kernel.sthread_join(recycled)
        # Figure 7: recycled gates are ~8x cheaper than fresh callgates
        assert costs["recycled"] < costs["fresh"] / 4

    def test_faulted_recycled_gate_not_reused(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag)
        calls = []

        def entry(trusted, arg):
            calls.append(id(kernel.current()))
            if arg == "fault":
                kernel.mem_read(buf.addr, 8)  # violation
            return "ok"

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            try:
                kernel.cgate(gate_id, None, "fault")
            except CallgateError:
                pass
            kernel.cgate(gate_id, None, "fine")

        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, recycled=True)
        kernel.sthread_join(child)
        assert len(set(calls)) == 2   # the dead compartment was replaced

    def test_recycled_extra_perms_removed_after_call(self, kernel):
        arg_tag = kernel.tag_new()

        def entry(trusted, arg):
            if arg["op"] == "granted":
                return kernel.mem_read(arg["addr"], 4)
            return kernel.mem_read(arg["addr"], 4)  # no grant this time

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            buf = kernel.alloc_buf(4, tag=arg_tag, init=b"data")
            perms = sc_mem_add(SecurityContext(), arg_tag, PROT_READ)
            first = kernel.cgate(gate_id, perms,
                                 {"op": "granted", "addr": buf.addr})
            try:
                kernel.cgate(gate_id, None,
                             {"op": "sneaky", "addr": buf.addr})
            except CallgateError:
                return (first, "revoked")

        sc = sc_mem_add(SecurityContext(), arg_tag, PROT_RW)
        child = spawn_with_gate(kernel, entry, SecurityContext(),
                                body=body, recycled=True, extra_sc=sc)
        assert kernel.sthread_join(child) == (b"data", "revoked")


class TestCreateGate:
    def test_create_then_delegate(self, kernel):
        """The paper's primary idiom via Kernel.create_gate."""
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag, init=b"guarded!")
        gate = kernel.create_gate(
            lambda trusted, arg: kernel.mem_read(trusted, 8),
            sc_mem_add(SecurityContext(), tag, PROT_READ), buf.addr)
        # the creator itself may invoke
        assert kernel.cgate(gate.id) == b"guarded!"
        # and can delegate to a child
        sc = SecurityContext()
        sc_cgate_add(sc, gate.id)
        child = kernel.sthread_create(
            sc, lambda a: kernel.cgate(gate.id), spawn="inline")
        assert kernel.sthread_join(child) == b"guarded!"

    def test_gate_sc_cannot_nest_specs(self, kernel):
        inner = SecurityContext()
        sc_cgate_add(inner, lambda t, a: None, SecurityContext())
        with pytest.raises(PolicyError):
            kernel.create_gate(lambda t, a: None, inner)
