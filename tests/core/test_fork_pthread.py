"""fork and pthread semantics — the baselines Wedge improves on."""

import pytest

from repro.core.policy import SecurityContext


class TestFork:
    def test_fork_child_inherits_private_heap(self, kernel):
        """The paper's core criticism: fork grants memory by default."""
        buf = kernel.alloc_buf(32, init=b"sensitive-parent-data")
        child = kernel.fork(lambda a: kernel.mem_read(buf.addr, 21),
                            spawn="inline")
        assert kernel.sthread_join(child) == b"sensitive-parent-data"

    def test_fork_child_inherits_tags(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag, init=b"tagdata!")
        child = kernel.fork(lambda a: kernel.mem_read(buf.addr, 8),
                            spawn="inline")
        assert kernel.sthread_join(child) == b"tagdata!"

    def test_fork_child_inherits_fds(self, kernel):
        listener = kernel.net.listen("f:1")
        fd = kernel.connect("f:1")
        child = kernel.fork(lambda a: kernel.send(fd, b"from-child"),
                            spawn="inline")
        kernel.sthread_join(child)
        server = listener.accept(timeout=2)
        assert server.recv(10, timeout=2) == b"from-child"

    def test_fork_heap_writes_diverge(self, kernel):
        """COW: the child's writes stay in the child."""
        buf = kernel.alloc_buf(16, init=b"original-bytes!!")

        def body(arg):
            kernel.mem_write(buf.addr, b"child-overwrote!")
            return kernel.mem_read(buf.addr, 16)

        child = kernel.fork(body, spawn="inline")
        assert kernel.sthread_join(child) == b"child-overwrote!"
        assert buf.read() == b"original-bytes!!"

    def test_parent_writes_after_fork_are_private_too(self, kernel):
        buf = kernel.alloc_buf(16, init=b"before-the-fork!")
        import threading
        gate = threading.Event()
        release = threading.Event()
        result = {}

        def body(arg):
            gate.set()
            release.wait(5)
            result["child_view"] = kernel.mem_read(buf.addr, 16)

        child = kernel.fork(body, spawn="thread")
        gate.wait(5)
        kernel.mem_write(buf.addr, b"parent-changed!!")
        release.set()
        kernel.sthread_join(child)
        assert result["child_view"] == b"before-the-fork!"

    def test_scrubbing_works_but_is_per_copy(self, kernel):
        """The brittle defense: the child can scrub its own copy."""
        buf = kernel.alloc_buf(16, init=b"host-key-materia")

        def body(arg):
            kernel.mem_write(buf.addr, bytes(16))   # scrub
            return kernel.mem_read(buf.addr, 16)

        child = kernel.fork(body, spawn="inline")
        assert kernel.sthread_join(child) == bytes(16)
        assert buf.read(16) == b"host-key-materia"  # parent unscrubbed


class TestPthread:
    def test_pthread_shares_heap_writes(self, kernel):
        buf = kernel.alloc_buf(16, init=b"original")

        def body(arg):
            kernel.mem_write(buf.addr, b"threaded")

        t = kernel.pthread_create(body, spawn="inline")
        kernel.sthread_join(t)
        assert buf.read(8) == b"threaded"

    def test_pthread_shares_fd_table(self, kernel):
        listener = kernel.net.listen("p:1")
        fd = kernel.connect("p:1")

        def body(arg):
            kernel.close(fd)

        t = kernel.pthread_create(body, spawn="inline")
        kernel.sthread_join(t)
        # the fd really is closed for the parent too
        from repro.core.errors import BadFileDescriptor
        with pytest.raises(BadFileDescriptor):
            kernel.send(fd, b"x")

    def test_pthread_gets_own_stack(self, kernel):
        def body(arg):
            return kernel.current().stack_segment.id

        parent_stack = kernel.current().stack_segment.id
        t = kernel.pthread_create(body, spawn="inline")
        assert kernel.sthread_join(t) != parent_stack

    def test_pthread_cheaper_than_sthread(self, kernel):
        cp = kernel.costs.checkpoint()
        t = kernel.pthread_create(lambda a: None, spawn="inline")
        kernel.sthread_join(t)
        pthread_cost = kernel.costs.delta(cp)
        cp = kernel.costs.checkpoint()
        s = kernel.sthread_create(SecurityContext(), lambda a: None,
                                  spawn="inline")
        kernel.sthread_join(s)
        sthread_cost = kernel.costs.delta(cp)
        assert sthread_cost > 3 * pthread_cost
