"""Unit tests for the simulated memory subsystem."""

import pytest

from repro.core.costs import CostAccount
from repro.core.errors import BadAddress, MemoryViolation
from repro.core.memory import (PAGE_SIZE, PROT_COW, PROT_NONE, PROT_READ,
                               PROT_RW, AddressSpace, Frame, MemoryBus,
                               PageTable, page_count, prot_name)


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def bus(space):
    return MemoryBus(space, CostAccount())


def make_table(seg, prot, name="t"):
    table = PageTable(owner_name=name)
    table.map_segment(seg, prot)
    return table


class TestFrame:
    def test_new_frame_is_zeroed(self):
        assert Frame().data == bytearray(PAGE_SIZE)

    def test_copy_is_independent(self):
        frame = Frame()
        copy = frame.copy()
        copy.data[0] = 0xFF
        assert frame.data[0] == 0

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            Frame(b"short")


class TestSegment:
    def test_raw_roundtrip(self, space):
        seg = space.create_segment(100)
        seg.write_raw(10, b"hello")
        assert seg.read_raw(10, 5) == b"hello"

    def test_raw_crosses_pages(self, space):
        seg = space.create_segment(3 * PAGE_SIZE)
        data = bytes(range(256)) * 20
        seg.write_raw(PAGE_SIZE - 100, data)
        assert seg.read_raw(PAGE_SIZE - 100, len(data)) == data

    def test_raw_out_of_bounds(self, space):
        seg = space.create_segment(PAGE_SIZE)
        with pytest.raises(BadAddress):
            seg.read_raw(PAGE_SIZE - 2, 4)
        with pytest.raises(BadAddress):
            seg.write_raw(-1, b"x")

    def test_page_rounding(self, space):
        seg = space.create_segment(1)
        assert seg.npages == 1
        assert seg.limit - seg.base == PAGE_SIZE

    def test_page_count(self):
        assert page_count(1) == 1
        assert page_count(PAGE_SIZE) == 1
        assert page_count(PAGE_SIZE + 1) == 2


class TestAddressSpace:
    def test_find_resolves(self, space):
        seg = space.create_segment(100)
        found, offset = space.find(seg.base + 42)
        assert found is seg
        assert offset == 42

    def test_guard_gap_between_segments(self, space):
        a = space.create_segment(PAGE_SIZE)
        b = space.create_segment(PAGE_SIZE)
        assert b.base >= a.limit + PAGE_SIZE

    def test_guard_gap_unmapped(self, space):
        a = space.create_segment(PAGE_SIZE)
        space.create_segment(PAGE_SIZE)
        with pytest.raises(BadAddress):
            space.find(a.limit + 1)

    def test_destroy_unmaps(self, space):
        seg = space.create_segment(100)
        space.destroy_segment(seg)
        with pytest.raises(BadAddress):
            space.find(seg.base)

    def test_zero_size_rejected(self, space):
        with pytest.raises(ValueError):
            space.create_segment(0)


class TestPageTablePermissions:
    def test_read_requires_mapping(self, space, bus):
        seg = space.create_segment(100)
        table = PageTable(owner_name="w")
        with pytest.raises(MemoryViolation):
            bus.read(table, seg.base, 4)

    def test_read_requires_read_bit(self, space, bus):
        seg = space.create_segment(100)
        table = make_table(seg, PROT_NONE)
        with pytest.raises(MemoryViolation):
            bus.read(table, seg.base, 4)

    def test_write_requires_write_bit(self, space, bus):
        seg = space.create_segment(100)
        table = make_table(seg, PROT_READ)
        with pytest.raises(MemoryViolation):
            bus.write(table, seg.base, b"x")

    def test_rw_roundtrip(self, space, bus):
        seg = space.create_segment(100)
        table = make_table(seg, PROT_RW)
        bus.write(table, seg.base + 8, b"payload")
        assert bus.read(table, seg.base + 8, 7) == b"payload"

    def test_violation_carries_context(self, space, bus):
        seg = space.create_segment(100, name="secrets")
        table = make_table(seg, PROT_READ, name="worker")
        with pytest.raises(MemoryViolation) as err:
            bus.write(table, seg.base, b"x")
        assert err.value.addr == seg.base
        assert err.value.op == "write"
        assert err.value.sthread == "worker"
        assert "secrets" in str(err.value)

    def test_multi_page_write_read(self, space, bus):
        seg = space.create_segment(4 * PAGE_SIZE)
        table = make_table(seg, PROT_RW)
        blob = bytes(i % 251 for i in range(2 * PAGE_SIZE + 77))
        bus.write(table, seg.base + PAGE_SIZE - 3, blob)
        assert bus.read(table, seg.base + PAGE_SIZE - 3,
                        len(blob)) == blob


class TestCow:
    def test_cow_read_sees_original(self, space, bus):
        seg = space.create_segment(100)
        seg.write_raw(0, b"original")
        table = make_table(seg, PROT_READ | PROT_COW)
        assert bus.read(table, seg.base, 8) == b"original"

    def test_cow_write_diverges(self, space, bus):
        seg = space.create_segment(100)
        seg.write_raw(0, b"original")
        table = make_table(seg, PROT_READ | PROT_COW)
        bus.write(table, seg.base, b"mine!")
        # the private copy changed...
        assert bus.read(table, seg.base, 5) == b"mine!"
        # ...but the backing frames did not
        assert seg.read_raw(0, 8) == b"original"

    def test_two_cow_tables_are_independent(self, space, bus):
        seg = space.create_segment(100)
        t1 = make_table(seg, PROT_READ | PROT_COW, "a")
        t2 = make_table(seg, PROT_READ | PROT_COW, "b")
        bus.write(t1, seg.base, b"AAAA")
        bus.write(t2, seg.base, b"BBBB")
        assert bus.read(t1, seg.base, 4) == b"AAAA"
        assert bus.read(t2, seg.base, 4) == b"BBBB"

    def test_cow_copy_charged(self, space, bus):
        seg = space.create_segment(100)
        table = make_table(seg, PROT_READ | PROT_COW)
        before = bus.costs.counters.get("page_copy", 0)
        bus.write(table, seg.base, b"x")
        assert bus.costs.counters["page_copy"] == before + 1
        # second write to the same page copies nothing further
        bus.write(table, seg.base + 1, b"y")
        assert bus.costs.counters["page_copy"] == before + 1

    def test_mark_all_cow(self, space, bus):
        seg = space.create_segment(2 * PAGE_SIZE)
        table = make_table(seg, PROT_RW)
        marked = table.mark_all_cow()
        assert marked == 2
        seg.write_raw(0, b"live")
        assert bus.read(table, seg.base, 4) == b"live"
        bus.write(table, seg.base, b"priv")
        assert seg.read_raw(0, 4) == b"live"


class TestClone:
    def test_clone_copies_entries(self, space, bus):
        seg = space.create_segment(PAGE_SIZE)
        table = make_table(seg, PROT_RW)
        clone = table.clone(owner_name="child")
        assert len(clone) == len(table)
        # entries are copies: changing one side's protection is private
        for pte in clone.entries.values():
            pte.prot = PROT_READ
        bus.write(table, seg.base, b"parent ok")

    def test_clone_charges_pte_copies(self, space):
        costs = CostAccount()
        bus = MemoryBus(space, costs)
        seg = space.create_segment(8 * PAGE_SIZE)
        table = make_table(seg, PROT_RW)
        table.clone(costs=costs)
        assert costs.counters["pte_copy"] >= 8


class TestEmulation:
    def test_violations_recorded_not_raised(self, space, bus):
        seg = space.create_segment(100, name="hidden")
        seg.write_raw(0, b"datadata")
        table = PageTable(owner_name="emu")
        table.emulation = True
        data = bus.read(table, seg.base, 8)
        assert data == b"datadata"       # grant-all satisfied the read
        assert len(table.violations) == 1
        assert table.violations[0].op == "read"

    def test_emulated_write_lands_in_live_segment(self, space, bus):
        seg = space.create_segment(100)
        table = PageTable(owner_name="emu")
        table.emulation = True
        bus.write(table, seg.base, b"emuwrite")
        assert seg.read_raw(0, 8) == b"emuwrite"
        assert table.violations[0].op == "write"

    def test_wild_address_in_emulation_reads_zeros(self, space, bus):
        table = PageTable(owner_name="emu")
        table.emulation = True
        assert bus.read(table, 0xDEAD0000, 4) == b"\x00" * 4


def test_prot_names():
    assert prot_name(PROT_RW) == "rw"
    assert prot_name(PROT_READ) == "r"
    assert "cow" in prot_name(PROT_READ | PROT_COW)
