"""Verified bus mode: certificates, revocation, and the checked oracle.

The proof-carrying fast path (DESIGN.md §2, "Verified bus mode") must be
*pure accounting*: a certified compartment behaves byte-identically to
the checked path, it just pays ``verified_access``/``verified_syscall``
instead of translation and policy lookups.  These tests pin:

* certificate installation covers only what the live PTEs map;
* forged signatures and cross-incarnation reuse are rejected;
* every rights-narrowing funnels through ``PageTable._invalidate`` and
  revokes the certificate atomically (including mid-span, via bus
  hooks — the deterministic version of a concurrent shootdown);
* a seeded random workload produces identical bytes on a certified
  kernel and an uncertified oracle;
* a source scan confining ``.verified`` mutation to ``memory.py``'s
  documented sites, mirroring the TLB choke-point meta-test.
"""

import pathlib
import random
import re

import pytest

from repro.analysis.verify import CertificateTemplate, PolicyCertificate
from repro.core.errors import MemoryViolation, PolicyError, SyscallDenied
from repro.core.kernel import Kernel
from repro.core.memory import PAGE_SIZE, PROT_RW
from repro.core.policy import SecurityContext, sc_mem_add
from repro.faults import RestartPolicy
from repro.observe.events import ANALYSIS_CERTIFIED, ANALYSIS_REVOKED


def make_kernel(name, **kwargs):
    kernel = Kernel(name=name, **kwargs)
    kernel.start_main()
    return kernel


def certify_main(kernel, mem=(), syscalls=()):
    """Hand-build and install a signed certificate on main."""
    main = kernel.main
    cert = PolicyCertificate(main.name, id(main.table), dict(mem), {},
                             (), syscalls)
    cert.signature = kernel.sign_policy(cert.payload())
    return kernel.enter_verified(cert, main)


class TestCertificateLifecycle:
    def test_verified_reads_skip_translation(self):
        kernel = make_kernel("vm-basic")
        addr = kernel.malloc(256)
        kernel.mem_write(addr, b"payload!" * 8)
        certify_main(kernel)
        before = kernel.bus.verified_ops
        walks = kernel.bus.tlb_walks
        hits = kernel.bus.tlb_hits
        assert kernel.mem_read(addr, 8) == b"payload!"
        assert kernel.bus.verified_ops == before + 1
        assert kernel.bus.tlb_walks == walks    # no page-table walk
        assert kernel.bus.tlb_hits == hits      # not even a TLB lookup

    def test_verified_and_checked_bytes_identical(self):
        kernel = make_kernel("vm-bytes")
        addr = kernel.malloc(4 * PAGE_SIZE)
        blob = bytes(range(256)) * 16
        kernel.mem_write(addr, blob)
        checked = kernel.mem_read(addr, len(blob))
        certify_main(kernel)
        assert kernel.mem_read(addr, len(blob)) == checked
        kernel.mem_write(addr + 100, b"verified-write")
        vtable = kernel.main.table
        vtable.revoke_certificate(costs=kernel.costs)
        # the checked path sees exactly what the verified path wrote
        assert kernel.mem_read(addr + 100, 14) == b"verified-write"

    def test_forged_signature_rejected(self):
        kernel = make_kernel("vm-forge")
        main = kernel.main
        cert = PolicyCertificate(main.name, id(main.table), {}, {}, (),
                                 ())
        cert.signature = "0" * 64   # not signed by this kernel
        with pytest.raises(PolicyError, match="invalid signature"):
            kernel.enter_verified(cert, main)
        assert main.table.verified is None

    def test_foreign_kernel_signature_rejected(self):
        ours = make_kernel("vm-ours")
        theirs = make_kernel("vm-theirs")
        main = ours.main
        cert = PolicyCertificate(main.name, id(main.table), {}, {}, (),
                                 ())
        cert.signature = theirs.sign_policy(cert.payload())
        with pytest.raises(PolicyError, match="invalid signature"):
            ours.enter_verified(cert, main)

    def test_certificate_pinned_to_incarnation(self):
        kernel = make_kernel("vm-pin")
        main = kernel.main
        cert = PolicyCertificate(main.name, id(main.table) + 1, {}, {},
                                 (), ())
        cert.signature = kernel.sign_policy(cert.payload())
        with pytest.raises(PolicyError, match="never survive a restart"):
            kernel.enter_verified(cert, main)

    def test_syscall_fast_path_counts_and_elides(self):
        from repro.core.costs import WEIGHTS
        kernel = make_kernel("vm-sys")
        certify_main(kernel, syscalls=("pipe", "close"))
        ck = kernel.costs.checkpoint()
        rd, wr = kernel.pipe()
        assert kernel.verified_syscalls == 1
        delta = kernel.costs.delta(ck)
        # the trap cost the verified weight, not a full syscall + check
        assert WEIGHTS["verified_syscall"] <= delta < WEIGHTS["syscall"]
        # an allowed name outside the cert still takes the checked path
        kernel.close(rd)
        kernel.close(wr)
        assert kernel.verified_syscalls == 3
        kernel.setuid(0)   # "setuid" not in the allow-set
        assert kernel.verified_syscalls == 3
        assert kernel.main.table.verified is not None

    def test_certified_event_emitted(self):
        kernel = make_kernel("vm-event")
        seen = []

        class Sink:
            def accept(self, event):
                seen.append(event)

        kernel.observe.add_sink(Sink(), kinds={ANALYSIS_CERTIFIED,
                                               ANALYSIS_REVOKED})
        certify_main(kernel)
        assert [e.kind for e in seen] == [ANALYSIS_CERTIFIED]
        kernel.main.table.revoke_certificate(costs=kernel.costs)
        assert [e.kind for e in seen] == [ANALYSIS_CERTIFIED,
                                          ANALYSIS_REVOKED]


class TestRevocation:
    def test_tag_delete_revokes(self):
        kernel = make_kernel("vm-revoke")
        tag = kernel.tag_new(name="loot")
        addr = kernel.smalloc(64, tag)
        kernel.mem_write(addr, b"covered!")
        certify_main(kernel, mem={tag.id: "rw"})
        table = kernel.main.table
        assert (addr >> 12) in table.verified.rpages
        assert kernel.mem_read(addr, 8) == b"covered!"
        kernel.tag_delete(tag)
        assert table.verified is None
        assert table.cert_revocations == 1
        with pytest.raises(MemoryViolation):
            kernel.mem_read(addr, 8)

    def test_narrowing_remap_revokes(self):
        kernel = make_kernel("vm-narrow")
        tag = kernel.tag_new(name="narrowed")
        addr = kernel.smalloc(64, tag)
        certify_main(kernel, mem={tag.id: "rw"})
        table = kernel.main.table
        from repro.core.memory import PROT_READ
        table.map_segment(tag.segment, PROT_READ, costs=kernel.costs)
        assert table.verified is None
        with pytest.raises(MemoryViolation):
            kernel.mem_write(addr, b"x")
        assert isinstance(kernel.mem_read(addr, 1), bytes)

    def test_fork_cow_downgrade_revokes(self):
        kernel = make_kernel("vm-fork")
        addr = kernel.malloc(64)
        kernel.mem_write(addr, b"pre-fork")
        certify_main(kernel)
        child = kernel.fork(lambda a: kernel.mem_read(addr, 8),
                            spawn="inline")
        # mark_all_cow narrowed main's heap: certificate must be gone
        assert kernel.main.table.verified is None
        kernel.mem_write(addr, b"postfork")
        assert kernel.sthread_join(child) == b"pre-fork"

    def test_flush_tlb_revokes_even_when_tlb_is_empty(self):
        kernel = make_kernel("vm-flush", tlb=False)
        certify_main(kernel)
        table = kernel.main.table
        assert table.tlb == {}
        table.flush_tlb(costs=kernel.costs)
        assert table.verified is None
        assert table.cert_revocations == 1

    def test_fault_plan_hit_revokes(self):
        from repro.faults import FaultPlan
        kernel = make_kernel("vm-fault")
        addr = kernel.malloc(16)
        kernel.mem_write(addr, b"x")
        certify_main(kernel)
        plan = FaultPlan(seed=7, scope="all")
        plan.add("mem_read", "memfault", rate=1.0, limit=1)
        kernel.install_faults(plan)
        with pytest.raises(MemoryViolation):
            kernel.mem_read(addr, 1)
        # the injected fault falsified the proof's assumptions: checked
        # path from here on
        assert kernel.main.table.verified is None
        assert kernel.mem_read(addr, 1) == b"x"

    def test_midspan_shootdown_is_atomic(self):
        """The deterministic concurrent-shootdown race: a revocation
        arriving *during* a verified multi-page write (via a bus hook)
        must neither tear the write nor leave a stale certificate."""
        kernel = make_kernel("vm-race")
        addr = kernel.malloc(3 * PAGE_SIZE)
        kernel.mem_write(addr, b"\x00" * (3 * PAGE_SIZE))
        certify_main(kernel)
        table = kernel.main.table
        fired = []

        def shootdown_hook(op, table_, a, size, seg, off):
            if op == "write" and not fired:
                fired.append(True)
                table.revoke_certificate(costs=kernel.costs)

        kernel.bus.add_hook(shootdown_hook)
        blob = b"\xab" * (2 * PAGE_SIZE + 100)
        kernel.mem_write(addr + 50, blob)   # spans 3 pages
        kernel.bus.hooks.remove(shootdown_hook)
        # the in-flight call used its snapshot: the write is complete
        assert kernel.mem_read(addr + 50, len(blob)) == blob
        # and the revocation landed for every subsequent call
        assert table.verified is None
        assert fired

    def test_restart_never_reuses_predecessor_certificate(self):
        """Satellite: a supervised restart builds a new incarnation,
        which must get a *fresh* certificate — the predecessor's is
        pinned to the dead table and rejected outright."""
        kernel = make_kernel("vm-restart")
        tag = kernel.tag_new(name="state")
        template = CertificateTemplate("t/flaky", "flaky",
                                       {"state": "rw"}, {}, (), ())
        kernel.enable_verified([template])
        tripwire = kernel.alloc_buf(8)   # main-private: not granted
        certs = []

        def body(arg):
            st = kernel.current()
            certs.append((st.name, st.table.verified.cert))
            if len(certs) == 1:
                kernel.mem_read(tripwire.addr, 8)   # crash gen 0
            return "ok"

        sc = sc_mem_add(SecurityContext(), tag, PROT_RW)
        st = kernel.sthread_create(
            sc, body, name="flaky", spawn="inline",
            supervise=RestartPolicy(max_restarts=2, backoff=0.0))
        assert kernel.sthread_join(st) == "ok"
        assert template.binds == 2
        (name0, cert0), (name1, cert1) = certs
        assert name0 == "flaky" and name1 == "flaky~r1"
        assert cert0 is not cert1
        assert cert0.table_id != cert1.table_id
        # replaying the dead incarnation's certificate is a PolicyError
        with pytest.raises(PolicyError, match="never survive a restart"):
            kernel.enter_verified(cert0, st.current_incarnation)


class TestCheckedPathOracle:
    """Seeded property test: certified kernel vs uncertified oracle."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_workload_matches_oracle(self, seed):
        rng = random.Random(seed)
        span = 4 * PAGE_SIZE
        kernels = []
        for certified in (False, True):
            kernel = make_kernel(f"vm-prop-{seed}-{certified}")
            tag = kernel.tag_new(size=span, name="arena")
            addr = kernel.smalloc(span - 64, tag)
            kernel.mem_write(addr, b"\x00" * (span - 64))
            if certified:
                certify_main(kernel, mem={tag.id: "rw"})
            kernels.append((kernel, tag, addr))
        (oracle, otag, oaddr), (subject, stag, saddr) = kernels
        for step in range(300):
            off = rng.randrange(span - 64 - 1)
            size = rng.randrange(1, min(3 * PAGE_SIZE,
                                        span - 64 - off) + 1)
            if rng.random() < 0.5:
                got = subject.mem_read(saddr + off, size)
                want = oracle.mem_read(oaddr + off, size)
            else:
                blob = bytes(rng.randrange(256) for _ in range(size))
                subject.mem_write(saddr + off, blob)
                oracle.mem_write(oaddr + off, blob)
                got = subject.mem_read(saddr + off, size)
                want = blob
            assert got == want, f"divergence at step {step}"
            if step == 150:
                # revoke mid-workload: the rest runs on the checked path
                subject.main.table.revoke_certificate(
                    costs=subject.costs)
        final_s = subject.mem_read(saddr, span - 64)
        final_o = oracle.mem_read(oaddr, span - 64)
        assert final_s == final_o
        assert subject.bus.verified_ops > 0

    def test_violations_identical_with_certificate(self):
        """A certificate never covers what the grant would deny."""
        for certified in (False, True):
            kernel = make_kernel(f"vm-deny-{certified}")
            tag = kernel.tag_new(name="private")
            addr = kernel.smalloc(32, tag)
            kernel.mem_write(addr, b"secret")
            if certified:
                kernel.enable_verified([CertificateTemplate(
                    "t/blind", "blind", {}, {}, (), ("recv",))])
            out = []

            def body(arg):
                try:
                    kernel.mem_read(addr, 6)
                    out.append("read")
                except MemoryViolation:
                    out.append("violation")
                return "done"

            st = kernel.sthread_create(SecurityContext(), body,
                                       name="blind", spawn="inline")
            kernel.sthread_join(st)
            assert out == ["violation"]


class TestVerifiedStats:
    def test_stats_shape(self):
        kernel = make_kernel("vm-stats")
        stats = kernel.verified_stats()
        assert stats == {"accesses": 0, "syscalls": 0, "certified": 0,
                         "revocations": 0}
        addr = kernel.malloc(16)
        kernel.mem_write(addr, b"x")
        certify_main(kernel)
        kernel.mem_read(addr, 1)
        stats = kernel.verified_stats()
        assert stats["certified"] == 1
        assert stats["accesses"] >= 1

    def test_costs_drain_includes_verified_accesses(self):
        from repro.core.costs import WEIGHTS
        kernel = make_kernel("vm-drain")
        addr = kernel.malloc(16)
        kernel.mem_write(addr, b"y")
        certify_main(kernel)
        ck = kernel.costs.checkpoint()
        kernel.mem_read(addr, 1)
        assert kernel.costs.delta(ck) == WEIGHTS["verified_access"]


# -- the choke points are the only certificate mutators -----------------------

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Patterns that install or clear a table's certificate in place.
CERT_MUTATION_PATTERNS = [
    r"\.verified\s*=[^=]",
    r"del\s+\w+\.verified",
]


def test_memory_py_is_the_only_certificate_mutator():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "memory.py":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for pattern in CERT_MUTATION_PATTERNS:
                if re.search(pattern, line):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}:"
                                     f" {line.strip()}")
    assert offenders == [], (
        "certificate mutations outside memory.py bypass the "
        "_invalidate revocation choke point:\n" + "\n".join(offenders))


def test_certificates_leave_only_through_invalidate():
    """Within memory.py, ``.verified`` is written in exactly three
    places: initialisation, installation, and the ``_invalidate``
    revocation choke point.  ``revoke_certificate`` must *delegate* to
    ``_invalidate`` rather than clear the field itself."""
    text = (SRC / "core" / "memory.py").read_text()
    writers = []
    current = "<module>"
    for line in text.splitlines():
        match = re.match(r"\s+def\s+(\w+)", line)
        if match:
            current = match.group(1)
        if re.search(r"self\.verified\s*=[^=]", line):
            writers.append(current)
    assert sorted(set(writers)) == ["__init__", "_invalidate",
                                    "install_certificate"], \
        f"certificate written outside the documented sites: {writers}"
