"""Unit tests for tagged memory and the reuse cache (paper §3.2, §4.1)."""

import pytest

from repro.core.costs import CostAccount
from repro.core.errors import TagError
from repro.core.memory import PAGE_SIZE, AddressSpace
from repro.core.tags import DEFAULT_TAG_SIZE, TagManager


@pytest.fixture
def manager():
    return TagManager(AddressSpace(), CostAccount())


class TestLifecycle:
    def test_tag_new_creates_segment_with_heap(self, manager):
        tag = manager.tag_new(name="t")
        assert tag.segment.tag_id == tag.id
        assert tag.heap.is_formatted()

    def test_ids_are_unique_and_flat(self, manager):
        tags = [manager.tag_new() for _ in range(5)]
        assert len({t.id for t in tags}) == 5

    def test_resolve_by_int(self, manager):
        tag = manager.tag_new()
        assert manager.resolve(tag.id) is tag
        assert manager.resolve(tag) is tag

    def test_resolve_unknown(self, manager):
        with pytest.raises(TagError):
            manager.resolve(999)

    def test_double_delete(self, manager):
        tag = manager.tag_new()
        manager.tag_delete(tag)
        with pytest.raises(TagError):
            manager.tag_delete(tag)

    def test_deleted_tag_not_resolvable(self, manager):
        tag = manager.tag_new()
        manager.tag_delete(tag)
        with pytest.raises(TagError):
            manager.resolve(tag.id)

    def test_bad_size(self, manager):
        with pytest.raises(TagError):
            manager.tag_new(0)


class TestReuseCache:
    def test_reuse_hits_cache(self, manager):
        tag = manager.tag_new()
        seg = tag.segment
        manager.tag_delete(tag)
        tag2 = manager.tag_new()
        assert tag2.segment is seg
        assert manager.stats["reused"] == 1

    def test_reuse_only_matches_size(self, manager):
        tag = manager.tag_new(PAGE_SIZE)
        manager.tag_delete(tag)
        tag2 = manager.tag_new(2 * PAGE_SIZE)
        assert tag2.segment is not tag.segment
        assert manager.stats["reused"] == 0

    def test_scrub_on_reuse_provides_secrecy(self, manager):
        """Old contents must never leak through a recycled tag."""
        tag = manager.tag_new()
        secret = b"TOP-SECRET-SESSION-KEY-MATERIAL!"
        off = tag.heap.alloc(len(secret))
        tag.segment.write_raw(off, secret)
        manager.tag_delete(tag)
        tag2 = manager.tag_new()
        image = tag2.segment.read_raw(0, tag2.segment.size)
        assert secret not in image

    def test_reused_heap_is_pristine(self, manager):
        tag = manager.tag_new()
        for _ in range(6):
            tag.heap.alloc(200)
        manager.tag_delete(tag)
        tag2 = manager.tag_new()
        tag2.heap.check_invariants()
        assert len(list(tag2.heap.walk())) == 1
        # and it allocates normally
        tag2.heap.alloc(100)

    def test_fresh_path_charges_syscall_reuse_does_not(self):
        costs = CostAccount()
        manager = TagManager(AddressSpace(), costs)
        manager.tag_new()
        fresh_syscalls = costs.counters.get("syscall", 0)
        assert fresh_syscalls >= 1
        tag = manager.tag_new()
        manager.tag_delete(tag)
        before = costs.counters.get("syscall", 0)
        manager.tag_new()  # served from cache
        assert costs.counters.get("syscall", 0) == before

    def test_cache_disabled_destroys_segment(self):
        manager = TagManager(AddressSpace(), CostAccount(),
                             cache_enabled=False)
        tag = manager.tag_new()
        seg = tag.segment
        manager.tag_delete(tag)
        tag2 = manager.tag_new()
        assert tag2.segment is not seg
        assert manager.stats["reused"] == 0

    def test_reuse_cheaper_than_fresh(self):
        """Figure 8's ordering: reuse ≪ fresh (mmap-like) cost."""
        costs = CostAccount()
        manager = TagManager(AddressSpace(), costs)
        cp = costs.checkpoint()
        manager.tag_new(DEFAULT_TAG_SIZE)
        fresh_cost = costs.delta(cp)
        tag = manager.tag_new(DEFAULT_TAG_SIZE)
        manager.tag_delete(tag)
        cp = costs.checkpoint()
        manager.tag_new(DEFAULT_TAG_SIZE)
        reuse_cost = costs.delta(cp)
        assert reuse_cost < fresh_cost / 2


class TestAdopt:
    def test_adopted_segment_becomes_tag(self, manager):
        space = manager.space
        seg = space.create_segment(PAGE_SIZE, name="boundary0",
                                   kind="boundary")
        tag = manager.adopt(seg)
        assert seg.tag_id == tag.id
        assert tag.heap is None
        assert manager.resolve(tag.id) is tag
