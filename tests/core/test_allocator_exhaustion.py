"""Allocator exhaustion through the kernel: clean failure, intact heap.

The fault-injection work leans on ``smalloc`` failing *cleanly* — a
typed :class:`OutOfMemory` with no corruption — so these tests drive a
tagged heap to genuine exhaustion (no injection) and prove the free
list coalesces back to one arena-sized chunk.
"""

import pytest

from repro.core.errors import OutOfMemory
from repro.faults import FaultPlan


def _heap_of(kernel, tag):
    return kernel.tags.resolve(tag).heap


class TestExhaustion:
    def test_full_heap_raises_cleanly(self, kernel):
        tag = kernel.tag_new(4096, name="tiny")
        held = []
        with pytest.raises(OutOfMemory):
            while True:
                held.append(kernel.smalloc(256, tag))
        assert held  # some allocations succeeded before the wall
        # the failed allocation left no half-carved chunk behind
        _heap_of(kernel, tag).check_invariants()
        # held allocations are still usable
        kernel.mem_write(held[0], b"z" * 256)
        assert kernel.mem_read(held[0], 256) == b"z" * 256

    def test_free_list_coalesces_after_exhaustion(self, kernel):
        tag = kernel.tag_new(4096, name="churn")
        heap = _heap_of(kernel, tag)
        held = []
        with pytest.raises(OutOfMemory):
            while True:
                held.append(kernel.smalloc(128, tag))
        # free in an interleaved order to force both-neighbour merges
        for addr in held[::2] + held[1::2]:
            kernel.sfree(addr)
        heap.check_invariants()
        chunks = list(heap.walk())
        assert len(chunks) == 1 and not chunks[0][2]
        # the proof of coalescing: one allocation spanning nearly the
        # whole arena succeeds again
        # (- ALIGN: the payload is rounded up before adding the chunk
        # overhead, so the exact free-byte count may not quite fit)
        big = kernel.smalloc(heap.free_bytes() - 8, tag)
        kernel.mem_write(big, b"\xaa" * 64)
        heap.check_invariants()

    def test_injected_enomem_matches_real_exhaustion(self, kernel):
        """An injected ``enomem`` is indistinguishable from a real one:
        same type, and the heap it never touched stays pristine."""
        tag = kernel.tag_new(4096, name="inj")
        before = _heap_of(kernel, tag).free_bytes()
        plan = kernel.install_faults(FaultPlan(scope="all"))
        plan.add("smalloc", "enomem", at=(1,))
        with pytest.raises(OutOfMemory):
            kernel.smalloc(64, tag)
        heap = _heap_of(kernel, tag)
        heap.check_invariants()
        assert heap.free_bytes() == before
