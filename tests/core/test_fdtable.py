"""Unit tests for descriptor tables and per-fd Wedge permissions."""

import pytest

from repro.core.errors import (BadFileDescriptor, ConnectionClosed,
                               FdPermissionError)
from repro.core.fdtable import (FdTable, PipeOpenFile, SocketOpenFile,
                                VfsOpenFile)
from repro.core.policy import FD_READ, FD_RW, FD_WRITE
from repro.core.vfs import VfsFile
from repro.net.stream import ByteStream, DuplexStream


def vfs_file(data=b"content"):
    return VfsOpenFile(VfsFile(data), "/f")


class TestFdTable:
    def test_install_assigns_increasing_fds(self):
        table = FdTable()
        a = table.install(vfs_file())
        b = table.install(vfs_file())
        assert b == a + 1
        assert a >= 3  # stdio reserved

    def test_lookup_checks_permissions(self):
        table = FdTable()
        fd = table.install(vfs_file(), FD_READ)
        table.lookup(fd, needed=FD_READ)
        with pytest.raises(FdPermissionError) as err:
            table.lookup(fd, needed=FD_WRITE)
        assert "write" in str(err.value)

    def test_lookup_unknown_fd(self):
        with pytest.raises(BadFileDescriptor):
            FdTable().lookup(7)

    def test_close_removes(self):
        table = FdTable()
        fd = table.install(vfs_file())
        table.close(fd)
        with pytest.raises(BadFileDescriptor):
            table.lookup(fd)
        with pytest.raises(BadFileDescriptor):
            table.close(fd)

    def test_perms_of(self):
        table = FdTable()
        fd = table.install(vfs_file(), FD_READ)
        assert table.perms_of(fd) == FD_READ
        assert table.perms_of(99) == 0

    def test_dup_subset_copies_only_granted(self):
        table = FdTable()
        a = table.install(vfs_file(), FD_RW)
        b = table.install(vfs_file(), FD_RW)
        child = table.dup_subset({a: FD_READ})
        assert a in child and b not in child
        assert child.perms_of(a) == FD_READ

    def test_dup_subset_missing_fd_fails(self):
        with pytest.raises(BadFileDescriptor):
            FdTable().dup_subset({9: FD_READ})

    def test_dup_all(self):
        table = FdTable()
        a = table.install(vfs_file(), FD_READ)
        child = table.dup_all()
        assert child.perms_of(a) == FD_READ

    def test_dup_shares_open_file_description(self):
        """Like UNIX dup: the file offset is shared."""
        table = FdTable()
        fd = table.install(vfs_file(b"abcdef"), FD_RW)
        child = table.dup_subset({fd: FD_READ})
        assert table.lookup(fd).file.read(3) == b"abc"
        assert child.lookup(fd).file.read(3) == b"def"


class TestRefcounting:
    def test_socket_closes_on_last_ref(self):
        a, b = DuplexStream.pipe_pair("t")
        file = SocketOpenFile(a)
        t1, t2 = FdTable(), FdTable()
        fd1 = t1.install(file)
        fd2 = t2.install(file)
        t1.close(fd1)
        assert not a.closed
        t2.close(fd2)
        assert a.closed

    def test_close_all(self):
        table = FdTable()
        table.install(vfs_file())
        table.install(vfs_file())
        table.close_all()
        assert len(table) == 0


class TestOpenFiles:
    def test_vfs_file_append_and_extend(self):
        node = VfsFile(b"ab")
        f = VfsOpenFile(node, "/f", append=True)
        f.write(b"cd")
        assert bytes(node.data) == b"abcd"

    def test_vfs_file_sparse_write(self):
        node = VfsFile(b"")
        f = VfsOpenFile(node, "/f")
        f.seek(4)
        f.write(b"x")
        assert bytes(node.data) == b"\x00\x00\x00\x00x"

    def test_pipe_direction_enforced(self):
        stream = ByteStream("p")
        rend = PipeOpenFile(stream, readable=True)
        wend = PipeOpenFile(stream, readable=False)
        wend.write(b"ping")
        assert rend.read(4) == b"ping"
        with pytest.raises(BadFileDescriptor):
            rend.write(b"x")
        with pytest.raises(BadFileDescriptor):
            wend.read(1)

    def test_socket_read_raises_on_eof(self):
        a, b = DuplexStream.pipe_pair("t")
        file = SocketOpenFile(a)
        b.close()
        with pytest.raises(ConnectionClosed):
            file.read(1)
