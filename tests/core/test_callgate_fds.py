"""Callgates and descriptors: creation-time capture vs caller grants."""

import pytest

from repro.core.errors import BadFileDescriptor, CallgateError
from repro.core.policy import (FD_READ, FD_RW, FD_WRITE, SecurityContext,
                               sc_cgate_add, sc_fd_add)


class TestCreationTimeFds:
    def test_gate_uses_creator_resolved_descriptor(self, kernel):
        """fd grants in the gate's context resolve against the
        *creator's* table at instantiation — the caller cannot swap the
        descriptor underneath the gate."""
        listener = kernel.net.listen("cg-fd:1")
        fd = kernel.connect("cg-fd:1")

        def entry(trusted, arg):
            kernel.send(fd, b"from-the-gate")
            return "sent"

        gate_sc = sc_fd_add(SecurityContext(), fd, FD_WRITE)

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            return kernel.cgate(gate_id)

        # the worker itself has NO fd grant at all
        sc = SecurityContext()
        sc_cgate_add(sc, entry, gate_sc)
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == "sent"
        server = listener.accept(timeout=2)
        assert server.recv(13, timeout=2) == b"from-the-gate"

    def test_gate_fd_needs_creator_to_hold_it(self, kernel):
        from repro.core.errors import PolicyError
        gate_sc = sc_fd_add(SecurityContext(), 99, FD_WRITE)
        sc = SecurityContext()
        sc_cgate_add(sc, lambda t, a: None, gate_sc)
        with pytest.raises((PolicyError, BadFileDescriptor)):
            kernel.sthread_create(sc, lambda a: None, spawn="inline")


class TestCallerFdDelegation:
    def test_caller_delegates_fd_per_call(self, kernel):
        """cgate's perms argument can pass descriptor access for one
        invocation (the recycled-ssl_write pattern)."""
        listener = kernel.net.listen("cg-fd:2")
        fd = kernel.connect("cg-fd:2")

        def entry(trusted, arg):
            kernel.send(fd, b"delegated")

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            perms = sc_fd_add(SecurityContext(), fd, FD_WRITE)
            kernel.cgate(gate_id, perms)
            return "ok"

        sc = sc_fd_add(SecurityContext(), fd, FD_RW)
        sc_cgate_add(sc, entry, SecurityContext())
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == "ok"
        server = listener.accept(timeout=2)
        assert server.recv(9, timeout=2) == b"delegated"

    def test_without_delegation_gate_lacks_the_fd(self, kernel):
        kernel.net.listen("cg-fd:3")
        fd = kernel.connect("cg-fd:3")

        def entry(trusted, arg):
            kernel.send(fd, b"should fail")

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            try:
                kernel.cgate(gate_id)
            except (CallgateError, BadFileDescriptor):
                return "denied"

        sc = sc_fd_add(SecurityContext(), fd, FD_RW)
        sc_cgate_add(sc, entry, SecurityContext())
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == "denied"

    def test_read_only_caller_cannot_delegate_write(self, kernel):
        from repro.core.errors import PolicyError
        kernel.net.listen("cg-fd:4")
        fd = kernel.connect("cg-fd:4")

        def entry(trusted, arg):
            kernel.send(fd, b"x")

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            perms = sc_fd_add(SecurityContext(), fd, FD_WRITE)
            try:
                kernel.cgate(gate_id, perms)
            except PolicyError:
                return "escalation-blocked"

        sc = sc_fd_add(SecurityContext(), fd, FD_READ)
        sc_cgate_add(sc, entry, SecurityContext())
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == "escalation-blocked"

    def test_recycled_gate_fd_revoked_after_call(self, kernel):
        kernel.net.listen("cg-fd:5")
        fd = kernel.connect("cg-fd:5")
        calls = []

        def entry(trusted, arg):
            try:
                kernel.send(fd, b"x")
                calls.append("sent")
            except BadFileDescriptor:
                calls.append("no-fd")

        def body(arg):
            gate_id = next(iter(kernel.current().gates))
            perms = sc_fd_add(SecurityContext(), fd, FD_WRITE)
            kernel.cgate(gate_id, perms)      # delegated
            kernel.cgate(gate_id)             # not delegated this time

        sc = sc_fd_add(SecurityContext(), fd, FD_RW)
        sc_cgate_add(sc, entry, SecurityContext(), recycled=True)
        child = kernel.sthread_create(sc, body, spawn="inline")
        kernel.sthread_join(child)
        assert calls == ["sent", "no-fd"]
