"""Seeded property tests: the TLB'd bus against a naive oracle.

An :class:`OracleMemory` reimplements the bus semantics independently —
no PTEs, no TLB, a full "walk" on every access — and random interleavings
of grant (map), revoke (unmap), protection narrowing (remap read-only),
COW downgrade + first-write, raw scrubbing (tag reuse) and reads/writes
are replayed against both.  Any divergence in outcome — the bytes a read
returns, or the (op, addr) of the violation raised — is a failure.

Uses only stdlib ``random`` with fixed seeds (no new dependencies, and
reproducible without a shrinker: the failing op index identifies the
scenario).  The same sequence is also replayed on a ``tlb=False`` bus to
pin the ablation switch to the oracle as well.
"""

import random

import pytest

from repro.core.costs import CostAccount
from repro.core.errors import MemoryViolation
from repro.core.memory import (PAGE_SIZE, PROT_COW, PROT_READ, PROT_RW,
                               AddressSpace, MemoryBus, PageTable)

SEG_PAGES = 3          # pages per test segment
N_SEGMENTS = 4
OPS_PER_RUN = 400

PROT_CHOICES = (PROT_READ, PROT_RW, PROT_READ | PROT_COW)


class OracleMemory:
    """Walk-every-time reference model of segments + one page table.

    Pages are either ``("shared", seg_index, page_index)`` — reads and
    writes hit the segment's frame, like a live RW mapping — or
    ``("private", bytearray)`` after a COW break.  Protection checks and
    the page-chunking loop mirror the documented bus semantics; nothing
    is cached anywhere.
    """

    def __init__(self, bases):
        self.bases = bases                       # seg index -> base addr
        self.frames = [[bytearray(PAGE_SIZE) for _ in range(SEG_PAGES)]
                       for _ in range(N_SEGMENTS)]
        self.pages = {}                          # pageno -> [prot, backing]

    def _pageno(self, seg, page):
        return (self.bases[seg] >> 12) + page

    def map(self, seg, prot):
        for page in range(SEG_PAGES):
            self.pages[self._pageno(seg, page)] = \
                [prot, ("shared", seg, page)]

    def unmap(self, seg):
        for page in range(SEG_PAGES):
            self.pages.pop(self._pageno(seg, page), None)

    def scrub(self, seg):
        """Tag reuse: the kernel zeroes the segment frames raw."""
        for frame in self.frames[seg]:
            frame[:] = bytes(PAGE_SIZE)

    def downgrade_all(self):
        """mark_all_cow: every writable page becomes read-only COW."""
        for entry in self.pages.values():
            if entry[0] & 2:
                entry[0] = PROT_READ | PROT_COW

    def _data(self, backing):
        if backing[0] == "shared":
            return self.frames[backing[1]][backing[2]]
        return backing[1]

    def read(self, addr, size):
        out = bytearray()
        pos, remaining = addr, size
        while remaining:
            pageno, off = divmod(pos, PAGE_SIZE)
            take = min(remaining, PAGE_SIZE - off)
            entry = self.pages.get(pageno)
            if entry is None or not entry[0] & PROT_READ:
                raise MemoryViolation("oracle", addr=pos, op="read")
            out += self._data(entry[1])[off:off + take]
            pos += take
            remaining -= take
        return bytes(out)

    def write(self, addr, data):
        pos, offset, total = addr, 0, len(data)
        while offset < total:
            pageno, off = divmod(pos, PAGE_SIZE)
            take = min(total - offset, PAGE_SIZE - off)
            entry = self.pages.get(pageno)
            if entry is None:
                raise MemoryViolation("oracle", addr=pos, op="write")
            if entry[0] & 2:
                pass
            elif entry[0] & PROT_COW:
                entry[1] = ("private",
                            bytearray(self._data(entry[1])))
                entry[0] = PROT_RW
            else:
                raise MemoryViolation("oracle", addr=pos, op="write")
            self._data(entry[1])[off:off + take] = data[offset:offset + take]
            pos += take
            offset += take


class RealMemory:
    """The system under test: one table on one (optionally TLB'd) bus."""

    def __init__(self, tlb):
        self.space = AddressSpace()
        self.bus = MemoryBus(self.space, CostAccount(), tlb=tlb)
        self.table = PageTable(owner_name="prop")
        self.segments = [
            self.space.create_segment(SEG_PAGES * PAGE_SIZE,
                                      name=f"seg{i}", kind="tag")
            for i in range(N_SEGMENTS)]
        self.bases = [seg.base for seg in self.segments]

    def map(self, seg, prot):
        self.table.map_segment(self.segments[seg], prot)

    def unmap(self, seg):
        self.table.unmap_segment(self.segments[seg])

    def scrub(self, seg):
        self.segments[seg].write_raw(0, bytes(SEG_PAGES * PAGE_SIZE))

    def downgrade_all(self):
        self.table.mark_all_cow()

    def read(self, addr, size):
        return self.bus.read(self.table, addr, size)

    def write(self, addr, data):
        self.bus.write(self.table, addr, data)


def _apply(memory, op):
    """Run one op; normalise the outcome for comparison."""
    kind = op[0]
    try:
        if kind == "map":
            memory.map(op[1], op[2])
        elif kind == "unmap":
            memory.unmap(op[1])
        elif kind == "scrub":
            memory.scrub(op[1])
        elif kind == "downgrade":
            memory.downgrade_all()
        elif kind == "read":
            return ("data", memory.read(op[1], op[2]))
        elif kind == "write":
            memory.write(op[1], op[2])
        return ("ok",)
    except MemoryViolation as exc:
        return ("violation", exc.op, exc.addr)


def _random_ops(rng, bases):
    """One seeded interleaving of grants, revokes, scrubs and accesses."""
    span = SEG_PAGES * PAGE_SIZE

    def some_addr():
        # mostly in-segment, occasionally in the guard gap past the end
        base = bases[rng.randrange(N_SEGMENTS)]
        if rng.random() < 0.05:
            return base + span + rng.randrange(PAGE_SIZE)
        return base + rng.randrange(span)

    ops = []
    for _ in range(OPS_PER_RUN):
        roll = rng.random()
        if roll < 0.12:
            ops.append(("map", rng.randrange(N_SEGMENTS),
                        rng.choice(PROT_CHOICES)))
        elif roll < 0.18:
            ops.append(("unmap", rng.randrange(N_SEGMENTS)))
        elif roll < 0.22:
            ops.append(("scrub", rng.randrange(N_SEGMENTS)))
        elif roll < 0.25:
            ops.append(("downgrade",))
        elif roll < 0.60:
            # sizes that stay inside a page, span pages, or span
            # segments (the last hit the guard gap -> violation)
            ops.append(("read", some_addr(),
                        rng.choice((1, 8, 64, PAGE_SIZE,
                                    PAGE_SIZE + 17, 3 * PAGE_SIZE))))
        else:
            size = rng.choice((1, 8, 64, 200, PAGE_SIZE + 5))
            ops.append(("write", some_addr(), rng.randbytes(size)))
    return ops


@pytest.mark.parametrize("seed", range(8))
def test_bus_matches_oracle(seed):
    rng = random.Random(seed)
    real = RealMemory(tlb=True)
    ablated = RealMemory(tlb=False)
    # both RealMemory instances hand out identical bases (fresh
    # AddressSpace each), so one oracle serves as reference for both
    assert real.bases == ablated.bases
    oracle = OracleMemory(real.bases)
    ops = _random_ops(rng, real.bases)
    for index, op in enumerate(ops):
        expected = _apply(oracle, op)
        got = _apply(real, op)
        got_ablated = _apply(ablated, op)
        assert got == expected, (
            f"seed {seed} op {index} {op[0]} diverged from oracle: "
            f"{got!r} != {expected!r}")
        assert got_ablated == expected, (
            f"seed {seed} op {index} {op[0]} (tlb=False) diverged: "
            f"{got_ablated!r} != {expected!r}")
    # closing sweep: every readable page must hold identical bytes
    for seg in range(N_SEGMENTS):
        for page in range(SEG_PAGES):
            addr = real.bases[seg] + page * PAGE_SIZE
            expected = _apply(oracle, ("read", addr, PAGE_SIZE))
            assert _apply(real, ("read", addr, PAGE_SIZE)) == expected
            assert _apply(ablated, ("read", addr, PAGE_SIZE)) == expected


def test_property_runs_exercise_the_tlb():
    """Guard against vacuity: the sequences must produce hits, misses,
    COW breaks and shootdowns, or the oracle comparison proves little."""
    rng = random.Random(0)
    real = RealMemory(tlb=True)
    oracle = OracleMemory(real.bases)
    for op in _random_ops(rng, real.bases):
        _apply(oracle, op)
        _apply(real, op)
    assert real.bus.tlb_hits > 100
    assert real.bus.tlb_walks > 0
    assert real.table.tlb_shootdowns > 0
