"""Unit tests for security contexts and monotonicity (paper §3.1)."""

import pytest

from repro.core.errors import PolicyError
from repro.core.memory import PROT_COW, PROT_READ, PROT_RW, PROT_WRITE
from repro.core.policy import (FD_READ, FD_RW, FD_WRITE, SecurityContext,
                               mem_prot_subset, sc_cgate_add, sc_fd_add,
                               sc_mem_add, sc_sel_context,
                               validate_mem_prot)


class TestValidateMemProt:
    def test_write_only_rejected(self):
        """Paper §3.1: no write-only memory on commodity CPUs."""
        with pytest.raises(PolicyError) as err:
            validate_mem_prot(PROT_WRITE)
        assert "write-only" in str(err.value)

    def test_read_and_rw_accepted(self):
        assert validate_mem_prot(PROT_READ) == PROT_READ
        assert validate_mem_prot(PROT_RW) == PROT_RW

    def test_cow_normalised_to_readable(self):
        assert validate_mem_prot(PROT_COW) & PROT_READ

    def test_garbage_rejected(self):
        with pytest.raises(PolicyError):
            validate_mem_prot(99)


class TestScBuilders:
    def test_sc_mem_add(self):
        sc = SecurityContext()
        sc_mem_add(sc, 7, PROT_READ)
        assert sc.mem[7] == PROT_READ

    def test_sc_mem_add_accepts_tag_objects(self):
        class FakeTag:
            def __int__(self):
                return 3
        sc = sc_mem_add(SecurityContext(), FakeTag(), PROT_RW)
        assert sc.mem[3] == PROT_RW

    def test_sc_fd_add(self):
        sc = sc_fd_add(SecurityContext(), 4, FD_READ)
        assert sc.fds[4] == FD_READ

    def test_sc_fd_add_rejects_zero_and_garbage(self):
        with pytest.raises(PolicyError):
            sc_fd_add(SecurityContext(), 4, 0)
        with pytest.raises(PolicyError):
            sc_fd_add(SecurityContext(), 4, 8)

    def test_sc_sel_context(self):
        sc = sc_sel_context(SecurityContext(), "u:r:t")
        assert sc.sid == "u:r:t"

    def test_sc_cgate_add_new_gate_needs_context(self):
        with pytest.raises(PolicyError):
            sc_cgate_add(SecurityContext(), lambda t, a: None)

    def test_sc_cgate_add_regrant_takes_no_context(self):
        with pytest.raises(PolicyError):
            sc_cgate_add(SecurityContext(), 5, SecurityContext())

    def test_sc_cgate_add_both_forms(self):
        sc = SecurityContext()
        sc_cgate_add(sc, lambda t, a: None, SecurityContext(),
                     recycled=True)
        sc_cgate_add(sc, 9)
        assert len(sc.gate_specs) == 1
        assert sc.gate_specs[0].recycled
        assert sc.gate_ids == [9]

    def test_copy_is_deep_enough(self):
        sc = sc_mem_add(SecurityContext(uid=5), 1, PROT_READ)
        other = sc.copy()
        other.mem[2] = PROT_RW
        assert 2 not in sc.mem
        assert other.uid == 5


class TestMemProtSubset:
    @pytest.mark.parametrize("child,parent,allowed", [
        (PROT_READ, PROT_READ, True),
        (PROT_READ, PROT_RW, True),
        (PROT_RW, PROT_RW, True),
        (PROT_RW, PROT_READ, False),          # write needs parent write
        (PROT_READ | PROT_COW, PROT_READ, True),
        (PROT_READ | PROT_COW, PROT_RW, True),
        (PROT_READ, PROT_READ | PROT_COW, True),
        (PROT_RW, PROT_READ | PROT_COW, False),
    ])
    def test_delegation_table(self, child, parent, allowed):
        assert mem_prot_subset(child, parent) is allowed


class TestSubsetEnforcement:
    """check_subset_of through the kernel (real parent sthreads)."""

    def test_parent_cannot_grant_unheld_tag(self, kernel):
        tag = kernel.tag_new()
        sc_grandchild = sc_mem_add(SecurityContext(), tag, PROT_READ)

        def body(arg):
            # this compartment holds nothing, so it cannot grant the tag
            kernel.sthread_create(sc_grandchild, lambda a: None,
                                  spawn="inline")

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert isinstance(child.error, PolicyError)
        # main holds the tag (it created it), so from main it works
        ok = kernel.sthread_create(sc_grandchild, lambda a: None,
                                   spawn="inline")
        assert not ok.faulted and ok.error is None

    def test_child_cannot_escalate_read_to_rw(self, kernel):
        tag = kernel.tag_new()
        sc_child = sc_mem_add(SecurityContext(), tag, PROT_READ)

        def child_body(arg):
            sc_evil = sc_mem_add(SecurityContext(), tag, PROT_RW)
            with pytest.raises(PolicyError):
                kernel.sthread_create(sc_evil, lambda a: None,
                                      spawn="inline")
            return "checked"

        child = kernel.sthread_create(sc_child, child_body,
                                      spawn="inline")
        assert kernel.sthread_join(child) == "checked"

    def test_child_can_delegate_subset(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag, init=b"12345678")
        sc_child = sc_mem_add(SecurityContext(), tag, PROT_RW)

        def child_body(arg):
            sc_grand = sc_mem_add(SecurityContext(), tag, PROT_READ)
            grand = kernel.sthread_create(
                sc_grand, lambda a: kernel.mem_read(buf.addr, 8),
                spawn="inline")
            return kernel.sthread_join(grand)

        child = kernel.sthread_create(sc_child, child_body,
                                      spawn="inline")
        assert kernel.sthread_join(child) == b"12345678"

    def test_uid_change_requires_root_parent(self, kernel):
        # main is root: may set a child's uid
        sc = SecurityContext(uid=1000)
        child = kernel.sthread_create(sc, lambda a: kernel.getuid(),
                                      spawn="inline")
        assert kernel.sthread_join(child) == 1000

    def test_nonroot_cannot_change_uid(self, kernel):
        sc = SecurityContext(uid=1000)

        def body(arg):
            evil = SecurityContext(uid=0)
            with pytest.raises(PolicyError):
                kernel.sthread_create(evil, lambda a: None,
                                      spawn="inline")
            return "denied"

        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == "denied"

    def test_nonroot_cannot_chroot_child(self, kernel):
        kernel.vfs.mkdir("/jail")
        sc = SecurityContext(uid=1000)

        def body(arg):
            evil = SecurityContext(root="/jail")
            with pytest.raises(PolicyError):
                kernel.sthread_create(evil, lambda a: None,
                                      spawn="inline")
            return "denied"

        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == "denied"

    def test_fd_delegation_requires_holding(self, kernel):
        kernel.net.listen("x:1")
        fd = kernel.connect("x:1")
        from repro.core.policy import sc_fd_add as fd_add
        sc_read_only = fd_add(SecurityContext(), fd, FD_READ)

        def body(arg):
            evil = fd_add(SecurityContext(), fd, FD_RW)
            with pytest.raises(PolicyError):
                kernel.sthread_create(evil, lambda a: None,
                                      spawn="inline")
            return "denied"

        child = kernel.sthread_create(sc_read_only, body, spawn="inline")
        assert kernel.sthread_join(child) == "denied"

    def test_unknown_fd_grant_rejected(self, kernel):
        sc = sc_fd_add(SecurityContext(), 99, FD_READ)
        with pytest.raises(PolicyError):
            kernel.sthread_create(sc, lambda a: None, spawn="inline")

    def test_gate_delegation_requires_holding(self, kernel):
        def body(arg):
            evil = SecurityContext()
            sc_cgate_add(evil, 424242)
            with pytest.raises(PolicyError):
                kernel.sthread_create(evil, lambda a: None,
                                      spawn="inline")
            return "denied"

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert kernel.sthread_join(child) == "denied"
