"""TLB shootdown: every rights-narrowing point invalidates, and the
``PageTable._invalidate`` choke point is the only mutator.

The five invalidation points documented in DESIGN.md §2:

1. revocation — ``unmap_segment`` (tag_delete, recycled-gate teardown)
2. protection narrowing — ``map_segment`` remap over live pages
3. COW first-write — ``cow_break`` replaces the frame
4. fork — ``mark_all_cow`` / ``downgrade_to_cow``
5. compartment fault — ``flush_tlb`` (sthread death, gate death)

Plus the meta-test: a source scan asserting no code outside
``memory.py`` mutates PTEs or TLB entries directly, so a future
mutation site cannot silently skip shootdown.
"""

import pathlib
import re

import pytest

from repro.core.costs import CostAccount
from repro.core.errors import MemoryViolation
from repro.core.kernel import Kernel
from repro.core.memory import (PAGE_SIZE, PROT_COW, PROT_READ, PROT_RW,
                               AddressSpace, MemoryBus, PageTable)
from repro.core.policy import SecurityContext, sc_mem_add


@pytest.fixture()
def rig():
    space = AddressSpace()
    bus = MemoryBus(space, CostAccount(), tlb=True)
    table = PageTable(owner_name="rig")
    seg = space.create_segment(2 * PAGE_SIZE, name="rig-seg", kind="tag")
    table.map_segment(seg, PROT_RW)
    return space, bus, table, seg


def test_read_fills_tlb_and_hits_on_repeat(rig):
    space, bus, table, seg = rig
    assert table.tlb == {}
    bus.write(table, seg.base, b"hello")
    assert (seg.base >> 12) in table.tlb
    walks = bus.tlb_walks
    for _ in range(5):
        assert bus.read(table, seg.base, 5) == b"hello"
    assert bus.tlb_walks == walks          # all served from the TLB
    assert bus.tlb_hits >= 5


def test_unmap_revokes_cached_translation(rig):
    space, bus, table, seg = rig
    bus.read(table, seg.base, 1)           # cache the translation
    table.unmap_segment(seg)
    assert table.tlb == {}
    assert table.tlb_shootdowns >= 1
    with pytest.raises(MemoryViolation):
        bus.read(table, seg.base, 1)


def test_remap_readonly_narrows_cached_rights(rig):
    space, bus, table, seg = rig
    bus.write(table, seg.base, b"w")       # caches an RW translation
    table.map_segment(seg, PROT_READ)      # mprotect-style narrowing
    with pytest.raises(MemoryViolation):
        bus.write(table, seg.base, b"x")
    assert bus.read(table, seg.base, 1) == b"w"


def test_cow_break_replaces_cached_frame(rig):
    space, bus, table, seg = rig
    seg.write_raw(0, b"pristine")
    table.map_segment(seg, PROT_READ | PROT_COW)
    assert bus.read(table, seg.base, 8) == b"pristine"   # caches COW entry
    bus.write(table, seg.base, b"scribble")              # breaks the COW
    # the write went to a private frame; the segment stayed pristine
    assert bus.read(table, seg.base, 8) == b"scribble"
    assert seg.read_raw(0, 8) == b"pristine"
    assert table.tlb_shootdowns >= 1
    # and the re-cached translation is the private frame, not the shared
    pte = table.lookup(seg.base >> 12)
    assert table.tlb[seg.base >> 12][0] is pte.frame
    assert pte.frame is not seg.frames[0]


def test_mark_all_cow_downgrades_cached_rights(rig):
    space, bus, table, seg = rig
    bus.write(table, seg.base, b"parent")  # caches RW
    table.mark_all_cow()
    # next write must COW-copy, not scribble the shared frame through a
    # stale writable translation
    bus.write(table, seg.base, b"child!")
    assert seg.read_raw(0, 6) == b"parent"


def test_flush_drops_everything(rig):
    space, bus, table, seg = rig
    bus.read(table, seg.base, 1)
    bus.read(table, seg.base + PAGE_SIZE, 1)
    assert len(table.tlb) == 2
    assert table.flush_tlb() == 2
    assert table.tlb == {}


def test_clone_starts_translation_cold(rig):
    space, bus, table, seg = rig
    bus.read(table, seg.base, 1)
    child = table.clone(owner_name="child")
    assert child.tlb == {}


def test_disabled_bus_never_populates_tlb(rig):
    space, _, table, seg = rig
    cold = MemoryBus(space, CostAccount(), tlb=False)
    cold.write(table, seg.base, b"x")
    assert cold.read(table, seg.base, 1) == b"x"
    assert table.tlb == {}
    assert cold.tlb_hits == 0
    assert cold.tlb_walks >= 2


# -- kernel-level invalidation points -----------------------------------------


def test_tag_delete_shoots_down_and_reuse_is_scrubbed():
    kernel = Kernel(name="sd")
    kernel.start_main()
    tag = kernel.tag_new(name="loot")
    addr = kernel.smalloc(64, tag)
    kernel.mem_write(addr, b"secret!!")
    assert kernel.mem_read(addr, 8) == b"secret!!"     # warm
    kernel.tag_delete(tag)
    # revoked: the cached translation must not survive the unmap
    with pytest.raises(MemoryViolation):
        kernel.mem_read(addr, 8)
    # tag-cache reuse hands back the same segment, scrubbed; the new
    # mapping resolves freshly (no stale bytes, no stale translation)
    tag2 = kernel.tag_new(name="reuse")
    assert tag2.segment is tag.segment
    addr2 = kernel.smalloc(64, tag2)
    data = kernel.mem_read(addr2, 64)
    assert b"secret!!" not in data


def test_fork_downgrade_shoots_down_parent_translations():
    kernel = Kernel(name="fork-sd")
    kernel.start_main()
    main = kernel.main
    addr = kernel.malloc(32)
    kernel.mem_write(addr, b"pre-fork")                # warm RW entry
    child = kernel.fork(lambda a: kernel.mem_read(addr, 8),
                        spawn="inline")
    # the fork downgraded main's heap to COW; its cached RW translation
    # was shot down, so this write COW-copies instead of leaking into
    # the frame the child still shares
    kernel.mem_write(addr, b"postfork")
    assert kernel.sthread_join(child) == b"pre-fork"
    assert main.table.tlb_shootdowns > 0


def test_tlb_stats_shape():
    kernel = Kernel(name="stats")
    kernel.start_main()
    addr = kernel.malloc(16)
    kernel.mem_write(addr, b"x")
    kernel.mem_read(addr, 1)
    stats = kernel.tlb_stats()
    assert stats["enabled"] is True
    assert stats["hits"] > 0 and stats["walks"] > 0
    assert stats["entries"] > 0
    off = Kernel(name="stats-off", tlb=False)
    off.start_main()
    addr = off.malloc(16)
    off.mem_write(addr, b"x")
    assert off.tlb_stats() == {"enabled": False, "hits": 0,
                               "walks": off.bus.tlb_walks,
                               "shootdowns": 0, "entries": 0}


def test_sthread_cannot_reach_revoked_tag_after_warming():
    """End-to-end revocation: grant, warm, revoke, fault."""
    kernel = Kernel(name="revoke")
    kernel.start_main()
    tag = kernel.tag_new(name="shared")
    addr = kernel.smalloc(32, tag)
    kernel.mem_write(addr, b"visible!")
    outcomes = []

    def body(arg):
        outcomes.append(kernel.mem_read(addr, 8))      # warm the TLB
        st = kernel.current()
        st.table.unmap_segment(tag.segment, costs=kernel.costs)
        try:
            outcomes.append(kernel.mem_read(addr, 8))
        except MemoryViolation:
            outcomes.append("revoked")
        return b"ok"

    sc = sc_mem_add(SecurityContext(), tag, PROT_RW)
    st = kernel.sthread_create(sc, body, name="revokee", spawn="inline")
    assert kernel.sthread_join(st) == b"ok"
    assert outcomes == [b"visible!", "revoked"]


# -- the choke point is the only mutator --------------------------------------

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Patterns that mutate page-table or TLB state in place.  Any of these
#: appearing outside memory.py is a mutation site that bypasses the
#: _invalidate choke point.
MUTATION_PATTERNS = [
    r"\.entries\[",            # direct PTE install
    r"\.entries\.pop",         # direct PTE removal
    r"\.entries\.clear",
    r"\.entries\.update",
    r"\.entries\s*=",          # wholesale replacement
    r"\.prot\s*=[^=]",         # in-place protection change
    r"\.frame\s*=[^=]",        # in-place frame replacement
    r"\.tlb\[",                # direct TLB install
    r"\.tlb\.pop",
    r"\.tlb\.clear",
    r"\.tlb\s*=[^=]",
    r"del\s+\w+\.tlb",
]


def test_memory_py_is_the_only_pte_and_tlb_mutator():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "memory.py":
            continue
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), 1):
            for pattern in MUTATION_PATTERNS:
                if re.search(pattern, line):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}: "
                                     f"{line.strip()}")
    assert offenders == [], (
        "PTE/TLB mutations outside memory.py bypass the _invalidate "
        "choke point:\n" + "\n".join(offenders))


def test_tlb_entries_leave_only_through_the_choke_point():
    """Within memory.py itself, TLB-entry removal is confined to
    ``_invalidate`` and ``flush_tlb`` — the documented choke points."""
    text = (SRC / "core" / "memory.py").read_text()
    # split into top-level def blocks of the PageTable/MemoryBus classes
    removals = []
    current = "<module>"
    for line in text.splitlines():
        match = re.match(r"\s+def\s+(\w+)", line)
        if match:
            current = match.group(1)
        if re.search(r"tlb\.pop|tlb\.clear|del\s+tlb\[|del\s+\w+\.tlb\[",
                     line):
            removals.append(current)
    assert removals and set(removals) <= {"_invalidate", "flush_tlb"}, \
        f"TLB entries removed outside the choke point: {removals}"
