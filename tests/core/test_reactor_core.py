"""Unit coverage for the reactor core and the kernel scheduler switch.

The differential and property suites prove the big claims; these pin
the plumbing: spawn/join, the offload escape hatch, cooperative sthread
bodies running real syscalls, scheduler selection and teardown, and the
page-sized private regions the 10k campaign depends on.
"""

import threading

import pytest

from repro.core.errors import NetTimeout, WedgeError
from repro.core.kernel import Kernel
from repro.core.memory import PAGE_SIZE
from repro.core.policy import FD_RW, SecurityContext, sc_fd_add
from repro.core.reactor import Reactor, wait_done
from repro.net import Network


class TestReactorBasics:
    def test_spawn_runs_to_completion_and_returns_result(self):
        reactor = Reactor(name="t")

        def body():
            yield
            return 41 + 1

        task = reactor.spawn(body(), name="answer")
        reactor.run_until_idle()
        assert task.done
        assert task.result == 42
        assert task.error is None
        assert reactor.live == 0

    def test_tasks_join_each_other_cooperatively(self):
        reactor = Reactor(name="t")

        def child():
            yield
            return "payload"

        def parent():
            task = reactor.spawn(child(), name="child")
            while not task.ready():
                yield wait_done(task)
            return task.result

        parent_task = reactor.spawn(parent(), name="parent")
        reactor.run_until_idle()
        assert parent_task.result == "payload"

    def test_offload_returns_result_and_propagates_errors(self):
        reactor = Reactor(name="t")

        def good():
            result = yield from reactor.offload(lambda: 7 * 6)
            return result

        def bad():
            yield from reactor.offload(
                lambda: (_ for _ in ()).throw(WedgeError("boom")))

        good_task = reactor.spawn(good(), name="good")
        bad_task = reactor.spawn(bad(), name="bad")
        reactor.run_until_idle(raise_crashes=False)
        assert good_task.result == 42
        assert isinstance(bad_task.error, WedgeError)
        assert "boom" in str(bad_task.error)

    def test_yielding_garbage_is_a_typed_crash(self):
        reactor = Reactor(name="t")

        def confused():
            yield 17

        task = reactor.spawn(confused(), name="confused")
        with pytest.raises(WedgeError, match="expected a Wait"):
            reactor.run_until_idle()
        assert task.done
        assert task.error is not None

    def test_bad_mode_rejected(self):
        with pytest.raises(WedgeError, match="unknown reactor mode"):
            Reactor(mode="psychic")

    def test_livelock_guard_trips(self):
        reactor = Reactor(name="t")

        def spinner():
            while True:
                yield

        reactor.spawn(spinner(), name="spinner")
        with pytest.raises(WedgeError, match="steps"):
            reactor.run_until_idle(max_steps=50)


class TestKernelSchedulerSwitch:
    def test_scheduler_validation(self):
        with pytest.raises(WedgeError, match="scheduler"):
            Kernel(name="bad", scheduler="fibers")

    def test_reactor_property_gated_on_mode(self):
        kernel = Kernel(name="threads-only")
        with pytest.raises(WedgeError, match="scheduler"):
            kernel.reactor
        kernel.kill()

    def test_scheduler_override_scopes_the_default(self):
        assert Kernel.DEFAULT_SCHEDULER == "threads"
        with Kernel.scheduler_override("reactor"):
            inner = Kernel(name="inner")
            assert inner.scheduler == "reactor"
            inner.kill()
        assert Kernel.DEFAULT_SCHEDULER == "threads"
        # None is a no-op so call sites can pass an optional through
        with Kernel.scheduler_override(None):
            assert Kernel.DEFAULT_SCHEDULER == "threads"

    def test_kill_closes_the_reactor(self):
        kernel = Kernel(name="closing", scheduler="reactor")
        kernel.start_main()
        reactor = kernel.reactor
        kernel.kill()
        with pytest.raises(WedgeError, match="closed"):
            reactor.spawn(iter(()), name="late")

    def test_plain_callable_bodies_keep_their_thread(self):
        """The escape hatch: non-generator bodies run on OS threads
        even under the reactor scheduler."""
        kernel = Kernel(name="hatch", scheduler="reactor")
        kernel.start_main()
        seen = {}

        def blocking_body(arg):
            seen["thread"] = threading.current_thread().name
            return arg * 2

        st = kernel.sthread_create(SecurityContext(), blocking_body, 21,
                                   name="blocker")
        assert kernel.sthread_join(st) == 42
        # ran on its own (sthread-named) OS thread, not the reactor loop
        assert seen["thread"] == "blocker"
        assert seen["thread"] != threading.current_thread().name
        kernel.kill()


class TestCooperativeSthreads:
    def test_generator_body_serves_real_syscalls(self):
        """A coop sthread accepts, echoes through compartment memory,
        and joins — all on the reactor, no thread per connection."""
        net = Network()
        kernel = Kernel(net=net, name="coop", scheduler="reactor")
        kernel.start_main()
        listen_fd = kernel.listen("coop:80")
        sc = SecurityContext()
        sc_fd_add(sc, listen_fd, 1)   # FD_READ: what listen granted

        def body(lfd):
            fd = yield from kernel.co_accept(lfd, timeout=5.0)
            data = yield from kernel.co_recv_exact(fd, 5)
            buf = kernel.malloc(len(data))
            kernel.mem_write(buf, data)
            echoed = bytes(kernel.mem_read(buf, len(data)))
            kernel.sfree(buf)
            yield from kernel.co_send(fd, echoed[::-1])
            kernel.close(fd)
            return echoed

        st = kernel.sthread_create(sc, body, listen_fd, name="server",
                                   heap_size=2 * PAGE_SIZE,
                                   stack_size=PAGE_SIZE)
        kernel.reactor.ensure_running()
        sock = net.connect("coop:80")
        sock.send(b"hello")
        assert sock.recv(5, timeout=5.0) == b"olleh"
        assert kernel.sthread_join(st, timeout=5.0) == b"hello"
        sock.close()
        kernel.kill()

    def test_tiny_regions_are_page_granular(self):
        kernel = Kernel(name="tiny", scheduler="reactor")
        kernel.start_main()

        def body(arg):
            buf = kernel.malloc(64)
            kernel.mem_write(buf, b"x" * 64)
            kernel.sfree(buf)
            yield
            return "fit"

        st = kernel.sthread_create(SecurityContext(), body,
                                   name="tiny",
                                   heap_size=2 * PAGE_SIZE,
                                   stack_size=PAGE_SIZE)
        kernel.reactor.ensure_running()
        assert kernel.sthread_join(st, timeout=5.0) == "fit"
        assert st.heap_segment.npages == 2
        assert st.stack_segment.npages == 1
        kernel.kill()

    def test_co_accept_timeout_is_typed(self):
        net = Network()
        kernel = Kernel(net=net, name="quiet", scheduler="reactor")
        kernel.start_main()
        listen_fd = kernel.listen("quiet:80")
        sc = SecurityContext()
        sc_fd_add(sc, listen_fd, 1)
        outcome = {}

        def body(lfd):
            try:
                yield from kernel.co_accept(lfd, timeout=0.1)
            except NetTimeout:
                outcome["typed"] = True
            return "done"

        st = kernel.sthread_create(sc, body, listen_fd, name="waiter")
        kernel.reactor.ensure_running()
        assert kernel.sthread_join(st, timeout=5.0) == "done"
        assert outcome.get("typed") is True
        kernel.kill()
