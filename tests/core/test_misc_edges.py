"""Edge cases across the core that earlier files did not pin down."""

import pytest

from repro.core.errors import (CallgateError, PolicyError, WedgeError)
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import SecurityContext, sc_cgate_add, sc_mem_add


class TestCurrentAndCaller:
    def test_current_before_boot_raises(self):
        from repro.core.kernel import Kernel
        kernel = Kernel()
        with pytest.raises(WedgeError, match="start_main"):
            kernel.current()

    def test_caller_outside_gate_raises(self, kernel):
        with pytest.raises(WedgeError, match="caller"):
            kernel.caller()

    def test_caller_inside_gate_is_the_invoker(self, kernel):
        names = {}

        def entry(trusted, arg):
            names["caller"] = kernel.caller().name
            names["gate"] = kernel.current().name

        gate = kernel.create_gate(entry, SecurityContext())
        sc = SecurityContext()
        sc_cgate_add(sc, gate.id)
        child = kernel.sthread_create(sc, lambda a: kernel.cgate(gate.id),
                                      name="invoker", spawn="inline")
        kernel.sthread_join(child)
        assert names["caller"] == "invoker"
        assert names["gate"].startswith("cg:")


class TestGatePermsEdges:
    def test_cgate_perms_cannot_carry_gates(self, kernel):
        gate = kernel.create_gate(lambda t, a: None, SecurityContext())
        evil_perms = SecurityContext()
        sc_cgate_add(evil_perms, gate.id)
        with pytest.raises(PolicyError):
            kernel.cgate(gate.id, evil_perms)

    def test_gate_invocation_count_tracked(self, kernel):
        gate = kernel.create_gate(lambda t, a: None, SecurityContext())
        for _ in range(3):
            kernel.cgate(gate.id)
        assert kernel.gate_record(gate.id).invocations == 3

    def test_gate_sees_snapshot_not_live_globals(self, bare_kernel):
        kernel = bare_kernel
        kernel.declare_global("flag", 8, b"pristine")
        kernel.start_main()
        addr = kernel.image.addr_of("flag")
        kernel.mem_write(addr, b"mutated!")

        def entry(trusted, arg):
            return kernel.mem_read(addr, 8)

        gate = kernel.create_gate(entry, SecurityContext())
        assert kernel.cgate(gate.id) == b"pristine"


class TestCowInteractions:
    def test_fork_then_grandchild_sthread(self, kernel):
        """An sthread created inside a fork child still sees the
        pristine pre-main snapshot, not the child's view."""
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag, init=b"tagged!!")

        def grandchild(arg):
            return kernel.mem_read(buf.addr, 8)

        def child(arg):
            sc = sc_mem_add(SecurityContext(), tag, PROT_READ)
            worker = kernel.sthread_create(sc, grandchild,
                                           spawn="inline")
            return kernel.sthread_join(worker)

        forked = kernel.fork(child, spawn="inline")
        assert kernel.sthread_join(forked) == b"tagged!!"

    def test_cow_grant_after_shared_write(self, kernel):
        """COW diverges from the tag's *current* frames at map time."""
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag, init=b"version1")
        kernel.mem_write(buf.addr, b"version2")
        sc = sc_mem_add(SecurityContext(), tag, 4)  # PROT_COW
        child = kernel.sthread_create(
            sc, lambda a: kernel.mem_read(buf.addr, 8), spawn="inline")
        assert kernel.sthread_join(child) == b"version2"


class TestBufferAndSpace:
    def test_find_after_tag_delete_without_cache(self):
        from repro.core.errors import BadAddress
        from repro.core.kernel import Kernel
        kernel = Kernel(tag_cache=False)
        kernel.start_main()
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag)
        kernel.tag_delete(tag)
        with pytest.raises(BadAddress):
            kernel.space.find(buf.addr)

    def test_deleted_tag_address_reused_after_cache_hit(self, kernel):
        tag = kernel.tag_new()
        base = tag.segment.base
        kernel.tag_delete(tag)
        tag2 = kernel.tag_new()
        assert tag2.segment.base == base   # same segment, recycled


class TestKernelCosts:
    def test_every_weight_is_positive(self):
        from repro.core.costs import WEIGHTS
        assert all(weight > 0 for weight in WEIGHTS.values())

    def test_cgate_charges_lookup(self, kernel):
        gate = kernel.create_gate(lambda t, a: None, SecurityContext())
        before = kernel.costs.counters.get("cgate_lookup", 0)
        kernel.cgate(gate.id)
        assert kernel.costs.counters["cgate_lookup"] == before + 1
