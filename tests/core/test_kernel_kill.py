"""Kernel.kill(): the whole-machine fault domain behind the cluster."""

import pytest

from repro.apps.httpd.monolithic import MonolithicHttpd
from repro.core.errors import ConnectionRefused, KernelDead, PeerReset
from repro.core.kernel import Kernel
from repro.net import Network


def make_kernel(name="victim"):
    net = Network()
    kernel = Kernel(net=net, name=name)
    kernel.start_main()
    return net, kernel


class TestKill:
    def test_syscalls_refuse_after_kill(self):
        _, kernel = make_kernel()
        kernel.kill()
        with pytest.raises(KernelDead):
            kernel.listen("victim:80")
        with pytest.raises(KernelDead):
            kernel.connect("victim:80")

    def test_kill_is_idempotent(self):
        _, kernel = make_kernel()
        kernel.kill()
        kernel.kill()
        assert not kernel.alive

    def test_kill_unbinds_listeners(self):
        net, kernel = make_kernel()
        kernel.listen("victim:80")
        assert net.connect("victim:80")
        kernel.kill()
        with pytest.raises(ConnectionRefused):
            net.connect("victim:80")

    def test_kill_resets_accepted_peers(self):
        net, kernel = make_kernel()
        listen_fd = kernel.listen("victim:80")
        client = net.connect("victim:80")
        kernel.accept(listen_fd, timeout=2.0)
        kernel.kill()
        with pytest.raises(PeerReset):
            client.recv(1, timeout=2.0)

    def test_kill_resets_pending_peers(self):
        net, kernel = make_kernel()
        kernel.listen("victim:80")
        client = net.connect("victim:80")    # queued, never accepted
        kernel.kill()
        with pytest.raises(PeerReset):
            client.recv(1, timeout=2.0)


class TestKilledServer:
    def test_httpd_service_threads_exit(self):
        net = Network()
        server = MonolithicHttpd(net, "victim:443").start()
        server.kernel.kill()
        server.stop()     # joins promptly: accept loop saw KernelDead
        with pytest.raises(ConnectionRefused):
            net.connect("victim:443")
