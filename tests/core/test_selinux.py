"""Unit tests for the SELinux-lite syscall policy."""

import pytest

from repro.core.errors import PolicyError, SyscallDenied
from repro.core.policy import SecurityContext, sc_sel_context
from repro.core.selinux import (ALL_SYSCALLS, UNCONFINED, SELinuxPolicy,
                                permissive_policy)


@pytest.fixture
def policy():
    p = SELinuxPolicy()
    p.define_domain("u:r:net_t", {"connect", "send", "recv"})
    p.define_domain("u:r:file_t", {"open", "read", "close"})
    p.allow_transition("u:r:net_t", "u:r:file_t")
    return p


class TestAllowSets:
    def test_unconfined_allows_everything(self, policy):
        policy.check_syscall(UNCONFINED, "anything_at_all")

    def test_domain_allows_listed(self, policy):
        policy.check_syscall("u:r:net_t", "connect")

    def test_domain_denies_unlisted(self, policy):
        with pytest.raises(SyscallDenied) as err:
            policy.check_syscall("u:r:net_t", "open")
        assert err.value.syscall == "open"
        assert err.value.sid == "u:r:net_t"

    def test_unknown_sid_denied(self, policy):
        with pytest.raises(SyscallDenied):
            policy.check_syscall("u:r:bogus_t", "open")

    def test_wildcard_domain(self, policy):
        policy.define_domain("u:r:god_t", {ALL_SYSCALLS})
        policy.check_syscall("u:r:god_t", "whatever")


class TestTransitions:
    def test_same_sid_always_fine(self, policy):
        policy.check_transition("u:r:net_t", "u:r:net_t")

    def test_allowed_transition(self, policy):
        policy.check_transition("u:r:net_t", "u:r:file_t")

    def test_disallowed_transition(self, policy):
        with pytest.raises(PolicyError):
            policy.check_transition("u:r:file_t", "u:r:net_t")

    def test_unconfined_enters_any_defined_domain(self, policy):
        policy.check_transition(UNCONFINED, "u:r:net_t")

    def test_unconfined_cannot_enter_undefined_domain(self, policy):
        with pytest.raises(PolicyError):
            policy.check_transition(UNCONFINED, "u:r:bogus_t")


class TestKernelIntegration:
    def test_confined_sthread_denied_syscall(self):
        from repro.core.kernel import Kernel
        from repro.net import Network
        policy = SELinuxPolicy()
        policy.define_domain("u:r:quiet_t", set())  # no syscalls at all
        kernel = Kernel(selinux=policy, net=Network())
        kernel.start_main()

        def body(arg):
            kernel.open("/anything", "r")

        sc = sc_sel_context(SecurityContext(), "u:r:quiet_t")
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert isinstance(child.fault, SyscallDenied)

    def test_paper_evaluation_mode(self):
        """The paper grants all syscalls to focus on memory privileges."""
        policy = permissive_policy()
        policy.check_syscall("system_u:system_r:wedge_app_t", "open")
        policy.check_syscall("system_u:system_r:wedge_app_t", "connect")
