"""SimDisk crash semantics and the ``sc_disk_*`` syscall family.

The durability contract everything in :mod:`repro.apps.kv.wal` rides
on: writes buffer, fsync is the only barrier, a power loss keeps an
arbitrary per-sector prefix of the unflushed stream — sector-atomic,
torn across sectors, reproducible from a seed.
"""

import random

import pytest

from repro.core.errors import FdPermissionError, KernelDead
from repro.core.policy import FD_READ, FD_RW
from repro.core.costs import WEIGHTS
from repro.disk import SECTOR_SIZE, DiskError, SimDisk

SEC = SECTOR_SIZE


# -- the device alone --------------------------------------------------------

class TestSimDisk:
    def test_geometry_is_validated(self):
        with pytest.raises(DiskError):
            SimDisk(100, sector=64)          # size not sector-aligned
        with pytest.raises(DiskError):
            SimDisk(0)
        with pytest.raises(DiskError):
            SimDisk(256, sector=0)

    def test_io_beyond_the_device_refuses(self):
        disk = SimDisk(4 * SEC)
        with pytest.raises(DiskError):
            disk.read(4 * SEC - 1, 2)
        with pytest.raises(DiskError):
            disk.write(-1, b"x")
        disk.write(4 * SEC - 1, b"x")        # last byte is fine

    def test_reads_see_buffered_writes_but_durable_image_does_not(self):
        disk = SimDisk(4 * SEC)
        disk.write(10, b"hello")
        assert disk.read(10, 5) == b"hello"          # buffer cache
        assert disk.durable_bytes(10, 5) == b"\0" * 5  # not durable
        assert disk.pending_count == 1
        assert disk.fsync() == 1
        assert disk.durable_bytes(10, 5) == b"hello"
        assert disk.pending_count == 0

    def test_later_write_overlays_earlier_in_stream_order(self):
        disk = SimDisk(4 * SEC)
        disk.write(0, b"AAAA")
        disk.write(2, b"BB")
        assert disk.read(0, 4) == b"AABB"
        disk.fsync()
        assert disk.durable_bytes(0, 4) == b"AABB"

    def test_cross_sector_write_splits_into_sector_subwrites(self):
        disk = SimDisk(4 * SEC)
        data = bytes(range(SEC + 10))        # spans two sectors
        disk.write(SEC - 5, data)
        assert disk.pending_count == 3       # 5 + SEC + 10 bytes
        assert disk.sector_span(SEC - 5, len(data)) == 3
        assert disk.read(SEC - 5, len(data)) == data

    def test_drop_pending_loses_everything_unflushed(self):
        disk = SimDisk(4 * SEC)
        disk.write(0, b"keep")
        disk.fsync()
        disk.write(0, b"lost")
        assert disk.drop_pending() == 1
        assert disk.read(0, 4) == b"keep"

    def test_power_loss_keeps_a_seeded_per_sector_prefix(self):
        disk = SimDisk(4 * SEC)
        for i in range(8):
            disk.write(i * 4, bytes([i + 1]) * 4)    # all in sector 0
        applied, dropped = disk.power_loss(random.Random(3))
        assert applied + dropped == 8
        # a *prefix* survived: if sub-write i is durable, so is every
        # earlier sub-write (they all target the same sector)
        flags = [disk.durable_bytes(i * 4, 4) == bytes([i + 1]) * 4
                 for i in range(8)]
        assert flags == sorted(flags, reverse=True)
        assert disk.pending_count == 0

    def test_power_loss_is_reproducible_from_the_seed(self):
        def run(seed):
            disk = SimDisk(8 * SEC)
            for i in range(12):
                disk.write((i * 37) % (7 * SEC), b"%04d" % i)
            disk.power_loss(random.Random(seed))
            return disk.durable_bytes()

        assert run(11) == run(11)
        images = {run(s) for s in range(20)}
        assert len(images) > 1               # the tear point varies

    def test_power_loss_can_tear_a_multi_sector_write(self):
        torn = False
        for seed in range(40):
            disk = SimDisk(4 * SEC)
            disk.write(0, b"A" * (2 * SEC))  # two sector sub-writes
            disk.power_loss(random.Random(seed))
            first = disk.durable_bytes(0, SEC) == b"A" * SEC
            second = disk.durable_bytes(SEC, SEC) == b"A" * SEC
            if first != second:
                torn = True
                break
        assert torn, "no seed in 0..39 tore the 2-sector write"

    def test_fsynced_data_survives_any_power_loss(self):
        for seed in range(10):
            disk = SimDisk(4 * SEC)
            disk.write(0, b"durable!")
            disk.fsync()
            disk.write(0, b"maybe...")
            disk.power_loss(random.Random(seed))
            assert disk.durable_bytes(0, 8) in (b"durable!", b"maybe...")


# -- the syscall surface -----------------------------------------------------

class TestDiskSyscalls:
    def test_open_write_fsync_read_roundtrip_is_priced(self, kernel):
        disk = SimDisk(4 * SEC, name="t-disk")
        fd = kernel.disk_open(disk)
        mark = kernel.costs.checkpoint()
        assert kernel.disk_write(fd, 0, b"x" * (SEC + 1)) == SEC + 1
        wrote = kernel.costs.delta(mark)
        assert wrote >= 2 * WEIGHTS["disk_sector_write"]
        mark = kernel.costs.checkpoint()
        kernel.disk_fsync(fd)
        assert kernel.costs.delta(mark) >= \
            WEIGHTS["disk_fsync"]
        assert kernel.disk_read(fd, 0, SEC + 1) == b"x" * (SEC + 1)

    def test_read_only_grant_cannot_write_or_fsync(self, kernel):
        disk = SimDisk(4 * SEC)
        fd = kernel.disk_open(disk)
        table = kernel.current().fdtable
        ro = table.install(table.lookup(fd).file, FD_READ)
        assert kernel.disk_read(ro, 0, 4) == b"\0" * 4
        with pytest.raises(FdPermissionError):
            kernel.disk_write(ro, 0, b"nope")
        with pytest.raises(FdPermissionError):
            kernel.disk_fsync(ro)

    def test_plain_kill_drops_unflushed_writes(self, kernel):
        disk = SimDisk(4 * SEC)
        fd = kernel.disk_open(disk)
        kernel.disk_write(fd, 0, b"durable")
        kernel.disk_fsync(fd)
        kernel.disk_write(fd, 0, b"vanishe")
        kernel.kill()
        assert disk.durable_bytes(0, 7) == b"durable"
        assert disk.pending_count == 0
        with pytest.raises(KernelDead):
            kernel.disk_read(fd, 0, 7)

    def test_power_loss_kill_is_seeded_and_survives_the_kernel(
            self, kernel):
        disk = SimDisk(4 * SEC)
        fd = kernel.disk_open(disk)
        for i in range(6):
            kernel.disk_write(fd, i * 8, b"%08d" % i)
        kernel.kill(power_loss=True, seed=5)
        image = disk.durable_bytes()
        # the platter outlives the machine: a new kernel re-opens it
        from repro.core.kernel import Kernel
        from repro.net import Network
        k2 = Kernel(net=Network(), name="incarnation-2")
        k2.start_main()
        fd2 = k2.disk_open(disk)
        assert k2.disk_read(fd2, 0, disk.size) == image
        k2.kill()

    def test_disk_open_installs_an_fd_rw_grant(self, kernel):
        disk = SimDisk(4 * SEC)
        fd = kernel.disk_open(disk)
        assert kernel.current().fdtable.perms_of(fd) == FD_RW
