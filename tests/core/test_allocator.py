"""Unit tests for the boundary-tag heap allocator."""

import pytest

from repro.core.allocator import (HEADER, MIN_CHUNK, OVERHEAD, Heap,
                                  _align_up)
from repro.core.errors import AllocationError, OutOfMemory
from repro.core.memory import AddressSpace


@pytest.fixture
def heap():
    space = AddressSpace()
    seg = space.create_segment(8192, name="heap")
    h = Heap(seg, 8192)
    h.format()
    return h


class TestFormat:
    def test_formatted_heap_is_one_free_chunk(self, heap):
        chunks = list(heap.walk())
        assert len(chunks) == 1
        assert not chunks[0][2]

    def test_is_formatted(self, heap):
        assert heap.is_formatted()

    def test_unformatted_not_recognised(self):
        space = AddressSpace()
        seg = space.create_segment(8192)
        assert not Heap(seg, 8192).is_formatted()

    def test_too_small_region_rejected(self):
        space = AddressSpace()
        seg = space.create_segment(4096)
        with pytest.raises(ValueError):
            Heap(seg, 16)

    def test_invariants_after_format(self, heap):
        heap.check_invariants()


class TestAllocFree:
    def test_alloc_returns_aligned_payload(self, heap):
        off = heap.alloc(10)
        assert off % 8 == 0

    def test_allocations_do_not_overlap(self, heap):
        offsets = [(heap.alloc(24), 24) for _ in range(20)]
        spans = sorted((off, off + size) for off, size in offsets)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_free_then_alloc_reuses(self, heap):
        off = heap.alloc(100)
        heap.free(off)
        again = heap.alloc(100)
        assert again == off

    def test_usable_size_at_least_requested(self, heap):
        off = heap.alloc(33)
        assert heap.usable_size(off) >= 33

    def test_zero_alloc_rejected(self, heap):
        with pytest.raises(AllocationError):
            heap.alloc(0)

    def test_oom(self, heap):
        with pytest.raises(OutOfMemory):
            heap.alloc(10_000_000)

    def test_heap_fills_and_recovers(self, heap):
        offsets = []
        with pytest.raises(OutOfMemory):
            while True:
                offsets.append(heap.alloc(256))
        for off in offsets:
            heap.free(off)
        heap.check_invariants()
        # after freeing everything the arena coalesces back to one chunk
        assert len(list(heap.walk())) == 1

    def test_double_free_detected(self, heap):
        off = heap.alloc(64)
        heap.free(off)
        with pytest.raises(AllocationError):
            heap.free(off)

    def test_free_of_wild_offset_detected(self, heap):
        with pytest.raises(AllocationError):
            heap.free(12345)


class TestSplitCoalesce:
    def test_split_leaves_remainder_free(self, heap):
        before = heap.free_bytes()
        off = heap.alloc(64)
        after = heap.free_bytes()
        assert before - after <= _align_up(64) + OVERHEAD + MIN_CHUNK
        heap.free(off)

    def test_coalesce_right(self, heap):
        a = heap.alloc(64)
        b = heap.alloc(64)
        heap.free(b)   # b merges with the big right free chunk
        heap.free(a)   # a merges with that
        assert len(list(heap.walk())) == 1

    def test_coalesce_left(self, heap):
        a = heap.alloc(64)
        b = heap.alloc(64)
        heap.alloc(64)  # plug so b cannot merge right
        heap.free(a)
        heap.free(b)    # merges left into a
        free_chunks = [c for c in heap.walk() if not c[2]]
        sizes = [size for _, size, _ in free_chunks]
        assert any(size >= 2 * (64 + OVERHEAD) for size in sizes)
        heap.check_invariants()

    def test_coalesce_both_sides(self, heap):
        a = heap.alloc(64)
        b = heap.alloc(64)
        c = heap.alloc(64)
        heap.alloc(64)  # plug
        heap.free(a)
        heap.free(c)
        heap.free(b)   # merges with both neighbours
        heap.check_invariants()
        free_runs = [size for _, size, inuse in heap.walk() if not inuse]
        assert any(size >= 3 * (64 + OVERHEAD) for size in free_runs)

    def test_no_adjacent_free_chunks_ever(self, heap):
        offs = [heap.alloc(40) for _ in range(30)]
        for off in offs[::2]:
            heap.free(off)
        for off in offs[1::2]:
            heap.free(off)
        heap.check_invariants()


class TestBookkeepingExtents:
    def test_extents_cover_format_writes(self, heap):
        extents = heap.bookkeeping_extents()
        assert len(extents) == 2
        (start_off, start_len), (foot_off, foot_len) = extents
        assert start_off == 0
        assert start_len >= HEADER + 8
        assert foot_len == 4
        assert foot_off > start_len

    def test_patching_extents_restores_fresh_heap(self):
        """The tag-reuse scrub path: zero + patch == freshly formatted."""
        space = AddressSpace()
        seg = space.create_segment(8192)
        heap = Heap(seg, 8192)
        heap.format()
        patches = [(off, seg.read_raw(off, length))
                   for off, length in heap.bookkeeping_extents()]
        # dirty the heap thoroughly
        for _ in range(5):
            heap.alloc(100)
        # scrub: zero everything, re-apply the patches
        seg.write_raw(0, bytes(8192))
        for off, data in patches:
            seg.write_raw(off, data)
        restored = Heap(seg, 8192)
        assert restored.is_formatted()
        restored.check_invariants()
        assert len(list(restored.walk())) == 1
