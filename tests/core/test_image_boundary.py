"""Process image, snapshot, and BOUNDARY_VAR/TAG (paper §3.2, §4.1)."""

import pytest

from repro.core.boundary import BOUNDARY_TAG, BOUNDARY_VAR
from repro.core.errors import MemoryViolation, WedgeError
from repro.core.image import ImageBuilder
from repro.core.memory import AddressSpace, PROT_READ
from repro.core.policy import SecurityContext, sc_mem_add


class TestImageBuilder:
    def test_declare_and_addr(self, bare_kernel):
        var = bare_kernel.declare_global("x", 8, b"init")
        bare_kernel.start_main()
        addr = bare_kernel.image.addr_of("x")
        assert bare_kernel.mem_read(addr, 4) == b"init"

    def test_duplicate_declaration(self, bare_kernel):
        bare_kernel.declare_global("x", 8)
        with pytest.raises(WedgeError):
            bare_kernel.declare_global("x", 8)

    def test_oversized_init(self, bare_kernel):
        with pytest.raises(WedgeError):
            bare_kernel.declare_global("x", 4, b"way too long")

    def test_declare_after_seal(self, bare_kernel):
        bare_kernel.start_main()
        with pytest.raises(WedgeError):
            bare_kernel.declare_global("late", 8)

    def test_var_at_resolution(self):
        builder = ImageBuilder()
        builder.declare("a", 8)
        builder.declare("b", 16)
        image = builder.seal(AddressSpace())
        var, inner = image.var_at(image.addr_of("b") -
                                  image.segment.base + 3)
        assert var.name == "b"
        assert inner == 3

    def test_unknown_global(self, bare_kernel):
        bare_kernel.start_main()
        with pytest.raises(WedgeError):
            bare_kernel.image.addr_of("nope")

    def test_start_main_twice(self, bare_kernel):
        bare_kernel.start_main()
        with pytest.raises(WedgeError):
            bare_kernel.start_main()


class TestBoundary:
    def test_boundary_var_not_in_default_snapshot(self, bare_kernel):
        """Sensitive statically-initialised globals are *not* given to
        sthreads by default (paper §4.1)."""
        kernel = bare_kernel
        BOUNDARY_VAR(kernel, 1, "api_key", 16, b"statically-secret")
        kernel.start_main()
        tag = BOUNDARY_TAG(kernel, 1)
        addr = kernel.boundary.section(1).addr_of("api_key")
        child = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.mem_read(addr, 16),
            spawn="inline")
        assert child.faulted
        assert isinstance(child.fault, MemoryViolation)

    def test_boundary_tag_grants_access(self, bare_kernel):
        kernel = bare_kernel
        BOUNDARY_VAR(kernel, 2, "shared_table", 16, b"shared-init-data")
        kernel.start_main()
        tag = BOUNDARY_TAG(kernel, 2)
        addr = kernel.boundary.section(2).addr_of("shared_table")
        sc = sc_mem_add(SecurityContext(), tag, PROT_READ)
        child = kernel.sthread_create(
            sc, lambda a: kernel.mem_read(addr, 16), spawn="inline")
        assert kernel.sthread_join(child) == b"shared-init-data"

    def test_boundary_tag_is_stable(self, bare_kernel):
        kernel = bare_kernel
        BOUNDARY_VAR(kernel, 3, "v", 8)
        kernel.start_main()
        assert BOUNDARY_TAG(kernel, 3) is BOUNDARY_TAG(kernel, 3)

    def test_boundary_tag_before_main(self, bare_kernel):
        BOUNDARY_VAR(bare_kernel, 4, "v", 8)
        with pytest.raises(WedgeError):
            BOUNDARY_TAG(bare_kernel, 4)

    def test_same_id_groups_vars_in_one_section(self, bare_kernel):
        kernel = bare_kernel
        BOUNDARY_VAR(kernel, 5, "a", 8, b"AAAA")
        BOUNDARY_VAR(kernel, 5, "b", 8, b"BBBB")
        kernel.start_main()
        section = kernel.boundary.section(5)
        assert section.addr_of("a") != section.addr_of("b")
        seg_a, _ = kernel.space.find(section.addr_of("a"))
        seg_b, _ = kernel.space.find(section.addr_of("b"))
        assert seg_a is seg_b

    def test_different_ids_get_distinct_sections(self, bare_kernel):
        kernel = bare_kernel
        BOUNDARY_VAR(kernel, 6, "a", 8)
        BOUNDARY_VAR(kernel, 7, "b", 8)
        kernel.start_main()
        seg_a = kernel.boundary.section(6).segment
        seg_b = kernel.boundary.section(7).segment
        assert seg_a is not seg_b

    def test_duplicate_var_in_section(self, bare_kernel):
        BOUNDARY_VAR(bare_kernel, 8, "dup", 8)
        with pytest.raises(WedgeError):
            BOUNDARY_VAR(bare_kernel, 8, "dup", 8)

    def test_declaration_after_main_rejected(self, bare_kernel):
        bare_kernel.start_main()
        with pytest.raises(WedgeError):
            BOUNDARY_VAR(bare_kernel, 9, "late", 8)
