"""Kernel odds and ends: identity syscalls, files, pipes, buffers."""

import pytest

from repro.core.errors import (BadFileDescriptor, SyscallDenied, TagError,
                               VfsError, WedgeError)
from repro.core.kernel import Buffer
from repro.core.policy import SecurityContext


class TestIdentity:
    def test_getuid_default_root(self, kernel):
        assert kernel.getuid() == 0

    def test_setuid_drop_and_stick(self, kernel):
        def body(arg):
            kernel.setuid(1000)
            try:
                kernel.setuid(0)
            except SyscallDenied:
                return kernel.getuid()

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert kernel.sthread_join(child) == 1000

    def test_chroot_requires_root(self, kernel):
        kernel.vfs.mkdir("/jail")
        sc = SecurityContext(uid=1000)

        def body(arg):
            kernel.chroot("/jail")

        child = kernel.sthread_create(sc, body, spawn="inline")
        assert isinstance(child.fault, SyscallDenied)

    def test_promote_requires_root(self, kernel):
        sc = SecurityContext(uid=1000)

        def body(arg):
            kernel.promote(kernel.current(), uid=0)

        child = kernel.sthread_create(sc, body, spawn="inline")
        assert isinstance(child.fault, SyscallDenied)


class TestFiles:
    def test_open_read_write_roundtrip(self, kernel):
        fd = kernel.open("/tmp/out", "w")
        kernel.write(fd, b"hello file")
        kernel.close(fd)
        fd = kernel.open("/tmp/out", "r")
        assert kernel.read(fd, 64) == b"hello file"
        kernel.close(fd)

    def test_append_mode(self, kernel):
        fd = kernel.open("/tmp/log", "w")
        kernel.write(fd, b"one")
        kernel.close(fd)
        fd = kernel.open("/tmp/log", "a")
        kernel.write(fd, b"two")
        kernel.close(fd)
        fd = kernel.open("/tmp/log", "r")
        assert kernel.read(fd, 64) == b"onetwo"

    def test_open_missing_for_read(self, kernel):
        with pytest.raises(VfsError):
            kernel.open("/missing", "r")

    def test_bad_mode(self, kernel):
        with pytest.raises(VfsError):
            kernel.open("/tmp/x", "rb+")

    def test_read_fd_cannot_write(self, kernel):
        kernel.vfs.write_file("/tmp/ro", b"data")
        fd = kernel.open("/tmp/ro", "r")
        with pytest.raises(WedgeError):
            kernel.write(fd, b"nope")

    def test_chroot_changes_resolution(self, kernel):
        kernel.vfs.write_file("/jail/etc/motd", b"jailed hello")
        kernel.vfs.write_file("/etc/motd", b"real hello")

        def body(arg):
            fd = kernel.open("/etc/motd", "r")
            return kernel.read(fd, 64)

        sc = SecurityContext(root="/jail")
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == b"jailed hello"


class TestPipe:
    def test_pipe_roundtrip(self, kernel):
        rfd, wfd = kernel.pipe()
        kernel.write(wfd, b"through the pipe")
        assert kernel.read(rfd, 64) == b"through the pipe"

    def test_pipe_ends_are_directional(self, kernel):
        rfd, wfd = kernel.pipe()
        with pytest.raises(WedgeError):
            kernel.write(rfd, b"x")


class TestBuffer:
    def test_buffer_offsets(self, kernel):
        buf = kernel.alloc_buf(16, init=b"0123456789abcdef")
        assert buf.read(4, offset=4) == b"4567"
        buf.write(b"XY", offset=14)
        assert buf.read()[-2:] == b"XY"

    def test_buffer_overflow_guard(self, kernel):
        buf = kernel.alloc_buf(8)
        with pytest.raises(WedgeError):
            buf.write(b"123456789")

    def test_len(self, kernel):
        assert len(kernel.alloc_buf(24)) == 24


class TestAllocErrors:
    def test_sfree_of_non_heap_address(self, kernel):
        with pytest.raises(Exception):
            kernel.sfree(0xDEAD)

    def test_sfree_of_other_sthreads_heap(self, kernel):
        addr_holder = {}

        def body(arg):
            addr_holder["addr"] = kernel.malloc(16)

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        kernel.sthread_join(child)
        with pytest.raises(TagError):
            kernel.sfree(addr_holder["addr"])

    def test_smalloc_requires_rw(self, kernel):
        from repro.core.errors import PolicyError
        from repro.core.memory import PROT_READ
        from repro.core.policy import sc_mem_add
        tag = kernel.tag_new()
        sc = sc_mem_add(SecurityContext(), tag, PROT_READ)

        def body(arg):
            kernel.smalloc(8, tag)

        child = kernel.sthread_create(sc, body, spawn="inline")
        assert isinstance(child.error, PolicyError)

    def test_malloc_free_reuse(self, kernel):
        a = kernel.malloc(100)
        kernel.free(a)
        b = kernel.malloc(100)
        assert a == b

    def test_tag_delete_requires_holding(self, kernel):
        tag = kernel.tag_new()

        def body(arg):
            kernel.tag_delete(tag)

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert isinstance(child.error, TagError)


class TestNetworkSyscalls:
    def test_listen_accept_connect(self, kernel):
        lfd = kernel.listen("me:80")
        cfd = kernel.connect("me:80")
        sfd = kernel.accept(lfd, timeout=2)
        kernel.send(cfd, b"hi server")
        assert kernel.recv(sfd, 64) == b"hi server"
        kernel.send(sfd, b"hi client")
        assert kernel.recv_exact(cfd, 9) == b"hi client"

    def test_no_network_attached(self):
        from repro.core.kernel import Kernel
        k = Kernel()
        k.start_main()
        with pytest.raises(WedgeError):
            k.listen("x:1")

    def test_closed_fd_recv(self, kernel):
        kernel.net.listen("y:1")
        fd = kernel.connect("y:1")
        kernel.close(fd)
        with pytest.raises(BadFileDescriptor):
            kernel.recv(fd, 4)
