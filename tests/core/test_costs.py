"""Cost-model tests pinning the Figure 7 / Figure 8 shapes."""

import pytest

from repro.core.costs import WEIGHTS, CostAccount, NullAccount
from repro.core.policy import SecurityContext, sc_cgate_add
from repro.core.tags import DEFAULT_TAG_SIZE


class TestAccount:
    def test_charge_and_cycles(self):
        acct = CostAccount()
        acct.charge("syscall", 2)
        assert acct.cycles() == 2 * WEIGHTS["syscall"]

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            CostAccount().charge("teleport")

    def test_checkpoint_delta(self):
        acct = CostAccount()
        acct.charge("syscall")
        cp = acct.checkpoint()
        acct.charge("page_copy", 3)
        assert acct.delta(cp) == 3 * WEIGHTS["page_copy"]

    def test_null_account_ignores(self):
        acct = NullAccount()
        acct.charge("syscall", 100)
        assert acct.cycles() == 0


@pytest.fixture
def primitives(kernel):
    """Model cycles for each Figure 7 primitive, measured in-kernel."""
    def noop(arg):
        return None

    def gate_entry(trusted, arg):
        return None

    def meter(fn):
        cp = kernel.costs.checkpoint()
        fn()
        return kernel.costs.delta(cp)

    results = {}
    results["pthread"] = meter(lambda: kernel.sthread_join(
        kernel.pthread_create(noop, spawn="inline")))
    results["sthread"] = meter(lambda: kernel.sthread_join(
        kernel.sthread_create(SecurityContext(), noop, spawn="inline")))
    results["fork"] = meter(lambda: kernel.sthread_join(
        kernel.fork(noop, spawn="inline")))

    gate = kernel.create_gate(gate_entry, SecurityContext())
    recycled = kernel.create_gate(gate_entry, SecurityContext(),
                                  recycled=True)
    kernel.cgate(recycled.id)   # warm the persistent compartment
    results["callgate"] = meter(lambda: kernel.cgate(gate.id))
    results["recycled"] = meter(lambda: kernel.cgate(recycled.id))
    return results


class TestFigure7Shape:
    """The paper's microbenchmark orderings (Figure 7)."""

    def test_recycled_comparable_to_pthread(self, primitives):
        ratio = primitives["recycled"] / primitives["pthread"]
        assert 0.3 < ratio < 2.0

    def test_sthread_roughly_8x_pthread(self, primitives):
        ratio = primitives["sthread"] / primitives["pthread"]
        assert 5.0 < ratio < 12.0

    def test_callgate_comparable_to_sthread(self, primitives):
        ratio = primitives["callgate"] / primitives["sthread"]
        assert 0.8 < ratio < 1.3

    def test_fork_comparable_to_sthread(self, primitives):
        ratio = primitives["fork"] / primitives["sthread"]
        assert 0.8 < ratio < 1.6

    def test_recycled_8x_cheaper_than_callgate(self, primitives):
        ratio = primitives["callgate"] / primitives["recycled"]
        assert ratio > 4.0


class TestFigure8Shape:
    """Memory-call orderings (Figure 8)."""

    def test_orderings(self, kernel):
        def meter(fn):
            cp = kernel.costs.checkpoint()
            fn()
            return kernel.costs.delta(cp)

        malloc_cost = meter(lambda: kernel.malloc(64))
        fresh_cost = meter(lambda: kernel.tag_new(DEFAULT_TAG_SIZE))
        victim = kernel.tag_new(DEFAULT_TAG_SIZE)
        kernel.tag_delete(victim)
        reuse_cost = meter(lambda: kernel.tag_new(DEFAULT_TAG_SIZE))

        tag = kernel.tag_new()
        smalloc_cost = meter(lambda: kernel.smalloc(64, tag))

        # smalloc costs about the same as malloc (same allocator)
        assert smalloc_cost <= malloc_cost * 3
        # reuse is several times malloc but far below a fresh mmap
        assert malloc_cost < reuse_cost < fresh_cost
        assert fresh_cost / malloc_cost > 10
        assert reuse_cost < fresh_cost / 2
