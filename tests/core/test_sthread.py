"""Unit tests for sthreads: default-deny compartments (paper §3.1)."""

import pytest

from repro.core.errors import MemoryViolation, SthreadError, WedgeError
from repro.core.memory import PROT_COW, PROT_READ, PROT_RW
from repro.core.policy import (FD_READ, FD_RW, SecurityContext, sc_fd_add,
                               sc_mem_add)


class TestDefaultDeny:
    def test_new_sthread_cannot_read_parent_tag(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(16, tag=tag, init=b"sensitive-bytes!")
        child = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.mem_read(buf.addr, 16),
            spawn="inline")
        assert child.faulted
        assert isinstance(child.fault, MemoryViolation)

    def test_new_sthread_cannot_read_parent_private_heap(self, kernel):
        buf = kernel.alloc_buf(16, init=b"parent-heap-data")
        child = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.mem_read(buf.addr, 16),
            spawn="inline")
        assert child.faulted

    def test_new_sthread_has_no_fds(self, kernel):
        from repro.core.errors import BadFileDescriptor
        kernel.net.listen("svc:1")
        fd = kernel.connect("svc:1")
        child = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.send(fd, b"x"),
            spawn="inline")
        # like UNIX: a descriptor that was never granted is simply not
        # open in the child (EBADF), rather than a protection fault
        assert isinstance(child.error, BadFileDescriptor)

    def test_granted_tag_is_readable(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(16, tag=tag, init=b"shared-contents!")
        sc = sc_mem_add(SecurityContext(), tag, PROT_READ)
        child = kernel.sthread_create(
            sc, lambda a: kernel.mem_read(buf.addr, 16), spawn="inline")
        assert kernel.sthread_join(child) == b"shared-contents!"

    def test_read_grant_does_not_allow_write(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(16, tag=tag)
        sc = sc_mem_add(SecurityContext(), tag, PROT_READ)
        child = kernel.sthread_create(
            sc, lambda a: kernel.mem_write(buf.addr, b"overwrite"),
            spawn="inline")
        assert child.faulted

    def test_rw_grant_shares_writes(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(16, tag=tag)
        sc = sc_mem_add(SecurityContext(), tag, PROT_RW)
        child = kernel.sthread_create(
            sc, lambda a: kernel.mem_write(buf.addr, b"from-child"),
            spawn="inline")
        kernel.sthread_join(child)
        assert buf.read(10) == b"from-child"

    def test_cow_grant_writes_privately(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(16, tag=tag, init=b"pristine-pages!!")

        def body(arg):
            kernel.mem_write(buf.addr, b"private!")
            return kernel.mem_read(buf.addr, 8)

        sc = sc_mem_add(SecurityContext(), tag, PROT_COW)
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == b"private!"
        # the shared frames are untouched
        assert buf.read(8) == b"pristine"


class TestSnapshot:
    def test_child_sees_pristine_globals(self, bare_kernel):
        kernel = bare_kernel
        kernel.declare_global("config", 16, b"initial-value")
        kernel.start_main()
        addr = kernel.image.addr_of("config")
        # main scribbles secrets into a global after the snapshot
        kernel.mem_write(addr, b"RUNTIME-SECRET!!")
        child = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.mem_read(addr, 16),
            spawn="inline")
        # the child sees the pre-main snapshot, not main's secret
        assert kernel.sthread_join(child).startswith(b"initial-value")

    def test_child_global_writes_are_private(self, bare_kernel):
        kernel = bare_kernel
        kernel.declare_global("counter", 8, b"\x00" * 8)
        kernel.start_main()
        addr = kernel.image.addr_of("counter")

        def body(arg):
            kernel.mem_write(addr, b"CHILD!!!")
            return kernel.mem_read(addr, 8)

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert kernel.sthread_join(child) == b"CHILD!!!"
        assert kernel.mem_read(addr, 8) == b"\x00" * 8

    def test_siblings_do_not_share_global_writes(self, bare_kernel):
        kernel = bare_kernel
        kernel.declare_global("shared", 8, b"origorig")
        kernel.start_main()
        addr = kernel.image.addr_of("shared")

        def writer(arg):
            kernel.mem_write(addr, arg)
            return kernel.mem_read(addr, 8)

        a = kernel.sthread_create(SecurityContext(), writer, b"AAAAAAAA",
                                  spawn="inline")
        b = kernel.sthread_create(SecurityContext(), writer, b"BBBBBBBB",
                                  spawn="inline")
        assert kernel.sthread_join(a) == b"AAAAAAAA"
        assert kernel.sthread_join(b) == b"BBBBBBBB"


class TestPrivateRegions:
    def test_child_heap_is_fresh_and_private(self, kernel):
        def body(arg):
            buf = kernel.alloc_buf(32, init=b"child-local")
            return buf.addr

        a = kernel.sthread_create(SecurityContext(), body, spawn="inline")
        addr = kernel.sthread_join(a)
        # a sibling cannot read the first child's heap
        b = kernel.sthread_create(
            SecurityContext(), lambda _: kernel.mem_read(addr, 11),
            spawn="inline")
        assert b.faulted

    def test_sequential_workers_get_distinct_heaps(self, kernel):
        def body(arg):
            return kernel.current().heap_segment.id

        ids = set()
        for _ in range(3):
            child = kernel.sthread_create(SecurityContext(), body,
                                          spawn="inline")
            ids.add(kernel.sthread_join(child))
        assert len(ids) == 3


class TestFds:
    def test_fd_grant_with_read_only(self, kernel):
        kernel.net.listen("svc:2")
        fd = kernel.connect("svc:2")
        sc = sc_fd_add(SecurityContext(), fd, FD_READ)

        def body(arg):
            kernel.send(fd, b"should fail")

        child = kernel.sthread_create(sc, body, spawn="inline")
        assert child.faulted

    def test_fd_grant_rw_works(self, kernel):
        listener = kernel.net.listen("svc:3")
        fd = kernel.connect("svc:3")
        sc = sc_fd_add(SecurityContext(), fd, FD_RW)
        child = kernel.sthread_create(
            sc, lambda a: kernel.send(fd, b"ping"), spawn="inline")
        kernel.sthread_join(child)
        server_end = listener.accept(timeout=2)
        assert server_end.recv(4, timeout=2) == b"ping"

    def test_child_close_does_not_affect_parent(self, kernel):
        listener = kernel.net.listen("svc:4")
        fd = kernel.connect("svc:4")
        sc = sc_fd_add(SecurityContext(), fd, FD_RW)
        child = kernel.sthread_create(
            sc, lambda a: kernel.close(fd), spawn="inline")
        kernel.sthread_join(child)
        kernel.send(fd, b"parent still open")
        server_end = listener.accept(timeout=2)
        assert server_end.recv(17, timeout=2)


class TestLifecycle:
    def test_thread_spawn_and_join(self, kernel):
        child = kernel.sthread_create(SecurityContext(),
                                      lambda a: a * 2, 21,
                                      spawn="thread")
        assert kernel.sthread_join(child) == 42

    def test_double_join_raises(self, kernel):
        child = kernel.sthread_create(SecurityContext(), lambda a: None,
                                      spawn="inline")
        kernel.sthread_join(child)
        with pytest.raises(SthreadError):
            kernel.sthread_join(child)

    def test_faulted_child_raises_typed_error(self, kernel):
        from repro.core.errors import MemoryViolation, SthreadFaulted
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag)
        child = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.mem_read(buf.addr, 8),
            spawn="inline")
        with pytest.raises(SthreadFaulted) as exc_info:
            kernel.sthread_join(child)
        assert child.faulted
        assert exc_info.value.sthread is child
        assert isinstance(exc_info.value.fault, MemoryViolation)
        # the killing fault is chained for debuggability
        assert exc_info.value.__cause__ is child.fault

    def test_runtime_error_recorded_separately(self, kernel):
        def body(arg):
            raise WedgeError("something ordinary went wrong")

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert not child.faulted
        assert child.status == "error"
        assert "ordinary" in str(child.error)

    def test_unknown_spawn_mode(self, kernel):
        with pytest.raises(WedgeError):
            kernel.sthread_create(SecurityContext(), lambda a: None,
                                  spawn="magic")


class TestSmallocOn:
    def test_malloc_redirects_to_tag(self, kernel):
        tag = kernel.tag_new()

        def body(arg):
            kernel.smalloc_on(tag)
            addr = kernel.malloc(32)
            kernel.smalloc_off()
            segment, _ = kernel.space.find(addr)
            return segment.tag_id

        sc = sc_mem_add(SecurityContext(), tag, PROT_RW)
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == tag.id

    def test_not_recursive(self, kernel):
        tag = kernel.tag_new()
        kernel.smalloc_on(tag)
        with pytest.raises(WedgeError):
            kernel.smalloc_on(tag)
        kernel.smalloc_off()

    def test_off_without_on(self, kernel):
        with pytest.raises(WedgeError):
            kernel.smalloc_off()

    def test_save_restore_idiom(self, kernel):
        """The signal-handler idiom of paper §4.1."""
        tag = kernel.tag_new()
        kernel.smalloc_on(tag)
        state = kernel.smalloc_state()
        kernel.smalloc_restore(None)       # enter "signal handler"
        addr = kernel.malloc(8)            # plain malloc inside
        segment, _ = kernel.space.find(addr)
        assert segment.tag_id is None
        kernel.smalloc_restore(state)      # leave handler
        addr2 = kernel.malloc(8)
        segment2, _ = kernel.space.find(addr2)
        assert segment2.tag_id == tag.id
        kernel.smalloc_off()

    def test_flag_is_per_sthread(self, kernel):
        tag = kernel.tag_new()
        kernel.smalloc_on(tag)
        # a child sthread starts with the flag clear
        def body(arg):
            addr = kernel.malloc(8)
            segment, _ = kernel.space.find(addr)
            return segment.tag_id

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert kernel.sthread_join(child) is None
        kernel.smalloc_off()


class TestStackFrames:
    def test_stack_alloc_and_frames(self, kernel):
        with kernel.stack_frame("outer"):
            a = kernel.stack_alloc(64)
            with kernel.stack_frame("inner"):
                b = kernel.stack_alloc(32)
                st = kernel.current()
                off_a = a - st.stack_segment.base
                off_b = b - st.stack_segment.base
                assert st.frame_for_offset(off_a) == "outer"
                assert st.frame_for_offset(off_b) == "inner"
        assert kernel.current().stack_sp == 0

    def test_stack_alloc_requires_frame(self, kernel):
        with pytest.raises(WedgeError):
            kernel.stack_alloc(8)

    def test_stack_overflow(self, kernel):
        with kernel.stack_frame("hog"):
            with pytest.raises(WedgeError):
                kernel.stack_alloc(10 ** 9)
