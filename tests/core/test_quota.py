"""Memory quotas — the DoS-limitation extension (paper §7 notes Wedge
has no such mechanism; this repository adds one as future work)."""

import pytest

from repro.core.errors import QuotaExceeded
from repro.core.memory import PROT_RW
from repro.core.policy import SecurityContext, sc_mem_add


class TestQuota:
    def test_unlimited_by_default(self, kernel):
        child = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.malloc(50_000),
            spawn="inline")
        assert not child.faulted and child.error is None

    def test_quota_caps_private_heap(self, kernel):
        def hog(arg):
            kernel.malloc(4096)
            kernel.malloc(4096)   # exceeds the 6 KiB quota

        sc = SecurityContext(mem_quota=6144)
        child = kernel.sthread_create(sc, hog, spawn="inline")
        assert isinstance(child.error, QuotaExceeded)

    def test_quota_caps_tagged_allocations(self, kernel):
        tag = kernel.tag_new()
        sc = sc_mem_add(SecurityContext(mem_quota=1024), tag, PROT_RW)

        def hog(arg):
            kernel.smalloc(2048, tag)

        child = kernel.sthread_create(sc, hog, spawn="inline")
        assert isinstance(child.error, QuotaExceeded)

    def test_free_returns_budget(self, kernel):
        def recycler(arg):
            for _ in range(10):
                addr = kernel.malloc(4096)
                kernel.free(addr)
            return "fits"

        sc = SecurityContext(mem_quota=8192)
        child = kernel.sthread_create(sc, recycler, spawn="inline")
        assert kernel.sthread_join(child) == "fits"

    def test_quota_is_per_compartment(self, kernel):
        """One compartment's consumption does not charge another's."""
        sc = SecurityContext(mem_quota=8192)
        a = kernel.sthread_create(
            sc.copy(), lambda _: kernel.malloc(6000), spawn="inline")
        b = kernel.sthread_create(
            sc.copy(), lambda _: kernel.malloc(6000), spawn="inline")
        assert a.error is None and b.error is None

    def test_quota_confines_an_allocation_bomb(self, kernel):
        """The DoS the paper mentions: an exploited sthread trying to
        consume unbounded memory is cut off at its quota, and the
        machine (other compartments) keeps working."""
        def bomb(arg):
            while True:
                kernel.malloc(4096)

        sc = SecurityContext(mem_quota=64 * 1024)
        child = kernel.sthread_create(sc, bomb, spawn="inline")
        assert isinstance(child.error, QuotaExceeded)
        # the rest of the machine is fine
        assert kernel.alloc_buf(1024, init=b"x" * 1024).read(1) == b"x"

    def test_gate_quota_via_security_context(self, kernel):
        from repro.core.errors import CallgateError

        def greedy_gate(trusted, arg):
            kernel.malloc(100_000)

        gate_sc = SecurityContext(mem_quota=4096)
        gate = kernel.create_gate(greedy_gate, gate_sc)
        with pytest.raises((CallgateError, QuotaExceeded)):
            kernel.cgate(gate.id)

    def test_stack_alloc_counts_against_quota(self, kernel):
        def stacker(arg):
            with kernel.stack_frame("f"):
                kernel.stack_alloc(4096)
                kernel.stack_alloc(4096)

        sc = SecurityContext(mem_quota=6000)
        child = kernel.sthread_create(sc, stacker, spawn="inline")
        assert isinstance(child.error, QuotaExceeded)
