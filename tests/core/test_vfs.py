"""Unit tests for the simulated filesystem (uid bits, chroot)."""

import pytest

from repro.core.errors import VfsError
from repro.core.vfs import Vfs


@pytest.fixture
def vfs():
    fs = Vfs()
    fs.write_file("/etc/shadow", b"secret", owner=0, mode=0o600)
    fs.write_file("/etc/motd", b"hello", owner=0, mode=0o644)
    fs.write_file("/home/alice/notes", b"private", owner=1000,
                  mode=0o600)
    fs.mkdir("/var/empty")
    return fs


class TestPaths:
    def test_relative_path_rejected(self, vfs):
        with pytest.raises(VfsError):
            vfs.lookup("etc/motd")

    def test_normalisation(self, vfs):
        assert vfs.lookup("/etc/../etc/./motd").data == bytearray(
            b"hello")

    def test_exists(self, vfs):
        assert vfs.exists("/etc/motd")
        assert vfs.exists("/etc")
        assert not vfs.exists("/nope")

    def test_listdir(self, vfs):
        assert vfs.listdir("/etc") == ["motd", "shadow"]

    def test_listdir_missing(self, vfs):
        with pytest.raises(VfsError):
            vfs.listdir("/missing")


class TestPermissions:
    def test_root_reads_everything(self, vfs):
        assert vfs.open_read("/etc/shadow", 0).data == bytearray(
            b"secret")

    def test_owner_reads_own(self, vfs):
        assert vfs.open_read("/home/alice/notes", 1000)

    def test_other_denied_0600(self, vfs):
        with pytest.raises(VfsError):
            vfs.open_read("/etc/shadow", 1000)

    def test_other_reads_0644(self, vfs):
        assert vfs.open_read("/etc/motd", 1000)

    def test_other_cannot_write_0644(self, vfs):
        with pytest.raises(VfsError):
            vfs.open_write("/etc/motd", 1000, create=False)

    def test_owner_writes_own(self, vfs):
        node = vfs.open_write("/home/alice/notes", 1000)
        node.data += b"!"
        assert vfs.lookup("/home/alice/notes").data.endswith(b"!")

    def test_create_sets_owner(self, vfs):
        vfs.open_write("/home/alice/new", 1000)
        assert vfs.lookup("/home/alice/new").owner == 1000

    def test_unlink_respects_perms(self, vfs):
        with pytest.raises(VfsError):
            vfs.unlink("/etc/shadow", 1000)
        vfs.unlink("/etc/shadow", 0)
        assert not vfs.exists("/etc/shadow")


class TestChroot:
    def test_resolve_identity_root(self, vfs):
        assert vfs.resolve("/", "/etc/motd") == "/etc/motd"

    def test_resolve_prefixes(self, vfs):
        assert vfs.resolve("/var/empty", "/etc/shadow") == \
            "/var/empty/etc/shadow"

    def test_dotdot_cannot_escape(self, vfs):
        resolved = vfs.resolve("/var/empty", "/../../etc/shadow")
        assert resolved.startswith("/var/empty")

    def test_chrooted_shadow_is_absent(self, vfs):
        real = vfs.resolve("/var/empty", "/etc/shadow")
        assert not vfs.exists(real)
