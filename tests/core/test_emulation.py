"""The sthread emulation library (paper §3.4)."""

from repro.core.emulation import (emulated_sthread_create,
                                  suggested_grants, violation_report)
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import SecurityContext, sc_mem_add


class TestEmulation:
    def test_violations_do_not_terminate(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag, init=b"contents")

        def body(arg):
            return kernel.mem_read(buf.addr, 8)   # would fault normally

        child = emulated_sthread_create(kernel, SecurityContext(), body)
        assert kernel.sthread_join(child) == b"contents"
        assert not child.faulted

    def test_all_violations_from_one_run(self, kernel):
        """One complete run reveals *every* missing permission."""
        tag_a = kernel.tag_new(name="a")
        tag_b = kernel.tag_new(name="b")
        buf_a = kernel.alloc_buf(8, tag=tag_a)
        buf_b = kernel.alloc_buf(8, tag=tag_b)

        def body(arg):
            kernel.mem_read(buf_a.addr, 8)
            kernel.mem_write(buf_b.addr, b"write!!!")

        child = emulated_sthread_create(kernel, SecurityContext(), body)
        kernel.sthread_join(child)
        report = violation_report(child)
        segments = {entry["segment"] for entry in report}
        assert "a" in segments and "b" in segments

    def test_report_aggregates_counts(self, kernel):
        tag = kernel.tag_new(name="hot")
        buf = kernel.alloc_buf(8, tag=tag)

        def body(arg):
            for _ in range(5):
                kernel.mem_read(buf.addr, 8)

        child = emulated_sthread_create(kernel, SecurityContext(), body)
        kernel.sthread_join(child)
        report = violation_report(child)
        hot = [e for e in report if e["segment"] == "hot"]
        assert hot and hot[0]["count"] == 5

    def test_suggested_grants_distinguish_modes(self, kernel):
        tag_r = kernel.tag_new(name="read-only-need")
        tag_w = kernel.tag_new(name="write-need")
        buf_r = kernel.alloc_buf(8, tag=tag_r)
        buf_w = kernel.alloc_buf(8, tag=tag_w)

        def body(arg):
            kernel.mem_read(buf_r.addr, 8)
            kernel.mem_write(buf_w.addr, b"dirty!!!")

        child = emulated_sthread_create(kernel, SecurityContext(), body)
        kernel.sthread_join(child)
        grants, untaggable = suggested_grants(child)
        assert grants[tag_r.id] == "r"
        assert grants[tag_w.id] == "rw"

    def test_untaggable_memory_reported_separately(self, kernel):
        """Accesses to another compartment's private heap cannot be
        fixed by a grant — the data must be re-tagged first."""
        buf = kernel.alloc_buf(8, init=b"private!")

        def body(arg):
            kernel.mem_read(buf.addr, 8)

        child = emulated_sthread_create(kernel, SecurityContext(), body)
        kernel.sthread_join(child)
        grants, untaggable = suggested_grants(child)
        assert not grants
        assert untaggable

    def test_suggested_policy_actually_works(self, kernel):
        """Closing the loop: apply the suggestion, violations vanish."""
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag, init=b"needed!!")

        def body(arg):
            return kernel.mem_read(buf.addr, 8)

        probe = emulated_sthread_create(kernel, SecurityContext(), body)
        kernel.sthread_join(probe)
        grants, _ = suggested_grants(probe)
        sc = SecurityContext()
        for tag_id, mode in grants.items():
            sc_mem_add(sc, tag_id,
                       PROT_RW if mode == "rw" else PROT_READ)
        fixed = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(fixed) == b"needed!!"
        assert not fixed.faulted
