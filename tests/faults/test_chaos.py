"""Chaos campaigns: end-to-end containment on the shipped apps.

The full four-app, three-seed matrix runs in CI (``python -m repro
chaos``); here one representative campaign per protocol family keeps the
suite fast while still proving the invariants with real injections.
"""

import pytest

from repro.faults import CHAOS_APP_NAMES, run_chaos


def test_every_shipped_app_is_a_chaos_target():
    assert set(CHAOS_APP_NAMES) == {"httpd-simple", "httpd-mitm",
                                    "sshd-wedge", "pop3", "lb", "kv"}


@pytest.mark.parametrize("app", ["pop3", "httpd-simple"])
def test_campaign_contains_faults(app):
    report = run_chaos(app, seed=1, faults=25)
    assert report.passed, report.format()
    assert report.injected >= 25
    # containment was actually exercised, not vacuously true
    assert report.restarts > 0
    assert report.failed_sessions + report.degraded_sessions > 0
    # the service survived: the post-campaign clean probe matched the
    # pre-campaign baseline and the stores were byte-identical
    assert report.probe_ok
    assert report.violations == []


def test_campaign_is_deterministic():
    a = run_chaos("pop3", seed=2, faults=15)
    b = run_chaos("pop3", seed=2, faults=15)
    assert (a.injected, a.sessions, a.restarts, dict(a.by_site)) == \
           (b.injected, b.sessions, b.restarts, dict(b.by_site))


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        run_chaos("gopherd", seed=1, faults=1)


def test_kv_power_loss_drill_recovers_byte_identically():
    """``--power-loss``: after the storm, kill the kv kernel mid-flush
    (seeded tear) and rebuild it on the same platter — the recovered
    incarnation must answer the strict probe and snapshot the same
    bytes as the pre-kill baseline.  The breaker drill cooldown rides
    through ``run_chaos`` kwargs (not a buried constant)."""
    report = run_chaos("kv", seed=3, faults=20, power_loss=True,
                       breaker_cooldown=0.002)
    assert report.passed, report.format()
    assert report.power_loss_drill == "ok"
    assert report.power_loss_replayed is not None


def test_power_loss_drill_is_opt_in():
    report = run_chaos("kv", seed=3, faults=10)
    assert report.passed, report.format()
    assert report.power_loss_drill is None
