"""Supervision: restart-from-COW, degradation, watchdogs, typed joins."""

import threading

import pytest

from repro.core.errors import (CallgateDegraded, CallgateError,
                               CompartmentDown, GateTimeout, JoinTimeout,
                               WedgeError)
from repro.core.policy import SecurityContext
from repro.faults import FaultPlan, RestartPolicy, cow_freshness_probe


class TestSupervisedSthreads:
    def test_restart_then_succeed(self, kernel):
        tripwire = kernel.alloc_buf(8)  # main-private: not granted below
        state = {"tries": 0}

        def body(arg):
            arg["tries"] += 1
            if arg["tries"] == 1:
                kernel.mem_read(tripwire.addr, 8)  # faults incarnation 0
            return "ok"

        st = kernel.sthread_create(
            SecurityContext(), body, state, name="flaky", spawn="inline",
            supervise=RestartPolicy(max_restarts=2, backoff=0.0))
        assert kernel.sthread_join(st) == "ok"
        assert st.restarts == 1
        assert state["tries"] == 2
        assert st.current_incarnation.name == "flaky~r1"

    def test_budget_exhaustion_degrades(self, kernel):
        tripwire = kernel.alloc_buf(8)
        st = kernel.sthread_create(
            SecurityContext(), lambda a: kernel.mem_read(tripwire.addr, 8),
            name="doomed", spawn="inline",
            supervise=RestartPolicy(max_restarts=1, backoff=0.0))
        with pytest.raises(CompartmentDown) as err:
            kernel.sthread_join(st)
        assert st.status == "degraded"
        assert st.restarts == 1
        assert err.value.__cause__ is st.last_fault

    def test_application_errors_are_not_restarted(self, kernel):
        def body(arg):
            raise WedgeError("bad request")  # an error, not a crash

        st = kernel.sthread_create(
            SecurityContext(), body, name="erring", spawn="inline",
            supervise=RestartPolicy(max_restarts=3, backoff=0.0))
        assert kernel.sthread_join(st) is None
        assert st.restarts == 0
        assert not st.faulted

    def test_join_timeout_is_typed_and_retryable(self, kernel):
        gate = threading.Event()
        st = kernel.sthread_create(
            SecurityContext(), lambda a: (gate.wait(5.0), "done")[1],
            name="slow", spawn="thread",
            supervise=RestartPolicy(max_restarts=0))
        with pytest.raises(JoinTimeout):
            kernel.sthread_join(st, timeout=0.05)
        gate.set()
        assert kernel.sthread_join(st) == "done"

    def test_restart_observes_fresh_cow_state(self):
        probe = cow_freshness_probe()
        # incarnation 0 scribbled on the pre-main global through its COW
        # mapping; the restarted incarnation still reads the snapshot
        assert probe["observations"] == [b"pristine", b"pristine"]
        assert probe["result"] == b"scribble"
        assert probe["fresh"]


class TestSupervisedGates:
    @staticmethod
    def _gate(kernel, policy):
        return kernel.create_gate(lambda trusted, arg: "pong",
                                  SecurityContext(), supervise=policy)

    def test_crash_is_retried_behind_the_gate(self, kernel):
        record = self._gate(kernel, RestartPolicy(max_restarts=2,
                                                  backoff=0.0))
        plan = kernel.install_faults(FaultPlan(3))
        plan.add("cgate", "crash", at=(1,))
        assert kernel.cgate(record.id) == "pong"  # caller never sees it
        assert record.restarts == 1
        assert plan.injection_count == 1

    def test_budget_exhaustion_degrades_the_gate(self, kernel):
        record = self._gate(kernel, RestartPolicy(max_restarts=1,
                                                  backoff=0.0))
        plan = kernel.install_faults(FaultPlan(3))
        plan.add("cgate", "crash", rate=1.0)
        with pytest.raises(CallgateDegraded) as err:
            kernel.cgate(record.id)
        assert record.degraded
        assert err.value.restarts == 1
        # degradation is terminal: even fault-free invocations refuse
        plan.enabled = False
        with pytest.raises(CallgateDegraded):
            kernel.cgate(record.id)

    def test_degraded_is_not_a_retryable_gate_error(self):
        # callers that retry CallgateError must not swallow CompartmentDown
        assert not issubclass(CallgateDegraded, CallgateError)
        assert issubclass(CallgateDegraded, CompartmentDown)

    def test_watchdog_abandons_hung_incarnations(self, kernel):
        record = self._gate(kernel, RestartPolicy(max_restarts=2,
                                                  backoff=0.0,
                                                  watchdog=0.05))
        plan = kernel.install_faults(FaultPlan(3))
        plan.add("cgate", "delay", at=(1,), delay=0.3)
        assert kernel.cgate(record.id) == "pong"
        assert record.restarts == 1
        assert isinstance(record.last_fault, GateTimeout)

    def test_negative_restart_budget_rejected(self):
        from repro.core.errors import SthreadError
        with pytest.raises(SthreadError):
            RestartPolicy(max_restarts=-1)
