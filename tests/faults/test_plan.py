"""FaultPlan semantics: determinism, exact hits, scoping, limits."""

import pytest

from repro.core.errors import (MemoryViolation, OutOfMemory, SthreadFaulted,
                               WedgeError)
from repro.core.memory import PROT_READ
from repro.core.policy import SecurityContext, sc_mem_add
from repro.faults import FaultPlan


class Comp:
    """A stand-in compartment for unit-level fire() tests."""

    def __init__(self, kind, name="comp"):
        self.kind = kind
        self.name = name


STHREAD = Comp("sthread", "worker")
MAIN = Comp("process", "main")


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(WedgeError):
            FaultPlan().add("dma_read", "memfault")

    def test_kind_must_match_site(self):
        with pytest.raises(WedgeError):
            FaultPlan().add("smalloc", "crash")

    def test_unknown_scope_rejected(self):
        with pytest.raises(WedgeError):
            FaultPlan(scope="everything")


class TestFiring:
    def test_exact_hits_fire_exactly(self):
        plan = FaultPlan()
        plan.add("mem_read", "memfault", at=(2, 4))
        fired = [plan.fire("mem_read", compartment=STHREAD) is not None
                 for _ in range(6)]
        assert fired == [False, True, False, True, False, False]
        assert [ev.hit for ev in plan.injected] == [2, 4]

    def test_same_seed_same_schedule(self):
        def drive(seed):
            plan = FaultPlan(seed)
            plan.add("net_send", "reset", rate=0.3)
            for _ in range(200):
                plan.fire("net_send")
            return [ev.hit for ev in plan.injected]

        assert drive(7) == drive(7)
        assert drive(7) != drive(8)

    def test_limit_caps_injections(self):
        plan = FaultPlan()
        plan.add("cgate", "crash", rate=1.0, limit=3)
        for _ in range(10):
            plan.fire("cgate", compartment=STHREAD)
        assert plan.injection_count == 3

    def test_disabled_plan_is_inert(self):
        plan = FaultPlan()
        plan.add("mem_read", "memfault", rate=1.0)
        plan.enabled = False
        assert plan.fire("mem_read", compartment=STHREAD) is None
        assert plan.injection_count == 0
        assert plan.hits == {}  # not even the hit counter moves


class TestScoping:
    def test_untrusted_scope_spares_the_main_process(self):
        plan = FaultPlan()
        plan.add("mem_read", "memfault", rate=1.0)
        assert plan.fire("mem_read", compartment=MAIN) is None
        assert plan.hits == {}  # ineligible hits do not advance counters
        assert plan.fire("mem_read", compartment=STHREAD) is not None

    def test_network_sites_have_no_compartment(self):
        plan = FaultPlan()
        plan.add("net_connect", "refuse", rate=1.0)
        assert plan.fire("net_connect") is not None

    def test_scope_all_reaches_everything(self):
        plan = FaultPlan(scope="all")
        plan.add("smalloc", "enomem", rate=1.0)
        assert plan.fire("smalloc", compartment=MAIN) is not None


class TestKernelChokepoints:
    def test_mem_read_fault_kills_the_sthread_only(self, kernel):
        tag = kernel.tag_new(name="shared")
        buf = kernel.alloc_buf(16, tag=tag, init=b"x" * 16)
        plan = kernel.install_faults(FaultPlan(1))
        plan.add("mem_read", "memfault", at=(1,))
        sc = sc_mem_add(SecurityContext(), tag, PROT_READ)
        st = kernel.sthread_create(
            sc, lambda a: kernel.mem_read(buf.addr, 16), spawn="inline")
        with pytest.raises(SthreadFaulted) as err:
            kernel.sthread_join(st)
        assert isinstance(err.value.__cause__, MemoryViolation)
        # the trusted process is untouched and can still read the buffer
        assert kernel.mem_read(buf.addr, 16) == b"x" * 16

    def test_smalloc_exhaustion_is_clean(self, kernel):
        tag = kernel.tag_new(name="pool")
        plan = kernel.install_faults(FaultPlan(scope="all"))
        plan.add("smalloc", "enomem", at=(1,))
        with pytest.raises(OutOfMemory):
            kernel.smalloc(64, tag)
        # the failure is transient state, not corruption: the next
        # allocation succeeds and the heap stays consistent
        addr = kernel.smalloc(64, tag)
        assert addr > 0
        kernel.tags.resolve(tag).heap.check_invariants()

    def test_disabled_plan_adds_no_modelled_cost(self, kernel):
        buf = kernel.alloc_buf(32, init=b"y" * 32)

        def cycles_for_reads():
            cp = kernel.costs.checkpoint()
            for _ in range(50):
                kernel.mem_read(buf.addr, 32)
            return kernel.costs.delta(cp)

        bare = cycles_for_reads()
        plan = kernel.install_faults(FaultPlan())
        plan.add("mem_read", "memfault", rate=0.5)
        plan.enabled = False
        assert cycles_for_reads() == bare
        kernel.install_faults(None)
        assert cycles_for_reads() == bare
