"""Regression: supervised restart must not inherit TLB state.

The stale-translation isolation hole: incarnation 0 of a supervised
sthread maps a tag dynamically (``tag_new`` inside the body grants only
*its own* table), warms the TLB on it, then is killed mid-request by an
injected fault.  The :class:`RestartPolicy` rebuilds the compartment
from the COW snapshot with the *original* security context — which never
granted that tag.  If any cached translation leaked across the restart,
the new incarnation would silently re-acquire its predecessor's
pre-crash rights; instead it must take a :class:`MemoryViolation` on the
very page the previous incarnation had cached.
"""

import pytest

from repro.core.errors import MemoryViolation
from repro.core.kernel import Kernel
from repro.core.policy import SecurityContext
from repro.faults.plan import FaultPlan
from repro.faults.supervise import RestartPolicy


def _run_restart_scenario(tlb):
    kernel = Kernel(name="tlb-chaos", tlb=tlb)
    kernel.start_main()
    plan = FaultPlan(seed=7)
    # mem_read eligible hits in untrusted scope: hit 1 warms the TLB,
    # hit 2 kills the incarnation mid-request
    plan.add("mem_read", "memfault", at=[2])
    kernel.install_faults(plan)

    shared = {}       # gen-0 publishes the loot address for gen-1
    outcomes = []

    def body(arg):
        generation = len(outcomes)
        if generation == 0:
            tag = kernel.tag_new(name="loot")
            addr = kernel.smalloc(64, tag)
            kernel.mem_write(addr, b"pre-crash secret" * 4)
            shared["addr"] = addr
            outcomes.append(("gen0", kernel.mem_read(addr, 16)))  # hit 1
            kernel.mem_read(addr, 16)                             # hit 2: dies
            raise AssertionError("unreachable: fault must fire")
        # the restarted incarnation: fresh table, no grant to the tag
        try:
            leaked = kernel.mem_read(shared["addr"], 16)          # hit 3
            outcomes.append(("gen1", "LEAKED", leaked))
        except MemoryViolation as exc:
            outcomes.append(("gen1", "denied", exc.addr))
        return b"done"

    st = kernel.sthread_create(SecurityContext(), body, name="victim",
                               spawn="inline",
                               supervise=RestartPolicy(max_restarts=2))
    result = kernel.sthread_join(st)
    return kernel, st, shared, outcomes, result


@pytest.mark.parametrize("tlb", [True, False])
def test_restarted_incarnation_cannot_use_predecessors_translations(tlb):
    kernel, st, shared, outcomes, result = _run_restart_scenario(tlb)
    assert result == b"done"
    assert st.restarts == 1
    # gen-0 really read the secret before dying
    assert outcomes[0] == ("gen0", b"pre-crash secret")
    # gen-1 was denied at exactly the address gen-0 had warmed
    assert outcomes[1] == ("gen1", "denied", shared["addr"])

    gen0, gen1 = st.incarnations
    assert gen0.table is not gen1.table        # restart = fresh table
    loot_page = shared["addr"] >> 12
    # the faulting incarnation's cache was flushed at the moment of
    # death, and the replacement never cached the revoked page
    assert gen0.table.tlb == {}
    assert loot_page not in gen1.table.tlb
    if tlb:
        # the scenario was not vacuous: gen-0 did warm its TLB (the
        # flush-on-fault counted those entries as shootdowns)
        assert gen0.table.tlb_shootdowns > 0


def test_faulted_incarnation_flushes_at_death():
    """The flush happens at fault time, not lazily at reuse time."""
    kernel = Kernel(name="flush-at-death")
    kernel.start_main()

    def body(arg):
        addr = kernel.malloc(32)
        kernel.mem_write(addr, b"warm")
        kernel.mem_read(addr, 4)
        # touch main's memory without a grant -> CompartmentFault
        kernel.mem_read(tripwire.addr, 1)

    tripwire = kernel.alloc_buf(8, init=b"\0" * 8)
    st = kernel.sthread_create(SecurityContext(), body, name="dying",
                               spawn="inline")
    assert st.faulted
    assert st.table.tlb == {}
    assert st.table.tlb_shootdowns > 0
