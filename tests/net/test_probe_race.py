"""The connect-vs-close race: typed outcomes, never a hang.

A health-checker probing an address while the node is going down must
get :class:`ConnectionRefused` (or a clean answer) promptly — the lb's
sweep cadence depends on probes never wedging.
"""

import threading
import time

import pytest

from repro.apps.lb.server import probe_backend
from repro.cluster.health import HealthResponder
from repro.core.errors import ConnectionRefused, PeerReset
from repro.core.kernel import Kernel
from repro.net import Network


class TestConnectCloseRace:
    def test_race_is_typed_and_never_hangs(self):
        for _ in range(10):
            net = Network()
            listener = net.listen("svc:80")
            outcomes = []

            def connector():
                try:
                    sock = net.connect("svc:80")
                    outcomes.append("connected")
                    sock.close()
                except ConnectionRefused:
                    outcomes.append("refused")

            threads = [threading.Thread(target=connector)
                       for _ in range(8)]
            closer = threading.Thread(target=listener.close)
            for t in threads:
                t.start()
            closer.start()
            for t in threads + [closer]:
                t.join(5.0)
                assert not t.is_alive(), "connect hung against close"
            assert len(outcomes) == 8

    def test_pending_connection_reset_on_listener_close(self):
        net = Network()
        listener = net.listen("svc:80")
        sock = net.connect("svc:80")       # queued, never accepted
        listener.close()
        with pytest.raises(PeerReset):
            sock.recv(1, timeout=2.0)


class TestProbeRace:
    def test_probes_racing_responder_stop_are_typed(self):
        net = Network()
        prober = Kernel(net=net, name="prober")
        prober.start_main()
        responder = HealthResponder(net, "node:health").start()
        results = []

        def probe():
            results.append(
                probe_backend(prober, "node:health", timeout=1.0))

        threads = [threading.Thread(target=probe) for _ in range(6)]
        for i, t in enumerate(threads):
            t.start()
            if i == 2:
                responder.stop()
        for t in threads:
            t.join(5.0)
            assert not t.is_alive(), "probe hung against close"
        assert len(results) == 6
        assert all(isinstance(r, bool) for r in results)

    def test_probe_of_killed_kernel_is_false_and_prompt(self):
        net = Network()
        prober = Kernel(net=net, name="prober")
        prober.start_main()
        responder = HealthResponder(net, "node:health").start()
        assert probe_backend(prober, "node:health") is True
        responder.kernel.kill()
        start = time.monotonic()
        assert probe_backend(prober, "node:health") is False
        assert time.monotonic() - start < 2.0
