"""The connect-vs-close race: typed outcomes, never a hang.

A health-checker probing an address while the node is going down must
get :class:`ConnectionRefused` (or a clean answer) promptly — the lb's
sweep cadence depends on probes never wedging.

The second half covers the *other* direction of the handoff race: a
client that connects and then drops before the server accepts.  The
dead connection must be purged from the accept queue eagerly (freeing
its backlog slot) and the server-side end reset with a typed
:class:`PeerReset` — never handed to ``accept`` as a stranded corpse
the handler then hangs reading.
"""

import threading
import time

import pytest

from repro.apps.lb.server import probe_backend
from repro.cluster.health import HealthResponder
from repro.core.errors import ConnectionRefused, NetTimeout, PeerReset
from repro.core.kernel import Kernel
from repro.net import Network


class TestConnectCloseRace:
    def test_race_is_typed_and_never_hangs(self):
        for _ in range(10):
            net = Network()
            listener = net.listen("svc:80")
            outcomes = []

            def connector():
                try:
                    sock = net.connect("svc:80")
                    outcomes.append("connected")
                    sock.close()
                except ConnectionRefused:
                    outcomes.append("refused")

            threads = [threading.Thread(target=connector)
                       for _ in range(8)]
            closer = threading.Thread(target=listener.close)
            for t in threads:
                t.start()
            closer.start()
            for t in threads + [closer]:
                t.join(5.0)
                assert not t.is_alive(), "connect hung against close"
            assert len(outcomes) == 8

    def test_pending_connection_reset_on_listener_close(self):
        net = Network()
        listener = net.listen("svc:80")
        sock = net.connect("svc:80")       # queued, never accepted
        listener.close()
        with pytest.raises(PeerReset):
            sock.recv(1, timeout=2.0)


class TestProbeRace:
    def test_probes_racing_responder_stop_are_typed(self):
        net = Network()
        prober = Kernel(net=net, name="prober")
        prober.start_main()
        responder = HealthResponder(net, "node:health").start()
        results = []

        def probe():
            results.append(
                probe_backend(prober, "node:health", timeout=1.0))

        threads = [threading.Thread(target=probe) for _ in range(6)]
        for i, t in enumerate(threads):
            t.start()
            if i == 2:
                responder.stop()
        for t in threads:
            t.join(5.0)
            assert not t.is_alive(), "probe hung against close"
        assert len(results) == 6
        assert all(isinstance(r, bool) for r in results)

    def test_probe_of_killed_kernel_is_false_and_prompt(self):
        net = Network()
        prober = Kernel(net=net, name="prober")
        prober.start_main()
        responder = HealthResponder(net, "node:health").start()
        assert probe_backend(prober, "node:health") is True
        responder.kernel.kill()
        start = time.monotonic()
        assert probe_backend(prober, "node:health") is False
        assert time.monotonic() - start < 2.0


class TestMidHandoffDrop:
    """A connection dropped between connect and accept must be purged
    from the queue, not served as a corpse."""

    def test_close_before_accept_purges_the_queue_slot(self):
        net = Network()
        listener = net.listen("svc:80", backlog=4)
        sock = net.connect("svc:80")
        assert listener.pending_count() == 1
        sock.close()
        assert listener.pending_count() == 0
        assert listener.purged_count == 1
        # the queue is healthy: the next connect is servable
        live = net.connect("svc:80")
        server_end = listener.accept(1.0)
        live.send(b"ping")
        assert server_end.recv(4, timeout=1.0) == b"ping"
        live.close()
        server_end.close()
        listener.close()

    def test_purged_slot_frees_backlog_capacity(self):
        net = Network()
        listener = net.listen("svc:80", backlog=1)
        first = net.connect("svc:80")
        first.close()                    # purged -> slot free again
        second = net.connect("svc:80")   # must NOT be shed
        assert listener.pending_count() == 1
        second.close()
        listener.close()

    def test_server_end_of_dropped_connection_is_reset(self):
        net = Network()
        listener = net.listen("svc:80", backlog=4)
        sock = net.connect("svc:80")
        server_end = sock.peer
        sock.close()
        # eager typed reset: a reader of the abandoned server end gets
        # PeerReset immediately, never a full recv timeout
        start = time.monotonic()
        with pytest.raises(PeerReset):
            server_end.recv(1, timeout=10.0)
        assert time.monotonic() - start < 1.0
        listener.close()

    def test_accept_never_returns_a_dropped_connection(self):
        net = Network()
        listener = net.listen("svc:80", backlog=8)
        for _ in range(5):
            net.connect("svc:80").close()
        live = net.connect("svc:80")
        got = listener.accept(1.0)
        assert got is live.peer
        assert listener.purged_count == 5
        live.close()
        listener.close()

    def test_connect_vs_close_race_under_reactor(self):
        """Threaded clients hammer connect-then-close while a reactor
        acceptor drains the listener: the acceptor must see only live
        connections (or typed timeouts) and never hang on a corpse."""
        net = Network()
        kernel = Kernel(net=net, name="race", scheduler="reactor")
        kernel.start_main()
        listen_fd = kernel.listen("race:80", backlog=64)
        served = []

        def acceptor():
            while True:
                try:
                    fd = yield from kernel.co_accept(listen_fd,
                                                     timeout=1.5)
                except NetTimeout:
                    return   # drained: nothing arrived for a while
                # a purged connection must never reach here; a live
                # one answers the handshake byte promptly
                data = yield from kernel.co_recv(fd, 1, timeout=5.0)
                served.append(data)
                kernel.close(fd)

        task = kernel.reactor.spawn(acceptor(), name="acceptor",
                                    sthread=kernel.main)
        kernel.reactor.ensure_running()

        live_socks = []

        def churn(i):
            sock = net.connect("race:80")
            if i % 2:
                sock.close()            # dropped mid-handoff
            else:
                sock.send(b"x")
                live_socks.append(sock)

        threads = [threading.Thread(target=churn, args=(i,))
                   for i in range(20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
            assert not t.is_alive()
        assert task.wait(10.0), "reactor acceptor hung on a corpse"
        assert task.error is None
        assert served == [b"x"] * 10
        for sock in live_socks:
            sock.close()
        kernel.kill()
