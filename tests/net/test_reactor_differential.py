"""Reactor vs threads: the differential battery.

The reactor's headline claim (reactor.py rule 1) is *readiness, then
syscall*: cooperative scheduling changes **when** code runs, never
**what** it does.  These tests hold every shipped app to that claim by
serving the same seeded sessions under both schedulers and demanding

* byte-identical responses,
* byte-identical sensitive-state snapshots, and
* identical kernel event streams per compartment — kind, compartment
  and payload fields, event for event — once the one legitimately
  scheduler-shaped artifact is set aside: the threaded accept loop
  *polls* ``accept`` on a short timeout (a nondeterministic number of
  enter/exit pairs per wait), while the reactor calls it exactly once
  per readiness.  The comparison is per compartment because the apps
  themselves are concurrent either way — a spawner's ``sthread_create``
  exit event races its child compartment's first events in *both*
  modes — so the cross-compartment interleaving is the one ordering
  that was never deterministic to begin with.  Within a compartment,
  every event must match exactly, including the ``net.accept`` for
  each real connection.

The chaos leg replays whole fault-injection campaigns (seeds 1-3) on
both schedulers: same injected fault mix, same contained outcome, same
clean-probe bytes, same sensitive-state blobs.
"""

import time

import pytest

from repro.core.kernel import Kernel
from repro.faults.chaos import CHAOS_TARGETS, run_chaos
from repro.observe import events as ev

#: The shipped apps the session differential runs (lb is covered by the
#: chaos leg's target table and the cluster campaign's own differential).
APPS = ("httpd-simple", "httpd-mitm", "pop3", "sshd-wedge", "kv")

SESSIONS = 2


class _EventLog:
    """Bus sink recording every delivered event verbatim."""

    def __init__(self):
        self.events = []

    def accept(self, event):
        self.events.append(event)


def _essence(events):
    """The scheduler-independent projection of an event stream.

    Drops the ``accept`` syscall enter/exit pairs (poll-shaped, see the
    module docstring) and the cycle/sequence stamps (the polls charge
    cycles too), then partitions by compartment, order preserved:
    ``{comp: [(kind, fields), ...]}``.
    """
    out = {}
    for event in events:
        if (event.kind in (ev.SYSCALL_ENTER, ev.SYSCALL_EXIT)
                and event.fields.get("name") == "accept"):
            continue
        out.setdefault(event.comp, []).append(
            (event.kind, event.fields))
    return out


def _quiesce(log, *, settle=0.25, cap=5.0):
    """Wait until the event stream stops growing.

    A session returns when the *client* has its bytes; the server-side
    handler compartment may still be emitting its exit events.  Detach
    the sink only once the stream has been silent for *settle* seconds
    or the comparison would race the tail of the last session.
    """
    seen = -1
    stable_since = time.monotonic()
    give_up = time.monotonic() + cap
    while time.monotonic() < give_up:
        count = len(log.events)
        if count != seen:
            seen = count
            stable_since = time.monotonic()
        elif time.monotonic() - stable_since >= settle:
            return
        time.sleep(0.02)


def _serve_sessions(app, scheduler):
    """Build *app* under *scheduler*, serve SESSIONS seeded sessions.

    Returns ``(observations, snapshot, event_essence)``.
    """
    target = CHAOS_TARGETS[app]
    with Kernel.scheduler_override(scheduler):
        server = target.make(None)
    log = _EventLog()
    server.start()
    try:
        server.kernel.observe.add_sink(log)
        observations = [target.session(server, index, strict=True)
                        for index in range(SESSIONS)]
        _quiesce(log)
        server.kernel.observe.remove_sink(log)
    finally:
        server.stop()
    snapshot = target.snapshot(server)
    return observations, snapshot, _essence(log.events)


class TestSessionDifferential:
    @pytest.mark.parametrize("app", APPS)
    def test_sessions_bytes_stores_and_events_match(self, app):
        threaded = _serve_sessions(app, "threads")
        reactor = _serve_sessions(app, "reactor")

        assert threaded[0] == reactor[0], \
            f"{app}: responses diverged between schedulers"
        assert threaded[1] == reactor[1], \
            f"{app}: sensitive-state snapshots diverged"

        t_events, r_events = threaded[2], reactor[2]
        assert sorted(t_events) == sorted(r_events), \
            (f"{app}: compartment sets diverged "
             f"({sorted(t_events)} vs {sorted(r_events)})")
        for comp in t_events:
            t_stream, r_stream = t_events[comp], r_events[comp]
            assert len(t_stream) == len(r_stream), \
                (f"{app}/{comp}: event counts diverged "
                 f"({len(t_stream)} threaded vs {len(r_stream)} "
                 f"reactor)")
            for i, (te, re_) in enumerate(zip(t_stream, r_stream)):
                assert te == re_, \
                    f"{app}/{comp}: event {i} diverged: {te} vs {re_}"

    @pytest.mark.parametrize("app", APPS)
    def test_reactor_accept_loop_does_not_poll(self, app):
        """The reactor side calls ``accept`` only for real readiness:
        at most one accept syscall per served connection (plus one
        final ``NetTimeout`` probe when the listener closes under it),
        where the threaded loop's poll cadence is unbounded."""
        target = CHAOS_TARGETS[app]
        with Kernel.scheduler_override("reactor"):
            server = target.make(None)
        log = _EventLog()
        server.start()
        try:
            server.kernel.observe.add_sink(log)
            for index in range(SESSIONS):
                target.session(server, index, strict=True)
            server.kernel.observe.remove_sink(log)
        finally:
            server.stop()
        accepts = [e for e in log.events
                   if e.kind == ev.SYSCALL_ENTER
                   and e.fields.get("name") == "accept"]
        served = server.connections_served
        assert served >= SESSIONS
        assert len(accepts) <= served + 1, \
            (f"{app}: {len(accepts)} accept syscalls for {served} "
             f"connections — the reactor accept path is polling")


class TestChaosDifferential:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_chaos_campaign_matches_across_schedulers(self, seed):
        reports = {
            mode: run_chaos("httpd-simple", seed=seed, faults=20,
                            scheduler=mode)
            for mode in ("threads", "reactor")
        }
        threaded, reactor = reports["threads"], reports["reactor"]
        assert threaded.passed, threaded.violations
        assert reactor.passed, reactor.violations
        # the same seed must land the same storm on both schedulers...
        assert threaded.injected == reactor.injected
        assert threaded.by_site == reactor.by_site
        assert threaded.sessions == reactor.sessions
        # ...and leave the same world behind
        assert threaded.baseline_obs == reactor.baseline_obs
        assert threaded.probe_obs == reactor.probe_obs
        assert threaded.final_snapshot == reactor.final_snapshot
