"""Overload behaviour of the net layer: shed, backpressure, close races."""

import threading

import pytest

from repro.core.errors import (ConnectionRefused, ConnectionShed,
                               DeadlineExceeded, NetTimeout, NetworkError,
                               PeerReset)
from repro.net import ByteStream, Network
from repro.resilience import Deadline, deadline_scope


class RecordingBus:
    """The two-attribute surface the net layer's hot paths test."""

    enabled = True

    def __init__(self):
        self.events = []

    def emit(self, kind, **fields):
        self.events.append((kind, fields))

    def kinds(self):
        return [kind for kind, _ in self.events]


class TestBoundedBacklog:
    def test_overflow_sheds_with_a_typed_error(self):
        net = Network()
        listener = net.listen("svc:80", backlog=2)
        net.connect("svc:80")
        net.connect("svc:80")
        with pytest.raises(ConnectionShed) as exc:
            net.connect("svc:80")
        assert exc.value.addr == "svc:80"
        assert exc.value.backlog == 2
        assert listener.shed_count == 1
        assert net.shed_count == 1
        assert listener.peak_pending == 2

    def test_shed_connection_leaks_no_half_open_streams(self):
        net = Network()
        net.streams = []
        net.listen("svc:80", backlog=1)
        net.connect("svc:80")
        before = len(net.streams)
        with pytest.raises(ConnectionShed):
            net.connect("svc:80")
        # the losing connect's pipe pair was built, then closed
        assert all(s.closed for s in net.streams[before:])

    def test_accepting_drains_room_for_new_connects(self):
        net = Network()
        listener = net.listen("svc:80", backlog=1)
        net.connect("svc:80")
        with pytest.raises(ConnectionShed):
            net.connect("svc:80")
        listener.accept(timeout=1)
        net.connect("svc:80")   # room again — no exception
        assert listener.shed_count == 1

    def test_shed_emits_a_net_shed_event(self):
        net = Network()
        net.observer = RecordingBus()
        net.listen("svc:80", backlog=1)
        net.connect("svc:80")
        with pytest.raises(ConnectionShed):
            net.connect("svc:80")
        assert "net.shed" in net.observer.kinds()

    def test_instance_default_backlog_applies(self):
        net = Network(default_backlog=1)
        net.listen("svc:80")
        net.connect("svc:80")
        with pytest.raises(ConnectionShed):
            net.connect("svc:80")


class TestBackpressure:
    def test_send_blocks_then_times_out_without_a_reader(self):
        s = ByteStream("t", high_water=8)
        with pytest.raises(NetTimeout):
            s.send(b"x" * 64, timeout=0.05)
        assert s.pending() == 8          # filled to the mark, no further
        assert s.backpressure_waits >= 1

    def test_send_completes_as_the_reader_drains(self):
        s = ByteStream("t", high_water=8)
        got = bytearray()

        def reader():
            while True:
                data = s.recv(4, timeout=2)
                if data is None:
                    return
                got.extend(data)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        payload = bytes(range(64))
        assert s.send(payload, timeout=5) == 64
        s.close()
        t.join(5)
        assert bytes(got) == payload
        assert s.peak_buffered <= 8

    def test_peer_close_unblocks_a_stuck_sender(self):
        s = ByteStream("t", high_water=4)
        threading.Timer(0.05, s.reset).start()
        with pytest.raises(PeerReset):
            s.send(b"x" * 64, timeout=5)

    def test_backpressure_emits_events(self):
        s = ByteStream("t", high_water=4)
        s.observer = RecordingBus()
        with pytest.raises(NetTimeout):
            s.send(b"x" * 16, timeout=0.05)
        assert "stream.backpressure" in s.observer.kinds()


class TestListenerCloseRace:
    def test_connect_after_close_is_refused(self):
        net = Network()
        net.listen("svc:80").close()
        with pytest.raises(ConnectionRefused):
            net.connect("svc:80")

    def test_close_resets_queued_but_unaccepted_clients(self):
        net = Network()
        listener = net.listen("svc:80")
        client = net.connect("svc:80")
        listener.close()
        # a prompt typed outcome, not a silent hang until the timeout
        with pytest.raises(PeerReset):
            client.recv(1, timeout=5)

    def test_concurrent_connects_and_close_always_end_typed(self):
        """The lifecycle stress: every racer gets a socket or a typed
        refusal/shed — never a bare NetworkError, never a leak."""
        for round_ in range(5):
            net = Network()
            net.streams = []
            listener = net.listen("svc:80", backlog=4)
            outcomes = []
            lock = threading.Lock()
            start = threading.Barrier(9)

            def racer():
                start.wait()
                try:
                    sock = net.connect("svc:80")
                    with lock:
                        outcomes.append(("ok", sock))
                except (ConnectionRefused, ConnectionShed) as exc:
                    with lock:
                        outcomes.append((type(exc).__name__, None))
                except NetworkError as exc:  # pragma: no cover
                    with lock:
                        outcomes.append(("UNTYPED:" + repr(exc), None))

            threads = [threading.Thread(target=racer, daemon=True)
                       for _ in range(8)]
            for t in threads:
                t.start()
            start.wait()
            listener.close()
            for t in threads:
                t.join(5)
            assert len(outcomes) == 8
            untyped = [o for o, _ in outcomes if o.startswith("UNTYPED")]
            assert not untyped, untyped
            # every connection the winners got is promptly resolved:
            # either it was accepted pre-close or its server end was
            # reset by close; no socket is left hanging silently
            for status, sock in outcomes:
                if status == "ok":
                    try:
                        sock.recv(1, timeout=2)
                    except (PeerReset, NetTimeout):
                        pass
            assert net._listeners == {}

    def test_address_reusable_immediately_after_the_race(self):
        net = Network()
        listener = net.listen("svc:80")
        net.connect("svc:80")
        listener.close()
        net.listen("svc:80")
        net.connect("svc:80")


class TestConnectDirectParity:
    def test_direct_counts_and_emits_like_connect(self):
        net = Network()
        net.observer = RecordingBus()
        net.listen("svc:443")
        net.connect_direct("svc:443")
        assert net.connections_made == 1
        events = [f for k, f in net.observer.events
                  if k == "net.connect"]
        assert events and events[0].get("direct") is True

    def test_direct_honours_the_backlog(self):
        net = Network()
        net.listen("svc:443", backlog=1)
        net.connect_direct("svc:443")
        with pytest.raises(ConnectionShed):
            net.connect_direct("svc:443")

    def test_direct_refused_without_a_listener(self):
        with pytest.raises(ConnectionRefused):
            Network().connect_direct("nobody:1")


class TestDeadlineAtTheNetLayer:
    def test_accept_honours_the_ambient_deadline(self):
        net = Network()
        listener = net.listen("svc:80")
        with deadline_scope(Deadline.after(0.02)):
            with pytest.raises((DeadlineExceeded, NetTimeout)):
                listener.accept(timeout=30.0)

    def test_expired_deadline_rejects_accept_up_front(self):
        net = Network()
        listener = net.listen("svc:80")
        d = Deadline(0.0)
        with deadline_scope(d):
            with pytest.raises(DeadlineExceeded):
                listener.accept(timeout=30.0)
