"""Unit tests for streams, the network, and interposition."""

import threading

import pytest

from repro.core.errors import ConnectionClosed, NetworkError
from repro.net import ByteStream, DuplexStream, Network


class TestByteStream:
    def test_send_recv(self):
        s = ByteStream("t")
        s.send(b"hello")
        assert s.recv(5, timeout=1) == b"hello"

    def test_short_reads_allowed(self):
        s = ByteStream("t")
        s.send(b"abcdef")
        assert s.recv(2, timeout=1) == b"ab"
        assert s.recv(100, timeout=1) == b"cdef"

    def test_eof_returns_none(self):
        s = ByteStream("t")
        s.close()
        assert s.recv(1, timeout=1) is None

    def test_pending_bytes_readable_after_close(self):
        s = ByteStream("t")
        s.send(b"tail")
        s.close()
        assert s.recv(4, timeout=1) == b"tail"
        assert s.recv(1, timeout=1) is None

    def test_send_after_close_raises(self):
        s = ByteStream("t")
        s.close()
        with pytest.raises(ConnectionClosed):
            s.send(b"x")

    def test_recv_timeout(self):
        s = ByteStream("t")
        with pytest.raises(NetworkError):
            s.recv(1, timeout=0.05)

    def test_recv_exact_blocks_for_all(self):
        s = ByteStream("t")

        def feeder():
            s.send(b"abc")
            s.send(b"def")

        t = threading.Thread(target=feeder)
        t.start()
        assert s.recv_exact(6, timeout=2) == b"abcdef"
        t.join()

    def test_recv_exact_eof_mid_message(self):
        s = ByteStream("t")
        s.send(b"ab")
        s.close()
        with pytest.raises(ConnectionClosed):
            s.recv_exact(4, timeout=1)

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            ByteStream("t").send("text")


class TestDuplex:
    def test_pipe_pair_full_duplex(self):
        a, b = DuplexStream.pipe_pair("t")
        a.send(b"ping")
        assert b.recv(4, timeout=1) == b"ping"
        b.send(b"pong")
        assert a.recv(4, timeout=1) == b"pong"

    def test_shutdown_write_half_close(self):
        a, b = DuplexStream.pipe_pair("t")
        a.shutdown_write()
        assert b.recv(1, timeout=1) is None
        b.send(b"still works")
        assert a.recv(11, timeout=1) == b"still works"


class TestNetwork:
    def test_listen_connect_accept(self):
        net = Network()
        listener = net.listen("svc:80")
        client = net.connect("svc:80")
        server = listener.accept(timeout=1)
        client.send(b"req")
        assert server.recv(3, timeout=1) == b"req"

    def test_connection_refused(self):
        with pytest.raises(NetworkError):
            Network().connect("nobody:1")

    def test_address_in_use(self):
        net = Network()
        net.listen("svc:80")
        with pytest.raises(NetworkError):
            net.listen("svc:80")

    def test_listener_close_frees_address(self):
        net = Network()
        listener = net.listen("svc:80")
        listener.close()
        net.listen("svc:80")

    def test_accept_timeout(self):
        net = Network()
        listener = net.listen("svc:80")
        with pytest.raises(NetworkError):
            listener.accept(timeout=0.05)

    def test_multiple_connections_queue(self):
        net = Network()
        listener = net.listen("svc:80")
        c1 = net.connect("svc:80")
        c2 = net.connect("svc:80")
        s1 = listener.accept(timeout=1)
        s2 = listener.accept(timeout=1)
        c1.send(b"one")
        c2.send(b"two")
        assert s1.recv(3, timeout=1) == b"one"
        assert s2.recv(3, timeout=1) == b"two"


class TestInterposition:
    def test_interposer_sees_connections(self):
        net = Network()
        listener = net.listen("svc:443")

        class Tap:
            def __init__(self):
                self.count = 0

            def _client_connected(self, addr):
                self.count += 1
                # pass-through: wire victim directly to the real server
                return net.connect_direct(addr)

        tap = Tap()
        net.interpose("svc:443", tap)
        client = net.connect("svc:443")
        server = listener.accept(timeout=1)
        client.send(b"through the tap")
        assert server.recv(15, timeout=1) == b"through the tap"
        assert tap.count == 1

    def test_connect_direct_bypasses_interposer(self):
        net = Network()
        net.listen("svc:443")

        class Boom:
            def _client_connected(self, addr):
                raise AssertionError("should not be called")

        net.interpose("svc:443", Boom())
        net.connect_direct("svc:443")   # no exception

    def test_remove_interposer(self):
        net = Network()
        listener = net.listen("svc:443")

        class Boom:
            def _client_connected(self, addr):
                raise AssertionError("should not be called")

        net.interpose("svc:443", Boom())
        net.remove_interposer("svc:443")
        net.connect("svc:443")
        assert listener.pending_count() == 1
