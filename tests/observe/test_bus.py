"""EventBus semantics and the no-op-path guarantees (satellite 4)."""

import pytest

from repro.core.costs import CostAccount
from repro.observe import events as ev
from repro.observe.bus import EventBus


class _Collector:
    def __init__(self):
        self.events = []

    def accept(self, event):
        self.events.append(event)


class TestBus:
    def test_disabled_until_a_sink_attaches(self):
        bus = EventBus(CostAccount())
        assert not bus.enabled
        sink = bus.add_sink(_Collector())
        assert bus.enabled
        bus.remove_sink(sink)
        assert not bus.enabled

    def test_unknown_kind_is_a_programming_error(self):
        bus = EventBus(CostAccount())
        bus.add_sink(_Collector())
        with pytest.raises(KeyError):
            bus.emit("no.such.kind")
        with pytest.raises(KeyError):
            bus.add_sink(_Collector(), kinds={"no.such.kind"})

    def test_emit_charges_and_stamps(self):
        costs = CostAccount()
        bus = EventBus(costs)
        sink = _Collector()
        bus.add_sink(sink)
        event = bus.emit(ev.SYSCALL_ENTER, comp="c", name="open")
        assert costs.counters["observe_emit"] == 1
        assert event.seq == 0
        assert event.cycles == costs.cycles()
        assert sink.events == [event]
        assert sink.events[0].fields == {"name": "open"}

    def test_kind_filtered_subscription(self):
        bus = EventBus(CostAccount())
        only_net = _Collector()
        bus.add_sink(only_net, kinds={ev.NET_SEND})
        bus.emit(ev.SYSCALL_ENTER, comp="c", name="open")
        bus.emit(ev.NET_SEND, comp="c", fd=3, nbytes=10)
        assert [e.kind for e in only_net.events] == [ev.NET_SEND]

    def test_high_volume_kinds_need_explicit_subscription(self):
        bus = EventBus(CostAccount())
        default = _Collector()
        explicit = _Collector()
        bus.add_sink(default)
        assert not bus.tlb_active
        bus.add_sink(explicit, kinds={ev.TLB_HIT, ev.TLB_MISS})
        assert bus.tlb_active
        bus.emit(ev.TLB_HIT, comp="c", addr=0, op="read")
        assert default.events == []
        assert [e.kind for e in explicit.events] == [ev.TLB_HIT]
        bus.remove_sink(explicit)
        assert not bus.tlb_active

    def test_field_named_kind_is_allowed(self):
        # fault.fired carries a payload field literally called "kind"
        bus = EventBus(CostAccount())
        sink = _Collector()
        bus.add_sink(sink)
        bus.emit(ev.FAULT_FIRED, comp="c", site="cgate", kind="crash",
                 hit=4)
        assert sink.events[0].fields["kind"] == "crash"


class TestNoOpPath:
    """With no sink attached, observation must cost nothing at all."""

    def test_workload_builds_no_events_and_charges_nothing(self, kernel):
        from repro.core.policy import SecurityContext
        bus = kernel.observe
        assert not bus.enabled
        st = kernel.sthread_create(SecurityContext(), lambda a: a + 1,
                                   41, spawn="inline")
        assert kernel.sthread_join(st) == 42
        # the bus allocated nothing: its sequence counter never moved
        assert next(bus._seq) == 0
        # and no observe_emit work was ever charged to the cost model
        assert "observe_emit" not in kernel.costs.counters

    def test_enabled_cost_is_exactly_the_emit_charges(self):
        """Attaching a sink changes primitive cost only by the metered
        observe_emit weight — nothing hidden rides along."""
        from repro.core.costs import WEIGHTS
        from repro.core.kernel import Kernel
        from repro.core.policy import SecurityContext

        def measure(observed):
            k = Kernel(name=f"noop-guard-{observed}")
            k.start_main()
            if observed:
                k.observe.add_sink(_Collector())
            checkpoint = k.costs.checkpoint()
            k.sthread_join(k.sthread_create(
                SecurityContext(), lambda a: None, spawn="inline"))
            emits = k.costs.counters.get("observe_emit", 0)
            return k.costs.delta(checkpoint), emits

        baseline, no_emits = measure(False)
        enabled, emits = measure(True)
        assert no_emits == 0 and emits > 0
        assert enabled - baseline == emits * WEIGHTS["observe_emit"]
