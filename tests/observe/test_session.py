"""Acceptance: one observed Apache request is one connected,
multi-compartment trace, exportable as valid Chrome trace JSON."""

import json

import pytest

from repro.observe.export import validate_chrome_trace
from repro.observe.session import (APP_ALIASES, OBSERVE_APP_NAMES,
                                   observed_session, resolve_app)


class TestResolve:
    def test_aliases_point_at_chaos_drivers(self):
        assert resolve_app("httpd") == "httpd-mitm"
        assert resolve_app("sshd") == "sshd-wedge"
        assert resolve_app("pop3") == "pop3"
        for name in OBSERVE_APP_NAMES:
            assert resolve_app(name)

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            resolve_app("gopherd")


class TestHttpdAcceptance:
    @pytest.fixture(scope="class")
    def observer(self):
        return observed_session("httpd", requests=1)

    def test_one_request_is_one_connected_trace(self, observer):
        traces = observer.tracer.traces()
        assert len(traces) == 1
        trace_id = traces[0]
        comps = observer.tracer.compartments(trace_id)
        # the fine-grained partitioning: master + handshake worker +
        # at least one callgate compartment
        assert len(comps) >= 3
        assert any(c.startswith("cg:") for c in comps)
        # connected: every non-root span's parent is in the same trace
        spans = observer.tracer.trace(trace_id)
        ids = {s.span_id for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids

    def test_per_hop_cycle_attribution(self, observer):
        observer.tracer.finish_open()     # export-time hygiene
        trace_id = observer.tracer.traces()[0]
        spans = observer.tracer.trace(trace_id)
        for span in spans:
            assert span.done
            assert span.cycles >= 0
            assert observer.tracer.self_cycles(span) <= span.cycles
        # the handshake compartment did real attributed work
        handshake = [s for s in spans if "handshake" in (s.comp or "")]
        assert handshake and all(
            observer.tracer.self_cycles(s) > 0 for s in handshake)

    def test_export_is_valid_chrome_trace_json(self, observer, tmp_path):
        path = observer.export(tmp_path / "trace.json")
        obj = json.loads(open(path).read())
        assert validate_chrome_trace(obj) == []
        xs = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        assert len(xs) >= 3
        assert all(e["args"]["self_cycles"] >= 0 for e in xs)

    def test_summary_reads_like_top(self, observer):
        text = observer.summary()
        assert "events" in text and "spans" in text
        assert "trace 1:" in text
        assert "->" in text           # the compartment chain

    def test_payload_bytes_stay_out_of_the_record(self, observer):
        for event in observer.recorder.last():
            for value in event.fields.values():
                assert not isinstance(value, (bytes, bytearray)), event


class TestDetach:
    def test_bus_is_free_again_after_the_session(self):
        observer = observed_session("pop3", requests=1)
        bus = observer.bus
        assert not bus.enabled
        assert bus.tracer is None
        assert observer.counters.compartments()   # but the data remains
