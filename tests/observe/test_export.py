"""Chrome trace-event export and the structural validator."""

import json

from repro.core.costs import CostAccount
from repro.observe import events as ev
from repro.observe.bus import EventBus
from repro.observe.export import (chrome_trace, validate_chrome_trace,
                                  validate_file, write_trace)
from repro.observe.trace import Tracer


def _tracer():
    return Tracer(EventBus(CostAccount()))


def _sample_spans():
    tracer = _tracer()
    root = tracer.begin("request", comp="master")
    tracer.bus.costs.charge("syscall", 2)
    child = tracer.begin("cgate:auth", comp="auth-gate", parent=root,
                         secret=b"\x00" * 16)
    tracer.bus.costs.charge("syscall", 3)
    tracer.end(child)
    tracer.bus.costs.charge("syscall")
    tracer.end(root)
    return tracer, root, child


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        tracer, root, child = _sample_spans()
        trace = chrome_trace(tracer.spans, kernel_name="t")
        assert validate_chrome_trace(trace) == []
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        by_name = {e["name"]: e for e in xs}
        assert by_name["request"]["dur"] == root.cycles
        assert by_name["request"]["args"]["self_cycles"] \
            == root.cycles - child.cycles
        # distinct compartments land on distinct named rows
        assert by_name["request"]["tid"] != by_name["cgate:auth"]["tid"]
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"master", "auth-gate"} <= names

    def test_byte_payloads_never_reach_the_json(self, tmp_path):
        tracer, _, _ = _sample_spans()
        path = tmp_path / "trace.json"
        write_trace(path, chrome_trace(tracer.spans))
        text = path.read_text()
        assert "\\x00" not in text and "\\u0000" not in text
        assert "<16 bytes>" in text
        assert validate_file(path) == []

    def test_instant_events_ride_along(self):
        bus = EventBus(CostAccount())
        sink_events = []
        bus.add_sink(type("S", (), {"accept":
                                    lambda self, e: sink_events.append(e)})())
        bus.emit(ev.MEM_VIOLATION, comp="w", addr=4096, op="read",
                 emulated=False, segment="heap")
        bus.emit(ev.NET_SEND, comp="w", fd=3, nbytes=8)   # not an instant
        trace = chrome_trace([], sink_events)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == [ev.MEM_VIOLATION]
        assert instants[0]["s"] == "t"
        assert validate_chrome_trace(trace) == []

    def test_open_spans_are_skipped(self):
        tracer = _tracer()
        tracer.begin("never-finished", comp="x")
        trace = chrome_trace(tracer.spans)
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_rejects_unknown_phase_and_negative_dur(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 0,
             "dur": -5},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("bad phase" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_rejects_unnamed_rows(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 7, "ts": 0,
             "dur": 1},
        ]}
        assert any("thread_name" in p
                   for p in validate_chrome_trace(bad))

    def test_validate_file_reports_unreadable_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert validate_file(path)
        json_path = tmp_path / "ok.json"
        json_path.write_text(json.dumps({"traceEvents": []}))
        assert validate_file(json_path) == []
