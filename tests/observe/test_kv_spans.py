"""Cross-kernel stitching through the cache tier.

A dynamic request through the cached cluster crosses three kernels:
client -> lb -> replica -> kv.  Each kernel traces its own hops; the
connection ids stamped at ``accept``/``connect`` are the join keys, so
:func:`repro.observe.stitch` must union the lb trace, the backend trace
*and* the kv trace into one end-to-end group — the flame graph of a
cache fill shows the storage-gate hop, and a cache hit shows no render.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.observe import stitch
from repro.observe.observer import Observer

KEY = b"kvspan00"


@pytest.fixture
def cluster():
    c = Cluster(kernels=1, replicas=1, cache=True).start()
    c.lb.health_sweep()
    try:
        yield c
    finally:
        c.stop()


def _observe_request(cluster, path):
    kernels = [cluster.lb.kernel, cluster.kv.kernel] + [
        node.kernel for node in cluster.nodes]
    observers = [Observer(k).attach() for k in kernels]
    try:
        response = cluster.request(KEY, path, resume=False)
    finally:
        for obs in observers:
            obs.detach()
    return response, [obs.tracer for obs in observers]


def test_cache_fill_stitches_lb_backend_and_kv_traces(cluster):
    response, tracers = _observe_request(cluster, "/cgi/spans")
    assert response.startswith(b"HTTP/1.0 200")

    groups = stitch(tracers)
    # the request group is the one the kv hop joined: it must also span
    # the lb and the replica — three kernels, one logical request
    kv_groups = [g for g in groups
                 if any(c.startswith("kv-parser") or "store_gate" in c
                        for c in g["compartments"])]
    assert kv_groups, [g["compartments"] for g in groups]
    group = max(kv_groups, key=lambda g: len(g["spans"]))
    comps = group["compartments"]
    assert any("splice" in c or "lb" in c for c in comps), comps
    assert any(c.startswith("cgi") for c in comps), comps
    assert any(c.startswith("kv-parser") for c in comps), comps
    # the fill went through the storage gate, and traces from at least
    # three tracers (lb, kv, node kernels) were unioned
    names = [s.name for s in group["spans"]]
    assert any("store_gate" in n for n in names), names
    assert len({t for t, _ in group["traces"]}) >= 3


def test_cache_hit_skips_the_render_compartment(cluster):
    # request once to fill the cache (untraced), once traced: the hit
    # answers from kv over the *already standing* pipelined connection
    # — no cgi handler spawns, and the kv side opens no new trace (the
    # two-sthread connection setup was paid at fill time)
    first = cluster.request(KEY, "/cgi/spans", resume=False)
    response, tracers = _observe_request(cluster, "/cgi/spans")
    assert response == first                 # byte-identical from cache

    groups = stitch(tracers)
    assert groups, "the traced request produced no spans"
    assert not any(c.startswith("cgi")
                   for g in groups for c in g["compartments"]), \
        [g["compartments"] for g in groups]
    replica = cluster.nodes[0].replicas[0]
    assert replica.cache.hits >= 1
