"""Flight-recorder bounds, drop counting, and dumps (satellite 4)."""

import pytest

from repro.core.costs import CostAccount
from repro.observe import events as ev
from repro.observe.bus import EventBus
from repro.observe.record import (DUMP_EVENTS, MAX_DUMPS, FlightRecorder)


def _bus(recorder, kinds=None):
    bus = EventBus(CostAccount())
    bus.add_sink(recorder, kinds=kinds)
    return bus


class TestRing:
    def test_capacity_holds_under_a_storm(self):
        recorder = FlightRecorder(capacity=32)
        bus = _bus(recorder)
        for i in range(1000):
            bus.emit(ev.SYSCALL_ENTER, comp="c", name=f"op{i}")
        assert len(recorder) == 32
        assert recorder.accepted == 1000
        assert recorder.dropped == 1000 - 32
        # the tape holds the *newest* events
        assert [e.fields["name"] for e in recorder.last(2)] \
            == ["op998", "op999"]

    def test_no_drops_below_capacity(self):
        recorder = FlightRecorder(capacity=100)
        bus = _bus(recorder)
        for i in range(40):
            bus.emit(ev.NET_SEND, comp="c", fd=3, nbytes=i)
        assert recorder.dropped == 0
        assert len(recorder) == 40

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDumps:
    def test_trigger_snapshots_the_tail(self):
        recorder = FlightRecorder(capacity=256,
                                  dump_on=(ev.COMPARTMENT_DOWN,))
        bus = _bus(recorder)
        for i in range(120):
            bus.emit(ev.SYSCALL_ENTER, comp="w1", name=f"op{i}")
        bus.emit(ev.COMPARTMENT_DOWN, comp="w1", restarts=2,
                 fault="memfault")
        assert len(recorder.dumps) == 1
        trigger, tail = recorder.dumps[0]
        assert trigger.kind == ev.COMPARTMENT_DOWN
        assert len(tail) == DUMP_EVENTS
        assert tail[-1] is trigger          # the death is on the tape

    def test_only_the_newest_dumps_are_kept(self):
        recorder = FlightRecorder(capacity=64,
                                  dump_on=(ev.CGATE_DEGRADED,))
        bus = _bus(recorder)
        for generation in range(MAX_DUMPS + 3):
            bus.emit(ev.CGATE_DEGRADED, comp="g", gate="auth",
                     restarts=generation)
        assert len(recorder.dumps) == MAX_DUMPS
        newest_trigger, _ = recorder.dumps[-1]
        assert newest_trigger.fields["restarts"] == MAX_DUMPS + 2

    def test_format_dump_redacts_payload_bytes(self):
        recorder = FlightRecorder(capacity=16,
                                  dump_on=(ev.COMPARTMENT_DOWN,))
        bus = _bus(recorder)
        bus.emit(ev.NET_SEND, comp="w1", fd=3,
                 payload=b"secret-session-key-material")
        bus.emit(ev.COMPARTMENT_DOWN, comp="w1", restarts=1,
                 fault="crash")
        text = recorder.format_dump()
        assert "flight recorder: last 2 events" in text
        assert "secret-session-key-material" not in text
        assert "<27 bytes>" in text

    def test_format_dump_empty_without_a_trigger(self):
        recorder = FlightRecorder(capacity=16, dump_on=(ev.FAULT_FIRED,))
        assert recorder.format_dump() == ""
