"""Span propagation across compartment boundaries (satellite 3)."""

from repro.core.policy import SecurityContext, sc_cgate_add
from repro.faults import RestartPolicy
from repro.observe import Observer
from repro.observe import events as ev


def _span_of(observer, name_part):
    matches = [s for s in observer.tracer.spans if name_part in s.name]
    assert matches, (name_part, observer.tracer.spans)
    return matches[0]


class TestSpawnSpans:
    def test_sthread_spawn_opens_a_child_span(self, kernel):
        with Observer(kernel) as obs:
            # give main a root span so the spawn has a parent to join
            kernel.main.span = obs.tracer.begin("request",
                                                comp=kernel.main.name)
            st = kernel.sthread_create(SecurityContext(),
                                       lambda a: "done", name="worker",
                                       spawn="inline")
            kernel.sthread_join(st)
        root = _span_of(obs, "request")
        child = _span_of(obs, "sthread:worker")
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert child.comp == "worker"
        assert child.done and child.status == "exited"

    def test_fork_and_pthread_join_the_same_trace(self, kernel):
        with Observer(kernel) as obs:
            kernel.main.span = obs.tracer.begin("request",
                                                comp=kernel.main.name)
            kernel.sthread_join(kernel.fork(lambda a: None,
                                            spawn="inline"))
            kernel.sthread_join(kernel.pthread_create(lambda a: None,
                                                      spawn="inline"))
        root = _span_of(obs, "request")
        forked = _span_of(obs, "process:")
        pthread = _span_of(obs, "pthread:")
        assert forked.parent_id == root.span_id
        assert pthread.parent_id == root.span_id
        assert {forked.trace_id, pthread.trace_id} == {root.trace_id}

    def test_unparented_spawn_starts_its_own_trace(self, kernel):
        with Observer(kernel) as obs:
            st = kernel.sthread_create(SecurityContext(), lambda a: None,
                                       name="orphan", spawn="inline")
            kernel.sthread_join(st)
        span = _span_of(obs, "sthread:orphan")
        assert span.parent_id is None


class TestCallgateSpans:
    def test_gate_span_parents_to_the_callers_span(self, kernel):
        def doubler(trusted, arg):
            return arg * 2

        gate = kernel.create_gate(doubler, SecurityContext())
        sc = SecurityContext()
        sc_cgate_add(sc, gate.id)
        with Observer(kernel) as obs:
            kernel.main.span = obs.tracer.begin("request",
                                                comp=kernel.main.name)
            st = kernel.sthread_create(
                sc, lambda a: kernel.cgate(gate.id, arg=21),
                name="caller", spawn="inline")
            assert kernel.sthread_join(st) == 42
        caller = _span_of(obs, "sthread:caller")
        gate_span = _span_of(obs, "cgate:doubler")
        assert gate_span.parent_id == caller.span_id
        assert gate_span.trace_id == caller.trace_id
        assert gate_span.status == "exited"
        # per-hop attribution: the caller's total covers the gate hop
        assert caller.cycles >= gate_span.cycles > 0
        assert obs.tracer.self_cycles(caller) \
            == caller.cycles - gate_span.cycles


class TestSupervisedRestartSpans:
    def test_restart_is_a_fresh_span_linked_to_the_old_one(self, kernel):
        tripwire = kernel.alloc_buf(8)   # main-private: body faults on it
        state = {"tries": 0}

        def body(arg):
            arg["tries"] += 1
            if arg["tries"] == 1:
                kernel.mem_read(tripwire.addr, 8)
            return "ok"

        with Observer(kernel) as obs:
            kernel.main.span = obs.tracer.begin("request",
                                                comp=kernel.main.name)
            st = kernel.sthread_create(
                SecurityContext(), body, state, name="flaky",
                spawn="inline",
                supervise=RestartPolicy(max_restarts=2, backoff=0.0))
            assert kernel.sthread_join(st) == "ok"
        root = _span_of(obs, "request")
        first = _span_of(obs, "sthread:flaky")
        second = _span_of(obs, "sthread:flaky~r1")
        # incarnation 0 hangs off the creator; its crash is recorded
        assert first.parent_id == root.span_id
        assert first.status == "faulted"
        # the restart is a *fresh* span linked to the crashed one, in
        # the same trace, and tagged as a restart
        assert second.span_id != first.span_id
        assert second.parent_id == first.span_id
        assert second.trace_id == first.trace_id
        assert second.fields["restart"] is True
        assert second.fields["generation"] == 1
        assert second.status == "exited"
        # the supervisor announced the restart-from-snapshot on the bus
        assert obs.counters.total(ev.SUPERVISE_RESTART) == 1
        assert obs.counters.total(ev.COW_RESTORE) == 1

    def test_terminal_degradation_announces_compartment_down(self,
                                                             kernel):
        tripwire = kernel.alloc_buf(8)
        with Observer(kernel) as obs:
            st = kernel.sthread_create(
                SecurityContext(),
                lambda a: kernel.mem_read(tripwire.addr, 8),
                name="doomed", spawn="inline",
                supervise=RestartPolicy(max_restarts=1, backoff=0.0))
            try:
                kernel.sthread_join(st)
            except Exception:
                pass
        assert obs.counters.total(ev.COMPARTMENT_DOWN) == 1
        # the flight recorder captured a dump at the death
        assert len(obs.recorder.dumps) == 1
        trigger, _ = obs.recorder.dumps[0]
        assert trigger.kind == ev.COMPARTMENT_DOWN
        assert trigger.comp == "doomed"
