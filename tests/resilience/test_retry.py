"""Client-side retry: bounded budget, typed transients, deadline aware."""

import itertools

import pytest

from repro.core.errors import (ConnectionRefused, ConnectionShed,
                               DeadlineExceeded, NetTimeout, PeerReset,
                               WedgeError)
from repro.resilience import (Deadline, RetryPolicy, call_with_retry,
                              deadline_scope)


class Flaky:
    """Fails with the scripted errors, then returns a value."""

    def __init__(self, errors, value="done"):
        self.errors = list(errors)
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return self.value


def fast(max_attempts=3, **kwargs):
    kwargs.setdefault("base_delay", 0.0)
    return RetryPolicy(max_attempts, **kwargs)


class TestRetryLoop:
    def test_first_try_success_needs_no_retry(self):
        fn = Flaky([])
        assert call_with_retry(fn, fast()) == "done"
        assert fn.calls == 1

    def test_transient_errors_are_retried(self):
        for exc in (NetTimeout("t"), PeerReset("r"),
                    ConnectionShed("s")):
            fn = Flaky([exc])
            assert call_with_retry(fn, fast()) == "done"
            assert fn.calls == 2

    def test_budget_exhaustion_reraises_the_last_error(self):
        fn = Flaky([NetTimeout("1"), NetTimeout("2"), NetTimeout("3")])
        with pytest.raises(NetTimeout, match="3"):
            call_with_retry(fn, fast(max_attempts=3))
        assert fn.calls == 3

    def test_non_transient_errors_pass_straight_through(self):
        fn = Flaky([ConnectionRefused("nope")])
        with pytest.raises(ConnectionRefused):
            call_with_retry(fn, fast())
        assert fn.calls == 1

    def test_deadline_exceeded_is_never_retried(self):
        # it subclasses NetTimeout, so the carve-out must be explicit
        fn = Flaky([DeadlineExceeded("late")])
        with pytest.raises(DeadlineExceeded):
            call_with_retry(fn, fast())
        assert fn.calls == 1

    def test_max_attempts_one_means_no_retries(self):
        fn = Flaky([NetTimeout("t")])
        with pytest.raises(NetTimeout):
            call_with_retry(fn, fast(max_attempts=1))
        assert fn.calls == 1

    def test_on_retry_hook_sees_each_retry(self):
        seen = []
        fn = Flaky([NetTimeout("a"), PeerReset("b")])
        call_with_retry(fn, fast(max_attempts=3),
                        on_retry=lambda n, exc, d: seen.append(
                            (n, type(exc).__name__)))
        assert seen == [(1, "NetTimeout"), (2, "PeerReset")]


class TestBackoff:
    def test_delays_are_deterministic_per_seed(self):
        a = list(itertools.islice(RetryPolicy(5, seed=7).delays(), 4))
        b = list(itertools.islice(RetryPolicy(5, seed=7).delays(), 4))
        c = list(itertools.islice(RetryPolicy(5, seed=8).delays(), 4))
        assert a == b
        assert a != c

    def test_delays_grow_and_saturate(self):
        policy = RetryPolicy(9, base_delay=0.1, factor=2.0, jitter=0.0,
                             max_delay=0.5)
        delays = list(itertools.islice(policy.delays(), 5))
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[-1] == pytest.approx(0.5)

    def test_sleeps_use_the_scheduled_delays(self):
        slept = []
        fn = Flaky([NetTimeout("a"), NetTimeout("b")])
        policy = RetryPolicy(3, base_delay=0.01, jitter=0.0, factor=2.0)
        call_with_retry(fn, policy, sleep=slept.append)
        assert slept == pytest.approx([0.01, 0.02])

    def test_bad_budget_rejected(self):
        with pytest.raises(WedgeError):
            RetryPolicy(0)


class TestRetryUnderDeadline:
    def test_expired_deadline_fails_before_the_first_attempt(self):
        fn = Flaky([])
        clock_off = Deadline(0.0)          # expired long ago
        with deadline_scope(clock_off):
            with pytest.raises(DeadlineExceeded):
                call_with_retry(fn, fast())
        assert fn.calls == 0

    def test_backoff_never_overruns_the_deadline(self):
        fn = Flaky([NetTimeout("a"), NetTimeout("b"), NetTimeout("c")])
        policy = RetryPolicy(4, base_delay=10.0, jitter=0.0)
        with deadline_scope(Deadline.after(0.5)):
            with pytest.raises(DeadlineExceeded):
                call_with_retry(fn, policy)
        # the first attempt ran, the 10s backoff was refused up front
        assert fn.calls == 1

    def test_ample_deadline_does_not_interfere(self):
        fn = Flaky([NetTimeout("a")])
        with deadline_scope(Deadline.after(30.0)):
            assert call_with_retry(fn, fast()) == "done"
