"""Circuit breaker unit tests: the strict three-state machine."""

import pytest

from repro.core.errors import WedgeError
from repro.resilience import (CLOSED, HALF_OPEN, OPEN, BreakerPolicy,
                              CircuitBreaker)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make(cooldown=1.0, **kwargs):
    clock = FakeClock()
    policy = BreakerPolicy(cooldown, **kwargs)
    return CircuitBreaker(policy, clock=clock), clock


class TestStateMachine:
    def test_starts_closed(self):
        breaker, _ = make()
        assert breaker.state == CLOSED
        assert breaker.transitions == []

    def test_trip_opens(self):
        breaker, _ = make()
        breaker.trip()
        assert breaker.state == OPEN
        assert breaker.open_count == 1
        assert breaker.transitions == [(CLOSED, OPEN)]

    def test_trip_is_idempotent_while_open(self):
        breaker, _ = make()
        breaker.trip()
        breaker.trip()
        assert breaker.open_count == 1
        assert breaker.transitions == [(CLOSED, OPEN)]

    def test_probe_denied_while_closed(self):
        breaker, _ = make()
        assert not breaker.try_probe()
        assert breaker.state == CLOSED

    def test_probe_denied_during_cooldown(self):
        breaker, clock = make(cooldown=1.0)
        breaker.trip()
        clock.now += 0.5
        assert not breaker.try_probe()
        assert breaker.state == OPEN

    def test_cooldown_elapsed_admits_exactly_one_probe(self):
        breaker, clock = make(cooldown=1.0)
        breaker.trip()
        clock.now += 1.0
        assert breaker.try_probe()
        assert breaker.state == HALF_OPEN
        # a second caller racing in must fail fast, not probe too
        assert not breaker.try_probe()
        assert breaker.probe_count == 1

    def test_probe_success_closes_and_resets(self):
        breaker, clock = make(cooldown=1.0)
        breaker.trip()
        clock.now += 2.0
        assert breaker.try_probe()
        breaker.probe_succeeded()
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        assert breaker.opened_at is None
        assert breaker.current_cooldown == 1.0

    def test_probe_failure_reopens_with_escalated_cooldown(self):
        breaker, clock = make(cooldown=1.0, cooldown_factor=2.0,
                              max_cooldown=3.0)
        breaker.trip()
        clock.now += 1.0
        assert breaker.try_probe()
        breaker.probe_failed()
        assert breaker.state == OPEN
        assert breaker.open_count == 2
        assert breaker.current_cooldown == 2.0
        # escalation saturates at max_cooldown
        clock.now += 2.0
        assert breaker.try_probe()
        breaker.probe_failed()
        assert breaker.current_cooldown == 3.0

    def test_full_recovery_cycle_transitions(self):
        breaker, clock = make(cooldown=0.5)
        breaker.trip()
        clock.now += 0.5
        breaker.try_probe()
        breaker.probe_succeeded()
        assert breaker.transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                                       (HALF_OPEN, CLOSED)]

    def test_reopened_breaker_can_recover_later(self):
        breaker, clock = make(cooldown=1.0)
        breaker.trip()
        clock.now += 1.0
        breaker.try_probe()
        breaker.probe_failed()
        clock.now += breaker.current_cooldown
        assert breaker.try_probe()
        breaker.probe_succeeded()
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1


class TestIllegalEdges:
    def test_probe_succeeded_requires_half_open(self):
        breaker, _ = make()
        with pytest.raises(WedgeError):
            breaker.probe_succeeded()
        assert breaker.state == CLOSED

    def test_probe_failed_requires_half_open(self):
        breaker, _ = make()
        breaker.trip()
        with pytest.raises(WedgeError):
            breaker.probe_failed()
        assert breaker.state == OPEN

    def test_trip_from_half_open_reopens(self):
        # half_open -> open is a legal edge (the same one probe_failed
        # takes), so a concurrent degrade during a probe re-opens
        breaker, clock = make(cooldown=0.5)
        breaker.trip()
        clock.now += 1.0
        breaker.try_probe()
        breaker.trip()
        assert breaker.state == OPEN
        assert breaker.open_count == 2


class TestPolicy:
    def test_negative_cooldown_rejected(self):
        with pytest.raises(WedgeError):
            BreakerPolicy(-0.1)

    def test_zero_cooldown_admits_an_immediate_probe(self):
        # the chaos campaign leans on this: probe admission becomes a
        # pure control-flow decision, independent of wall-clock speed
        breaker, _ = make(cooldown=0.0)
        breaker.trip()
        assert breaker.try_probe()
