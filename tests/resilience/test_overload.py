"""The overload campaign at test scale: bounded, deterministic, correct."""

import pytest

from repro.resilience.overload import (backpressure_probe, check_artifact,
                                       run_comparison, run_overload,
                                       run_surge)


@pytest.fixture(scope="module")
def pop3_surge():
    """One shared small surge (the campaign is deterministic anyway)."""
    return run_surge("pop3", clients=12, backlog=3, seed=5)


class TestSurge:
    def test_surge_passes_at_test_scale(self, pop3_surge):
        assert pop3_surge.passed, pop3_surge.violations

    def test_backlog_is_bounded(self, pop3_surge):
        assert pop3_surge.peak_backlog <= 3

    def test_shed_count_is_exact(self, pop3_surge):
        assert pop3_surge.shed == 12 - 3
        assert pop3_surge.shed_rate == pytest.approx(9 / 12)

    def test_every_admitted_request_is_answered(self, pop3_surge):
        assert pop3_surge.admitted_ok == 3
        assert pop3_surge.errors == []
        assert pop3_surge.goodput == pytest.approx(3 / 12)

    def test_stream_buffers_stay_under_high_water(self, pop3_surge):
        assert 0 < pop3_surge.peak_stream_buffer <= pop3_surge.high_water

    def test_shed_counts_are_deterministic_across_runs(self, pop3_surge):
        again = run_surge("pop3", clients=12, backlog=3, seed=5)
        assert again.shed == pop3_surge.shed
        assert again.admitted_ok == pop3_surge.admitted_ok
        assert again.peak_backlog == pop3_surge.peak_backlog

    def test_no_shedding_below_the_backlog(self):
        result = run_surge("pop3", clients=3, backlog=8, seed=5)
        assert result.passed, result.violations
        assert result.shed == 0
        assert result.admitted_ok == 3


class TestComparison:
    def test_resilience_on_and_off_answer_byte_identically(self):
        cmp = run_comparison("pop3", surge=4, seed=5, backlog=8)
        assert cmp["identical"], (cmp["on"], cmp["off"])


class TestBackpressureProbe:
    def test_probe_blocks_bounds_and_delivers(self):
        probe = backpressure_probe(high_water=2048, payload=16 * 1024)
        assert probe["engaged"], "the sender never had to wait"
        assert probe["bounded"], probe["peak_buffered"]
        assert probe["intact"]
        assert probe["sent"] == 16 * 1024


class TestCampaignAndArtifact:
    def test_full_campaign_report_and_artifact(self):
        report = run_overload(["pop3"], clients=10, backlog=2, seed=5,
                              compare=False)
        assert report.passed, report.format()
        art = report.artifact()
        assert art["artifact"] == "overload"
        assert art["metrics"]["pop3_goodput"] == pytest.approx(0.2)
        assert art["metrics"]["pop3_shed_rate"] == pytest.approx(0.8)
        assert art["info"]["shed"]["pop3"] == 8
        assert "PASS" in report.format()

    def test_check_flags_a_goodput_drop(self):
        baseline = {"metrics": {"pop3_goodput": 0.5,
                                "pop3_shed_rate": 0.5}}
        bad = {"metrics": {"pop3_goodput": 0.3, "pop3_shed_rate": 0.5}}
        problems = check_artifact(bad, baseline)
        assert len(problems) == 1
        assert "goodput regression" in problems[0]

    def test_check_accepts_better_or_equal_goodput(self):
        baseline = {"metrics": {"pop3_goodput": 0.5,
                                "pop3_shed_rate": 0.5}}
        good = {"metrics": {"pop3_goodput": 0.6, "pop3_shed_rate": 0.4}}
        assert check_artifact(good, baseline) == []
        assert check_artifact(baseline, baseline) == []

    def test_check_flags_a_shed_rate_rise(self):
        baseline = {"metrics": {"pop3_shed_rate": 0.5}}
        bad = {"metrics": {"pop3_shed_rate": 0.9}}
        problems = check_artifact(bad, baseline)
        assert len(problems) == 1
        assert "shed rate" in problems[0]

    def test_check_flags_a_missing_metric(self):
        baseline = {"metrics": {"pop3_goodput": 0.5}}
        problems = check_artifact({"metrics": {}}, baseline)
        assert problems and "missing" in problems[0]
