"""Deadlines: ambient propagation, clamping, and end-to-end exhaustion."""

import time

import pytest

from repro.core.errors import DeadlineExceeded, NetTimeout
from repro.core.kernel import Kernel
from repro.core.policy import SecurityContext
from repro.faults.plan import FaultPlan
from repro.faults.supervise import RestartPolicy
from repro.net import ByteStream
from repro.resilience import Deadline, current_deadline, deadline_scope


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestDeadline:
    def test_after_and_remaining(self):
        clock = FakeClock()
        d = Deadline.after(5.0, clock=clock)
        assert d.remaining() == pytest.approx(5.0)
        clock.now += 2.0
        assert d.remaining() == pytest.approx(3.0)
        assert not d.expired

    def test_expired_and_check(self):
        clock = FakeClock()
        d = Deadline.after(1.0, label="req", clock=clock)
        d.check("op")  # fine while budget remains
        clock.now += 1.5
        assert d.expired
        with pytest.raises(DeadlineExceeded) as exc:
            d.check("recv")
        assert exc.value.op == "recv"

    def test_clamp_bounds_local_waits(self):
        clock = FakeClock()
        d = Deadline.after(2.0, clock=clock)
        assert d.clamp(10.0) == pytest.approx(2.0)
        assert d.clamp(0.5) == pytest.approx(0.5)
        assert d.clamp(None) == pytest.approx(2.0)
        clock.now += 3.0
        assert d.clamp(10.0) == 0.0

    def test_deadline_exceeded_is_a_net_timeout(self):
        # timeout-tolerant legacy code keeps working; retry logic carves
        # the subclass out explicitly
        assert issubclass(DeadlineExceeded, NetTimeout)


class TestDeadlineScope:
    def test_no_ambient_deadline_by_default(self):
        assert current_deadline() is None

    def test_scope_push_and_pop(self):
        d = Deadline.after(5.0)
        with deadline_scope(d) as active:
            assert active is d
            assert current_deadline() is d
        assert current_deadline() is None

    def test_none_scope_is_noop(self):
        with deadline_scope(None) as active:
            assert active is None
            assert current_deadline() is None

    def test_nested_scope_never_extends_the_budget(self):
        clock = FakeClock()
        outer = Deadline.after(1.0, clock=clock)
        inner = Deadline.after(10.0, clock=clock)
        with deadline_scope(outer):
            with deadline_scope(inner) as active:
                # the inner scope wanted more time than the caller had:
                # the enclosing (earlier) deadline wins
                assert active is outer
            assert current_deadline() is outer

    def test_nested_scope_may_shrink_the_budget(self):
        clock = FakeClock()
        outer = Deadline.after(10.0, clock=clock)
        inner = Deadline.after(1.0, clock=clock)
        with deadline_scope(outer):
            with deadline_scope(inner) as active:
                assert active is inner

    def test_scope_pops_on_exception(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline.after(5.0)):
                raise RuntimeError("boom")
        assert current_deadline() is None


class TestDeadlineAtChokepoints:
    def test_recv_raises_deadline_exceeded_not_timeout(self):
        s = ByteStream("t")
        with deadline_scope(Deadline.after(0.02)):
            with pytest.raises(DeadlineExceeded):
                s.recv(1, timeout=10.0)

    def test_recv_deadline_cuts_the_wait_short(self):
        s = ByteStream("t")
        start = time.monotonic()
        with deadline_scope(Deadline.after(0.05)):
            with pytest.raises(DeadlineExceeded):
                s.recv(1, timeout=30.0)
        assert time.monotonic() - start < 5.0

    def test_send_raises_deadline_exceeded_at_high_water(self):
        s = ByteStream("t", high_water=4)
        with deadline_scope(Deadline.after(0.02)):
            with pytest.raises(DeadlineExceeded):
                s.send(b"x" * 64, timeout=10.0)

    def test_cgate_entry_rejects_an_exhausted_budget(self):
        kernel = Kernel()
        kernel.start_main()
        gate = kernel.create_gate(lambda t, a: "ran", SecurityContext())
        clock = FakeClock()
        d = Deadline.after(1.0, clock=clock)
        clock.now += 2.0
        with deadline_scope(d):
            with pytest.raises(DeadlineExceeded) as exc:
                kernel.cgate(gate.id)
        assert exc.value.op == "cgate"

    def test_stalled_callee_fails_at_caller_within_the_deadline(self):
        """The acceptance drill: deadline < injected callee stall.

        A fault plan stalls the gate body for far longer than the
        caller's budget; the caller must get a typed DeadlineExceeded
        well before the stall finishes, not a late NetTimeout after it.
        """
        kernel = Kernel()
        kernel.start_main()
        gate = kernel.create_gate(
            lambda t, a: "ok", SecurityContext(),
            supervise=RestartPolicy(max_restarts=0, watchdog=5.0))
        plan = FaultPlan(seed=1)
        plan.add("cgate", "delay", at=(1,), delay=1.5)
        kernel.install_faults(plan)
        start = time.monotonic()
        with deadline_scope(Deadline.after(0.3)):
            with pytest.raises(DeadlineExceeded):
                kernel.cgate(gate.id)
        elapsed = time.monotonic() - start
        assert elapsed < 1.2, \
            f"caller waited {elapsed:.2f}s — past its 0.3s budget"
        # the stall was really injected (the abandoned worker hit it)
        assert plan.injection_count >= 1

    def test_gate_runs_normally_inside_an_ample_deadline(self):
        kernel = Kernel()
        kernel.start_main()
        gate = kernel.create_gate(lambda t, a: a + 1, SecurityContext())
        with deadline_scope(Deadline.after(30.0)):
            assert kernel.cgate(gate.id, arg=41) == 42
