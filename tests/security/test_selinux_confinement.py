"""SELinux-lite confinement of httpd workers (sc_sel_context in anger).

The paper's evaluation grants all syscalls to every sthread to focus on
memory privileges; these tests run the Figure-2 worker inside a
restrictive domain instead and show the syscall filter catching what
the memory policy cannot express.
"""

import time

from repro.apps.httpd import SimplePartitionHttpd
from repro.apps.httpd.content import build_request, response_body
from repro.attacks.exploit import (make_exploit_blob, registry,
                                   start_campaign)
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient


def test_confined_worker_still_serves():
    net = Network()
    server = SimplePartitionHttpd(net, "sel-serve:443",
                                  confine=True).start()
    try:
        client = TlsClient(DetRNG("c"),
                           expected_server_key=server.public_key)
        conn = client.connect(net, "sel-serve:443")
        response = conn.request(build_request("/about"))
        assert b"Wedge" in response_body(response)
        assert server.errors == []
        worker = server.workers[0]
        assert worker.sel_sid == "system_u:system_r:httpd_worker_t"
    finally:
        server.stop()


def test_confined_worker_exploit_cannot_use_filesystem():
    """The exploited worker's memory policy never covered files, but
    without SELinux it could still *try* syscalls; the domain's
    allow-set stops open/listen/fork outright."""
    result = {}

    @registry.register("selinux-probe")
    def selinux_probe(api):
        kernel = api.kernel
        for name, attempt in (
                ("open", lambda: kernel.open("/etc/passwd", "r")),
                ("listen", lambda: kernel.listen("evil:31337")),
                ("fork", lambda: kernel.fork(lambda a: None,
                                             spawn="inline")),
                ("pipe", lambda: kernel.pipe()),
                ("setuid", lambda: kernel.setuid(0))):
            try:
                attempt()
                result[name] = "allowed"
            except Exception as exc:   # noqa: BLE001
                result[name] = type(exc).__name__
        # the worker's legitimate syscalls still work
        result["send"] = "allowed"
        kernel.send(api.context["fd"], b"")
        result["done"] = True

    net = Network()
    server = SimplePartitionHttpd(net, "sel-atk:443",
                                  confine=True).start()
    try:
        start_campaign()
        client = TlsClient(DetRNG("atk"),
                           expected_server_key=server.public_key)
        try:
            client.connect(net, "sel-atk:443",
                           extensions=make_exploit_blob("selinux-probe"))
        except Exception:
            pass
        deadline = time.time() + 5
        while "done" not in result and time.time() < deadline:
            time.sleep(0.02)
        assert result["open"] == "SyscallDenied"
        assert result["listen"] == "SyscallDenied"
        assert result["fork"] == "SyscallDenied"
        assert result["pipe"] == "SyscallDenied"
        assert result["setuid"] == "SyscallDenied"
        assert result["send"] == "allowed"
    finally:
        server.stop()


def test_unconfined_worker_can_issue_syscalls():
    """For contrast: without the domain, the same probe's syscalls get
    past SELinux (and are stopped, if at all, by uid/VFS checks)."""
    result = {}

    @registry.register("selinux-contrast")
    def selinux_contrast(api):
        kernel = api.kernel
        try:
            kernel.pipe()
            result["pipe"] = "allowed"
        except Exception as exc:   # noqa: BLE001
            result["pipe"] = type(exc).__name__
        result["done"] = True

    net = Network()
    server = SimplePartitionHttpd(net, "sel-open:443",
                                  confine=False).start()
    try:
        start_campaign()
        client = TlsClient(DetRNG("atk2"),
                           expected_server_key=server.public_key)
        try:
            client.connect(
                net, "sel-open:443",
                extensions=make_exploit_blob("selinux-contrast"))
        except Exception:
            pass
        deadline = time.time() + 5
        while "done" not in result and time.time() < deadline:
            time.sleep(0.02)
        assert result["pipe"] == "allowed"
    finally:
        server.stop()
