"""Unit tests for the attack harness itself (blobs, loot, MITM plumbing)."""

import pytest

from repro.attacks.exploit import (EXPLOIT_MAGIC, ExploitApi,
                                   ExploitTakeover, Loot,
                                   make_exploit_blob,
                                   maybe_trigger_exploit, registry,
                                   start_campaign)
from repro.attacks.mitm import MitmAttacker, hello_exploit_rewriter
from repro.net import Network
from repro.net.stream import DuplexStream


class TestBlob:
    def test_roundtrip_triggers_payload(self, kernel):
        ran = []
        registry.register("unit-payload", lambda api: ran.append(api))
        blob = make_exploit_blob("unit-payload", data=b"extra")
        with pytest.raises(ExploitTakeover):
            maybe_trigger_exploit(kernel, b"prefix" + blob + b"suffix")
        assert ran and ran[0].data == b"extra"

    def test_benign_input_ignored(self, kernel):
        maybe_trigger_exploit(kernel, b"GET / HTTP/1.0")
        maybe_trigger_exploit(kernel, b"")
        maybe_trigger_exploit(kernel, EXPLOIT_MAGIC)  # truncated blob

    def test_unregistered_payload_ignored(self, kernel):
        blob = make_exploit_blob("nobody-registered-this")
        maybe_trigger_exploit(kernel, blob)   # no exception

    def test_context_passed_through(self, kernel):
        seen = {}
        registry.register("ctx-payload",
                          lambda api: seen.update(api.context))
        with pytest.raises(ExploitTakeover):
            maybe_trigger_exploit(kernel, make_exploit_blob("ctx-payload"),
                                  context={"marker": 42})
        assert seen["marker"] == 42

    def test_takeover_is_a_compartment_fault(self, kernel):
        from repro.core.policy import SecurityContext
        registry.register("die", lambda api: None)

        def body(arg):
            maybe_trigger_exploit(kernel, make_exploit_blob("die"))
            return "unreachable"

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        assert child.faulted
        assert isinstance(child.fault, ExploitTakeover)


class TestLoot:
    def test_grab_and_contains(self):
        loot = Loot()
        loot.grab("key", b"value")
        assert "key" in loot
        assert loot.get("key") == b"value"
        assert loot.get("missing") is None

    def test_denied_records_reason(self):
        loot = Loot()
        loot.denied("the vault", ValueError("no"))
        assert loot.attempts == [("the vault", "ValueError: no")]

    def test_campaign_scopes_loot(self, kernel):
        first = start_campaign()
        registry.register("grabber",
                          lambda api: api.loot.grab("x", 1))
        with pytest.raises(ExploitTakeover):
            maybe_trigger_exploit(kernel, make_exploit_blob("grabber"))
        assert "x" in first
        second = start_campaign()
        assert "x" not in second


class TestExploitApi:
    def test_try_read_logs_denial(self, kernel):
        tag = kernel.tag_new()
        buf = kernel.alloc_buf(8, tag=tag)
        from repro.core.policy import SecurityContext

        outcome = {}

        def body(arg):
            api = ExploitApi(kernel, loot=Loot())
            outcome["data"] = api.try_read(buf.addr, 8, what="the tag")
            outcome["attempts"] = list(api.loot.attempts)

        child = kernel.sthread_create(SecurityContext(), body,
                                      spawn="inline")
        kernel.sthread_join(child)
        assert outcome["data"] is None
        assert outcome["attempts"][0][0] == "the tag"

    def test_scan_reports_hits_and_denials(self, kernel):
        mine = kernel.alloc_buf(16, init=b"FINDME-0123456!!")
        api = ExploitApi(kernel, loot=Loot())
        hits = api.scan_all_memory(b"FINDME")
        assert any(name == "main:heap" for name, _ in hits)


class TestMitmPlumbing:
    def test_transcript_and_passthrough(self):
        from repro.tls.records import frame, read_frame, StreamTransport
        net = Network()
        listener = net.listen("tap:1")
        attacker = MitmAttacker()
        net.interpose("tap:1", attacker)
        client = net.connect("tap:1")
        server = listener.accept(timeout=2)
        client.send(frame(22, b"hello"))
        rtype, body = read_frame(StreamTransport(server, 2))
        assert (rtype, body) == (22, b"hello")
        server.send(frame(23, b"reply"))
        rtype, body = read_frame(StreamTransport(client, 2))
        assert (rtype, body) == (23, b"reply")
        attacker.sessions[0].join(1)
        directions = [d for d, _, _ in attacker.sessions[0].transcript]
        assert "c2s" in directions and "s2c" in directions

    def test_loot_frames_swallowed(self):
        from repro.attacks.exploit import LOOT_PREFIX
        from repro.tls.records import frame, RT_ALERT, RT_HANDSHAKE
        from repro.tls.records import read_frame, StreamTransport
        net = Network()
        listener = net.listen("tap:2")
        attacker = MitmAttacker()
        net.interpose("tap:2", attacker)
        client = net.connect("tap:2")
        server = listener.accept(timeout=2)
        # the "hijacked server" exfiltrates; the client sends normally
        server.send(frame(RT_ALERT, LOOT_PREFIX + b"stolen-key"))
        server.send(frame(RT_HANDSHAKE, b"normal"))
        rtype, body = read_frame(StreamTransport(client, 2))
        # the loot frame never reached the client...
        assert (rtype, body) == (RT_HANDSHAKE, b"normal")
        # ...because the attacker kept it
        assert attacker.exfiltrated() == [b"stolen-key"]

    def test_drop_hook(self):
        from repro.core.errors import NetworkError
        from repro.tls.records import frame, read_frame, StreamTransport
        net = Network()
        listener = net.listen("tap:3")
        attacker = MitmAttacker(
            client_to_server=lambda rtype, body, s: None)  # drop all
        net.interpose("tap:3", attacker)
        client = net.connect("tap:3")
        server = listener.accept(timeout=2)
        client.send(frame(22, b"dropped"))
        with pytest.raises(NetworkError):
            read_frame(StreamTransport(server, 0.3))

    def test_hello_rewriter_only_arms_first_handshake_frame(self):
        from repro.tls.handshake import ClientHello, parse_handshake
        from repro.attacks.exploit import _parse_blob
        hook = hello_exploit_rewriter("some-payload")

        class FakeSession:
            pass

        session = FakeSession()
        hello = ClientHello(b"r" * 32, b"", b"").pack()
        rtype, armed = hook(22, hello, session)
        parsed = parse_handshake(armed)
        payload_id, data = _parse_blob(parsed.extensions)
        assert payload_id == "some-payload"
        assert data == hello      # original bytes ride inside
        # subsequent frames pass through unmodified
        rtype, body = hook(22, b"second-frame", session)
        assert body == b"second-frame"
