"""Security tests: the paper's §5.1 threat models against httpd.

Simple model (no interposition): an attacker who can exploit any
unprivileged compartment must not obtain the RSA private key, a
decryption oracle, or influence over session-key generation.
"""

import time

import pytest

from repro.apps.httpd import (MitmPartitionHttpd, MonolithicHttpd,
                              SimplePartitionHttpd)
from repro.attacks import payloads
from repro.attacks.exploit import make_exploit_blob, start_campaign
from repro.crypto import DetRNG
from repro.crypto.rsa import RsaPrivateKey
from repro.net import Network
from repro.tls import TlsClient


def attack_connection(server, payload_id, data=b"", seed="attacker"):
    """Connect with an exploit blob in the ClientHello extensions."""
    client = TlsClient(DetRNG(seed),
                       expected_server_key=server.public_key)
    blob = make_exploit_blob(payload_id, data=data)
    try:
        return client.connect(server.network, server.addr,
                              extensions=blob)
    except Exception:
        return None   # a hijacked worker may never answer


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestMonolithicBaseline:
    def test_exploit_steals_private_key(self):
        """The monolithic server loses everything to one exploit."""
        net = Network()
        srv = MonolithicHttpd(net, "atk-mono:443").start()
        try:
            loot = start_campaign()
            attack_connection(srv, payloads.PAYLOAD_STEAL_PRIVATE_KEY,
                              data=srv.public_key.to_bytes())
            assert wait_for(lambda: "private_key" in loot)
            stolen = RsaPrivateKey.from_bytes(loot.get("private_key"))
            assert stolen.n == srv.private_key.n
            assert stolen.d == srv.private_key.d
        finally:
            srv.stop()


class TestSimplePartition:
    def test_private_key_out_of_reach(self):
        """Figure 2's goal: the key tag is not in the worker's table."""
        net = Network()
        srv = SimplePartitionHttpd(net, "atk-simple:443").start()
        try:
            loot = start_campaign()
            attack_connection(srv, payloads.PAYLOAD_STEAL_PRIVATE_KEY,
                              data=srv.public_key.to_bytes())
            time.sleep(0.3)
            assert "private_key" not in loot
            denied = [what for what, _ in loot.attempts]
            assert any("rsa-private-key" in what for what in denied)
        finally:
            srv.stop()

    def test_no_decryption_oracle_for_past_sessions(self):
        """An exploited worker cannot recover a *victim's* session key
        by replaying the victim's key exchange through the gate: the
        gate binds a fresh server random it generated itself."""
        net = Network()
        srv = SimplePartitionHttpd(net, "atk-oracle:443").start()
        try:
            # a victim completes a session; the attacker eavesdropped
            # (client_random, encrypted premaster) off the wire
            victim = TlsClient(DetRNG("victim"),
                               expected_server_key=srv.public_key)
            conn = victim.connect(net, srv.addr)
            from repro.apps.httpd.content import build_request
            conn.request(build_request("/"))   # complete the session
            victim_master = conn.master

            # the attacker exploits a worker and replays the captured
            # exchange through the setup_session_key gate
            from repro.attacks.exploit import registry

            result = {}

            @registry.register("oracle-replay")
            def oracle_replay(api):
                kernel = api.kernel
                gate_id = api.context["gate_id"]
                reply = kernel.cgate(gate_id, None, {
                    "op": "hello", "session_id": b""})
                # gate picked ITS OWN random; bind the victim's capture
                import repro.crypto.rsa as rsa_mod
                epms = srv.public_key.encrypt(b"fake-premaster",
                                              DetRNG("fake"))
                reply2 = kernel.cgate(gate_id, None, {
                    "op": "key",
                    "server_random": reply["server_random"],
                    "client_random": b"c" * 32,
                    "epms": epms})
                result["derived"] = reply2["master"]
                # forging the server random is rejected outright
                try:
                    kernel.cgate(gate_id, None, {
                        "op": "key", "server_random": b"Z" * 32,
                        "client_random": b"c" * 32, "epms": epms})
                except Exception as exc:   # noqa: BLE001
                    result["forged_random"] = type(exc).__name__

            attack_connection(srv, "oracle-replay")
            assert wait_for(lambda: "derived" in result)
            # whatever the gate derived is NOT the victim's key
            assert result["derived"] != victim_master
            assert "forged_random" in result
        finally:
            srv.stop()

    def test_requests_isolated_across_connections(self):
        """Workers terminate after one request: no cross-request state."""
        net = Network()
        srv = SimplePartitionHttpd(net, "atk-iso:443").start()
        try:
            from repro.attacks.exploit import registry
            stashes = []

            @registry.register("stash-then-look")
            def stash_then_look(api):
                kernel = api.kernel
                # remember this compartment's heap segment id and leave
                # a marker in it
                buf = kernel.alloc_buf(16, init=b"attacker-marker!")
                stashes.append((kernel.current().heap_segment.id,
                                buf.addr))
                if len(stashes) > 1:
                    prev_addr = stashes[0][1]
                    api.try_read(prev_addr, 16,
                                 what="previous worker's heap")

            loot = start_campaign()
            attack_connection(srv, "stash-then-look", seed="a1")
            attack_connection(srv, "stash-then-look", seed="a2")
            assert wait_for(lambda: len(stashes) == 2)
            seg_ids = {seg for seg, _ in stashes}
            assert len(seg_ids) == 2     # fresh heap per worker
            assert any("previous worker" in what
                       for what, _ in loot.attempts)
        finally:
            srv.stop()


class TestMitmPartitionDirect:
    def test_handshake_sthread_cannot_reach_key(self):
        net = Network()
        srv = MitmPartitionHttpd(net, "atk-fine:443").start()
        try:
            loot = start_campaign()
            attack_connection(srv, payloads.PAYLOAD_PROBE_FINE_PARTITION)
            assert wait_for(lambda: "scan_hits" in loot)
            assert loot.get("session_master") is None
            assert loot.get("finished_state") is None
            # the oracle probe got a bare boolean failure
            assert loot.get("oracle_reply") == (("ok", False),)
            denied = [what for what, _ in loot.attempts]
            assert "session key tag" in denied
            assert "finished_state tag" in denied
        finally:
            srv.stop()

    def test_handler_exploit_defense_in_depth(self):
        """A malicious *authenticated* client exploits client_handler:
        no key material, no raw network write (paper Figure 5)."""
        net = Network()
        srv = MitmPartitionHttpd(net, "atk-handler:443").start()
        try:
            loot = start_campaign()
            client = TlsClient(DetRNG("insider"),
                               expected_server_key=srv.public_key)
            conn = client.connect(net, srv.addr)
            # the exploit rides a correctly MAC'ed request
            evil = (b"GET /" +
                    make_exploit_blob(payloads.PAYLOAD_HANDLER_LEAK) +
                    b" HTTP/1.0\r\n\r\n")
            conn.send(evil)
            assert wait_for(lambda: "handler_hijacked" in loot)
            assert loot.get("session_master") is None
            denied = [what for what, _ in loot.attempts]
            assert "session key tag" in denied
            assert "exfiltration" in denied   # no network write
        finally:
            srv.stop()

    def test_injected_ciphertext_dropped_by_ssl_read(self):
        """Garbage injected into the protected phase dies at the MAC
        inside ssl_read and never reaches the request parser."""
        net = Network()
        srv = MitmPartitionHttpd(net, "atk-inject:443").start()
        try:
            client = TlsClient(DetRNG("honest"),
                               expected_server_key=srv.public_key)
            conn = client.connect(net, srv.addr)
            # inject a forged appdata frame before the real request
            from repro.tls.records import frame, RT_APPDATA
            conn.channel.transport.sock.send(
                frame(RT_APPDATA, b"\x00" * 48))
            from repro.apps.httpd.content import build_request
            resp = conn.request(build_request("/"))
            assert resp.startswith(b"HTTP/1.0 200")
            assert srv.requests_served == 1
        finally:
            srv.stop()
