"""The DoS extension end to end: a memory bomb in a quota'd worker."""

import time

from repro.apps.httpd import SimplePartitionHttpd
from repro.apps.httpd.content import build_request, response_body
from repro.attacks.exploit import (make_exploit_blob, registry,
                                   start_campaign)
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient


def test_memory_bomb_confined_and_service_continues():
    """The exploit the paper says Wedge cannot stop (§7): consuming
    memory without bound.  With per-worker quotas it is cut off, and
    the server keeps serving."""
    result = {}

    @registry.register("memory-bomb")
    def memory_bomb(api):
        kernel = api.kernel
        allocated = 0
        try:
            while True:
                kernel.malloc(4096)
                allocated += 4096
        except Exception as exc:   # noqa: BLE001
            result["stopped_by"] = type(exc).__name__
            result["allocated"] = allocated

    net = Network()
    server = SimplePartitionHttpd(net, "quota-httpd:443",
                                  worker_quota=64 * 1024).start()
    try:
        start_campaign()
        attacker = TlsClient(DetRNG("bomber"),
                             expected_server_key=server.public_key)
        try:
            attacker.connect(net, "quota-httpd:443",
                             extensions=make_exploit_blob("memory-bomb"))
        except Exception:
            pass
        deadline = time.time() + 5
        while "stopped_by" not in result and time.time() < deadline:
            time.sleep(0.02)
        assert result["stopped_by"] == "QuotaExceeded"
        assert result["allocated"] <= 64 * 1024
        # the machine is fine: the next client is served normally
        honest = TlsClient(DetRNG("honest"),
                           expected_server_key=server.public_key)
        conn = honest.connect(net, "quota-httpd:443")
        assert b"It works" in response_body(
            conn.request(build_request("/")))
    finally:
        server.stop()


def test_quota_generous_enough_for_honest_workers():
    """The quota must not break legitimate service."""
    net = Network()
    server = SimplePartitionHttpd(net, "quota-ok:443",
                                  worker_quota=64 * 1024).start()
    try:
        client = TlsClient(DetRNG("c"),
                           expected_server_key=server.public_key)
        for _ in range(3):
            conn = client.connect(net, "quota-ok:443")
            assert conn.request(build_request("/")).startswith(
                b"HTTP/1.0 200")
        assert server.errors == []
    finally:
        server.stop()
