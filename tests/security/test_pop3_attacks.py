"""Security tests for the POP3 example: §2's claims made executable."""

import time

from repro.apps.pop3 import MonolithicPop3, PartitionedPop3, Pop3Client
from repro.attacks.exploit import (make_exploit_blob, registry,
                                   start_campaign)
from repro.net import Network


def exploit_command(server_cls, addr, payload_id):
    net = Network()
    server = server_cls(net, addr).start()
    client = Pop3Client(net, addr)
    try:
        client.raw_command(b"USER " + make_exploit_blob(payload_id))
    except Exception:
        pass
    return server, client


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _register_mail_thief():
    result = {}

    @registry.register("pop3-thief")
    def pop3_thief(api):
        result["password_hits"] = api.scan_all_memory(b"wonderland")
        result["mail_hits"] = api.scan_all_memory(
            b"queen@hearts".hex().encode())
        # try to bless ourselves as uid 1000 by writing the uid region
        uid_addr = api.context.get("uid_addr")
        if uid_addr is not None:
            try:
                api.kernel.mem_write(uid_addr,
                                     (1000).to_bytes(8, "big"))
                result["uid_forged"] = True
            except Exception as exc:   # noqa: BLE001
                result["uid_forge_denied"] = type(exc).__name__
        # try to fetch mail without logging in
        gates = api.context.get("gates")
        if gates is not None:
            reply = api.try_cgate(gates["retrieve_gate"], None,
                                  {"op": "list"},
                                  what="retrieve before login")
            result["unauthed_list"] = reply
        result["done"] = True

    return result


class TestMonolithicPop3:
    def test_exploit_reads_passwords_and_all_mail(self):
        result = _register_mail_thief()
        server, client = exploit_command(MonolithicPop3,
                                         "pop3-atk-mono:110",
                                         "pop3-thief")
        try:
            assert wait_for(lambda: "done" in result)
            # everything in the process was readable
            assert result["password_hits"]
            assert result["mail_hits"]
        finally:
            server.stop()


class TestPartitionedPop3:
    def test_client_handler_cannot_reach_secrets(self):
        """An exploit within the client handler cannot reveal any
        passwords or e-mails (paper §2)."""
        result = _register_mail_thief()
        start_campaign()
        server, client = exploit_command(PartitionedPop3,
                                         "pop3-atk-part:110",
                                         "pop3-thief")
        try:
            assert wait_for(lambda: "done" in result)
            assert result["password_hits"] == []
            assert result["mail_hits"] == []
        finally:
            server.stop()

    def test_authentication_cannot_be_skipped(self):
        """The retriever only serves the uid that *login* recorded, and
        the handler cannot write the uid region itself."""
        result = _register_mail_thief()
        start_campaign()
        server, client = exploit_command(PartitionedPop3,
                                         "pop3-atk-skip:110",
                                         "pop3-thief")
        try:
            assert wait_for(lambda: "done" in result)
            assert result.get("uid_forged") is None
            assert result["uid_forge_denied"] == "MemoryViolation"
            assert result["unauthed_list"] == {"ok": False,
                                               "error":
                                               "not authenticated"}
        finally:
            server.stop()

    def test_login_gate_sets_uid_for_retriever(self):
        """The legitimate flow through the same gates still works."""
        net = Network()
        server = PartitionedPop3(net, "pop3-legit:110").start()
        try:
            client = Pop3Client(net, "pop3-legit:110")
            assert client.login("alice", b"wonderland")
            assert len(client.list_messages()) == 2
            client.quit()
        finally:
            server.stop()
