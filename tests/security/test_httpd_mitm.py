"""The paper's headline: MITM + exploit vs the two partitionings (§5.1.2).

The same campaign — interpose on the server address, arm the legitimate
client's ClientHello with an exploit, relay everything else — succeeds
against the Figure 2 partitioning (the worker holds the session key and
leaks it) and fails against the Figures 3-5 partitioning (the hijacked
handshake sthread can neither read the key nor abuse the finished gates
as oracles, and the victim's session completes safely).
"""

import time

import pytest

from repro.apps.httpd import MitmPartitionHttpd, SimplePartitionHttpd
from repro.apps.httpd.content import build_request, response_body
from repro.attacks import payloads
from repro.attacks.exploit import start_campaign
from repro.attacks.mitm import MitmAttacker, hello_exploit_rewriter
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient


def run_campaign(server_cls, payload_id, addr, **server_kwargs):
    net = Network()
    server = server_cls(net, addr, **server_kwargs).start()
    loot = start_campaign()
    attacker = MitmAttacker(
        client_to_server=hello_exploit_rewriter(payload_id), loot=loot)
    net.interpose(addr, attacker)
    victim = TlsClient(DetRNG("victim"),
                       expected_server_key=server.public_key)
    conn = victim.connect(net, addr)
    response = conn.request(build_request("/account"))
    time.sleep(0.3)
    return server, attacker, loot, conn, response


class TestFigure2Falls:
    def test_session_key_stolen_and_exfiltrated(self):
        server, attacker, loot, conn, response = run_campaign(
            SimplePartitionHttpd, payloads.PAYLOAD_STEAL_SESSION_KEY,
            "mitm-f2:443")
        try:
            # the victim noticed nothing
            assert b"balance" in response_body(response)
            # the attacker holds the victim's master secret
            assert loot.get("session_master") == conn.master
            # and it crossed the wire to the MITM
            assert conn.master in attacker.exfiltrated()
        finally:
            server.stop()

    def test_stolen_key_decrypts_the_victims_traffic(self):
        """Close the loop: the attacker actually reads the plaintext."""
        server, attacker, loot, conn, response = run_campaign(
            SimplePartitionHttpd, payloads.PAYLOAD_STEAL_SESSION_KEY,
            "mitm-f2b:443")
        try:
            master = loot.get("session_master")
            assert master is not None
            # the MITM observed the randoms in the clear; re-derive keys
            from repro.crypto.prf import derive_key_block
            from repro.tls import records as rec
            from repro.tls.handshake import (parse_handshake,
                                             HS_CLIENT_HELLO,
                                             HS_SERVER_HELLO)
            session = attacker.sessions[0]
            hellos = [body for direction, rtype, body
                      in session.transcript if rtype == rec.RT_HANDSHAKE]
            # victim's hello was rewritten before forwarding; the
            # *original* randoms are inside — use server hello + the
            # armed hello (randoms unchanged by the rewriter)
            client_hello = parse_handshake(hellos[0],
                                           expect=HS_CLIENT_HELLO)
            server_hello = parse_handshake(hellos[1],
                                           expect=HS_SERVER_HELLO)
            keys = derive_key_block(master, client_hello.client_random,
                                    server_hello.server_random)
            # decrypt the server's application-data record (the page)
            appdata = [(d, b) for d, rtype, b in session.transcript
                       if rtype == rec.RT_APPDATA]
            s2c = [b for d, b in appdata if d == "s2c"]
            plaintext = rec.open_record(keys["server_enc"],
                                        keys["server_mac"], 1,
                                        rec.RT_APPDATA, s2c[-1])
            assert b"balance" in plaintext
        finally:
            server.stop()


class TestFigures35Hold:
    @pytest.mark.parametrize("gate_mode", ["fresh", "recycled"])
    def test_same_campaign_fails(self, gate_mode):
        server, attacker, loot, conn, response = run_campaign(
            MitmPartitionHttpd, payloads.PAYLOAD_PROBE_FINE_PARTITION,
            f"mitm-f35-{gate_mode}:443", gate_mode=gate_mode)
        try:
            # the victim is still served correctly...
            assert b"balance" in response_body(response)
            # ...the attacker got nothing
            assert loot.get("session_master") is None
            assert attacker.exfiltrated() == []
            assert loot.get("oracle_reply") == (("ok", False),)
            denied = [what for what, _ in loot.attempts]
            assert "session key tag" in denied
        finally:
            server.stop()

    def test_exploited_handshake_sthread_is_dead_after(self):
        """The hijacked sthread terminated; the master moved on to the
        client handler only because the *gates* recorded completion."""
        server, attacker, loot, conn, response = run_campaign(
            MitmPartitionHttpd, payloads.PAYLOAD_PROBE_FINE_PARTITION,
            "mitm-f35b:443")
        try:
            hs = server.handshake_sthreads[0]
            assert hs.faulted            # ExploitTakeover ended it
            handler = server.handler_sthreads[0]
            assert handler.status == "exited"
        finally:
            server.stop()

    def test_passive_mitm_sees_only_ciphertext(self):
        """Without the exploit, the MITM is just a wire: it observes
        the handshake in clear but application data only sealed."""
        net = Network()
        server = MitmPartitionHttpd(net, "mitm-passive:443").start()
        try:
            from repro.attacks.mitm import passive_tap
            attacker = passive_tap()
            net.interpose("mitm-passive:443", attacker)
            victim = TlsClient(DetRNG("v"),
                               expected_server_key=server.public_key)
            conn = victim.connect(net, "mitm-passive:443")
            response = conn.request(build_request("/account"))
            assert b"balance" in response_body(response)
            time.sleep(0.2)
            from repro.tls import records as rec
            session = attacker.sessions[0]
            for direction, rtype, body in session.transcript:
                if rtype == rec.RT_APPDATA:
                    assert b"balance" not in body
                    assert b"GET /" not in body
        finally:
            server.stop()


class TestRecycledTradeOff:
    def test_cross_connection_state_addressing(self):
        """Recycled gates accept caller-named state inside the shared
        pool — the paper's warning made concrete: a hijacked handshake
        sthread can invoke a gate against *another* connection's state
        block (here: probe its handshake-done flag)."""
        net = Network()
        server = MitmPartitionHttpd(net, "recycled-risk:443",
                                    gate_mode="recycled").start()
        try:
            # connection 1: honest, completes and stays resident long
            # enough to observe
            honest = TlsClient(DetRNG("h"),
                               expected_server_key=server.public_key)
            honest.connect(net, "recycled-risk:443").request(
                build_request("/"))
            time.sleep(0.2)

            from repro.attacks.exploit import registry
            result = {}

            @registry.register("cross-state-probe")
            def cross_state_probe(api):
                kernel = api.kernel
                gates = api.context["gates"]
                my_state = api.context["state_addr"]
                # guess a neighbouring allocation in the pool tag
                for delta in (-512, -256, 256, 512):
                    probe = {"op": "hello", "session_id": b"",
                             "client_random": b"c" * 32,
                             "state_addr": my_state + delta,
                             "finished_addr":
                                 api.context["finished_addr"]}
                    reply = api.try_cgate(
                        gates["setup_session_key_gate"], None, probe,
                        what=f"foreign state at {delta:+d}")
                    if reply is not None:
                        result.setdefault("accepted", []).append(delta)
                # an address *outside* the pool is always rejected
                outside = dict(probe, state_addr=0x10000000)
                reply = api.try_cgate(gates["setup_session_key_gate"],
                                      None, outside,
                                      what="state outside pool")
                result["outside_rejected"] = reply is None

            loot = start_campaign()
            attacker_client = TlsClient(
                DetRNG("atk"), expected_server_key=server.public_key)
            from repro.attacks.exploit import make_exploit_blob
            try:
                attacker_client.connect(
                    net, "recycled-risk:443",
                    extensions=make_exploit_blob("cross-state-probe"))
            except Exception:
                pass
            deadline = time.time() + 5
            while "outside_rejected" not in result and \
                    time.time() < deadline:
                time.sleep(0.02)
            # inside the pool: the gate cannot tell states apart
            assert result.get("accepted")
            # outside the pool: the bound check holds
            assert result["outside_rejected"] is True
        finally:
            server.stop()
