"""Attack tests for the balancer: an exploited listener holds nothing.

The listener compartment parses the untrusted routing preamble, so it
is the exploit surface.  Wedge's claim: injected code running with the
listener's privileges cannot read the router's hash ring, cannot touch
the health table, and holds no probe fds — and the lint proves the
same partition statically.
"""

import time

import pytest

from repro.analysis import format_report, lint_app
from repro.apps.httpd.content import build_request
from repro.apps.httpd.monolithic import MonolithicHttpd
from repro.apps.lb.server import LbServer, encode_preamble
from repro.attacks.exploit import (make_exploit_blob, registry,
                                   start_campaign)
from repro.cluster.health import HealthResponder
from repro.core.errors import WedgeError
from repro.crypto import DetRNG
from repro.net import Network
from repro.resilience.breaker import BreakerPolicy
from repro.tls import TlsClient


def make_lb():
    net = Network()
    backend = MonolithicHttpd(net, "atk-be0:443", seed="httpd")
    responder = HealthResponder(net, "atk-be0:health",
                                kernel=backend.kernel)
    lb = LbServer(net, "atk-lb:443",
                  [{"name": "atk-be0", "addr": "atk-be0:443",
                    "health": "atk-be0:health"}],
                  breaker_policy=BreakerPolicy(cooldown=0.0),
                  probe_timeout=1.0, managed=[backend, responder])
    lb.public_key = backend.public_key
    return lb


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _register_ring_thief():
    result = {}

    @registry.register("lb-thief")
    def lb_thief(api):
        # the serialized ring embeds the member names: a readable hit
        # anywhere would reveal the cluster topology
        result["ring_hits"] = api.scan_all_memory(b"atk-be0")
        # which segments refused the sweep outright
        denied = []
        for seg in api.kernel.space.segments():
            if api.try_read(seg.base, seg.size,
                            what=f"segment {seg.name!r}") is None:
                denied.append(seg.name)
        result["denied_segments"] = denied
        # hunt for usable descriptors: the health-checker's probe fds
        # must not exist in this compartment's fd-table
        conn_fd = api.context.get("fd")
        writable = []
        for fd in range(16):
            if api.try_send(fd, b"x", what=f"fd {fd} write") is not None:
                writable.append(fd)
        result["writable_fds"] = writable
        result["conn_fd"] = conn_fd
        result["done"] = True

    return result


class TestExploitedListener:
    def test_listener_cannot_reach_ring_health_or_probe_fds(self):
        result = _register_ring_thief()
        start_campaign()
        lb = make_lb().start()
        try:
            lb.health_sweep()
            sock = lb.network.connect(lb.addr)
            try:
                sock.send(encode_preamble(make_exploit_blob("lb-thief")))
                assert wait_for(lambda: "done" in result)
            finally:
                sock.close()

            # the ring is invisible: no readable copy anywhere
            assert result["ring_hits"] == []
            # both privileged tags refused the scan
            assert "lb-ring" in result["denied_segments"]
            assert "lb-health" in result["denied_segments"]
            # no writable descriptor at all: the client fd is read-only
            # and the probe fds never existed in this fd-table
            assert result["writable_fds"] == []

            # containment: the hijacked listener died, the balancer did
            # not — a clean request still serves end to end
            assert wait_for(
                lambda: any("listener faulted" in e for e in lb.errors))
            client = TlsClient(DetRNG("post-attack"),
                               expected_server_key=lb.public_key)
            sock = lb.network.connect(lb.addr)
            try:
                sock.send(encode_preamble(b"okenough"))
                conn = client.handshake(sock, resume=False)
                assert conn.request(build_request("/"))
            finally:
                sock.close()
            # and the router's state never changed
            assert lb.health_bytes() == b"\x01"
        finally:
            lb.stop()
            registry._payloads.pop("lb-thief", None)

    def test_exploit_key_never_reaches_routing(self):
        """The hijack replaces the decision: no audit row carries it."""
        result = _register_ring_thief()
        start_campaign()
        lb = make_lb().start()
        try:
            lb.health_sweep()
            sock = lb.network.connect(lb.addr)
            try:
                sock.send(encode_preamble(make_exploit_blob("lb-thief")))
                assert wait_for(lambda: "done" in result)
            finally:
                sock.close()
            blob = make_exploit_blob("lb-thief")
            assert all(d["key"] != blob[:8] for d in lb.audit)
        finally:
            lb.stop()
            registry._payloads.pop("lb-thief", None)


class TestLbLint:
    """The static half: ``repro lint --app lb`` proves the partition."""

    def test_static_clean(self):
        results = lint_app("lb", with_trace=False)
        report = format_report(results)
        assert all(r.inferred.converged for r in results), report
        assert all(r.static.unresolved == [] for r in results), report
        assert all(r.findings == [] for r in results), report

    def test_traced_clean_and_listener_blind(self):
        results = lint_app("lb", with_trace=True)
        report = format_report(results)
        assert all(r.findings == [] for r in results), report
        listener = next(r for r in results
                        if r.spec.name == "listener")
        # the exploit-facing compartment's static footprint touches
        # neither sensitive tag
        touched = {m[0] for m in listener.static.mem}
        assert "lb-ring" not in touched
        assert "lb-health" not in touched
