"""Attack tests for the kv tier and the disposable CGI handlers.

Two exploit surfaces, each with its monolithic contrast:

* the kv **command parser** (one sthread per connection).  Wedge's
  claim: injected code with the parser's privileges cannot read the
  store, cannot read the recency metadata, cannot reach the eviction
  gate, and cannot even write raw bytes to the client it was parsing —
  while the same payload against :class:`MonolithicKv` walks away with
  the whole store.
* the httpd **CGI handler**.  Disposable mode runs each request in a
  fresh sthread over a request-private tag deleted on exit, so a
  hijacked handler can touch neither the previous request's bytes nor
  the server key; inline mode (the contrast) leaks both.
"""

import time

from repro.analysis import format_report, lint_app
from repro.apps.httpd import content
from repro.apps.httpd.content import build_request
from repro.apps.httpd.monolithic import CGI_INLINE, MonolithicHttpd
from repro.apps.kv import KvClient, KvServer, MonolithicKv
from repro.attacks import payloads
from repro.attacks.exploit import make_exploit_blob, start_campaign
from repro.core.kernel import Kernel
from repro.crypto import DetRNG
from repro.crypto.rsa import RsaPrivateKey
from repro.net import Network
from repro.tls import TlsClient

PRELOAD = {b"alpha": b"kv-secret-A1", b"beta": b"kv-secret-B2"}
NEEDLE = PRELOAD[b"alpha"]


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def attack_kv(network, addr, data=NEEDLE):
    """One connection whose first command line is the exploit blob."""
    sock = network.connect(addr)
    try:
        sock.send(make_exploit_blob(payloads.PAYLOAD_KV_STORE_THIEF,
                                    data=data) + b"\r\n")
        time.sleep(0.1)
    finally:
        sock.close()


class TestExploitedKvParser:
    def test_parser_cannot_reach_store_meta_or_eviction(self):
        net = Network()
        server = KvServer(net, "atk-kv:9090", preload=PRELOAD).start()
        try:
            before = server.store_bytes()
            loot = start_campaign()
            attack_kv(net, server.addr)
            assert wait_for(lambda: "denied_tags" in loot)

            # the preloaded value exists nowhere the parser can read
            assert loot.get("store_hits") == []
            # both privileged tags refused the direct read
            assert loot.get("denied_tags") == ["kv-meta", "kv-store"]
            # the eviction gate is not delegated to the parser
            assert "evict_victim" not in loot
            denied = [what for what, _ in loot.attempts]
            assert "eviction gate" in denied
            # the client fd grant is read-only: no raw exfiltration
            assert "raw_client_write" not in loot
            assert "client fd write" in denied

            # containment: the parser died, the server did not
            assert wait_for(
                lambda: any("parser faulted" in e for e in server.errors))
            assert server.store_bytes() == before
            kernel = Kernel(net=net, name="post-attack")
            kernel.start_main()
            replies = KvClient(kernel, server.addr).execute(
                [b"GET alpha"])
            assert replies == [b"VALUE " + NEEDLE.hex().encode()]
        finally:
            server.stop()

    def test_monolithic_parser_loses_everything(self):
        net = Network()
        server = MonolithicKv(net, "atk-kvm:9090",
                              preload=PRELOAD).start()
        try:
            loot = start_campaign()
            attack_kv(net, server.addr)
            assert wait_for(lambda: "denied_tags" in loot)
            # the sweep finds the store in main's ordinary heap...
            assert loot.get("store_hits") != []
            # ...there are no protected tags to be refused by...
            assert loot.get("denied_tags") == []
            # ...and the fully privileged fd takes the raw write
            assert loot.get("raw_client_write") is True
        finally:
            server.stop()


class TestExploitedCgiHandler:
    def _request(self, srv, path, seed):
        client = TlsClient(DetRNG(seed),
                           expected_server_key=srv.public_key)
        try:
            conn = client.connect(srv.network, srv.addr, resume=False)
            return conn.request(build_request(path))
        except Exception:
            return None     # a hijacked handler may kill the connection

    def _blob_path(self):
        blob = make_exploit_blob(payloads.PAYLOAD_CGI_RESIDUE)
        return "/cgi/" + blob.decode("latin-1")

    def test_disposable_handler_sees_no_other_request(self):
        net = Network()
        srv = MonolithicHttpd(net, "atk-cgi:443").start()
        try:
            warm = self._request(srv, "/cgi/warm", "warm")
            assert warm is not None and b"200 OK" in warm
            loot = start_campaign()
            hit = self._request(srv, self._blob_path(), "attacker")
            assert wait_for(lambda: "cgi_hijacked" in loot)
            assert loot.get("cgi_hijacked") == "disposable"

            # the previous request's tag is deleted: the probe of its
            # window either faults (unmapped) or reads the recycled
            # segment freshly scrubbed — either way not one byte of the
            # previous request's body is recoverable, and the server
            # key in main's heap is unreachable
            warm_body = content.render_dynamic("/cgi/warm",
                                               srv._cgi_salt)
            window = loot.get("scratch_window")
            if window is None:
                denied = [what for what, _ in loot.attempts]
                assert any("previous request's scratch" in w
                           for w in denied)
            else:
                assert warm_body not in window
            assert "cgi_private_key" not in loot
            denied = [what for what, _ in loot.attempts]
            assert "server RSA key" in denied

            # containment: this request got a typed 500, the next one
            # renders normally
            assert hit is not None and b"500" in hit
            assert wait_for(lambda: any("cgi handler faulted" in e
                                        for e in srv.errors))
            after = self._request(srv, "/cgi/after", "after")
            assert after is not None and b"200 OK" in after
        finally:
            srv.stop()

    def test_inline_handler_leaks_residue_and_key(self):
        net = Network()
        srv = MonolithicHttpd(net, "atk-cgi-inl:443",
                              cgi_mode=CGI_INLINE).start()
        try:
            warm = self._request(srv, "/cgi/warm", "warm")
            assert warm is not None and b"200 OK" in warm
            loot = start_campaign()
            self._request(srv, self._blob_path(), "attacker")
            assert wait_for(lambda: "cgi_hijacked" in loot)
            assert loot.get("cgi_hijacked") == "inline"

            # the persistent scratch still holds the last body...
            expected = content.render_dynamic("/cgi/warm",
                                              srv._cgi_salt)
            window = loot.get("scratch_window")
            size = int.from_bytes(window[:2], "big")
            assert window[2:2 + size] == expected
            # ...and the key is one heap read away
            stolen = RsaPrivateKey.from_bytes(
                loot.get("cgi_private_key"))
            assert stolen.n == srv.private_key.n
        finally:
            srv.stop()


class TestKvLint:
    """The static half: ``repro lint --app kv`` proves the partition."""

    def test_traced_clean_and_parser_blind(self):
        results = lint_app("kv", with_trace=True)
        report = format_report(results)
        assert all(r.findings == [] for r in results), report
        parser = next(r for r in results if r.spec.name == "parser")
        touched = {m[0] for m in parser.static.mem}
        assert "kv-store" not in touched
        assert "kv-meta" not in touched
