"""Security tests: the paper's §5.2 comparisons across sshd variants.

One reconnaissance payload is thrown at a pre-auth compartment of each
architecture; what it steals differs exactly as the paper describes.
"""

import time

import pytest

from repro.apps.sshd import MonolithicSshd, PrivsepSshd, WedgeSshd
from repro.attacks import payloads
from repro.attacks.exploit import make_exploit_blob, start_campaign
from repro.crypto import DetRNG
from repro.crypto.dsa import DsaPrivateKey
from repro.net import Network
from repro.sshlib import SshClient


def run_recon(server_cls, addr, *, warm_login=True):
    """Stand up a server, optionally do a legit login (so PAM residue
    exists), then exploit a pre-auth compartment."""
    net = Network()
    server = server_cls(net, addr).start()
    legit = SshClient(DetRNG("legit"),
                      expected_host_key=server.env.host_key.public())
    if warm_login:
        conn = legit.connect(net, addr)
        conn.auth_password("alice", b"wonderland")
        conn.close()
        time.sleep(0.1)
    loot = start_campaign()
    attacker = SshClient(DetRNG("attacker"))
    conn = attacker.connect(net, addr)
    blob = make_exploit_blob(payloads.PAYLOAD_SSHD_RECON)
    try:
        conn.auth_password("mallory", blob)
    except Exception:
        pass
    deadline = time.time() + 5
    while "uid_after_probe" not in loot.items and time.time() < deadline:
        time.sleep(0.02)
    return server, loot


class TestMonolithic:
    def test_total_compromise(self):
        server, loot = run_recon(MonolithicSshd, "recon-mono:22")
        try:
            # the host private key is in inherited memory
            stolen = loot.get("host_private_key")
            assert stolen is not None
            assert DsaPrivateKey.from_bytes(stolen).y == \
                server.env.host_key.y
            # the child is root: shadow file and user files fall too
            assert b"alice" in loot.get("shadow_file")
            assert loot.get("alice_secret") is not None
            assert loot.get("uid_after_probe") == 0
        finally:
            server.stop()


class TestPrivsep:
    def test_host_key_scrubbed(self):
        server, loot = run_recon(PrivsepSshd, "recon-priv:22")
        try:
            assert loot.get("host_private_key") is None
        finally:
            server.stop()

    def test_pam_residue_inherited_via_fork(self):
        """The paper's reference-[8] lesson: library scratch storage is
        inherited by forked slaves and leaks a *previous* user's
        password to an exploited slave."""
        server, loot = run_recon(PrivsepSshd, "recon-priv2:22")
        try:
            residue = loot.get("pam_residue")
            assert residue is not None
            assert b"alice" in residue and b"wonderland" in residue
        finally:
            server.stop()

    def test_no_residue_without_prior_login(self):
        server, loot = run_recon(PrivsepSshd, "recon-priv3:22",
                                 warm_login=False)
        try:
            assert loot.get("pam_residue") is None
        finally:
            server.stop()

    def test_username_probe_oracle(self):
        """The monitor's getpwnam answers differently for real and fake
        users — the leak still in portable OpenSSH 4.7 per the paper."""
        server, loot = run_recon(PrivsepSshd, "recon-priv4:22")
        try:
            assert loot.get("username_oracle") is True
            probes = loot.get("username_probe")
            assert probes["alice"] is True
            assert probes["zz-no-such-user"] is False
        finally:
            server.stop()

    def test_slave_demoted_and_confined(self):
        server, loot = run_recon(PrivsepSshd, "recon-priv5:22")
        try:
            assert loot.get("uid_after_probe") == 22
            assert loot.get("setuid_root") is None
            assert loot.get("shadow_file") is None
            assert loot.get("alice_secret") is None
        finally:
            server.stop()


class TestWedge:
    def test_nothing_leaks(self):
        server, loot = run_recon(WedgeSshd, "recon-wedge:22")
        try:
            assert loot.get("host_private_key") is None
            assert loot.get("pam_residue") is None
            assert loot.get("shadow_file") is None
            assert loot.get("alice_secret") is None
            assert loot.get("uid_after_probe") == 22
        finally:
            server.stop()

    def test_dummy_passwd_defeats_username_probe(self):
        server, loot = run_recon(WedgeSshd, "recon-wedge2:22")
        try:
            assert loot.get("username_oracle") is False
            probes = loot.get("username_probe")
            assert probes["alice"] is True
            assert probes["zz-no-such-user"] is True   # dummy entry
        finally:
            server.stop()

    def test_pam_scratch_dies_with_the_gate(self):
        """PAM runs inside the password callgate: its unscrubbed
        scratch lands in the gate's private heap, which no worker maps
        and which is discarded per invocation."""
        server, loot = run_recon(WedgeSshd, "recon-wedge3:22")
        try:
            assert loot.get("pam_residue") is None
            # the worker's sweep was blocked at every gate compartment
            denied = [what for what, _ in loot.attempts]
            assert any("cg:password_gate" in what for what in denied)
        finally:
            server.stop()

    def test_skey_dummy_challenge(self):
        """The reference-[14] fix: challenges come back for any name."""
        net = Network()
        server = WedgeSshd(net, "skey-probe:22").start()
        try:
            client = SshClient(
                DetRNG("probe"),
                expected_host_key=server.env.host_key.public())
            conn = client.connect(net, "skey-probe:22")
            real = conn.skey_challenge("alice")
            fake = conn.skey_challenge("zz-no-such-user")
            assert real is not None and fake is not None
            conn.close()
            # and privsep leaks here, for contrast
            net2 = Network()
            leaky = PrivsepSshd(net2, "skey-leak:22").start()
            try:
                client2 = SshClient(
                    DetRNG("probe2"),
                    expected_host_key=leaky.env.host_key.public())
                conn2 = client2.connect(net2, "skey-leak:22")
                assert conn2.skey_challenge("alice") is not None
                assert conn2.skey_challenge("zz-no-such-user") is None
                conn2.close()
            finally:
                leaky.stop()
        finally:
            server.stop()

    def test_auth_cannot_be_bypassed(self):
        """Skipping the callgates leaves the worker jailed: uid 22,
        empty chroot, no way to read anyone's files or setuid."""
        net = Network()
        server = WedgeSshd(net, "bypass:22").start()
        try:
            from repro.attacks.exploit import registry
            result = {}

            @registry.register("bypass-auth")
            def bypass_auth(api):
                kernel = api.kernel
                # 1. straight to the session without any gate call
                try:
                    fd = kernel.open("/home/alice/secret.txt", "r")
                    result["secret"] = kernel.read(fd, 64)
                except Exception as exc:   # noqa: BLE001
                    result["file_denied"] = type(exc).__name__
                # 2. setuid directly
                try:
                    kernel.setuid(1000)
                    result["setuid"] = "worked"
                except Exception as exc:   # noqa: BLE001
                    result["setuid_denied"] = type(exc).__name__
                # 3. promote self
                try:
                    kernel.promote(kernel.current(), uid=1000)
                    result["promote"] = "worked"
                except Exception as exc:   # noqa: BLE001
                    result["promote_denied"] = type(exc).__name__
                result["uid"] = kernel.getuid()

            client = SshClient(
                DetRNG("bypasser"),
                expected_host_key=server.env.host_key.public())
            conn = client.connect(net, "bypass:22")
            try:
                conn.auth_password("x", make_exploit_blob("bypass-auth"))
            except Exception:
                pass
            deadline = time.time() + 5
            while "uid" not in result and time.time() < deadline:
                time.sleep(0.02)
            assert result["file_denied"] == "VfsError"
            assert result["setuid_denied"] == "SyscallDenied"
            assert result["promote_denied"] == "SyscallDenied"
            assert result["uid"] == 22
        finally:
            server.stop()

    def test_dsa_sign_gate_is_not_a_raw_oracle(self):
        """The gate signs only hashes it computes itself: two calls on
        the same data give signatures over the same digest, and the key
        never leaves the gate."""
        net = Network()
        server = WedgeSshd(net, "sign-oracle:22").start()
        try:
            from repro.attacks.exploit import registry
            result = {}

            @registry.register("sign-probe")
            def sign_probe(api):
                kernel = api.kernel
                gates = api.context["gates"]
                reply = kernel.cgate(gates["dsa_sign_gate"], None,
                                     {"data": b"attacker chosen"})
                result["signature"] = reply["signature"]
                result["key_read"] = api.try_read(
                    api.context["key_addr"], 64, what="host key tag")

            loot = start_campaign()
            client = SshClient(
                DetRNG("signer"),
                expected_host_key=server.env.host_key.public())
            conn = client.connect(net, "sign-oracle:22")
            try:
                conn.auth_password("x", make_exploit_blob("sign-probe"))
            except Exception:
                pass
            deadline = time.time() + 5
            while "signature" not in result and time.time() < deadline:
                time.sleep(0.02)
            # the signature is over SHA256("attacker chosen") — valid
            # as a signature, but usable only as DSA over a hash, never
            # as a decryption of chosen ciphertext
            assert server.env.host_key.public().verify(
                b"attacker chosen", result["signature"])
            assert result["key_read"] is None
        finally:
            server.stop()
