"""Crowbar: cb-log tracing and the three cb-analyze queries (§3.4, §4.2)."""

import pytest

from repro.core.memory import PROT_READ
from repro.core.policy import SecurityContext, sc_mem_add
from repro.crowbar import (CbLog, PinStub, aggregate, emulation_gaps,
                           format_report, memory_for_procedure,
                           procedures_using, suggest_policy,
                           writes_of_procedure)


@pytest.fixture
def traced(kernel):
    """A little application with a known call graph, traced by cb-log.

    handle_request
      +- parse_input      (allocates + writes scratch on the heap)
      +- update_counter   (writes the 'hits' global)
    read_secret           (reads the tagged secret; separate call tree)
    """
    kernel2 = kernel
    secret_tag = kernel2.tag_new(name="secrets")
    secret = kernel2.alloc_buf(32, tag=secret_tag, init=b"K" * 32)

    def parse_input():
        scratch = kernel2.alloc_buf(64)
        scratch.write(b"GET /index")
        return scratch.read(10)

    def update_counter():
        addr = kernel2.image.addr_of("hits")
        count = int.from_bytes(kernel2.mem_read(addr, 8), "big")
        kernel2.mem_write(addr, (count + 1).to_bytes(8, "big"))

    def handle_request():
        data = parse_input()
        update_counter()
        return data

    def read_secret():
        return kernel2.mem_read(secret.addr, 32)

    with CbLog(kernel2, label="unit") as log:
        handle_request()
        handle_request()
        read_secret()
    return log.trace, secret_tag


@pytest.fixture
def kernel(bare_kernel):
    bare_kernel.declare_global("hits", 8, b"\x00" * 8)
    bare_kernel.start_main()
    return bare_kernel


class TestCbLog:
    def test_accesses_recorded_with_backtraces(self, traced):
        trace, _ = traced
        assert len(trace) > 0
        record = trace.accesses[0]
        assert record.backtrace
        assert record.backtrace[-1].line > 0

    def test_global_identified_by_name(self, traced):
        trace, _ = traced
        globals_seen = {r.item.name for r in trace.accesses
                        if r.item.category == "global"}
        assert "hits" in globals_seen

    def test_heap_identified_by_allocation_site(self, traced):
        trace, _ = traced
        heap_items = {r.item.name for r in trace.accesses
                      if r.item.category == "heap"}
        assert any("parse_input" in name for name in heap_items)

    def test_allocations_registered(self, traced):
        trace, _ = traced
        sites = {a.site() for a in trace.allocations}
        assert any("parse_input" in s for s in sites)

    def test_detach_stops_recording(self, kernel):
        log = CbLog(kernel)
        log.attach()
        kernel.alloc_buf(8, init=b"x")
        count = len(log.trace)
        log.detach()
        kernel.alloc_buf(8, init=b"y")
        assert len(log.trace) == count

    def test_stack_category(self, kernel):
        with CbLog(kernel) as log:
            with kernel.stack_frame("framed_fn"):
                addr = kernel.stack_alloc(16)
                kernel.mem_write(addr, b"stackdata")
        stack_items = {r.item.name for r in log.trace.accesses
                       if r.item.category == "stack"}
        assert "framed_fn" in stack_items

    def test_trace_save_load_roundtrip(self, traced, tmp_path):
        trace, _ = traced
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        from repro.crowbar import Trace
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.accesses[0].item == trace.accesses[0].item


class TestQuery1:
    def test_descendants_included(self, traced):
        """handle_request's summary covers its children's accesses."""
        trace, _ = traced
        summary = memory_for_procedure(trace, "handle_request")
        names = {item.name for item in summary}
        assert "hits" in names                       # via update_counter
        assert any("parse_input" in n for n in names)  # via parse_input

    def test_modes_reported(self, traced):
        trace, _ = traced
        summary = memory_for_procedure(trace, "handle_request")
        hits = next(info for item, info in summary.items()
                    if item.name == "hits")
        assert hits["modes"] == {"read", "write"}

    def test_unrelated_tree_excluded(self, traced):
        trace, tag = traced
        summary = memory_for_procedure(trace, "handle_request")
        assert all(item.tag_id != tag.id for item in summary)

    def test_counts_accumulate_across_calls(self, traced):
        trace, _ = traced
        summary = memory_for_procedure(trace, "update_counter")
        hits = next(info for item, info in summary.items()
                    if item.name == "hits")
        assert hits["count"] >= 4    # two reads + two writes

    def test_format_report_renders(self, traced):
        trace, _ = traced
        text = format_report(memory_for_procedure(trace,
                                                  "handle_request"),
                             title="handle_request")
        assert "handle_request" in text and "hits" in text


class TestQuery2:
    def test_procedures_using_items(self, traced):
        trace, tag = traced
        secret_items = [r.item for r in trace.accesses
                        if r.item.tag_id == tag.id]
        users = procedures_using(trace, secret_items,
                                 innermost_only=True)
        assert users == {"read_secret"}

    def test_ancestors_count_by_default(self, traced):
        trace, _ = traced
        global_items = [r.item for r in trace.accesses
                        if r.item.name == "hits"]
        users = procedures_using(trace, global_items)
        assert "update_counter" in users
        assert "handle_request" in users    # ancestor on the backtrace


class TestQuery3:
    def test_writes_of_procedure(self, traced):
        trace, _ = traced
        written = writes_of_procedure(trace, "handle_request")
        names = {item.name for item in written}
        assert "hits" in names
        # reads don't appear
        read_only = writes_of_procedure(trace, "read_secret")
        assert all(item.name != "secrets" for item in read_only)


class TestPolicyWorkflow:
    def test_suggest_policy_for_tagged_reader(self, traced):
        trace, tag = traced
        grants, untaggable = suggest_policy(trace, "read_secret")
        assert grants == {tag.id: "r"}

    def test_suggest_policy_flags_untagged(self, traced):
        trace, _ = traced
        grants, untaggable = suggest_policy(trace, "parse_input")
        assert untaggable     # private-heap scratch can't be named

    def test_aggregation_unions_coverage(self, kernel):
        tag_a = kernel.tag_new(name="a")
        tag_b = kernel.tag_new(name="b")
        buf_a = kernel.alloc_buf(8, tag=tag_a, init=b"A" * 8)
        buf_b = kernel.alloc_buf(8, tag=tag_b, init=b"B" * 8)

        def worker(which):
            if which == "a":
                kernel.mem_read(buf_a.addr, 8)
            else:
                kernel.mem_read(buf_b.addr, 8)

        with CbLog(kernel, "run-a") as log_a:
            worker("a")
        with CbLog(kernel, "run-b") as log_b:
            worker("b")
        merged = aggregate([log_a.trace, log_b.trace])
        grants, _ = suggest_policy(merged, "worker")
        assert set(grants) == {tag_a.id, tag_b.id}

    def test_emulation_plus_cblog(self, kernel):
        """The §3.4 workflow: run under emulation with cb-log attached;
        the trace shows exactly the missing grants."""
        from repro.core.emulation import emulated_sthread_create
        tag = kernel.tag_new(name="needed")
        buf = kernel.alloc_buf(8, tag=tag, init=b"12345678")

        def body(arg):
            return kernel.mem_read(buf.addr, 8)

        with CbLog(kernel) as log:
            child = emulated_sthread_create(kernel, SecurityContext(),
                                            body)
            kernel.sthread_join(child)
        gaps = emulation_gaps(log.trace)
        assert any(item.tag_id == tag.id and "read" in modes
                   for item, modes in gaps.items())


class TestPinStub:
    def test_counts_accesses(self, kernel):
        with PinStub(kernel) as pin:
            buf = kernel.alloc_buf(8, init=b"x" * 8)
            buf.read()
        assert pin.reads > 0 and pin.writes > 0
        assert pin.bytes > 0

    def test_cheaper_than_cblog(self, kernel):
        import time
        buf = kernel.alloc_buf(4096)

        def work():
            for i in range(1500):
                kernel.mem_write(buf.addr + (i % 64) * 8, b"12345678")

        def best_of(instrumentation, repeats=3):
            best = None
            for _ in range(repeats):
                start = time.perf_counter()
                with instrumentation(kernel):
                    work()
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            return best

        pin_time = best_of(PinStub)
        cblog_time = best_of(CbLog)
        # cb-log does strictly more work per access (backtrace walk,
        # item resolution, record append) — Figure 9's gap
        assert cblog_time > pin_time * 1.5
