"""Static analysis (§7) and its comparison against dynamic traces."""

import pytest

from repro.crowbar import CbLog
from repro.crowbar.static import (StaticAnalysis, compare_with_trace,
                                  static_policy)


@pytest.fixture
def world(kernel):
    tags = {
        "config": kernel.tag_new(name="config"),
        "secrets": kernel.tag_new(name="secrets"),
        "output": kernel.tag_new(name="output"),
    }
    bufs = {
        "config_buf": kernel.alloc_buf(32, tag=tags["config"],
                                       init=b"debug=no" + bytes(24)),
        "secret_buf": kernel.alloc_buf(32, tag=tags["secrets"],
                                       init=b"K" * 32),
        "out_buf": kernel.alloc_buf(32, tag=tags["output"]),
    }
    return kernel, tags, bufs


class TestResolution:
    def test_mem_read_via_buffer_addr(self, world):
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]

        def body():
            return kernel.mem_read(config_buf.addr, 8)

        report = static_policy(body, {"kernel": kernel,
                                      "config_buf": config_buf})
        assert report.grants == {tags["config"].id: "r"}

    def test_mem_write_is_rw(self, world):
        kernel, tags, bufs = world
        out_buf = bufs["out_buf"]

        def body():
            kernel.mem_write(out_buf.addr, b"result")

        report = static_policy(body, {"kernel": kernel,
                                      "out_buf": out_buf})
        assert report.grants == {tags["output"].id: "rw"}

    def test_offset_arithmetic_keeps_base(self, world):
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]

        def body():
            return kernel.mem_read(config_buf.addr + 8, 4)

        report = static_policy(body, {"kernel": kernel,
                                      "config_buf": config_buf})
        assert tags["config"].id in report.grants

    def test_buffer_methods(self, world):
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]
        out_buf = bufs["out_buf"]

        def body():
            data = config_buf.read(8)
            out_buf.write(data)

        report = static_policy(body, {"config_buf": config_buf,
                                      "out_buf": out_buf})
        assert report.grants[tags["config"].id] == "r"
        assert report.grants[tags["output"].id] == "rw"

    def test_smalloc_by_tag_name(self, world):
        kernel, tags, bufs = world
        output = tags["output"]

        def body():
            return kernel.smalloc(16, output)

        report = static_policy(body, {"kernel": kernel,
                                      "output": output})
        assert report.grants == {output.id: "rw"}

    def test_closure_bindings_found(self, world):
        kernel, tags, bufs = world
        secret_buf = bufs["secret_buf"]

        def make_body():
            def body():
                return kernel.mem_read(secret_buf.addr, 8)
            return body

        report = static_policy(make_body(), {"kernel": kernel})
        assert tags["secrets"].id in report.grants

    def test_unresolved_reported_not_dropped(self, world):
        kernel, tags, bufs = world

        def body(mystery_addr):
            return kernel.mem_read(mystery_addr, 8)

        report = static_policy(body, {"kernel": kernel})
        assert report.grants == {}
        assert report.unresolved

    def test_descends_into_callees(self, world):
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]
        out_buf = bufs["out_buf"]

        def helper():
            out_buf.write(b"x")

        def body():
            config_buf.read(4)
            helper()

        report = static_policy(
            body, {"config_buf": config_buf, "out_buf": out_buf},
            callees=[helper])
        assert set(report.grants) == {tags["config"].id,
                                      tags["output"].id}

    def test_recursion_terminates(self, world):
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]
        analysis = StaticAnalysis({"config_buf": config_buf})

        def ping():
            config_buf.read(1)
            pong()

        def pong():
            ping()

        analysis.register(ping)
        analysis.register(pong)
        report = analysis.analyse(ping, depth=5)
        assert tags["config"].id in report.grants


class TestPaperTradeOff:
    def test_static_is_superset_of_dynamic(self, world):
        """§7: 'static analysis will yield a superset of the required
        permissions ... some code paths may never execute in practice'
        — and those excess grants can cover sensitive data."""
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]
        secret_buf = bufs["secret_buf"]
        out_buf = bufs["out_buf"]

        def handle():
            config = config_buf.read(8)
            if config.startswith(b"debug=yes"):
                # the dead branch: dumps key material when debugging
                out_buf.write(secret_buf.read(32))
            out_buf.write(b"served ok")

        bindings = {"kernel": kernel, "config_buf": config_buf,
                    "secret_buf": secret_buf, "out_buf": out_buf}
        report = static_policy(handle, bindings)
        # static demands the secret (the branch *could* run)...
        assert tags["secrets"].id in report.grants

        with CbLog(kernel) as log:
            handle()   # config says debug=no: branch never taken
        excess, missing = compare_with_trace(report, log.trace,
                                             "handle")
        # ...dynamic analysis shows correct execution never needed it
        assert tags["secrets"].id in excess
        assert missing == {}

    def test_dynamic_grants_always_within_static(self, world):
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]
        out_buf = bufs["out_buf"]

        def straight_line():
            out_buf.write(config_buf.read(4))

        bindings = {"config_buf": config_buf, "out_buf": out_buf}
        report = static_policy(straight_line, bindings)
        with CbLog(kernel) as log:
            straight_line()
        excess, missing = compare_with_trace(report, log.trace,
                                             "straight_line")
        assert missing == {}

    def test_keyword_argument_calls_resolved(self, world):
        """Keyword-only call sites used to be silently dropped."""
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]
        output = tags["output"]

        def body():
            kernel.mem_read(addr=config_buf.addr, size=8)
            kernel.smalloc(16, tag=output)

        report = static_policy(body, {"kernel": kernel,
                                      "config_buf": config_buf,
                                      "output": output})
        assert report.grants == {tags["config"].id: "r",
                                 output.id: "rw"}

    def test_missing_target_argument_reported(self, world):
        """A kernel call with no resolvable target argument must land
        in ``unresolved``, never vanish."""
        kernel, tags, bufs = world

        def body(args):
            kernel.mem_read(*args)

        report = static_policy(body, {"kernel": kernel})
        assert report.grants == {}
        assert any(context == "mem_read"
                   for context, _ in report.unresolved)

    def test_excess_includes_mode_overgrants(self, world):
        """Static ``rw`` over a traced ``r`` is excess privilege too."""
        kernel, tags, bufs = world
        out_buf = bufs["out_buf"]

        def body():
            data = out_buf.read(4)
            if not data:
                out_buf.write(b"init")   # branch never taken at runtime

        report = static_policy(body, {"out_buf": out_buf})
        assert report.grants[tags["output"].id] == "rw"
        with CbLog(kernel) as log:
            body()
        excess, missing = compare_with_trace(report, log.trace, "body")
        assert excess[tags["output"].id] == "rw>r"
        assert missing == {}

    def test_missing_is_mode_aware(self, world):
        """A traced write against a static read-only grant is debt."""
        kernel, tags, bufs = world
        out_buf = bufs["out_buf"]

        def body(dest_addr):
            kernel.mem_write(dest_addr, out_buf.read(4))

        report = static_policy(body, {"kernel": kernel,
                                      "out_buf": out_buf})
        # the read resolves; the write target does not
        assert report.grants == {tags["output"].id: "r"}
        assert report.unresolved
        with CbLog(kernel) as log:
            body(out_buf.addr)
        excess, missing = compare_with_trace(report, log.trace, "body")
        assert missing == {tags["output"].id: "rw>r"}

    def test_static_policy_actually_runs_the_sthread(self, world):
        """Closing the loop: the static grants are sufficient."""
        from repro.core.memory import PROT_READ, PROT_RW
        from repro.core.policy import SecurityContext, sc_mem_add
        kernel, tags, bufs = world
        config_buf = bufs["config_buf"]
        out_buf = bufs["out_buf"]

        def body(arg):
            out_buf.write(config_buf.read(4))
            return "ok"

        report = static_policy(body, {"config_buf": config_buf,
                                      "out_buf": out_buf})
        sc = SecurityContext()
        for tag_id, mode in report.grants.items():
            sc_mem_add(sc, tag_id,
                       PROT_RW if mode == "rw" else PROT_READ)
        child = kernel.sthread_create(sc, body, spawn="inline")
        assert kernel.sthread_join(child) == "ok"
