"""The interprocedural inference engine (repro.analysis.infer).

These tests drive :func:`infer_policy` over synthetic bodies.  The
test module itself is outside the ``repro.`` follow prefix, so each
test passes an explicit *follow* accepting its own helpers — which also
exercises the pluggable follow policy.
"""

import pytest

from repro.analysis import infer_policy
from repro.core.policy import FD_READ, FD_RW, FD_WRITE


def _follow_local(fn):
    return fn.__module__ == __name__


def infer(roots, kernel, **kwargs):
    kwargs.setdefault("follow", _follow_local)
    return infer_policy(roots, kernel, **kwargs)


@pytest.fixture
def world(kernel):
    tags = {
        "config": kernel.tag_new(name="config"),
        "secrets": kernel.tag_new(name="secrets"),
    }
    bufs = {
        "config_buf": kernel.alloc_buf(32, tag=tags["config"],
                                       init=b"x" * 32),
        "secret_buf": kernel.alloc_buf(32, tag=tags["secrets"],
                                       init=b"K" * 32),
    }
    return kernel, tags, bufs


class TestInterprocedural:
    def test_binding_flows_through_call_chain(self, world):
        """Deeper than the old depth-2 descent: a four-hop chain."""
        kernel, tags, bufs = world

        def leaf(k, addr):
            return k.mem_read(addr, 4)

        def mid2(k, addr):
            return leaf(k, addr)

        def mid1(k, addr):
            return mid2(k, addr)

        def body(k, buf):
            return mid1(k, buf.addr)

        policy = infer(
            [(body, {"k": kernel, "buf": bufs["config_buf"]})], kernel)
        assert policy.mem == {tags["config"].id: "r"}
        assert policy.unresolved == []

    def test_return_value_propagates(self, world):
        kernel, tags, bufs = world

        def pick(buf):
            return buf

        def body(k, buf):
            chosen = pick(buf)
            k.mem_write(chosen.addr, b"data")

        policy = infer(
            [(body, {"k": kernel, "buf": bufs["secret_buf"]})], kernel)
        assert policy.mem == {tags["secrets"].id: "rw"}

    def test_recursive_cycle_converges(self, world):
        kernel, tags, bufs = world

        def ping(k, buf, n):
            if n:
                return pong(k, buf, n)
            return k.mem_read(buf.addr, 4)

        def pong(k, buf, n):
            return ping(k, buf, n - 1)

        policy = infer(
            [(ping, {"k": kernel, "buf": bufs["config_buf"],
                     "n": 3})], kernel)
        assert policy.converged
        assert tags["config"].id in policy.mem

    def test_dict_dispatch_resolves(self, world):
        """The gate-table idiom: values stored under computed keys."""
        kernel, tags, bufs = world

        def body(k, bufs_in):
            table = {}
            for name, buf in bufs_in.items():
                table[name] = buf
            return k.mem_read(table["config_buf"].addr, 4)

        policy = infer([(body, {"k": kernel, "bufs_in": bufs})], kernel)
        assert tags["config"].id in policy.mem

    def test_keyword_call_resolved(self, world):
        kernel, tags, bufs = world

        def body(k, buf):
            return k.mem_read(addr=buf.addr, size=8)

        policy = infer(
            [(body, {"k": kernel, "buf": bufs["config_buf"]})], kernel)
        assert policy.mem == {tags["config"].id: "r"}


class TestFdAndSyscalls:
    def test_granted_fd_modes(self, world):
        kernel, _, _ = world

        def body(k, fd):
            k.send(fd, b"hello")
            return k.recv(fd, 64)

        policy = infer([(body, {"k": kernel, "fd": 3})], kernel)
        assert policy.fds == {3: FD_RW}
        assert {"send", "recv"} <= policy.syscalls

    def test_write_only_fd(self, world):
        kernel, _, _ = world

        def body(k, fd):
            k.send(fd, b"out")

        policy = infer([(body, {"k": kernel, "fd": 7})], kernel)
        assert policy.fds == {7: FD_WRITE}
        assert FD_READ & policy.fds[7] == 0

    def test_self_opened_fd_needs_no_grant(self, world):
        """open/read/close on a descriptor the body creates itself."""
        kernel, _, _ = world

        def body(k):
            fd = k.open("/etc/motd", "r")
            data = k.read(fd, 64)
            k.close(fd)
            return data

        policy = infer([(body, {"k": kernel})], kernel)
        assert policy.fds == {}
        assert {"open", "read", "close"} <= policy.syscalls
        assert policy.unresolved == []

    def test_private_malloc_needs_no_grant(self, world):
        kernel, _, _ = world

        def body(k):
            scratch = k.malloc(64)
            k.mem_write(scratch, b"tmp")

        policy = infer([(body, {"k": kernel})], kernel)
        assert policy.mem == {}
        assert policy.unresolved == []


class TestSoundnessReporting:
    def test_unknown_operand_reported(self, world):
        kernel, _, _ = world

        def body(k, mystery):
            return k.mem_read(mystery, 8)

        policy = infer([(body, {"k": kernel})], kernel)
        assert policy.mem == {}
        assert policy.unresolved

    def test_smalloc_returns_tagged_value(self, world):
        kernel, tags, _ = world

        def body(k, tag):
            addr = k.smalloc(16, tag)
            k.mem_write(addr, b"x")

        policy = infer(
            [(body, {"k": kernel, "tag": tags["secrets"]})], kernel)
        assert policy.mem == {tags["secrets"].id: "rw"}
        assert policy.unresolved == []
