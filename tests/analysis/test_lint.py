"""The three-way diff (declared / static / traced) and its findings."""

import pytest

from repro.analysis import (CompartmentSpec, lint_compartment,
                            tag_label)
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import (FD_RW, SecurityContext, sc_cgate_add,
                               sc_fd_add, sc_mem_add)
from repro.crowbar import CbLog


def _follow_local(fn):
    return fn.__module__ == __name__


def _unused_gate(trusted, arg):
    return {"ok": True}


@pytest.fixture
def world(kernel):
    tags = {
        "secret": kernel.tag_new(name="secret"),
        "scratch": kernel.tag_new(name="scratch"),
    }
    bufs = {
        "secret_buf": kernel.alloc_buf(32, tag=tags["secret"],
                                       init=b"K" * 32),
        "scratch_buf": kernel.alloc_buf(32, tag=tags["scratch"],
                                        init=b"s" * 32),
    }
    return kernel, tags, bufs


def _spec(kernel, sc, body, bindings, **kwargs):
    kwargs.setdefault("sthread_prefix", "fixture")
    return CompartmentSpec("fixture", "test", kernel, sc,
                           [(body, bindings)], follow=_follow_local,
                           **kwargs)


class TestFindings:
    def test_clean_compartment_has_no_findings(self, world):
        kernel, tags, bufs = world
        sc = SecurityContext()
        sc_mem_add(sc, tags["scratch"], PROT_READ)

        def body(k, buf):
            return k.mem_read(buf.addr, 4)

        result = lint_compartment(_spec(
            kernel, sc, body,
            {"k": kernel, "buf": bufs["scratch_buf"]}))
        assert result.findings == []

    def test_overprivileged_fixture(self, world):
        """A deliberately fat context: every warning class fires."""
        kernel, tags, bufs = world
        sc = SecurityContext()
        sc_mem_add(sc, tags["secret"], PROT_READ)    # never touched
        sc_mem_add(sc, tags["scratch"], PROT_RW)     # only read
        sc_fd_add(sc, 9, FD_RW)                      # never used
        sc_cgate_add(sc, _unused_gate, SecurityContext())

        def body(k, buf):
            return k.mem_read(buf.addr, 4)

        result = lint_compartment(_spec(
            kernel, sc, body,
            {"k": kernel, "buf": bufs["scratch_buf"]},
            exploit_facing=True, sensitive_tags=("secret",)))
        kinds = {(f.kind, f.subject) for f in result.findings}
        assert ("UNUSED_GRANT", "mem:secret") in kinds
        assert ("OVER_PRIV", "mem:scratch") in kinds
        assert ("UNUSED_GRANT", "fd:9") in kinds
        assert ("UNUSED_GRANT", "cgate:_unused_gate") in kinds
        assert ("SENSITIVE_EXPOSURE", "mem:secret") in kinds

    def test_sensitive_exposure_only_when_exploit_facing(self, world):
        kernel, tags, bufs = world
        sc = SecurityContext()
        sc_mem_add(sc, tags["secret"], PROT_READ)

        def body(k, buf):
            return k.mem_read(buf.addr, 4)

        bindings = {"k": kernel, "buf": bufs["secret_buf"]}
        exposed = lint_compartment(_spec(
            kernel, sc, body, bindings, exploit_facing=True,
            sensitive_tags=("secret",)))
        assert any(f.kind == "SENSITIVE_EXPOSURE"
                   for f in exposed.findings)
        trusted = lint_compartment(_spec(
            kernel, sc, body, bindings, exploit_facing=False,
            sensitive_tags=("secret",)))
        assert not any(f.kind == "SENSITIVE_EXPOSURE"
                       for f in trusted.findings)

    def test_missing_syscall(self, world):
        kernel, _, _ = world
        sid = "system_u:system_r:fixture_t"
        kernel.selinux.define_domain(sid, {"recv"})  # send missing
        sc = SecurityContext()
        sc_fd_add(sc, 3, FD_RW)

        def body(k, fd):
            k.send(fd, b"x")
            return k.recv(fd, 8)

        result = lint_compartment(_spec(
            kernel, sc, body, {"k": kernel, "fd": 3}, sid=sid))
        kinds = {(f.kind, f.subject) for f in result.findings}
        assert ("MISSING_SYSCALL", "syscall:send") in kinds
        assert ("MISSING_SYSCALL", "syscall:recv") not in kinds


class TestTracedLeg:
    def test_trace_confirms_static(self, world):
        kernel, tags, bufs = world
        sc = SecurityContext()
        sc_mem_add(sc, tags["scratch"], PROT_READ)
        buf = bufs["scratch_buf"]

        def body(arg):
            return kernel.mem_read(buf.addr, 4)

        with CbLog(kernel) as log:
            sthread = kernel.sthread_create(sc, body, name="fixture0",
                                            spawn="inline")
            kernel.sthread_join(sthread)
        result = lint_compartment(
            _spec(kernel, sc, body, {"kernel": kernel, "buf": buf,
                                     "arg": {}}),
            trace=log.trace)
        assert result.traced.mem == {"scratch": "r"}
        assert result.findings == []

    def test_unsound_when_trace_exceeds_static(self, world):
        """A body whose operand the static pass cannot resolve: the
        traced leg catches what static missed and flags UNSOUND."""
        kernel, tags, bufs = world
        sc = SecurityContext()
        sc_mem_add(sc, tags["scratch"], PROT_RW)
        buf = bufs["scratch_buf"]

        def body(arg):
            kernel.mem_write(arg["addr"], b"data")

        with CbLog(kernel) as log:
            sthread = kernel.sthread_create(
                sc, body, {"addr": buf.addr}, name="fixture0",
                spawn="inline")
            kernel.sthread_join(sthread)
        # static analysis sees an empty arg dict: operand unresolved
        result = lint_compartment(
            _spec(kernel, sc, body, {"kernel": kernel, "arg": {}}),
            trace=log.trace)
        assert result.static.mem == {}
        assert result.inferred.unresolved
        kinds = {(f.kind, f.subject) for f in result.findings}
        assert ("UNSOUND", "mem:scratch") in kinds


class TestTagLabels:
    def test_connection_counter_stripped(self):
        assert tag_label("session17") == "session"
        assert tag_label("pop3-uid3") == "pop3-uid"
        assert tag_label("rsa-private-key") == "rsa-private-key"

    def test_all_digit_name_kept(self):
        assert tag_label("42") == "42"
