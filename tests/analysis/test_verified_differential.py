"""Differential harness: verified mode may change cycles, never bytes.

Every scenario runs twice — certificates armed and not — under the same
deterministic seeds, and asserts the runs are observably identical:
byte-identical application stores, identical client-visible responses,
identical chaos fingerprints (injection sites, hit counts, restarts).
The verified runs additionally assert the fast path actually fired, so
the comparison is never vacuous.

This mirrors ``tests/core/test_tlb_differential.py`` one abstraction
level up: the TLB elides page-table walks, the certificate elides the
permission checks themselves.
"""

import pytest

from repro.analysis.verify import certify_server
from repro.faults.chaos import (CHAOS_APP_NAMES, CHAOS_TARGETS,
                                default_policy, run_chaos)


def _run_app(app, verified, sessions=3):
    """Serve deterministic clean sessions; return the observables."""
    target = CHAOS_TARGETS[app]
    server = target.make(default_policy())
    if verified:
        reports = certify_server(server)
        assert all(r.ok for r in reports), \
            [reason for r in reports for reason in r.reasons]
    server.start()
    try:
        responses = [target.session(server, i, strict=True)
                     for i in range(sessions)]
        store = target.snapshot(server)
        stats = server.kernel.verified_stats()
    finally:
        server.stop()
    return responses, store, stats


@pytest.mark.parametrize("app", CHAOS_APP_NAMES)
def test_app_identical_with_and_without_certificates(app):
    responses_on, store_on, stats_on = _run_app(app, True)
    responses_off, store_off, stats_off = _run_app(app, False)
    assert responses_on == responses_off
    assert store_on == store_off
    # not vacuous: the verified run really elided checks...
    assert stats_on["accesses"] + stats_on["syscalls"] > 0
    # ...and the baseline run never did
    assert stats_off == {"accesses": 0, "syscalls": 0, "certified": 0,
                         "revocations": 0}


@pytest.mark.parametrize("app", CHAOS_APP_NAMES)
def test_every_shipped_app_proves_clean(app):
    """Satellite: zero unresolved operands across all shipped apps —
    the completeness bar the certificate fast path stands on."""
    from repro.analysis.targets import TARGETS, specs_of
    from repro.analysis.verify import verify_policy
    server = TARGETS[app].make()
    for spec in specs_of(server):
        report = verify_policy(spec)
        assert report.inferred.unresolved == [], (
            f"{app}/{spec.name}: {report.inferred.unresolved}")
        assert report.ok, f"{app}/{spec.name}: {report.reasons}"


def _campaign_fingerprint(report):
    return {
        "passed": report.passed,
        "injected": report.injected,
        "sessions": report.sessions,
        "failed": report.failed_sessions,
        "degraded": report.degraded_sessions,
        "restarts": report.restarts,
        "by_site": dict(report.by_site),
        "violations": report.violations,
        "baseline_obs": report.baseline_obs,
        "probe_obs": report.probe_obs,
        "store": report.final_snapshot,
    }


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chaos_campaign_identical_with_certificates(seed):
    on = run_chaos("pop3", seed=seed, faults=10, verified=True)
    off = run_chaos("pop3", seed=seed, faults=10)
    assert on.passed, on.format()
    assert _campaign_fingerprint(on) == _campaign_fingerprint(off)


def test_chaos_httpd_campaign_identical():
    on = run_chaos("httpd-simple", seed=1, faults=10, verified=True)
    off = run_chaos("httpd-simple", seed=1, faults=10)
    assert on.passed, on.format()
    assert _campaign_fingerprint(on) == _campaign_fingerprint(off)
