"""RESTART_WIDENING: supervised gates must not outgrow their baseline.

A restarted gate is rebuilt from its :class:`CallgateRecord`'s live
security context — if anything widened that context after instantiation,
every restart silently re-grants the widened rights.  The lint compares
the live context against the baseline frozen at instantiation.
"""

import pytest

from repro.analysis import restart_widening_findings
from repro.core.memory import PROT_READ, PROT_RW
from repro.core.policy import FD_READ, SecurityContext, sc_mem_add
from repro.faults import RestartPolicy


def _supervised_gate(kernel, gate_sc):
    return kernel.create_gate(lambda trusted, arg: None, gate_sc,
                              supervise=RestartPolicy())


class TestRestartWidening:
    def test_clean_gate_produces_no_findings(self, kernel):
        tag = kernel.tag_new(name="keys")
        _supervised_gate(kernel, sc_mem_add(SecurityContext(), tag,
                                            PROT_READ))
        assert restart_widening_findings(kernel) == []

    def test_mem_widening_is_an_error(self, kernel):
        tag = kernel.tag_new(name="keys")
        record = _supervised_gate(
            kernel, sc_mem_add(SecurityContext(), tag, PROT_READ))
        record.sc.mem[tag.id] = PROT_RW  # read-only baseline grew write
        findings = restart_widening_findings(kernel, app="demo")
        assert [f.kind for f in findings] == ["RESTART_WIDENING"]
        assert findings[0].severity == "error"
        assert findings[0].compartment == f"demo/cg:{record.name}"
        assert findings[0].subject.startswith("mem:")

    def test_new_fd_grant_is_widening(self, kernel):
        record = _supervised_gate(kernel, SecurityContext())
        record.sc.fds[7] = FD_READ
        findings = restart_widening_findings(kernel)
        assert [f.subject for f in findings] == ["fd:7"]

    def test_new_gate_grant_is_widening(self, kernel):
        other = kernel.create_gate(lambda trusted, arg: None,
                                   SecurityContext())
        record = _supervised_gate(kernel, SecurityContext())
        record.sc.gate_ids.append(other.id)
        findings = restart_widening_findings(kernel)
        assert [f.subject for f in findings] == [f"cgate:{other.id}"]

    def test_unsupervised_gates_are_exempt(self, kernel):
        # an unsupervised gate never restarts, so widening its record
        # is a different bug class (caught by the declared-vs-traced
        # lint), not this one
        tag = kernel.tag_new(name="keys")
        record = kernel.create_gate(
            lambda trusted, arg: None,
            sc_mem_add(SecurityContext(), tag, PROT_READ))
        record.sc.mem[tag.id] = PROT_RW
        assert restart_widening_findings(kernel) == []

    def test_shipped_apps_do_not_widen(self):
        from repro.analysis import lint_app
        results = lint_app("pop3")
        kinds = [f.kind for r in results for f in r.findings]
        assert "RESTART_WIDENING" not in kinds
