"""The analyzer resolves calls wrapped in PR-5 resilience primitives.

A partitioned app that hardens a callgate behind ``call_with_retry``, a
``deadline_scope`` or a ``functools.partial`` must not lose the wrapped
operation from its inferred policy — an unresolved (or silently
dropped) gate call would disqualify the compartment from the verified
fast path and, worse, hide a privilege demand from the lint.
"""

import functools

from repro.analysis import GateRef, infer_policy
from repro.core.policy import FD_READ, FD_WRITE, SecurityContext
from repro.faults import RestartPolicy
from repro.resilience import (BreakerPolicy, Deadline, RetryPolicy,
                              call_with_retry, deadline_scope)


def _follow_local(fn):
    module = getattr(fn, "__module__", "") or ""
    return module == __name__ or module.startswith("repro.resilience")


def infer(roots, kernel, **kwargs):
    kwargs.setdefault("follow", _follow_local)
    return infer_policy(roots, kernel, **kwargs)


def _gate(kernel, name="audit_gate", **kwargs):
    def audit_gate(trusted, arg):
        return b"ok"
    audit_gate.__name__ = name
    record = kernel.create_gate(audit_gate, SecurityContext(), **kwargs)
    return record, GateRef(record.entry, gate_id=record.id)


class TestRetryWrapping:
    def test_retry_wrapped_gate_resolves(self, kernel):
        record, ref = _gate(kernel)
        def body(k):
            gate = next(iter(k.current().gates))
            return call_with_retry(lambda: k.cgate(gate.id),
                                   RetryPolicy(max_attempts=3))
        policy = infer([(body, {"k": kernel})], kernel, gates=[ref])
        assert policy.gates == {"audit_gate"}
        assert "cgate" in policy.syscalls
        assert policy.unresolved == []

    def test_retry_wrapped_fd_op_resolves(self, kernel):
        def body(k, fd):
            return call_with_retry(lambda: k.recv(fd, 64))
        policy = infer([(body, {"k": kernel, "fd": 5})], kernel)
        assert policy.fds == {5: FD_READ}
        assert policy.unresolved == []

    def test_retry_of_partial_resolves(self, kernel):
        """The two wrappers compose: retry(partial(kernel.send, fd))."""
        def body(k, fd):
            sender = functools.partial(k.send, fd)
            return call_with_retry(sender)
        policy = infer([(body, {"k": kernel, "fd": 7})], kernel)
        assert policy.fds == {7: FD_WRITE}
        assert policy.unresolved == []


class TestPartialWrapping:
    def test_partial_kernel_method_resolves(self, kernel):
        def body(k, fd):
            reader = functools.partial(k.recv, fd)
            return reader(32)
        policy = infer([(body, {"k": kernel, "fd": 4})], kernel)
        assert policy.fds == {4: FD_READ}
        assert policy.unresolved == []

    def test_partial_gate_invocation_resolves(self, kernel):
        record, ref = _gate(kernel, name="sign_gate")
        def body(k):
            gate = next(iter(k.current().gates))
            invoke = functools.partial(k.cgate, gate.id)
            return invoke(b"payload")
        policy = infer([(body, {"k": kernel})], kernel, gates=[ref])
        assert policy.gates == {"sign_gate"}
        assert policy.unresolved == []

    def test_partial_of_local_function_resolves(self, kernel):
        tag = kernel.tag_new(name="journal")
        buf = kernel.alloc_buf(16, tag=tag)
        def write_to(k, addr, data):
            k.mem_write(addr, data)
        def body(k, buf):
            writer = functools.partial(write_to, k, buf.addr)
            writer(b"entry")
        policy = infer([(body, {"k": kernel, "buf": buf})], kernel)
        assert policy.mem == {tag.id: "rw"}
        assert policy.unresolved == []

    def test_partial_keywords_merge(self, kernel):
        def body(k, fd):
            op = functools.partial(k.recv, fd=fd)
            return op(size=16)
        policy = infer([(body, {"k": kernel, "fd": 9})], kernel)
        assert policy.fds == {9: FD_READ}
        assert policy.unresolved == []


class TestDeadlineWrapping:
    def test_deadline_scope_body_resolves(self, kernel):
        def body(k, fd):
            with deadline_scope(Deadline.after(0.5)):
                return k.recv(fd, 64)
        policy = infer([(body, {"k": kernel, "fd": 6})], kernel)
        assert policy.fds == {6: FD_READ}
        assert policy.unresolved == []

    def test_deadline_and_retry_compose(self, kernel):
        record, ref = _gate(kernel, name="slow_gate")
        def body(k):
            gate = next(iter(k.current().gates))
            with deadline_scope(Deadline.after(1.0)):
                return call_with_retry(lambda: k.cgate(gate.id))
        policy = infer([(body, {"k": kernel})], kernel, gates=[ref])
        assert policy.gates == {"slow_gate"}
        assert policy.unresolved == []


class TestBreakerWrappedGates:
    def test_breaker_supervised_gate_target_resolves(self, kernel):
        """A supervised gate with a breaker policy is still one gate
        grant to the analyzer — supervision must not obscure it."""
        record, ref = _gate(
            kernel, name="guarded_gate",
            supervise=RestartPolicy(
                max_restarts=2, backoff=0.0,
                breaker=BreakerPolicy(cooldown=0.01)))
        def body(k):
            gate = next(iter(k.current().gates))
            return call_with_retry(lambda: k.cgate(gate.id))
        policy = infer([(body, {"k": kernel})], kernel, gates=[ref])
        assert policy.gates == {"guarded_gate"}
        assert policy.unresolved == []
