"""The analyzer against the shipped partitioned applications.

The acceptance bar for the whole subsystem: every shipped compartment
body analyzes with zero unresolved operands and zero findings, the
static policy covers everything the app declares (no dead grants), and
a deliberately over-granted variant is caught.
"""

import pytest

from repro.analysis import (SEVERITY, CompartmentSpec, format_report,
                            lint_app, lint_compartment)
from repro.core.memory import PROT_READ
from repro.core.policy import sc_mem_add
from repro.net import Network


def _mem_rank(mode):
    return {None: 0, "r": 1, "rw": 2}[mode]


def _assert_declared_within_static(result):
    """Every declared grant is statically justified (no dead grants)."""
    for label, mode in result.declared.mem.items():
        assert _mem_rank(result.static.mem.get(label)) >= \
            _mem_rank(mode), f"mem:{label}"
    for fd, bits in result.declared.fds.items():
        assert result.static.fds.get(fd, 0) & bits == bits, f"fd:{fd}"
    assert result.declared.gates <= result.static.gates


class TestSupersetOfDeclared:
    def test_httpd_simple_worker(self):
        from repro.apps.httpd.simple import (SimplePartitionHttpd,
                                             analysis_compartments)
        server = SimplePartitionHttpd(Network(), "t-simple:443",
                                      confine=True)
        specs = analysis_compartments(server)
        worker = next(s for s in specs if s.name == "worker")
        result = lint_compartment(worker)
        assert result.inferred.converged
        assert result.static.unresolved == []
        _assert_declared_within_static(result)
        # the one gate grant is exercised
        assert "setup_session_key_gate" in result.static.gates
        # the confined worker's syscalls are all in its domain
        assert not [f for f in result.findings
                    if f.kind == "MISSING_SYSCALL"]

    def test_sshd_wedge_worker(self):
        from repro.apps.sshd.wedge import (WedgeSshd,
                                           analysis_compartments)
        server = WedgeSshd(Network(), "t-sshd:22")
        specs = analysis_compartments(server)
        worker = next(s for s in specs if s.name == "worker")
        result = lint_compartment(worker)
        assert result.inferred.converged
        assert result.static.unresolved == []
        _assert_declared_within_static(result)
        assert {"dsa_sign_gate", "password_gate", "dsa_auth_gate",
                "skey_gate"} <= result.static.gates


class TestDeliberateOvergrant:
    def test_key_grant_to_worker_is_flagged(self):
        """Grant the RSA key tag to the Figure-2 worker: the lint must
        report both the exposure and the dead grant."""
        from repro.apps.httpd.simple import (SimplePartitionHttpd,
                                             analysis_compartments)
        server = SimplePartitionHttpd(Network(), "t-overgrant:443")
        worker = next(s for s in analysis_compartments(server)
                      if s.name == "worker")
        fat_sc = server._worker_context(3)
        sc_mem_add(fat_sc, server.key_tag, PROT_READ)
        fat = CompartmentSpec(
            "worker-overgranted", worker.app, server.kernel, fat_sc,
            worker.roots, sthread_prefix=worker.sthread_prefix,
            exploit_facing=True,
            sensitive_tags=("rsa-private-key",))
        result = lint_compartment(fat)
        kinds = {(f.kind, f.subject) for f in result.findings}
        assert ("SENSITIVE_EXPOSURE", "mem:rsa-private-key") in kinds
        assert ("UNUSED_GRANT", "mem:rsa-private-key") in kinds
        exposure = next(f for f in result.findings
                        if f.kind == "SENSITIVE_EXPOSURE")
        assert SEVERITY[exposure.kind] == "error"


class TestShippedAppsClean:
    """`python -m repro lint` over every shipped compartment body."""

    @pytest.mark.parametrize("app", ["httpd-simple", "httpd-mitm",
                                     "pop3"])
    def test_static_clean(self, app):
        results = lint_app(app, with_trace=False)
        report = format_report(results)
        assert all(r.inferred.converged for r in results), report
        assert all(r.static.unresolved == [] for r in results), report
        assert all(r.findings == [] for r in results), report

    @pytest.mark.parametrize("app", ["sshd-wedge", "pop3"])
    def test_three_way_clean(self, app):
        """Traced leg included: zero UNSOUND findings in particular."""
        results = lint_app(app, with_trace=True)
        report = format_report(results)
        assert all(r.findings == [] for r in results), report
        # the traced leg really ran: some compartment touched memory
        assert any(r.traced and r.traced.mem for r in results), report


class TestOverprivilegeMetrics:
    def test_report_shape(self):
        from repro.metrics import overprivilege_report
        report = overprivilege_report(["pop3"], with_trace=True)
        assert "pop3.partitioned/handler" in report
        gate = report["pop3.partitioned/login_gate"]
        assert gate["declared_grants"] == gate["static_grants"] == 2
        assert gate["static_only_mem"] == []
        assert gate["errors"] == 0 and gate["warnings"] == 0
