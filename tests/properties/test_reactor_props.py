"""Property battery for the reactor's scheduling invariants.

Each test maps to a numbered design rule in ``repro.core.reactor``:

* rule 2 (no lost wakeups): randomized producer/consumer storms must
  always drain to completion — a lost wakeup presents as a deadlock,
  which ``run_until_idle`` detects and raises;
* rule 3 (no double dispatch): ``double_dispatches`` stays 0 under
  every storm;
* rule 4 (FIFO fairness): senders blocked on one full stream drain in
  exactly their arrival order, structurally;
* the ``"watch"`` notification mode agrees byte-for-byte with the
  ``"scan"`` walk-every-waiter-every-pass oracle on the same seeded
  workload;
* the PR-5 resilience semantics survive the scheduler swap: cooperative
  sends never buffer past the high-water mark (and really stall), a
  plugged listener sheds exactly ``N - backlog``, and ambient deadlines
  kill a parked task with the typed :class:`DeadlineExceeded`.
"""

import random

import pytest

from repro.core.errors import (ConnectionShed, DeadlineExceeded,
                               WedgeError)
from repro.core.reactor import Reactor, wait_readable
from repro.net import costream
from repro.net.network import Network
from repro.net.stream import DuplexStream
from repro.resilience.deadline import Deadline

SEEDS = [1, 2, 3]


def _run_transfer(mode, seed, *, high_water=64, payload_size=4096):
    """One seeded randomized transfer; returns (received, reactor)."""
    rng = random.Random(seed)
    payload = bytes(rng.randrange(256) for _ in range(payload_size))
    end_a, end_b = DuplexStream.pipe_pair(f"prop{seed}",
                                          high_water=high_water)
    reactor = Reactor(name=f"prop-{mode}-{seed}", mode=mode)
    received = bytearray()
    chunks = []
    offset = 0
    while offset < len(payload):
        size = rng.randrange(1, high_water * 2)
        chunks.append(payload[offset:offset + size])
        offset += size

    def producer():
        for chunk in chunks:
            yield from costream.co_send(end_a, chunk)
        end_a.close()

    def consumer():
        while True:
            data = yield from costream.co_recv(end_b, 7000)
            if data is None:
                return
            received.extend(data)

    reactor.spawn(producer(), name="producer")
    reactor.spawn(consumer(), name="consumer")
    reactor.run_until_idle()
    return bytes(payload), bytes(received), reactor, end_a.tx


class TestNoLostWakeups:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_randomized_storm_always_drains(self, seed):
        payload, received, reactor, tx = _run_transfer("watch", seed)
        # a lost wakeup would have deadlocked run_until_idle instead
        assert received == payload
        assert reactor.live == 0
        assert not reactor.crashed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_double_dispatch_under_storm(self, seed):
        _, _, reactor, _ = _run_transfer("watch", seed)
        assert reactor.double_dispatches == 0

    def test_many_waiters_one_byte_at_a_time(self):
        """N waiters parked on one stream, woken one byte at a time:
        every byte is claimed exactly once, nobody is dispatched twice,
        nobody starves."""
        end_a, end_b = DuplexStream.pipe_pair("fanin", high_water=64)
        reactor = Reactor(name="fanin", mode="watch")
        claims = []

        def waiter(tag):
            data = yield from costream.co_recv(end_b, 1)
            claims.append((tag, data))

        def feeder():
            for i in range(8):
                yield from costream.co_send(end_a, bytes([i]))
                yield  # let the wakeup land before the next byte

        for tag in range(8):
            reactor.spawn(waiter(tag), name=f"waiter{tag}")
        reactor.spawn(feeder(), name="feeder")
        reactor.run_until_idle()
        assert reactor.double_dispatches == 0
        assert sorted(data for _, data in claims) == \
            [bytes([i]) for i in range(8)]
        # rule 4: waiters drain in arrival order, so byte i goes to
        # waiter i
        assert claims == [(i, bytes([i])) for i in range(8)]


class TestWatchVsScanOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_modes_agree_on_seeded_workload(self, seed):
        watch = _run_transfer("watch", seed)
        scan = _run_transfer("scan", seed)
        assert watch[1] == watch[0]
        assert scan[1] == scan[0]
        assert watch[1] == scan[1]
        # same work, both clean — the notification plumbing may not
        # change what gets done
        assert watch[2].double_dispatches == 0
        assert scan[2].double_dispatches == 0
        assert watch[2].spawned == scan[2].spawned
        assert not watch[2].crashed and not scan[2].crashed
        # identical backpressure accounting on the shared stream
        assert watch[3].peak_buffered == scan[3].peak_buffered
        assert watch[3].backpressure_waits == scan[3].backpressure_waits


class TestFifoFairness:
    def test_blocked_senders_drain_in_arrival_order(self):
        """Five senders blocked on one full stream must complete in
        exactly their arrival order once the reader drains (rule 4);
        the wake trace proves the order was the scheduler's doing."""
        end_a, end_b = DuplexStream.pipe_pair("fifo", high_water=4)
        reactor = Reactor(name="fifo", mode="watch")
        reactor.trace = []

        def sender(tag):
            yield from costream.co_send(end_a, bytes([tag]) * 4)

        def reader():
            got = bytearray()
            while len(got) < 24:
                data = yield from costream.co_recv(end_b, 4)
                got.extend(data)
            return bytes(got)

        # the plug fills the buffer so every tagged sender must park
        reactor.spawn(sender(9), name="plug")
        for tag in range(5):
            reactor.spawn(sender(tag), name=f"sender{tag}")
        reader_task = reactor.spawn(reader(), name="reader")
        reactor.run_until_idle()
        assert reader_task.result == (bytes([9]) * 4
                                      + b"".join(bytes([t]) * 4
                                                 for t in range(5)))
        tx_name = end_a.tx.name
        sender_wakes = [task for task, endpoint in reactor.trace
                        if endpoint == tx_name
                        and task.startswith("sender")]
        in_order = [f"sender{t}" for t in range(5)]
        # every sender woke at least once, first wakes in FIFO order
        first_wakes = []
        for name in sender_wakes:
            if name not in first_wakes:
                first_wakes.append(name)
        assert first_wakes == in_order


class TestResilienceInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cosend_never_exceeds_high_water(self, seed):
        high_water = 32
        _, received, _, tx = _run_transfer("watch", seed,
                                           high_water=high_water,
                                           payload_size=2048)
        assert len(received) == 2048
        assert tx.peak_buffered <= high_water
        assert tx.backpressure_waits > 0

    def test_plugged_listener_sheds_exactly_n_minus_b(self):
        backlog, clients = 6, 20
        net = Network()
        net.listen("prop-shed:80", backlog=backlog)
        reactor = Reactor(name="shed", mode="watch")
        outcomes = {"connected": 0, "shed": 0}
        held = []   # admitted sockets stay open: closing one would
        # purge its queue slot (the mid-handoff drop fix) and admit
        # the next client — this test wants the queue to stay plugged

        def client(i):
            try:
                sock = net.connect("prop-shed:80")
            except ConnectionShed:
                outcomes["shed"] += 1
                return
            outcomes["connected"] += 1
            held.append(sock)
            yield  # make the body a generator without ever blocking

        for i in range(clients):
            reactor.spawn(client(i), name=f"client{i}")
        reactor.run_until_idle()
        assert outcomes["shed"] == clients - backlog
        assert outcomes["connected"] == backlog
        for sock in held:
            sock.close()

    def test_parked_task_deadline_is_typed(self):
        """A task parked on a silent stream under an ambient deadline
        dies with DeadlineExceeded — parked is not exempt from the
        deadline, and the error is typed, not a hang."""
        end_a, end_b = DuplexStream.pipe_pair("deadline")
        reactor = Reactor(name="deadline", mode="watch")

        def parked():
            data = yield from costream.co_recv(end_b, 1, timeout=30.0)
            return data

        task = reactor.spawn(parked(), name="parked",
                             deadline=Deadline.after(0.05))
        reactor.run_until_idle(raise_crashes=False)
        assert task.done
        assert isinstance(task.error, DeadlineExceeded)
        del end_a  # keep the writer end alive until the task is done

    def test_deadlock_is_detected_not_hung(self):
        end_a, end_b = DuplexStream.pipe_pair("stuck")
        reactor = Reactor(name="stuck", mode="watch")

        def stuck():
            yield wait_readable(end_b.rx)

        reactor.spawn(stuck(), name="stuck")
        with pytest.raises(WedgeError, match="deadlock"):
            reactor.run_until_idle()
        del end_a
