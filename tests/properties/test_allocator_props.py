"""Property-based tests: the heap allocator never corrupts itself."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocator import OVERHEAD, Heap
from repro.core.errors import OutOfMemory
from repro.core.memory import AddressSpace

HEAP_SIZE = 16384


def fresh_heap():
    space = AddressSpace()
    seg = space.create_segment(HEAP_SIZE, name="prop-heap")
    heap = Heap(seg, HEAP_SIZE)
    heap.format()
    return heap


# an operation is either an allocation size or an index of a live
# allocation to free (modulo the live count)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 800)),
        st.tuples(st.just("free"), st.integers(0, 10_000)),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=150, deadline=None)
def test_random_alloc_free_sequences_preserve_invariants(sequence):
    heap = fresh_heap()
    live = []
    for op, value in sequence:
        if op == "alloc":
            try:
                off = heap.alloc(value)
            except OutOfMemory:
                continue
            live.append((off, value))
        elif live:
            idx = value % len(live)
            off, _ = live.pop(idx)
            heap.free(off)
    heap.check_invariants()
    # every live allocation is still in-use and correctly sized
    inuse = dict(heap.inuse_chunks())
    for off, size in live:
        assert off in inuse
        assert inuse[off] >= size


@given(ops)
@settings(max_examples=100, deadline=None)
def test_live_allocations_never_overlap(sequence):
    heap = fresh_heap()
    live = []
    for op, value in sequence:
        if op == "alloc":
            try:
                off = heap.alloc(value)
            except OutOfMemory:
                continue
            live.append((off, value))
        elif live:
            off, _ = live.pop(value % len(live))
            heap.free(off)
        spans = sorted((off, off + size) for off, size in live)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 + OVERHEAD - 8 <= b0 + OVERHEAD  # payloads disjoint
            assert a1 <= b0 or a0 == b0


@given(st.lists(st.integers(1, 500), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_free_all_restores_single_chunk(sizes):
    heap = fresh_heap()
    offsets = []
    for size in sizes:
        try:
            offsets.append(heap.alloc(size))
        except OutOfMemory:
            break
    for off in offsets:
        heap.free(off)
    heap.check_invariants()
    assert len(list(heap.walk())) == 1


@given(st.lists(st.integers(1, 300), min_size=1, max_size=20),
       st.randoms())
@settings(max_examples=80, deadline=None)
def test_free_order_does_not_matter(sizes, rng):
    heap = fresh_heap()
    offsets = []
    for size in sizes:
        try:
            offsets.append(heap.alloc(size))
        except OutOfMemory:
            break
    rng.shuffle(offsets)
    for off in offsets:
        heap.free(off)
    heap.check_invariants()
    assert heap.free_bytes() == fresh_heap().free_bytes()


@given(st.binary(min_size=1, max_size=600))
@settings(max_examples=80, deadline=None)
def test_payload_bytes_survive_other_operations(data):
    heap = fresh_heap()
    region = heap.region
    off = heap.alloc(len(data))
    region.write_raw(off, data)
    # interleave unrelated churn
    others = [heap.alloc(64) for _ in range(8)]
    for other in others[::2]:
        heap.free(other)
    assert region.read_raw(off, len(data)) == data
