"""Property-based tests on the memory bus and COW semantics."""

from hypothesis import given, settings, strategies as st

from repro.core.costs import CostAccount
from repro.core.memory import (PAGE_SIZE, PROT_COW, PROT_READ, PROT_RW,
                               AddressSpace, MemoryBus, PageTable)

SEG_PAGES = 4
SEG_SIZE = SEG_PAGES * PAGE_SIZE


def make_env():
    space = AddressSpace()
    seg = space.create_segment(SEG_SIZE, name="prop")
    bus = MemoryBus(space, CostAccount())
    return space, seg, bus


writes = st.lists(
    st.tuples(st.integers(0, SEG_SIZE - 1),
              st.binary(min_size=1, max_size=3 * PAGE_SIZE)),
    min_size=1, max_size=12)


@given(writes)
@settings(max_examples=100, deadline=None)
def test_bus_matches_reference_model(operations):
    """Random writes through the bus behave like one flat bytearray."""
    _, seg, bus = make_env()
    table = PageTable("w")
    table.map_segment(seg, PROT_RW)
    model = bytearray(SEG_SIZE)
    for offset, data in operations:
        data = data[:SEG_SIZE - offset]
        if not data:
            continue
        bus.write(table, seg.base + offset, data)
        model[offset:offset + len(data)] = data
    assert bus.read(table, seg.base, SEG_SIZE) == bytes(model)


@given(writes, writes)
@settings(max_examples=60, deadline=None)
def test_cow_tables_fully_independent(ops_a, ops_b):
    """Two COW views diverge independently; the pristine frames stay."""
    _, seg, bus = make_env()
    pristine = bytes(seg.read_raw(0, SEG_SIZE))
    table_a = PageTable("a")
    table_a.map_segment(seg, PROT_READ | PROT_COW)
    table_b = PageTable("b")
    table_b.map_segment(seg, PROT_READ | PROT_COW)
    model_a = bytearray(pristine)
    model_b = bytearray(pristine)
    for (offset, data), model, table in (
            [(op, model_a, table_a) for op in ops_a] +
            [(op, model_b, table_b) for op in ops_b]):
        data = data[:SEG_SIZE - offset]
        if not data:
            continue
        bus.write(table, seg.base + offset, data)
        model[offset:offset + len(data)] = data
    assert bus.read(table_a, seg.base, SEG_SIZE) == bytes(model_a)
    assert bus.read(table_b, seg.base, SEG_SIZE) == bytes(model_b)
    assert seg.read_raw(0, SEG_SIZE) == pristine


@given(st.integers(0, SEG_SIZE - 1), st.integers(1, PAGE_SIZE))
@settings(max_examples=100, deadline=None)
def test_reads_never_cross_into_other_segments(offset, size):
    """Guard gaps: a read inside the segment never leaks a neighbour."""
    space, seg, bus = make_env()
    other = space.create_segment(PAGE_SIZE, name="other")
    other.write_raw(0, b"NEIGHBOUR" * 10)
    table = PageTable("r")
    table.map_segment(seg, PROT_RW)
    size = min(size, SEG_SIZE - offset)
    data = bus.read(table, seg.base + offset, size)
    assert b"NEIGHBOUR" not in data
