"""The central security invariant, property-tested.

For ANY grant set a parent chooses, code running inside the compartment
(attacker or not) can read exactly the granted tags and write exactly
the write-granted tags — no more, no less.  This is default-deny
quantified over random policies.
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import MemoryViolation
from repro.core.kernel import Kernel
from repro.core.memory import PROT_COW, PROT_READ, PROT_RW
from repro.core.policy import SecurityContext, sc_mem_add

N_TAGS = 4

#: per-tag decision: no grant, read, read-write, or copy-on-write
grant_strategy = st.lists(
    st.sampled_from([None, PROT_READ, PROT_RW, PROT_COW]),
    min_size=N_TAGS, max_size=N_TAGS)


@given(grant_strategy)
@settings(max_examples=60, deadline=None)
def test_readable_set_equals_granted_set(grants):
    kernel = Kernel()
    kernel.start_main()
    tags = []
    for i in range(N_TAGS):
        tag = kernel.tag_new(name=f"t{i}")
        buf = kernel.alloc_buf(8, tag=tag, init=(f"data-{i}!".encode() + b"_"))
        tags.append((tag, buf))

    sc = SecurityContext()
    for (tag, _), prot in zip(tags, grants):
        if prot is not None:
            sc_mem_add(sc, tag, prot)

    def probe(arg):
        readable = set()
        writable = set()
        for index, (tag, buf) in enumerate(tags):
            try:
                kernel.mem_read(buf.addr, 8)
                readable.add(index)
            except MemoryViolation:
                pass
            try:
                kernel.mem_write(buf.addr, b"OVERRIDE")
                writable.add(index)
            except MemoryViolation:
                pass
        return readable, writable

    child = kernel.sthread_create(sc, probe, spawn="inline")
    readable, writable = kernel.sthread_join(child)

    expected_readable = {i for i, prot in enumerate(grants)
                         if prot is not None}
    # COW allows "writing" (privately); shared-write needs PROT_RW
    expected_writable = {i for i, prot in enumerate(grants)
                         if prot in (PROT_RW, PROT_COW)}
    assert readable == expected_readable
    assert writable == expected_writable

    # and shared state was modified ONLY through real write grants
    for index, (tag, buf) in enumerate(tags):
        if grants[index] == PROT_RW:
            assert buf.read(8) == b"OVERRIDE"
        else:
            assert buf.read(8) == f"data-{index}!".encode() + b"_"


@given(grant_strategy, grant_strategy)
@settings(max_examples=40, deadline=None)
def test_two_siblings_confined_independently(grants_a, grants_b):
    """Sibling compartments' grant sets do not bleed into each other."""
    kernel = Kernel()
    kernel.start_main()
    tags = []
    for i in range(N_TAGS):
        tag = kernel.tag_new(name=f"t{i}")
        buf = kernel.alloc_buf(8, tag=tag, init=b"original")
        tags.append((tag, buf))

    def build_sc(grants):
        sc = SecurityContext()
        for (tag, _), prot in zip(tags, grants):
            if prot is not None:
                sc_mem_add(sc, tag, prot)
        return sc

    def probe(arg):
        readable = set()
        for index, (tag, buf) in enumerate(tags):
            try:
                kernel.mem_read(buf.addr, 8)
                readable.add(index)
            except MemoryViolation:
                pass
        return readable

    child_a = kernel.sthread_create(build_sc(grants_a), probe,
                                    spawn="inline")
    child_b = kernel.sthread_create(build_sc(grants_b), probe,
                                    spawn="inline")
    assert kernel.sthread_join(child_a) == \
        {i for i, p in enumerate(grants_a) if p is not None}
    assert kernel.sthread_join(child_b) == \
        {i for i, p in enumerate(grants_b) if p is not None}
