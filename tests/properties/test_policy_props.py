"""Property-based tests: privilege monotonicity can never be violated.

The central security invariant of paper §3.1: however a chain of
sthreads delegates privileges, no compartment ever ends up with more
access to a tag than its ancestor chain allows.
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import PolicyError
from repro.core.kernel import Kernel
from repro.core.memory import PROT_COW, PROT_READ, PROT_RW, PROT_WRITE
from repro.core.policy import (SecurityContext, mem_prot_subset,
                               sc_mem_add, validate_mem_prot)

PROTS = [PROT_READ, PROT_RW, PROT_READ | PROT_COW]


@given(st.sampled_from(PROTS), st.sampled_from(PROTS),
       st.sampled_from(PROTS))
@settings(max_examples=50, deadline=None)
def test_subset_relation_is_transitive(a, b, c):
    if mem_prot_subset(b, a) and mem_prot_subset(c, b):
        assert mem_prot_subset(c, a)


@given(st.sampled_from(PROTS))
@settings(max_examples=20, deadline=None)
def test_subset_relation_is_reflexive(prot):
    assert mem_prot_subset(prot, prot)


@given(st.lists(st.sampled_from(PROTS), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_delegation_chains_never_escalate(chain):
    """Build a chain of sthreads, each granting the next the listed
    protection; every link that would escalate must be rejected, and
    whatever is granted is ≤ every ancestor's grant."""
    kernel = Kernel()
    kernel.start_main()
    tag = kernel.tag_new()
    buf = kernel.alloc_buf(8, tag=tag, init=b"????????")

    outcome = {"chain": []}

    def nest(level):
        def body(arg):
            granted = arg
            outcome["chain"].append(granted)
            if level + 1 >= len(chain):
                return
            child_prot = chain[level + 1]
            sc = sc_mem_add(SecurityContext(), tag, child_prot)
            try:
                child = kernel.sthread_create(sc, nest(level + 1),
                                              child_prot,
                                              spawn="inline")
                kernel.sthread_join(child)
            except PolicyError:
                outcome.setdefault("rejected", []).append(
                    (granted, child_prot))
        return body

    root_prot = chain[0]
    sc = sc_mem_add(SecurityContext(), tag, root_prot)
    top = kernel.sthread_create(sc, nest(0), root_prot, spawn="inline")
    kernel.sthread_join(top)

    # every accepted link respects the subset relation
    accepted = outcome["chain"]
    for parent_prot, child_prot in zip(accepted, accepted[1:]):
        assert mem_prot_subset(child_prot, parent_prot)
    # every rejection was a genuine escalation attempt
    for parent_prot, child_prot in outcome.get("rejected", []):
        assert not mem_prot_subset(child_prot, parent_prot)


@given(st.integers(0, 7))
@settings(max_examples=16, deadline=None)
def test_validate_mem_prot_total(prot):
    """validate_mem_prot either returns a readable prot or raises."""
    try:
        result = validate_mem_prot(prot)
    except PolicyError:
        return
    assert result & PROT_READ
    assert result != PROT_WRITE
