"""Property tests: the circuit breaker is a *strict* state machine.

Whatever interleaving of trips, probes, probe outcomes and clock ticks
a caller produces, the breaker must (1) only ever traverse the four
legal edges, (2) admit at most one probe per open period, and (3) keep
its counters consistent with its transition log.  Illegal edges raise
without corrupting the state — which is exactly what lets the kernel
call these methods from racing threads and trust the audit log.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.core.errors import WedgeError
from repro.resilience import (CLOSED, HALF_OPEN, OPEN, BreakerPolicy,
                              CircuitBreaker)
from repro.resilience.breaker import TRANSITIONS

OPS = ("trip", "probe", "ok", "fail", "tick")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@given(st.lists(st.sampled_from(OPS), min_size=1, max_size=40))
@settings(max_examples=200, deadline=None)
def test_any_op_sequence_preserves_the_invariants(ops):
    clock = FakeClock()
    breaker = CircuitBreaker(BreakerPolicy(cooldown=1.0, max_cooldown=4.0),
                             clock=clock)
    probes_admitted = 0
    for op in ops:
        state_before = breaker.state
        log_before = list(breaker.transitions)
        try:
            if op == "trip":
                breaker.trip()
            elif op == "probe":
                if breaker.try_probe():
                    probes_admitted += 1
            elif op == "ok":
                breaker.probe_succeeded()
            elif op == "fail":
                breaker.probe_failed()
            else:
                clock.now += 0.7
        except WedgeError:
            # an illegal edge must be a clean no-op
            assert breaker.state == state_before
            assert breaker.transitions == log_before

        # every recorded edge is a legal one
        for src, dst in breaker.transitions:
            assert dst in TRANSITIONS[src], (src, dst)

        # the log replays from CLOSED to the current state
        state = CLOSED
        for src, dst in breaker.transitions:
            assert src == state
            state = dst
        assert state == breaker.state

        # counters match the log
        edges = breaker.transitions
        assert breaker.open_count == sum(1 for _, d in edges if d == OPEN)
        assert breaker.recoveries == sum(1 for _, d in edges
                                         if d == CLOSED)
        assert breaker.probe_count == probes_admitted == \
            sum(1 for _, d in edges if d == HALF_OPEN)

        # cooldown escalation stays within policy bounds
        assert (breaker.policy.cooldown <= breaker.current_cooldown
                <= breaker.policy.max_cooldown)


@given(st.integers(min_value=0, max_value=10))
@settings(max_examples=30, deadline=None)
def test_exactly_one_probe_per_open_period(extra_callers):
    """However many callers race the half-open window, one gets in."""
    clock = FakeClock()
    breaker = CircuitBreaker(BreakerPolicy(cooldown=1.0), clock=clock)
    breaker.trip()
    clock.now += 1.0
    admitted = sum(1 for _ in range(extra_callers + 1)
                   if breaker.try_probe())
    assert admitted == 1
    assert breaker.state == HALF_OPEN


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_one_probe_per_window_under_concurrent_racers(racers, windows):
    """Real threads race ``try_probe`` at the cooldown boundary — the
    shape of the lb's health checks hammering one open breaker.  Every
    window admits exactly one half-open probe, no matter the
    interleaving."""
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(cooldown=1.0, cooldown_factor=1.0), clock=clock)
    breaker.trip()
    for _ in range(windows):
        clock.now += breaker.current_cooldown
        admitted = []
        barrier = threading.Barrier(racers)

        def racer():
            barrier.wait()
            if breaker.try_probe():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=racer)
                   for _ in range(racers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
            assert not t.is_alive()
        assert len(admitted) == 1
        assert breaker.state == HALF_OPEN
        # the loser's next window: fail the probe, re-open, repeat
        breaker.probe_failed()
        assert breaker.state == OPEN
    assert breaker.probe_count == windows


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_repeated_probe_failures_escalate_but_saturate(failures):
    clock = FakeClock()
    policy = BreakerPolicy(cooldown=0.5, cooldown_factor=2.0,
                           max_cooldown=2.0)
    breaker = CircuitBreaker(policy, clock=clock)
    breaker.trip()
    for _ in range(failures):
        clock.now += breaker.current_cooldown
        assert breaker.try_probe()
        breaker.probe_failed()
    assert breaker.current_cooldown == min(
        0.5 * 2.0 ** failures, 2.0)
    # and recovery is still reachable
    clock.now += breaker.current_cooldown
    assert breaker.try_probe()
    breaker.probe_succeeded()
    assert breaker.state == CLOSED
    assert breaker.current_cooldown == 0.5
