"""Property tests for the kv tier (the eviction/codec satellite).

Four claims:

* the command parser and both region codecs are *total* — arbitrary
  bytes produce a typed result or a typed error, never a stray Python
  exception, and well-formed states round-trip exactly;
* the eviction algebra behaves identically whether the metadata lives
  in a python dict (the oracle) or round-trips through the ``kv-meta``
  codec on every step (the gate's whole-region read/write discipline) —
  the plumbing preserves the algorithm;
* the write-behind queue never exceeds its bound: past it, writes shed
  *typed* instead of growing the region;
* the server is deterministic: the partitioned and monolithic builds
  answer seeded workloads reply-for-reply alike, and two identical
  seeded runs leave byte-identical store regions (TTLs included —
  they are priced off the model clock, not wall time).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.apps.kv import KvClient, KvServer, MonolithicKv, store
from repro.apps.kv.server import WRITE_BEHIND, apply_op, parse_command
from repro.core.kernel import Kernel
from repro.net import Network

KEYS = [b"k%d" % i for i in range(6)]

keys = st.sampled_from(KEYS)
values = st.binary(min_size=0, max_size=16)

META_REGION = 4096


# -- totality and codec round-trips ------------------------------------------

@given(st.binary(max_size=200))
@settings(max_examples=200, deadline=None)
def test_parse_command_is_total(data):
    op, err = parse_command(data)
    assert (op is None) != (err is None)


@given(st.lists(st.tuples(keys, values, st.integers(0, 2 ** 40)),
                max_size=8),
       st.lists(st.tuples(st.sampled_from([store.Q_SET, store.Q_DEL]),
                          keys, values), max_size=8),
       st.lists(st.tuples(keys, values), max_size=8))
@settings(max_examples=100, deadline=None)
def test_store_codec_roundtrips(cache, queue, backing):
    state = {"cache": cache, "queue": queue, "backing": backing}
    blob = store.pack_store(state, 1 << 14)
    assert len(blob) == 1 << 14
    assert store.unpack_store(blob) == state


@given(st.sampled_from(store.MODES),
       st.lists(st.tuples(keys, st.integers(0, 2 ** 40)),
                max_size=6, unique_by=lambda kv: kv[0]),
       st.integers(0, 2 ** 30), st.integers(0, 5))
@settings(max_examples=100, deadline=None)
def test_meta_codec_roundtrips(mode, rows, counter, hand):
    state = {"mode": mode, "counter": counter, "hand": hand,
             "order": [k for k, _ in rows],
             "entries": dict(rows)}
    assert store.unpack_meta(store.pack_meta(state, META_REGION)) == state


# -- the eviction algebra under gate plumbing --------------------------------

evict_steps = st.lists(
    st.tuples(st.sampled_from(["admit", "touch", "remove", "pick",
                               "reset"]),
              keys),
    min_size=1, max_size=40)


class _PackedMeta:
    """The gate's discipline: every step round-trips the region codec."""

    def __init__(self, mode):
        self.blob = store.pack_meta(store.empty_meta(mode), META_REGION)

    def step(self, action, key):
        state = store.unpack_meta(self.blob)
        victim = None
        if action == "admit":
            store.meta_admit(state, key)
        elif action == "touch":
            store.meta_touch(state, key)
        elif action == "remove":
            store.meta_remove(state, key)
        elif action == "pick":
            victim = store.meta_pick(state)
        else:
            store.meta_reset(state)
        self.blob = store.pack_meta(state, META_REGION)
        return victim


@given(st.sampled_from(store.MODES), evict_steps)
@settings(max_examples=150, deadline=None)
def test_codec_roundtrip_preserves_the_eviction_algorithm(mode, steps):
    oracle = store.EvictionOracle(mode)
    packed = _PackedMeta(mode)
    for action, key in steps:
        if action == "pick":
            expected = oracle.pick()
        else:
            getattr(oracle, action)(*([] if action == "reset" else [key]))
            expected = None
        assert packed.step(action, key) == expected
    assert packed.blob == store.pack_meta(oracle.state, META_REGION)


@given(evict_steps)
@settings(max_examples=100, deadline=None)
def test_lru_pick_matches_a_recency_list_model(steps):
    """LRU stamps against the obvious model: a list ordered by last
    touch, victim = its head."""
    oracle = store.EvictionOracle(store.MODE_LRU)
    recency = []
    for action, key in steps:
        if action == "pick":
            assert oracle.pick() == (recency[0] if recency else None)
        elif action in ("admit", "touch"):
            getattr(oracle, action)(key)
            if key in recency:
                recency.remove(key)
            recency.append(key)
        elif action == "remove":
            oracle.remove(key)
            if key in recency:
                recency.remove(key)
        else:
            oracle.reset()
            recency = []


@given(st.lists(st.tuples(keys, st.booleans()), max_size=30))
@settings(max_examples=100, deadline=None)
def test_clock_pick_always_lands_on_a_cleared_bit(tracked):
    """Whatever reference pattern precedes it, the clock victim is a
    tracked key whose bit the sweep observed cold."""
    oracle = store.EvictionOracle(store.MODE_CLOCK)
    for key, touch_again in tracked:
        oracle.admit(key)
        if touch_again:
            oracle.touch(key)
    victim = oracle.pick()
    if not oracle.state["order"]:
        assert victim is None
    else:
        assert victim in oracle.state["order"]
        assert oracle.state["entries"][victim] == 0


# -- the write-behind bound --------------------------------------------------

wb_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), keys, values),
        st.tuples(st.just("delete"), keys, st.just(b"")),
        st.tuples(st.just("get"), keys, st.just(b"")),
        st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
    ),
    min_size=1, max_size=60)


@given(wb_ops, st.integers(1, 6))
@settings(max_examples=150, deadline=None)
def test_write_behind_queue_never_exceeds_its_bound(ops, bound):
    state = store.empty_store()
    oracle = store.EvictionOracle()
    stats = {k: 0 for k in ("hits", "misses", "fills", "sets", "deletes",
                            "evictions", "shed", "flushes")}

    def evict(action, key=None):
        if action == "pick":
            return oracle.pick()
        getattr(oracle, action)(key)
        return None

    for now, (kind, key, value) in enumerate(ops):
        op = {"op": kind, "key": key}
        if kind == "set":
            op.update(ttl=0, value=value)
        elif kind == "flush":
            op = {"op": "flush"}
        at_bound = len(state["queue"]) >= bound
        reply, _ = apply_op(state, evict, op, policy=WRITE_BEHIND,
                            capacity=8, queue_bound=bound, stats=stats,
                            now=now)
        assert len(state["queue"]) <= bound
        if kind in ("set", "delete"):
            # the shed is exact: refused iff the queue was at the bound
            assert bool(reply.get("shed")) == at_bound
    assert stats["shed"] + stats["sets"] + stats["deletes"] \
        == sum(1 for kind, _, _ in ops if kind in ("set", "delete"))


# -- server-level determinism ------------------------------------------------

def _workload(seed, ttl=0):
    """A seeded batch of command lines (CAS included, hex-armoured)."""
    rng = random.Random(seed)
    lines = []
    for _ in range(40):
        key = rng.choice(KEYS)
        roll = rng.random()
        if roll < 0.4:
            value = bytes([rng.randrange(256) for _ in range(4)])
            lines.append(b"SET %s %d %s" % (key, ttl,
                                            value.hex().encode()))
        elif roll < 0.7:
            lines.append(b"GET " + key)
        elif roll < 0.8:
            lines.append(b"DEL " + key)
        elif roll < 0.9:
            old = bytes([rng.randrange(256) for _ in range(4)])
            new = bytes([rng.randrange(256) for _ in range(4)])
            lines.append(b"CAS %s %d %s %s" % (
                key, ttl, old.hex().encode(), new.hex().encode()))
        elif roll < 0.95:
            lines.append(b"STAT")
        else:
            lines.append(b"FLUSH")
    return lines


def _run(factory, batches):
    srv = factory().start()
    try:
        kernel = Kernel(net=srv.network, name="prop-client")
        kernel.start_main()
        client = KvClient(kernel, srv.addr)
        replies = [client.execute(batch) for batch in batches]
        return replies, srv.store_bytes()
    finally:
        srv.stop()


class TestSeededDifferential:
    def test_partitioned_and_monolithic_agree(self):
        """Reply-for-reply parity on seeded workloads, both recency
        modes.  ttl=0 keeps the two builds' cycle clocks (which differ:
        gate hops cost cycles) out of the semantics."""
        for mode in store.MODES:
            batches = [_workload(seed) for seed in (1, 2, 3)]
            part = _run(lambda: KvServer(
                Network(), "prop-kv:9090", mode=mode, capacity=4),
                batches)
            mono = _run(lambda: MonolithicKv(
                Network(), "prop-kvm:9090", mode=mode, capacity=4),
                batches)
            assert part[0] == mono[0], f"replies diverged under {mode}"
            assert store.unpack_store(part[1]) \
                == store.unpack_store(mono[1])

    def test_identical_seeded_runs_are_byte_identical(self):
        """Reruns reproduce exactly — replies *and* region bytes — even
        with nonzero TTLs, because expiry is priced off the
        deterministic cost model, not wall time."""
        batches = [_workload(seed, ttl=10 ** 9) for seed in (1, 2)]
        first = _run(lambda: KvServer(Network(), "prop-det:9090"),
                     batches)
        second = _run(lambda: KvServer(Network(), "prop-det:9090"),
                      batches)
        assert first[0] == second[0]
        assert first[1] == second[1]     # byte-identical kv-store region
