"""Property-based fuzzing of the protocol surfaces.

The rule under test: no byte sequence a peer sends may produce anything
other than a clean :class:`~repro.core.errors.WedgeError` subclass —
arbitrary Python exceptions out of a parser would be simulation bugs
(and, in the real system, crashes-at-best).
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import WedgeError
from repro.sshlib import userauth
from repro.sshlib.transport import parse_kexinit, parse_kexreply
from repro.tls.codec import unpack_fields
from repro.tls.handshake import parse_handshake
from repro.tls.records import open_record
from repro.apps.pop3 import store


@given(st.binary(max_size=300))
@settings(max_examples=200, deadline=None)
def test_handshake_parser_total(data):
    try:
        parse_handshake(data)
    except WedgeError:
        pass


@given(st.binary(max_size=300))
@settings(max_examples=150, deadline=None)
def test_codec_total(data):
    try:
        unpack_fields(data)
    except WedgeError:
        pass


@given(st.binary(max_size=300), st.integers(0, 2 ** 63))
@settings(max_examples=150, deadline=None)
def test_record_opener_total(data, seq):
    try:
        open_record(b"e" * 32, b"m" * 32, seq, 23, data)
    except WedgeError:
        pass


@given(st.binary(max_size=200))
@settings(max_examples=150, deadline=None)
def test_kex_parsers_total(data):
    for parser in (parse_kexinit, parse_kexreply):
        try:
            parser(data)
        except WedgeError:
            pass


@given(st.binary(max_size=200))
@settings(max_examples=150, deadline=None)
def test_auth_parsers_total(data):
    for parser in (userauth.parse_auth_request,
                   userauth.parse_auth_result):
        try:
            parser(data)
        except WedgeError:
            pass


@given(st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_shadow_parser_total(data):
    try:
        userauth.parse_shadow(data)
    except WedgeError:
        pass


@given(st.text(max_size=50), st.binary(max_size=30),
       st.integers(0, 65535))
@settings(max_examples=100, deadline=None)
def test_pop3_store_roundtrip(user, password, uid):
    user = "".join(c for c in user if c.isalnum()) or "u"
    # format constraints: line-oriented, colon-separated, and NUL-padded
    # when stored in zero-filled tagged memory
    password = (password.replace(b"\n", b"").replace(b":", b"")
                .strip(b"\x00"))
    accounts = {user: (uid, password)}
    parsed = store.parse_passwords(store.serialize_passwords(accounts))
    assert parsed[user] == (uid, password)


@given(st.dictionaries(st.integers(1, 10),
                       st.lists(st.binary(min_size=1, max_size=40),
                                max_size=3), max_size=4))
@settings(max_examples=100, deadline=None)
def test_pop3_spool_roundtrip(mail):
    mail = {uid: msgs for uid, msgs in mail.items() if msgs}
    parsed = store.parse_spool(store.serialize_spool(mail))
    assert parsed == mail


@given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                max_size=10),
       st.integers(1, 7))
@settings(max_examples=100, deadline=None)
def test_stream_reassembly_any_chunking(chunks, read_size):
    """Stream semantics: any send-chunking and any read granularity
    reassemble to the same byte sequence."""
    from repro.net.stream import ByteStream
    stream = ByteStream("fuzz")
    payload = b"".join(chunks)
    for chunk in chunks:
        stream.send(chunk)
    stream.close()
    out = bytearray()
    while True:
        piece = stream.recv(read_size, timeout=1)
        if piece is None:
            break
        out += piece
    assert bytes(out) == payload
