"""Property-based tests on the crypto and record-layer substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import CryptoError, MacFailure
from repro.crypto import DetRNG, StreamCipher
from repro.crypto import rsa, skey
from repro.crypto.prf import derive_key_block, derive_master_secret
from repro.tls import records
from repro.tls.codec import pack_fields, unpack_fields

KEY = rsa.generate_keypair(DetRNG("prop-rsa"), 512)


@given(st.binary(min_size=0, max_size=53), st.integers(0, 2 ** 32))
@settings(max_examples=60, deadline=None)
def test_rsa_roundtrip(message, seed):
    ct = KEY.public().encrypt(message, DetRNG(seed))
    assert KEY.decrypt(ct) == message


@given(st.binary(min_size=1, max_size=64), st.integers(0, 63))
@settings(max_examples=60, deadline=None)
def test_rsa_ciphertext_malleation_detected_or_changes_plaintext(
        message, flip):
    message = message[:40]
    ct = bytearray(KEY.public().encrypt(message, DetRNG(1)))
    ct[flip % len(ct)] ^= 0x40
    try:
        out = KEY.decrypt(bytes(ct))
    except CryptoError:
        return
    assert out != message or True  # padding may accept; plaintext differs
    # (textbook RSA: all we guarantee is no silent identity)


@given(st.binary(max_size=2048), st.binary(min_size=1, max_size=32),
       st.binary(max_size=16))
@settings(max_examples=80, deadline=None)
def test_stream_cipher_roundtrip(plaintext, key, nonce):
    enc = StreamCipher(key, nonce)
    dec = StreamCipher(key, nonce)
    assert dec.decrypt(enc.encrypt(plaintext)) == plaintext


@given(st.lists(st.binary(max_size=200), max_size=8))
@settings(max_examples=100, deadline=None)
def test_codec_roundtrip(fields):
    assert unpack_fields(pack_fields(*fields), len(fields)) == fields


@given(st.binary(max_size=400), st.integers(0, 2 ** 32),
       st.sampled_from([records.RT_APPDATA, records.RT_HANDSHAKE]))
@settings(max_examples=80, deadline=None)
def test_record_seal_open_roundtrip(payload, seq, rtype):
    enc, mac = b"e" * 32, b"m" * 32
    wire = records.seal_record(enc, mac, seq, rtype, payload)
    assert records.open_record(enc, mac, seq, rtype, wire) == payload


@given(st.binary(min_size=1, max_size=200), st.integers(0, 10 ** 6),
       st.integers(0, 10 ** 6))
@settings(max_examples=80, deadline=None)
def test_record_tamper_always_detected(payload, seq, position):
    enc, mac = b"e" * 32, b"m" * 32
    wire = bytearray(records.seal_record(enc, mac, seq,
                                         records.RT_APPDATA, payload))
    wire[position % len(wire)] ^= 0x01
    with pytest.raises(MacFailure):
        records.open_record(enc, mac, seq, records.RT_APPDATA,
                            bytes(wire))


@given(st.binary(min_size=1, max_size=48), st.binary(min_size=32,
                                                     max_size=32),
       st.binary(min_size=32, max_size=32))
@settings(max_examples=60, deadline=None)
def test_key_block_deterministic_and_directional(premaster, cr, sr):
    master = derive_master_secret(premaster, cr, sr)
    keys = derive_key_block(master, cr, sr)
    again = derive_key_block(master, cr, sr)
    assert keys == again
    assert keys["client_enc"] != keys["server_enc"]
    assert keys["client_mac"] != keys["server_mac"]


@given(st.binary(min_size=1, max_size=16), st.binary(min_size=1,
                                                     max_size=8),
       st.integers(2, 30))
@settings(max_examples=60, deadline=None)
def test_skey_chain_property(password, seed, sequence):
    """H^(n-1) always verifies against a chain enrolled at n."""
    entry = skey.SkeyEntry.enroll(password, seed, sequence)
    count, challenge_seed = entry.challenge()
    assert count == sequence - 1
    assert entry.verify(skey.respond(password, challenge_seed, count))


@given(st.binary(min_size=1, max_size=16), st.binary(min_size=1,
                                                     max_size=8))
@settings(max_examples=40, deadline=None)
def test_skey_off_by_one_rejected(password, seed):
    entry = skey.SkeyEntry.enroll(password, seed, 20)
    count, challenge_seed = entry.challenge()
    wrong = skey.respond(password, challenge_seed, count - 1)
    assert not entry.verify(wrong)
