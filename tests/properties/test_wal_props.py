"""Property tests for the WAL codec (the durability PR's satellite).

The replay-safety claims recovery rides on, proved over a seeded
corpus of torn tails and bit flips rather than hand-picked examples:

* the op codec round-trips every loggable op and is *total* on
  arbitrary bytes (typed :class:`WalError`, never a stray exception);
* a log truncated at any byte replays to exactly the records wholly
  before the cut — a partial record is never applied;
* a single corrupted byte anywhere in a record stops the scan at that
  record (CRC framing), leaving every earlier record intact;
* the sequence/epoch/mount acceptance chain refuses skipped records,
  stale epochs and time-traveling mounts.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.kv.wal import (REC_HDR, WalError, decode_op,
                               decode_record, encode_op, encode_record,
                               scan_log)

keys = st.binary(min_size=1, max_size=32)
values = st.binary(min_size=0, max_size=64)
clocks = st.integers(min_value=0, max_value=2 ** 40)
ttls = st.integers(min_value=0, max_value=2 ** 32)


@st.composite
def loggable_ops(draw):
    kind = draw(st.sampled_from(["set", "delete", "cas", "flush", "get"]))
    op = {"op": kind}
    if kind in ("set", "delete", "cas", "get"):
        op["key"] = draw(keys)
    if kind in ("set", "cas"):
        op["value"] = draw(values)
        op["ttl"] = draw(ttls)
    if kind == "cas":
        op["old"] = draw(values)
    return op


@st.composite
def record_chains(draw):
    """A well-formed log image: records seq 1..n at one mount/epoch."""
    mount = draw(st.integers(min_value=1, max_value=100))
    epoch = draw(st.integers(min_value=0, max_value=100))
    ops = draw(st.lists(loggable_ops(), min_size=1, max_size=6))
    records = [encode_record(encode_op(op, i), mount=mount, epoch=epoch,
                             seq=i + 1)
               for i, op in enumerate(ops)]
    return records, mount, epoch


# -- op codec ----------------------------------------------------------------

@given(loggable_ops(), clocks)
@settings(max_examples=200, deadline=None)
def test_op_codec_round_trips(op, now):
    decoded, got_now = decode_op(encode_op(op, now))
    assert got_now == now
    expect = dict(op)
    if "ttl" in expect:
        expect["ttl"] = int(expect["ttl"])
    assert decoded == expect


@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_op_decode_is_total(blob):
    try:
        op, now = decode_op(blob)
    except WalError:
        return
    assert isinstance(op, dict) and op["op"] in (
        "set", "delete", "cas", "flush", "get")
    assert now >= 0


# -- record framing ----------------------------------------------------------

@given(st.binary(max_size=128), st.integers(1, 2 ** 31),
       st.integers(0, 2 ** 31), st.integers(1, 2 ** 31))
@settings(max_examples=200, deadline=None)
def test_record_round_trips(payload, mount, epoch, seq):
    frame = encode_record(payload, mount=mount, epoch=epoch, seq=seq)
    assert len(frame) == REC_HDR + len(payload)
    hit = decode_record(frame, 0)
    assert hit == (payload, mount, epoch, seq, len(frame))


@given(record_chains(), st.data())
@settings(max_examples=200, deadline=None)
def test_torn_tail_replays_exactly_the_whole_records(chain, data):
    """Cut the image at any byte: replay returns every record wholly
    before the cut and nothing after — no partial record applies."""
    records, mount, epoch = chain
    image = b"".join(records)
    cut = data.draw(st.integers(min_value=0, max_value=len(image)),
                    label="cut")
    got, end, stop = scan_log(image[:cut] + b"\0" * 64, epoch=epoch,
                              max_mount=mount)
    whole = started = 0
    pos = 0
    for rec in records:
        if pos < cut:
            started += 1
        if pos + len(rec) <= cut:
            whole += 1
        pos += len(rec)
    # every record wholly before the cut replays; the one record the
    # cut may intersect replays only if its torn bytes coincide with
    # the zeroed platter (then the frame is bit-identical and its CRC
    # honestly passes); nothing later ever does
    assert whole <= len(got) <= started
    pos = 0
    for i, (payload, got_mount, got_seq) in enumerate(got):
        assert encode_record(payload, mount=got_mount, epoch=epoch,
                             seq=got_seq) == records[i]
        pos += len(records[i])
    assert end == pos
    assert stop == "torn"               # the zero padding never decodes


@given(record_chains(), st.data())
@settings(max_examples=200, deadline=None)
def test_single_byte_corruption_stops_at_that_record(chain, data):
    """Flip one byte anywhere: the CRC frame catches it, the scan stops
    at the corrupted record, and every earlier record survives."""
    records, mount, epoch = chain
    image = bytearray(b"".join(records))
    at = data.draw(st.integers(0, len(image) - 1), label="at")
    delta = data.draw(st.integers(1, 255), label="delta")
    image[at] ^= delta
    # which record did we hit?
    pos = hit_idx = 0
    for i, rec in enumerate(records):
        if pos <= at < pos + len(rec):
            hit_idx = i
            break
        pos += len(rec)
    got, end, stop = scan_log(bytes(image), epoch=epoch, max_mount=mount)
    assert len(got) <= hit_idx          # CRC32 catches any 1-byte flip
    assert stop != "end"                # the scan never ran past it
    for i, (payload, got_mount, got_seq) in enumerate(got):
        assert encode_record(payload, mount=got_mount, epoch=epoch,
                             seq=got_seq) == records[i]


@given(record_chains())
@settings(max_examples=100, deadline=None)
def test_clean_image_replays_in_full(chain):
    records, mount, epoch = chain
    got, end, stop = scan_log(b"".join(records), epoch=epoch,
                              max_mount=mount)
    assert len(got) == len(records)
    assert stop == "end"
    assert end == sum(len(r) for r in records)


# -- the acceptance chain ----------------------------------------------------

def _rec(seq, *, mount=1, epoch=0, payload=b"p"):
    return encode_record(payload, mount=mount, epoch=epoch, seq=seq)


def test_skipped_seq_stops_the_scan():
    image = _rec(1) + _rec(3)
    got, _end, stop = scan_log(image, epoch=0, max_mount=1)
    assert len(got) == 1 and stop == "seq"


def test_stale_epoch_stops_the_scan():
    image = _rec(1, epoch=4) + _rec(2, epoch=3)
    got, _end, stop = scan_log(image, epoch=4, max_mount=1)
    assert len(got) == 1 and stop == "epoch"


def test_mount_never_decreases_or_exceeds_the_superblock():
    image = _rec(1, mount=5) + _rec(2, mount=4)
    got, _end, stop = scan_log(image, epoch=0, max_mount=9)
    assert len(got) == 1 and stop == "mount"
    # a record stamped *beyond* the current mount is from the future:
    # it cannot exist, so it is corruption — refuse it
    image = _rec(1, mount=5)
    got, _end, stop = scan_log(image, epoch=0, max_mount=4)
    assert got == [] and stop == "mount"
