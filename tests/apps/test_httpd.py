"""Functional tests for the three Apache variants."""

import time

import pytest

from repro.apps.httpd import (MitmPartitionHttpd, MonolithicHttpd,
                              SimplePartitionHttpd)
from repro.apps.httpd.content import build_request, response_body
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient

VARIANTS = [
    (MonolithicHttpd, {}),
    (SimplePartitionHttpd, {}),
    (MitmPartitionHttpd, {}),
    (MitmPartitionHttpd, {"gate_mode": "recycled"}),
]

_ids = ["monolithic", "simple", "mitm-fresh", "mitm-recycled"]


@pytest.fixture(params=VARIANTS, ids=_ids)
def server(request):
    cls, kwargs = request.param
    net = Network()
    srv = cls(net, f"httpd-{request.node.name}:443", **kwargs).start()
    yield srv
    srv.stop()


def client_for(server, seed="client"):
    return TlsClient(DetRNG(seed),
                     expected_server_key=server.public_key)


class TestServing:
    def test_serves_page(self, server):
        conn = client_for(server).connect(server.network, server.addr)
        resp = conn.request(build_request("/index.html"))
        assert resp.startswith(b"HTTP/1.0 200")
        assert b"It works!" in response_body(resp)
        assert server.errors == []

    def test_404(self, server):
        conn = client_for(server).connect(server.network, server.addr)
        resp = conn.request(build_request("/missing"))
        assert resp.startswith(b"HTTP/1.0 404")

    def test_session_resumption(self, server):
        client = client_for(server)
        conn1 = client.connect(server.network, server.addr)
        conn1.request(build_request("/"))
        conn2 = client.connect(server.network, server.addr)
        resp = conn2.request(build_request("/about"))
        assert conn2.resumed
        assert b"Wedge" in response_body(resp)

    def test_sequential_clients(self, server):
        for i in range(3):
            conn = client_for(server, f"c{i}").connect(server.network,
                                                       server.addr)
            resp = conn.request(build_request("/"))
            assert resp.startswith(b"HTTP/1.0 200")
        assert server.requests_served >= 3


class TestPartitionStructure:
    def test_simple_worker_per_connection(self):
        net = Network()
        srv = SimplePartitionHttpd(net, "structure-a:443").start()
        try:
            client = client_for(srv)
            for _ in range(2):
                client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            assert len(srv.workers) == 2
            # fresh compartments per connection
            assert srv.workers[0].heap_segment is not \
                srv.workers[1].heap_segment
        finally:
            srv.stop()

    def test_mitm_two_phases_sequential(self):
        net = Network()
        srv = MitmPartitionHttpd(net, "structure-b:443").start()
        try:
            client_for(srv).connect(net, srv.addr).request(
                build_request("/"))
            time.sleep(0.1)
            assert len(srv.handshake_sthreads) == 1
            assert len(srv.handler_sthreads) == 1
            hs = srv.handshake_sthreads[0]
            handler = srv.handler_sthreads[0]
            # the handshake sthread exited before the handler started
            assert hs.status == "exited"
            assert handler.status == "exited"
        finally:
            srv.stop()

    def test_mitm_fresh_tags_recycled_per_connection(self):
        """Per-client tags return to the cache (paper §4.1)."""
        net = Network()
        srv = MitmPartitionHttpd(net, "structure-c:443").start()
        try:
            client = client_for(srv)
            client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            first_reused = srv.kernel.tags.stats["reused"]
            client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            assert srv.kernel.tags.stats["reused"] > first_reused
        finally:
            srv.stop()

    def test_recycled_gates_persist_across_connections(self):
        net = Network()
        srv = MitmPartitionHttpd(net, "structure-d:443",
                                 gate_mode="recycled").start()
        try:
            client = client_for(srv)
            client.connect(net, srv.addr).request(build_request("/"))
            client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            setup = srv.recycled_gates["setup"]
            assert setup.invocations >= 2
            assert setup.persistent is not None
        finally:
            srv.stop()

    def test_monolithic_uses_no_gates(self):
        net = Network()
        srv = MonolithicHttpd(net, "structure-e:443").start()
        try:
            client_for(srv).connect(net, srv.addr).request(
                build_request("/"))
            assert srv.kernel._gates == {}
        finally:
            srv.stop()


class TestDynamicContent:
    """The disposable-CGI satellite: per-request sthreads over
    per-request tags, with the cache-aside path on top."""

    def _get(self, srv, path, seed="cgi"):
        conn = client_for(srv, seed).connect(srv.network, srv.addr)
        return conn.request(build_request(path))

    def test_bodies_are_deterministic_in_both_modes(self):
        net = Network()
        disp = MonolithicHttpd(net, "cgi-disp:443").start()
        inl = MonolithicHttpd(net, "cgi-inl:443",
                              cgi_mode="inline").start()
        try:
            a = self._get(disp, "/cgi/report", "a")
            b = self._get(disp, "/cgi/report", "b")
            assert a.startswith(b"HTTP/1.0 200") and a == b
            assert a != self._get(disp, "/cgi/other", "c")
            # mode changes the isolation, never the bytes
            assert response_body(a) == response_body(
                self._get(inl, "/cgi/report", "d"))
        finally:
            disp.stop()
            inl.stop()

    def test_disposable_tags_are_freed_and_recycled(self):
        net = Network()
        srv = MonolithicHttpd(net, "cgi-tags:443").start()
        try:
            for i in range(3):
                self._get(srv, "/cgi/page", f"t{i}")
                time.sleep(0.05)
            stats = srv.kernel.tags.stats
            # every request's tag was deleted on the way out...
            assert srv._cgi_serial == 3
            assert stats["deleted"] >= 3
            # ...and returned to the reuse cache (paper §4.1): only the
            # first request paid the fresh mmap
            assert stats["reused"] >= 2
        finally:
            srv.stop()

    def test_faulted_handler_is_a_500_not_an_outage(self):
        net = Network()
        srv = MonolithicHttpd(net, "cgi-fault:443").start()
        try:
            # the handler body renders from a pure function, so only a
            # hostile path (the attack tests) or a fault plan can kill
            # it; here we fake the fault by deleting render's scratch
            # contract — a path long enough to overflow the region
            long = "/cgi/" + "x" * 60
            resp = self._get(srv, long, "f")
            assert resp.startswith(b"HTTP/1.0 200")   # still fits
            assert self._get(srv, "/cgi/after", "g").startswith(
                b"HTTP/1.0 200")
        finally:
            srv.stop()

    def test_cache_aside_hit_skips_the_handler(self):
        from repro.apps.kv import KvServer
        net = Network()
        kv = KvServer(net, "cgi-kv:9090", concurrent=True).start()
        srv = MonolithicHttpd(net, "cgi-cached:443",
                              cache_addr=kv.addr).start()
        try:
            first = self._get(srv, "/cgi/expensive", "h1")
            assert srv._cgi_serial == 1       # one handler spawned
            second = self._get(srv, "/cgi/expensive", "h2")
            assert second == first            # byte-identical from kv
            assert srv._cgi_serial == 1       # no second handler
            assert srv.cache.hits == 1 and srv.cache.misses == 1
        finally:
            srv.stop()
            kv.stop()

    def test_cache_outage_degrades_to_rendering(self):
        net = Network()
        srv = MonolithicHttpd(net, "cgi-orphan:443",
                              cache_addr="kv-nowhere:9090").start()
        srv.cache.timeout = 0.5
        try:
            resp = self._get(srv, "/cgi/solo", "i")
            assert resp.startswith(b"HTTP/1.0 200")
            assert srv.cache.misses == 1      # outage counted as a miss
            assert srv._cgi_serial == 1       # rendered locally
        finally:
            srv.stop()
