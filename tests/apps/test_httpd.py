"""Functional tests for the three Apache variants."""

import time

import pytest

from repro.apps.httpd import (MitmPartitionHttpd, MonolithicHttpd,
                              SimplePartitionHttpd)
from repro.apps.httpd.content import build_request, response_body
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient

VARIANTS = [
    (MonolithicHttpd, {}),
    (SimplePartitionHttpd, {}),
    (MitmPartitionHttpd, {}),
    (MitmPartitionHttpd, {"gate_mode": "recycled"}),
]

_ids = ["monolithic", "simple", "mitm-fresh", "mitm-recycled"]


@pytest.fixture(params=VARIANTS, ids=_ids)
def server(request):
    cls, kwargs = request.param
    net = Network()
    srv = cls(net, f"httpd-{request.node.name}:443", **kwargs).start()
    yield srv
    srv.stop()


def client_for(server, seed="client"):
    return TlsClient(DetRNG(seed),
                     expected_server_key=server.public_key)


class TestServing:
    def test_serves_page(self, server):
        conn = client_for(server).connect(server.network, server.addr)
        resp = conn.request(build_request("/index.html"))
        assert resp.startswith(b"HTTP/1.0 200")
        assert b"It works!" in response_body(resp)
        assert server.errors == []

    def test_404(self, server):
        conn = client_for(server).connect(server.network, server.addr)
        resp = conn.request(build_request("/missing"))
        assert resp.startswith(b"HTTP/1.0 404")

    def test_session_resumption(self, server):
        client = client_for(server)
        conn1 = client.connect(server.network, server.addr)
        conn1.request(build_request("/"))
        conn2 = client.connect(server.network, server.addr)
        resp = conn2.request(build_request("/about"))
        assert conn2.resumed
        assert b"Wedge" in response_body(resp)

    def test_sequential_clients(self, server):
        for i in range(3):
            conn = client_for(server, f"c{i}").connect(server.network,
                                                       server.addr)
            resp = conn.request(build_request("/"))
            assert resp.startswith(b"HTTP/1.0 200")
        assert server.requests_served >= 3


class TestPartitionStructure:
    def test_simple_worker_per_connection(self):
        net = Network()
        srv = SimplePartitionHttpd(net, "structure-a:443").start()
        try:
            client = client_for(srv)
            for _ in range(2):
                client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            assert len(srv.workers) == 2
            # fresh compartments per connection
            assert srv.workers[0].heap_segment is not \
                srv.workers[1].heap_segment
        finally:
            srv.stop()

    def test_mitm_two_phases_sequential(self):
        net = Network()
        srv = MitmPartitionHttpd(net, "structure-b:443").start()
        try:
            client_for(srv).connect(net, srv.addr).request(
                build_request("/"))
            time.sleep(0.1)
            assert len(srv.handshake_sthreads) == 1
            assert len(srv.handler_sthreads) == 1
            hs = srv.handshake_sthreads[0]
            handler = srv.handler_sthreads[0]
            # the handshake sthread exited before the handler started
            assert hs.status == "exited"
            assert handler.status == "exited"
        finally:
            srv.stop()

    def test_mitm_fresh_tags_recycled_per_connection(self):
        """Per-client tags return to the cache (paper §4.1)."""
        net = Network()
        srv = MitmPartitionHttpd(net, "structure-c:443").start()
        try:
            client = client_for(srv)
            client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            first_reused = srv.kernel.tags.stats["reused"]
            client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            assert srv.kernel.tags.stats["reused"] > first_reused
        finally:
            srv.stop()

    def test_recycled_gates_persist_across_connections(self):
        net = Network()
        srv = MitmPartitionHttpd(net, "structure-d:443",
                                 gate_mode="recycled").start()
        try:
            client = client_for(srv)
            client.connect(net, srv.addr).request(build_request("/"))
            client.connect(net, srv.addr).request(build_request("/"))
            time.sleep(0.1)
            setup = srv.recycled_gates["setup"]
            assert setup.invocations >= 2
            assert setup.persistent is not None
        finally:
            srv.stop()

    def test_monolithic_uses_no_gates(self):
        net = Network()
        srv = MonolithicHttpd(net, "structure-e:443").start()
        try:
            client_for(srv).connect(net, srv.addr).request(
                build_request("/"))
            assert srv.kernel._gates == {}
        finally:
            srv.stop()
