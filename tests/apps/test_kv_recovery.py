"""WAL + snapshot recovery for the kv tier (the durability tentpole).

The end-to-end durability chain: a durable server logs every mutation
before replying, group-commits fsync barriers, checkpoints the packed
store, and a fresh incarnation mounting the same platter replays the
log back to a consistent prefix — after clean shutdowns, plain kills,
and seeded power losses at arbitrary syscall indices.
"""

import pytest

from repro.apps.kv import KvClient, KvServer
from repro.apps.kv.recovery import (build_script, run_recovery,
                                    _sweep_once)
from repro.apps.kv.server import WRITE_THROUGH
from repro.apps.kv.wal import WalLayout
from repro.core.errors import KernelDead, WedgeError
from repro.core.kernel import Kernel
from repro.net import Network


def _client(network, addr, name="rc"):
    kernel = Kernel(net=network, name=name)
    kernel.start_main()
    return KvClient(kernel, addr)


def _durable(network, addr, disk=None, **kw):
    kw.setdefault("policy", WRITE_THROUGH)
    return KvServer(network, addr, durable=True, disk=disk, **kw).start()


class TestDurableServer:
    def test_boot_formats_and_checkpoints_the_preload(self, network):
        srv = _durable(network, "kv-d:9090",
                       preload={b"alpha": b"AAA"})
        try:
            assert srv.last_recovery == {"ok": True, "fresh": True,
                                         "replayed": 0,
                                         "checkpoints": 1}
            assert srv.recovery_cycles > 0
            assert srv.wal.stats()["mount"] == 1
        finally:
            srv.stop()

    def test_non_durable_server_has_no_wal(self, network):
        srv = KvServer(network, "kv-nd:9090").start()
        try:
            assert srv.wal is None
            assert srv.disk is None
            assert srv.last_recovery is None
        finally:
            srv.stop()

    def test_undersized_disk_is_refused(self, network):
        from repro.disk import SimDisk
        with pytest.raises(WedgeError):
            KvServer(network, "kv-sm:9090", durable=True,
                     disk=SimDisk(256))

    def test_synced_writes_survive_a_power_loss(self, network):
        srv = _durable(network, "kv-pl:9090", group_commit=1)
        disk = srv.disk
        c = _client(network, srv.addr)
        c.execute([b"SET a 0 " + b"AAA".hex().encode(),
                   b"SET b 0 " + b"BBB".hex().encode()])
        srv.stop()
        srv.kernel.kill(power_loss=True, seed=3)
        back = _durable(network, "kv-pl2:9090", disk=disk)
        try:
            assert back.last_recovery["fresh"] is False
            assert back.last_recovery["replayed"] == 2
            c2 = _client(network, back.addr, "rc2")
            assert c2.execute([b"GET a", b"GET b"]) == [
                b"VALUE " + b"AAA".hex().encode(),
                b"VALUE " + b"BBB".hex().encode()]
        finally:
            back.stop()

    def test_unsynced_tail_may_be_lost_but_never_garbled(self, network):
        srv = _durable(network, "kv-gc:9090", group_commit=64,
                       checkpoint_every=0)
        disk = srv.disk
        c = _client(network, srv.addr)
        script = [b"SET k%02d 0 %s" % (i, (b"%03d" % i).hex().encode())
                  for i in range(8)]
        c.execute(script)
        assert srv.wal.synced == 0       # no barrier crossed yet
        assert srv.wal.appended == 8
        srv.stop()
        srv.kernel.kill(power_loss=True, seed=9)
        back = _durable(network, "kv-gc2:9090", disk=disk)
        try:
            replayed = back.last_recovery["replayed"]
            assert 0 <= replayed <= 8
            c2 = _client(network, back.addr, "rc2")
            hits = [r for r in c2.execute(
                [b"GET k%02d" % i for i in range(8)])
                if r.startswith(b"VALUE")]
            # a clean prefix: exactly the replayed records are visible
            assert len(hits) == replayed
        finally:
            back.stop()

    def test_checkpoint_truncates_the_log(self, network):
        srv = _durable(network, "kv-ck:9090", group_commit=1,
                       checkpoint_every=4)
        disk = srv.disk
        c = _client(network, srv.addr)
        c.execute([b"SET k%d 0 61" % i for i in range(8)])
        stats = srv.wal.stats()
        assert stats["checkpoints"] == 3     # virgin adopt + at 4, 8
        srv.stop()
        srv.kernel.kill()
        back = _durable(network, "kv-ck2:9090", disk=disk)
        try:
            # everything was checkpointed: nothing left to replay
            assert back.last_recovery["replayed"] == 0
            c2 = _client(network, back.addr, "rc2")
            assert c2.execute([b"GET k7"]) == [b"VALUE 61"]
        finally:
            back.stop()

    def test_mount_count_bumps_on_every_recovery(self, network):
        srv = _durable(network, "kv-mt:9090")
        disk = srv.disk
        srv.stop()
        srv.kernel.kill()
        for expected_mount in (2, 3):
            back = _durable(network, "kv-mt2:9090", disk=disk)
            assert back.wal.stats()["mount"] == expected_mount
            back.stop()
            back.kernel.kill()


class TestRecoveryCampaign:
    def test_build_script_is_deterministic_and_all_mutations(self):
        lines, refs = build_script(7, ops=20)
        again, refs2 = build_script(7, ops=20)
        assert lines == again and refs == refs2
        assert len(lines) == 20 and len(refs) == 21
        assert all(l.split()[0] in (b"SET", b"CAS", b"DEL")
                   for l in lines)

    def test_sweep_iteration_holds_at_a_few_indices(self):
        lines, refs = build_script(1, ops=8)
        for k in (1, 5, 25, 80):
            assert _sweep_once(1, k, lines, refs, batch=4) is None

    def test_small_campaign_passes(self):
        report = run_recovery(seed=2, ops=6, stride=13)
        assert report.passed, report.violations
        assert report.kills >= 2
        assert report.metrics["recovery_ckpt_cycles"] > 0
        assert report.metrics["recovery_nockpt_cycles"] > 0
        art = report.artifact()
        assert art["artifact"] == "recovery"
        assert art["info"]["passed"] is True


class TestClusterRewarm:
    def test_kill_kv_revive_kv_replays_the_wal(self, network):
        from repro.cluster.cluster import Cluster
        cluster = Cluster(network, kernels=1, replicas=1, cache=True,
                          kv_durable=True).start()
        try:
            c = _client(network, cluster.kv_addr)
            c.execute([b"SET page 0 " + b"BODY".hex().encode()])
            cluster.kv.wal.sync()
            cluster.kill_kv(power_loss=True, seed=11)
            assert not cluster.kv.kernel.alive
            recovery = cluster.revive_kv()
            assert recovery["replayed"] == 1
            c2 = _client(network, cluster.kv_addr, "rc2")
            assert c2.execute([b"GET page"]) == [
                b"VALUE " + b"BODY".hex().encode()]
        finally:
            cluster.stop()

    def test_non_durable_tier_comes_back_cold(self, network):
        from repro.cluster.cluster import Cluster
        cluster = Cluster(network, kernels=1, replicas=1,
                          cache=True).start()
        try:
            c = _client(network, cluster.kv_addr)
            c.execute([b"SET page 0 61"])
            cluster.kill_kv()
            assert cluster.revive_kv() is None
            c2 = _client(network, cluster.kv_addr, "rc2")
            assert c2.execute([b"GET page"]) == [b"MISS"]
        finally:
            cluster.stop()
