"""Functional tests for the kv/cache tier (tentpole of the kv PR).

Protocol parsing, the three cache policies, deterministic TTLs on the
cost-model clock, eviction at capacity in both recency modes, wire
parity between the partitioned server and the monolithic contrast, and
the concurrent mode the httpd cache-aside clients require.
"""

import pytest

from repro.apps.kv import (KvClient, KvServer, MonolithicKv, client,
                           server, store)
from repro.apps.kv.server import (CACHE_ASIDE, WRITE_BEHIND,
                                  WRITE_THROUGH, format_reply,
                                  parse_command)
from repro.core.errors import ConnectionShed, WedgeError
from repro.core.kernel import Kernel
from repro.net import Network

NEVER = 10 ** 12     # a TTL (in model cycles) no test session outlives


@pytest.fixture
def kv(request, network):
    """A KvServer parameterized indirectly via ``request.param``."""
    kwargs = getattr(request, "param", {})
    srv = KvServer(network, f"kv-{request.node.name}:9090",
                   **kwargs).start()
    yield srv
    srv.stop()


def client_for(srv, name="kv-test-client"):
    kernel = Kernel(net=srv.network, name=name)
    kernel.start_main()
    return KvClient(kernel, srv.addr)


# -- wire protocol -----------------------------------------------------------

class TestProtocol:
    @pytest.mark.parametrize("line,expected", [
        (b"GET alpha", {"op": "get", "key": b"alpha"}),
        (b"get alpha", {"op": "get", "key": b"alpha"}),
        (b"DEL alpha", {"op": "delete", "key": b"alpha"}),
        (b"SET k 0 6869", {"op": "set", "key": b"k", "ttl": 0,
                           "value": b"hi"}),
        (b"CAS k 7 61 62", {"op": "cas", "key": b"k", "ttl": 7,
                            "old": b"a", "value": b"b"}),
        (b"STAT", {"op": "stat"}),
        (b"FLUSH", {"op": "flush"}),
    ])
    def test_valid_commands(self, line, expected):
        op, err = parse_command(line)
        assert err is None
        assert op == expected

    @pytest.mark.parametrize("line", [
        b"", b"NOPE", b"GET", b"GET a b", b"SET k 0",
        b"SET k -1 6869",                    # negative ttl
        b"SET k x 6869",                     # non-numeric ttl
        b"SET k 0 686",                      # odd-length hex
        b"SET k 0 zz",                       # not hex
        b"SET " + b"k" * (store.MAX_KEY + 1) + b" 0 6869",
        b"SET k 0 " + b"61" * (store.MAX_VALUE + 1),
        b"CAS k 0 61",                       # missing new value
    ])
    def test_rejected_commands(self, line):
        op, err = parse_command(line)
        assert op is None
        assert isinstance(err, bytes) and err

    def test_format_reply_covers_every_op(self):
        assert format_reply("get", {"ok": True, "value": None}) == b"MISS"
        assert format_reply("get", {"ok": True, "value": b"hi"}) \
            == b"VALUE 6869"
        assert format_reply("set", {"ok": True}) == b"STORED"
        assert format_reply("set", {"ok": False, "shed": True}) == b"SHED"
        assert format_reply("delete", {"ok": True, "existed": True}) \
            == b"DELETED"
        assert format_reply("delete", {"ok": True, "existed": False}) \
            == b"NOTFOUND"
        assert format_reply("cas", {"ok": True, "swapped": True}) \
            == b"CASOK"
        assert format_reply("cas", {"ok": True, "swapped": False}) \
            == b"CASMISS"
        assert format_reply("flush", {"ok": True, "flushed": 3}) \
            == b"FLUSHED 3"

    def test_unknown_policy_refused(self, network):
        with pytest.raises(WedgeError):
            KvServer(network, "kv-bad:9090", policy="write-around")
        with pytest.raises(WedgeError):
            MonolithicKv(network, "kv-bad:9090", policy="write-around")


# -- basic operations over the wire ------------------------------------------

class TestBasicOps:
    def test_set_get_delete_roundtrip(self, kv):
        c = client_for(kv)
        assert c.get("alpha") is None
        assert c.set("alpha", b"payload-A")
        assert c.get("alpha") == b"payload-A"
        assert c.delete("alpha")
        assert c.get("alpha") is None
        assert not c.delete("alpha")     # already gone -> NOTFOUND

    def test_pipelined_batch_preserves_order(self, kv):
        c = client_for(kv)
        replies = c.execute([
            b"SET a 0 " + b"A1".hex().encode(),
            b"SET b 0 " + b"B2".hex().encode(),
            b"GET a", b"GET b", b"GET missing", b"BOGUS",
        ])
        assert replies == [b"STORED", b"STORED",
                           b"VALUE " + b"A1".hex().encode(),
                           b"VALUE " + b"B2".hex().encode(),
                           b"MISS", b"ERR unknown command"]

    def test_cas_swaps_only_on_match(self, kv):
        c = client_for(kv)
        assert not c.cas("k", b"old", b"new")    # absent -> CASMISS
        c.set("k", b"v1")
        assert not c.cas("k", b"wrong", b"v2")
        assert c.get("k") == b"v1"
        assert c.cas("k", b"v1", b"v2")
        assert c.get("k") == b"v2"

    def test_stat_reports_hits_and_misses(self, kv):
        c = client_for(kv)
        c.set("k", b"v")
        c.get("k")
        c.get("nope")
        stats = c.stat()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["sets"] == 1
        assert stats["entries"] == 1

    def test_preload_is_served_and_hits_leave_store_untouched(
            self, network):
        kv = KvServer(network, "kv-preload:9090",
                      preload={b"alpha": b"AAA"}).start()
        try:
            before = kv.store_bytes()
            c = client_for(kv)
            assert c.get("alpha") == b"AAA"
            assert c.get("alpha") == b"AAA"
            # a pure cache hit is not dirty: the region bytes are
            # untouched, which is what the chaos campaign's
            # byte-identity check rides on
            assert kv.store_bytes() == before
        finally:
            kv.stop()


# -- the three cache policies ------------------------------------------------

class TestPolicies:
    def test_cache_aside_never_reads_through(self, kv):
        """Default policy: the backing rows exist only via preload; a
        delete then miss stays a miss."""
        c = client_for(kv)
        c.set("k", b"v")
        c.delete("k")
        assert c.get("k") is None
        assert c.stat()["fills"] == 0

    @pytest.mark.parametrize("kv", [
        {"policy": WRITE_THROUGH, "capacity": 2}], indirect=True)
    def test_write_through_backs_every_write_and_fills_on_miss(self, kv):
        c = client_for(kv)
        c.set("a", b"AAA")
        c.set("b", b"BBB")
        c.set("c", b"CCC")               # evicts a from the cache...
        state = store.unpack_store(kv.store_bytes())
        assert (b"a", b"AAA") in state["backing"]
        assert b"a" not in [k for k, _, _ in state["cache"]]
        # ...but the backing row read-through-fills it on the next miss
        assert c.get("a") == b"AAA"
        assert c.stat()["fills"] == 1

    @pytest.mark.parametrize("kv", [
        {"policy": WRITE_THROUGH}], indirect=True)
    def test_write_through_delete_removes_the_backing_row(self, kv):
        c = client_for(kv)
        c.set("k", b"v")
        assert c.delete("k")
        assert c.get("k") is None        # no row left to fill from
        state = store.unpack_store(kv.store_bytes())
        assert state["backing"] == []

    @pytest.mark.parametrize("kv", [
        {"policy": WRITE_BEHIND, "queue_bound": 2}], indirect=True)
    def test_write_behind_sheds_at_the_bound_and_flushes(self, kv):
        c = client_for(kv)
        assert c.set("a", b"AAA")
        assert c.set("b", b"BBB")
        # the queue is at its bound: the third write degrades *typed*
        with pytest.raises(ConnectionShed):
            c.set("c", b"CCC")
        assert c.stat()["shed"] == 1
        # nothing reached the backing rows yet
        state = store.unpack_store(kv.store_bytes())
        assert state["backing"] == []
        assert len(state["queue"]) == 2
        # the flush drains the queue into the backing rows...
        assert c.flush() == 2
        state = store.unpack_store(kv.store_bytes())
        assert sorted(state["backing"]) == [(b"a", b"AAA"),
                                            (b"b", b"BBB")]
        assert state["queue"] == []
        # ...and writes are accepted again
        assert c.set("c", b"CCC")

    @pytest.mark.parametrize("kv", [
        {"policy": WRITE_BEHIND, "queue_bound": 4}], indirect=True)
    def test_write_behind_queues_deletes_too(self, kv):
        c = client_for(kv)
        c.set("k", b"v")
        c.flush()
        assert c.delete("k")
        state = store.unpack_store(kv.store_bytes())
        assert (store.Q_DEL, b"k", b"") in state["queue"]
        assert (b"k", b"v") in state["backing"]     # not yet applied
        c.flush()
        state = store.unpack_store(kv.store_bytes())
        assert state["backing"] == []


# -- deterministic TTLs ------------------------------------------------------

class TestTtl:
    def test_short_ttl_expires_on_the_cycle_clock(self, kv):
        c = client_for(kv)
        # expires one model cycle after the SET lands: any later GET is
        # past the deadline (syscalls advance the clock)
        c.set("k", b"v", ttl=1)
        assert c.get("k") is None
        assert c.stat()["entries"] == 0      # the expired entry is gone

    def test_long_ttl_survives(self, kv):
        c = client_for(kv)
        c.set("k", b"v", ttl=NEVER)
        assert c.get("k") == b"v"

    def test_zero_ttl_never_expires(self, kv):
        c = client_for(kv)
        c.set("k", b"v", ttl=0)
        state = store.unpack_store(kv.store_bytes())
        assert state["cache"] == [(b"k", b"v", 0)]

    def test_cache_client_ttl_jitter_is_a_pure_function(self, network):
        k = Kernel(net=network, name="jitter")
        k.start_main()
        a = client.KvCacheClient(k, "kv:9090", seed=7)
        b = client.KvCacheClient(k, "kv:9090", seed=7)
        other = client.KvCacheClient(k, "kv:9090", seed=8)
        ttls = {a.ttl_for(f"/cgi/p{i}") for i in range(16)}
        assert {t - a.ttl_base for t in ttls} != {0}     # jitter engaged
        assert all(a.ttl_for(f"/cgi/p{i}") == b.ttl_for(f"/cgi/p{i}")
                   for i in range(16))
        assert any(a.ttl_for(f"/cgi/p{i}") != other.ttl_for(f"/cgi/p{i}")
                   for i in range(16))


# -- eviction at capacity ----------------------------------------------------

class TestEviction:
    @pytest.mark.parametrize("kv", [{"capacity": 2}], indirect=True)
    def test_lru_evicts_the_coldest(self, kv):
        c = client_for(kv)
        c.set("a", b"AAA")
        c.set("b", b"BBB")
        c.get("a")                       # touch: b is now the coldest
        c.set("c", b"CCC")
        assert c.get("b") is None
        assert c.get("a") == b"AAA"
        assert c.get("c") == b"CCC"
        assert c.stat()["evictions"] == 1

    @pytest.mark.parametrize("kv", [
        {"capacity": 2, "mode": store.MODE_CLOCK}], indirect=True)
    def test_clock_sweeps_reference_bits(self, kv):
        c = client_for(kv)
        c.set("a", b"AAA")
        c.set("b", b"BBB")
        # both admitted referenced: the hand clears a then b, wraps,
        # and takes a — the first entry it finds cold
        c.set("c", b"CCC")
        assert c.get("a") is None
        assert c.get("b") == b"BBB"
        assert c.stat()["evictions"] == 1

    @pytest.mark.parametrize("kv", [{"capacity": 3}], indirect=True)
    def test_capacity_is_never_exceeded(self, kv):
        c = client_for(kv)
        for i in range(10):
            c.set(f"k{i}", b"%03d" % i)
        stats = c.stat()
        assert stats["entries"] == 3
        assert stats["evictions"] == 7


# -- wire parity with the monolithic contrast --------------------------------

PARITY_BATCH = [
    b"SET a 0 " + b"AAA".hex().encode(),
    b"SET b 0 " + b"BBB".hex().encode(),
    b"GET a", b"GET missing",
    b"CAS a 0 " + b"AAA".hex().encode() + b" " + b"A2".hex().encode(),
    b"DEL b", b"DEL b", b"STAT", b"BOGUS", b"GET a",
]


class TestMonolithicParity:
    @pytest.mark.parametrize("policy", server.POLICIES)
    def test_same_batch_same_replies(self, network, policy):
        part = KvServer(network, "kv-par:9090", policy=policy).start()
        mono = MonolithicKv(network, "kv-mono:9090",
                            policy=policy).start()
        try:
            a = client_for(part, "par-client").execute(PARITY_BATCH)
            b = client_for(mono, "mono-client").execute(PARITY_BATCH)
            assert a == b
            # and the logical store state converged too (ttl=0
            # everywhere, so the cycle-clock difference is invisible)
            sp = store.unpack_store(part.store_bytes())
            sm = store.unpack_store(mono.store_bytes())
            assert sp == sm
        finally:
            part.stop()
            mono.stop()


# -- concurrent mode and the cache-aside adapter -----------------------------

class TestConcurrentCacheClients:
    @pytest.mark.parametrize("kv", [{"concurrent": True}], indirect=True)
    def test_two_persistent_clients_share_the_cache(self, kv):
        k1 = Kernel(net=kv.network, name="cc1")
        k1.start_main()
        k2 = Kernel(net=kv.network, name="cc2")
        k2.start_main()
        c1 = client.KvCacheClient(k1, kv.addr, seed=1)
        c2 = client.KvCacheClient(k2, kv.addr, seed=2)
        try:
            assert c1.lookup("/cgi/report") is None
            c1.store("/cgi/report", b"rendered-once")
            # the fill is visible over the *other* replica's connection
            assert c2.lookup("/cgi/report") == b"rendered-once"
            assert c1.misses == 1 and c1.hits == 0
            assert c2.hits == 1
            assert kv.connections_served == 2
        finally:
            c1.close()
            c2.close()

    def test_cache_client_fails_open_when_kv_is_down(self, network):
        k = Kernel(net=network, name="orphan")
        k.start_main()
        c = client.KvCacheClient(k, "nobody:9090", timeout=0.5)
        assert c.lookup("/cgi/x") is None     # outage == miss
        c.store("/cgi/x", b"body")            # dropped, not raised
        assert c.misses == 1
        assert c.store_errors == 1

    def test_cache_client_fails_open_when_kv_dies_mid_response(
            self, network):
        """The hard fail-open case: the kv kernel powers off *between*
        receiving a GET and finishing the reply.  The cache client must
        surface an ordinary miss — no hang, no raw PeerReset — and its
        retry-once reconnect (which lands on a dead listener) must stay
        inside the same miss."""
        from repro.core.errors import KernelDead

        armed = [False]

        def tap(kernel, name):
            if armed[0] and name == "send":
                kernel.syscall_tap = None
                kernel.kill()
                raise KernelDead("kv died mid-response",
                                 kernel=kernel.name)

        kv = KvServer(network, "kv-mid:9090", concurrent=True,
                      tap=tap).start()
        k = Kernel(net=network, name="mid-client")
        k.start_main()
        c = client.KvCacheClient(k, kv.addr, timeout=2.0)
        try:
            c.store("/cgi/r", b"cached-body")
            assert c.lookup("/cgi/r") == b"cached-body"
            armed[0] = True                  # next reply send: power off
            assert c.lookup("/cgi/r") is None
            assert c.misses == 1             # the outage, counted a miss
            # a replacement kv at the same address is picked up by the
            # lazy reconnect — no client-side state to reset
            fresh = KvServer(network, kv.addr, concurrent=True).start()
            try:
                assert c.lookup("/cgi/r") is None    # cold cache: miss
                c.store("/cgi/r", b"refilled")
                assert c.lookup("/cgi/r") == b"refilled"
            finally:
                fresh.stop()
        finally:
            c.close()
            k.kill()
            if kv.kernel.alive:
                kv.stop()
