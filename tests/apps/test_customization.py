"""Servers with customised environments (the public API's knobs)."""

import pytest

from repro.apps.httpd import MonolithicHttpd, SimplePartitionHttpd
from repro.apps.httpd.content import build_request, response_body
from repro.apps.pop3 import PartitionedPop3, Pop3Client
from repro.apps.sshd import SshdEnvironment, WedgeSshd
from repro.crypto import DetRNG
from repro.crypto.rng import DetRNG as RNG
from repro.net import Network
from repro.sshlib import SshClient
from repro.tls import TlsClient


class TestHttpdCustomization:
    def test_custom_pages(self):
        net = Network()
        pages = {"/hello": b"<html>custom content here</html>"}
        server = SimplePartitionHttpd(net, "custom:443",
                                      pages=pages).start()
        try:
            client = TlsClient(DetRNG("c"),
                               expected_server_key=server.public_key)
            conn = client.connect(net, "custom:443")
            body = response_body(conn.request(build_request("/hello")))
            assert body == pages["/hello"]
            # and the defaults are gone
            conn2 = client.connect(net, "custom:443")
            assert b"404" in conn2.request(build_request("/index.html"))
        finally:
            server.stop()

    def test_distinct_seeds_distinct_keys(self):
        net = Network()
        a = MonolithicHttpd(net, "seed-a:443", seed="one")
        b = MonolithicHttpd(net, "seed-b:443", seed="two")
        assert a.private_key.n != b.private_key.n

    def test_same_seed_reproducible_key(self):
        net = Network()
        a = MonolithicHttpd(net, "seed-c:443", seed="same")
        b = MonolithicHttpd(Network(), "seed-d:443", seed="same")
        assert a.private_key.n == b.private_key.n


class TestSshdCustomization:
    def test_custom_users(self):
        rng = RNG("env")
        env = SshdEnvironment(rng, users={
            "carol": {"password": b"xyzzy", "uid": 2000,
                      "skey": False, "pubkey": False},
        })
        net = Network()
        server = WedgeSshd(net, "custom-ssh:22", env=env).start()
        try:
            client = SshClient(DetRNG("c"),
                               expected_host_key=env.host_key.public())
            conn = client.connect(net, "custom-ssh:22")
            conn.auth_password("carol", b"xyzzy")
            assert b"uid=2000" in conn.exec("whoami")
            conn.close()
            # the default users do not exist here
            conn2 = client.connect(net, "custom-ssh:22")
            from repro.core.errors import AuthenticationFailure
            with pytest.raises(AuthenticationFailure):
                conn2.auth_password("alice", b"wonderland")
        finally:
            server.stop()

    def test_config_toggles_password_auth(self):
        rng = RNG("env2")
        env = SshdEnvironment(
            rng, config=(b"protocol ssh-sim-1.0\n"
                         b"password_authentication no\n"))
        net = Network()
        server = WedgeSshd(net, "nopass-ssh:22", env=env).start()
        try:
            client = SshClient(DetRNG("c"),
                               expected_host_key=env.host_key.public())
            conn = client.connect(net, "nopass-ssh:22")
            from repro.core.errors import AuthenticationFailure
            with pytest.raises(AuthenticationFailure):
                conn.auth_password("alice", b"wonderland")
            conn.close()
            # pubkey auth still works (its gate checks a different knob)
            conn2 = client.connect(net, "nopass-ssh:22")
            conn2.auth_pubkey("alice", env.user_keys["alice"])
            conn2.close()
        finally:
            server.stop()


class TestPop3Customization:
    def test_custom_accounts_and_mail(self):
        net = Network()
        server = PartitionedPop3(
            net, "custom-pop:110",
            accounts={"dave": (3000, b"letmein")},
            mail={3000: [b"Subject: only one\n\nbody"]}).start()
        try:
            client = Pop3Client(net, "custom-pop:110")
            assert client.login("dave", b"letmein")
            assert len(client.list_messages()) == 1
            assert b"only one" in client.retrieve(1)
            client.quit()
        finally:
            server.stop()
