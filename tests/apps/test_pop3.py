"""Functional tests for the POP3 motivating example (paper §2)."""

import pytest

from repro.apps.pop3 import MonolithicPop3, PartitionedPop3, Pop3Client
from repro.core.errors import ProtocolError
from repro.net import Network


@pytest.fixture(params=[MonolithicPop3, PartitionedPop3],
                ids=["monolithic", "partitioned"])
def server(request):
    net = Network()
    srv = request.param(net, f"pop3-{request.node.name}:110").start()
    yield srv
    srv.stop()


class TestProtocol:
    def test_login_list_retr(self, server):
        client = Pop3Client(server.network, server.addr)
        assert client.login("alice", b"wonderland")
        sizes = client.list_messages()
        assert len(sizes) == 2
        message = client.retrieve(1)
        assert b"queen@hearts" in message
        client.quit()

    def test_wrong_password(self, server):
        client = Pop3Client(server.network, server.addr)
        assert not client.login("alice", b"wrong")
        client.quit()

    def test_unknown_user(self, server):
        client = Pop3Client(server.network, server.addr)
        assert not client.login("mallory", b"x")
        client.quit()

    def test_list_before_login_fails(self, server):
        client = Pop3Client(server.network, server.addr)
        with pytest.raises(ProtocolError):
            client.list_messages()
        client.quit()

    def test_retr_before_login_fails(self, server):
        client = Pop3Client(server.network, server.addr)
        with pytest.raises(ProtocolError):
            client.retrieve(1)
        client.quit()

    def test_users_see_only_their_mail(self, server):
        client = Pop3Client(server.network, server.addr)
        assert client.login("bob", b"builder")
        sizes = client.list_messages()
        assert len(sizes) == 1
        assert b"wendy@site" in client.retrieve(1)
        client.quit()

    def test_retr_out_of_range(self, server):
        client = Pop3Client(server.network, server.addr)
        client.login("alice", b"wonderland")
        with pytest.raises(ProtocolError):
            client.retrieve(99)
        client.quit()

    def test_pass_without_user(self, server):
        client = Pop3Client(server.network, server.addr)
        reply = client.raw_command(b"PASS oops")
        assert reply.startswith(b"-ERR")
        client.quit()

    def test_unknown_command(self, server):
        client = Pop3Client(server.network, server.addr)
        reply = client.raw_command(b"FROBNICATE")
        assert reply.startswith(b"-ERR")
        client.quit()

    def test_sequential_sessions(self, server):
        for user, password, count in (("alice", b"wonderland", 2),
                                      ("bob", b"builder", 1)):
            client = Pop3Client(server.network, server.addr)
            assert client.login(user, password)
            assert len(client.list_messages()) == count
            client.quit()


class TestPartitionedStructure:
    def test_gates_exist_per_connection(self):
        net = Network()
        srv = PartitionedPop3(net, "pop3-struct:110").start()
        try:
            client = Pop3Client(net, srv.addr)
            client.login("alice", b"wonderland")
            client.quit()
            import time
            time.sleep(0.1)
            handler = srv.handlers[0]
            assert len(handler.gates) == 2
            assert handler.uid == 0  # POP3 example keeps uid; memory is
            # the isolation boundary here (Figure 1)
        finally:
            srv.stop()
