"""Functional tests for the three sshd variants."""

import time

import pytest

from repro.apps.sshd import MonolithicSshd, PrivsepSshd, WedgeSshd
from repro.core.errors import AuthenticationFailure, VfsError
from repro.crypto import DetRNG
from repro.net import Network
from repro.sshlib import SshClient

VARIANTS = [MonolithicSshd, PrivsepSshd, WedgeSshd]


@pytest.fixture(params=VARIANTS,
                ids=["monolithic", "privsep", "wedge"])
def server(request):
    net = Network()
    srv = request.param(net, f"sshd-{request.node.name}:22").start()
    yield srv
    srv.stop()


def connect(server, seed="cli"):
    client = SshClient(DetRNG(seed),
                       expected_host_key=server.env.host_key.public())
    return client.connect(server.network, server.addr)


class TestAuthentication:
    def test_password_login(self, server):
        conn = connect(server)
        conn.auth_password("alice", b"wonderland")
        assert b"uid=1000" in conn.exec("whoami")
        conn.close()

    def test_wrong_password_rejected(self, server):
        conn = connect(server)
        with pytest.raises(AuthenticationFailure):
            conn.auth_password("alice", b"wrong")
        conn.close()

    def test_unknown_user_rejected(self, server):
        conn = connect(server)
        with pytest.raises(AuthenticationFailure):
            conn.auth_password("mallory", b"whatever")
        conn.close()

    def test_pubkey_login(self, server):
        conn = connect(server)
        conn.auth_pubkey("alice", server.env.user_keys["alice"])
        assert b"alice" in conn.exec("whoami")
        conn.close()

    def test_pubkey_wrong_key_rejected(self, server):
        from repro.crypto import dsa
        stranger = dsa.generate_keypair(DetRNG("stranger"))
        conn = connect(server)
        with pytest.raises(AuthenticationFailure):
            conn.auth_pubkey("alice", stranger)
        conn.close()

    def test_pubkey_user_without_keys_rejected(self, server):
        conn = connect(server)
        with pytest.raises(AuthenticationFailure):
            conn.auth_pubkey("bob", server.env.user_keys["alice"])
        conn.close()

    def test_skey_login(self, server):
        conn = connect(server)
        conn.auth_skey("alice", b"wonderland")
        assert b"alice" in conn.exec("whoami")
        conn.close()

    def test_skey_wrong_password(self, server):
        conn = connect(server)
        with pytest.raises(AuthenticationFailure):
            conn.auth_skey("alice", b"wrong")
        conn.close()

    def test_retry_after_failure(self, server):
        conn = connect(server)
        with pytest.raises(AuthenticationFailure):
            conn.auth_password("alice", b"nope")
        conn.auth_password("alice", b"wonderland")
        assert b"alice" in conn.exec("whoami")
        conn.close()


class TestSession:
    def test_read_own_files_after_auth(self, server):
        conn = connect(server)
        conn.auth_password("alice", b"wonderland")
        assert b"private notes" in conn.exec(
            "cat /home/alice/secret.txt")
        conn.close()

    def test_cannot_read_other_users_files(self, server):
        from repro.core.errors import ProtocolError
        conn = connect(server)
        conn.auth_password("alice", b"wonderland")
        with pytest.raises(ProtocolError, match="denied"):
            conn.exec("cat /home/bob/secret.txt")
        conn.close()

    def test_cannot_read_shadow_after_auth(self, server):
        conn = connect(server)
        conn.auth_password("alice", b"wonderland")
        with pytest.raises(Exception):
            data = conn.scp_download("/etc/shadow")
            assert b"alice" not in data  # pragma: no cover

    def test_scp_roundtrip(self, server):
        conn = connect(server)
        conn.auth_password("alice", b"wonderland")
        payload = bytes(range(256)) * 64
        conn.scp_upload("/home/alice/blob.bin", payload)
        assert conn.scp_download("/home/alice/blob.bin") == payload
        conn.close()

    def test_echo_exec(self, server):
        conn = connect(server)
        conn.auth_password("alice", b"wonderland")
        assert conn.exec("echo hello world") == b"hello world"
        conn.close()


class TestUidTransition:
    def test_wedge_worker_jailed_before_auth(self):
        """Pre-auth the Wedge worker is uid 22 in an empty chroot."""
        net = Network()
        srv = WedgeSshd(net, "uid-test:22").start()
        try:
            conn = connect(srv)
            conn.auth_password("alice", b"wonderland")
            conn.exec("whoami")
            time.sleep(0.1)
            worker = srv.workers[0]
            # post-auth promotion happened via the callgate
            assert worker.uid == 1000
            assert worker.root == "/"
        finally:
            srv.stop()

    def test_wedge_failed_auth_leaves_worker_jailed(self):
        net = Network()
        srv = WedgeSshd(net, "uid-test2:22").start()
        try:
            conn = connect(srv)
            with pytest.raises(AuthenticationFailure):
                conn.auth_password("alice", b"bad")
            conn.close()
            time.sleep(0.2)
            worker = srv.workers[0]
            assert worker.uid == 22
            assert worker.root == "/var/empty"
        finally:
            srv.stop()

    def test_skey_exhausts_chain_entries(self):
        """Each S/Key login steps the server's chain downward."""
        net = Network()
        srv = WedgeSshd(net, "skey-test:22").start()
        try:
            c1 = connect(srv, "c1")
            c1.auth_skey("alice", b"wonderland")
            c1.close()
            c2 = connect(srv, "c2")
            challenge1 = c2.skey_challenge("alice")
            c2.close()
            # the count decreased relative to enrollment (100 -> 99 used)
            assert challenge1[0] < 99
        finally:
            srv.stop()
