"""Functional tests for the Wedge-partitioned load balancer."""

import time

import pytest

from repro.apps.httpd.content import build_request
from repro.apps.httpd.monolithic import MonolithicHttpd
from repro.apps.lb.server import MAX_PREAMBLE, LbServer, encode_preamble
from repro.cluster.health import HealthResponder
from repro.crypto import DetRNG
from repro.net import Network
from repro.resilience.breaker import BreakerPolicy
from repro.tls import TlsClient


def make_lb(backends=2):
    net = Network()
    managed = []
    entries = []
    servers = []
    for i in range(backends):
        server = MonolithicHttpd(net, f"be{i}:443", seed="httpd",
                                 instance=f"be{i}")
        responder = HealthResponder(net, f"be{i}:health",
                                    kernel=server.kernel)
        managed += [server, responder]
        servers.append(server)
        entries.append({"name": f"be{i}", "addr": f"be{i}:443",
                        "health": f"be{i}:health"})
    lb = LbServer(net, "lb:443", entries,
                  breaker_policy=BreakerPolicy(cooldown=0.0),
                  probe_timeout=1.0, managed=managed)
    lb.public_key = servers[0].public_key
    return lb, servers


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def key_routed_to(lb, index):
    """An 8-byte key whose ring primary is backend *index*."""
    for i in range(10000):
        key = f"k{i:07d}".encode()
        if lb.ring.route(key) == index:
            return key
    raise AssertionError(f"no key routes to backend {index}")


def session(lb, key, label="client"):
    client = TlsClient(DetRNG(label), expected_server_key=lb.public_key)
    sock = lb.network.connect(lb.addr)
    try:
        sock.send(encode_preamble(key))
        conn = client.handshake(sock, resume=False)
        return conn.request(build_request("/"))
    finally:
        sock.close()


@pytest.fixture
def lb():
    lb, _ = make_lb()
    lb.start()
    lb.health_sweep()
    try:
        yield lb
    finally:
        lb.stop()


class TestForwarding:
    def test_end_to_end_request(self, lb):
        response = session(lb, b"lb-key01")
        assert response
        # the splice bookkeeping completes after the client hangs up
        assert wait_for(lambda: lb.requests_forwarded == 1)

    def test_routing_is_deterministic(self, lb):
        key = key_routed_to(lb, 1)
        session(lb, key, label="a")
        session(lb, key, label="b")
        assert {d["primary"] for d in lb.audit
                if d["key"] == key} == {1}
        assert wait_for(lambda: lb.last_backend == 1)

    def test_tls_is_end_to_end(self, lb):
        """The balancer forwards ciphertext it cannot read: the client
        pins the *backend's* key and the handshake still verifies."""
        assert session(lb, b"lb-key02")


class TestHealth:
    def test_report_ejects_then_sweep_readmits(self, lb):
        index = 0
        assert lb.report_backend_failure(index)["ejected"]
        assert lb.health_bytes()[index] == 0
        # routing now excludes the ejected replica
        key = key_routed_to(lb, index)
        assert session(lb, key)
        assert lb.audit[-1]["order"] and \
            index not in lb.audit[-1]["order"]
        # the replica is actually fine: the half-open probe re-admits
        sweep = lb.health_sweep()
        assert f"be{index}" in sweep["recovered"]
        assert lb.health_bytes()[index] == 1

    def test_dead_backend_fails_over_to_next(self, lb):
        key = key_routed_to(lb, 0)
        baseline = session(lb, key, label="pre")
        victim = lb.managed[0]          # backend 0's httpd
        victim.kernel.kill()
        victim.stop()
        assert "be0" in lb.health_sweep()["ejected"]
        response = session(lb, key, label="post")
        assert response == baseline
        assert wait_for(lambda: lb.last_backend == 1)


class TestPreamble:
    def test_oversized_preamble_dropped(self, lb):
        sock = lb.network.connect(lb.addr)
        try:
            sock.send((MAX_PREAMBLE + 1).to_bytes(2, "big") + b"x")
            # the listener drops the connection without reading further
            assert sock.recv(1, timeout=10.0) is None
        finally:
            sock.close()
        assert lb.requests_forwarded == 0

    def test_short_key_padded_not_crashed(self, lb):
        assert session(lb, b"abc")
