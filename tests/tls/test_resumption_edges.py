"""Session-resumption corner cases."""

import threading

import pytest

from repro.crypto import DetRNG, rsa
from repro.net import Network
from repro.tls import SessionCache, StreamTransport, TlsClient
from repro.tls.records import RT_APPDATA
from repro.tls.server_core import ServerHandshake


@pytest.fixture(scope="module")
def server_key():
    return rsa.generate_keypair(DetRNG("resume-edges"))


def serve(net, addr, key, cache, count):
    listener = net.listen(addr)
    outcomes = []

    def run():
        for i in range(count):
            try:
                sock = listener.accept(timeout=10)
                hs = ServerHandshake(StreamTransport(sock, 5), key,
                                     DetRNG(f"s{i}"),
                                     session_cache=cache)
                channel = hs.run()
                channel.recv_record()
                channel.send_record(RT_APPDATA, b"ok")
                outcomes.append(hs.resumed)
            except Exception as exc:   # noqa: BLE001
                outcomes.append(exc)

    threading.Thread(target=run, daemon=True).start()
    return outcomes


class TestResumptionEdges:
    def test_offering_evicted_session_falls_back_to_full(self,
                                                         server_key):
        net = Network()
        cache = SessionCache(capacity=1)
        outcomes = serve(net, "re:1", server_key, cache, 3)
        client = TlsClient(DetRNG("c"),
                           expected_server_key=server_key.public())
        client.connect(net, "re:1").request(b"a")   # seeds the cache
        # another client's session evicts ours (capacity 1)
        other = TlsClient(DetRNG("c2"),
                          expected_server_key=server_key.public())
        other.connect(net, "re:1").request(b"b")
        # our offer now misses: the server runs a full handshake and the
        # client follows along transparently
        conn = client.connect(net, "re:1")
        assert conn.request(b"c") == b"ok"
        assert not conn.resumed
        assert outcomes[2] is False

    def test_forged_session_id_offer_gets_full_handshake(self,
                                                         server_key):
        net = Network()
        cache = SessionCache()
        serve(net, "re:2", server_key, cache, 1)
        client = TlsClient(DetRNG("c3"),
                           expected_server_key=server_key.public())
        from repro.tls.client import ClientSession
        client.session = ClientSession(b"F" * 16, b"forged-master")
        conn = client.connect(net, "re:2")
        assert not conn.resumed
        assert conn.request(b"x") == b"ok"

    def test_server_resuming_unknown_session_rejected_by_client(
            self, server_key):
        """A malicious server claiming resumption of a session the
        client never had must be refused (it would otherwise dictate
        the master secret's provenance)."""
        from repro.core.errors import HandshakeFailure
        from repro.tls.handshake import ServerHello
        from repro.tls.records import RecordChannel, RT_HANDSHAKE
        net = Network()
        listener = net.listen("re:3")

        def evil():
            sock = listener.accept(timeout=5)
            channel = RecordChannel(StreamTransport(sock, 5))
            channel.recv_record(expect=RT_HANDSHAKE)
            channel.send_record(RT_HANDSHAKE, ServerHello(
                b"r" * 32, b"E" * 16, True).pack())   # "resumed"!

        threading.Thread(target=evil, daemon=True).start()
        client = TlsClient(DetRNG("c4"),
                           expected_server_key=server_key.public())
        with pytest.raises(HandshakeFailure, match="unknown session"):
            client.connect(net, "re:3")

    def test_resumed_sessions_have_fresh_randoms(self, server_key):
        """Resumption reuses the master but never the channel keys —
        both sides contribute fresh randoms every connection."""
        net = Network()
        cache = SessionCache()
        serve(net, "re:4", server_key, cache, 2)
        client = TlsClient(DetRNG("c5"),
                           expected_server_key=server_key.public())
        conn1 = client.connect(net, "re:4")
        conn1.request(b"a")
        conn2 = client.connect(net, "re:4")
        conn2.request(b"b")
        assert conn2.resumed
        assert conn1.keys != conn2.keys
