"""Record layer: framing, MAC-then-encrypt, sequence numbers."""

import pytest

from repro.core.errors import MacFailure, ProtocolError
from repro.net.stream import DuplexStream
from repro.tls import records
from repro.tls.codec import pack_fields, pack_u64, unpack_fields, unpack_u64
from repro.tls.records import (RT_APPDATA, RT_HANDSHAKE, RecordChannel,
                               StreamTransport, open_record, seal_record)

ENC = b"e" * 32
MAC = b"m" * 32


class TestCodec:
    def test_roundtrip(self):
        fields = [b"", b"a", b"x" * 1000]
        assert unpack_fields(pack_fields(*fields), 3) == fields

    def test_variable_count(self):
        assert unpack_fields(pack_fields(b"a", b"b")) == [b"a", b"b"]

    def test_count_mismatch(self):
        with pytest.raises(ProtocolError):
            unpack_fields(pack_fields(b"a"), 2)

    def test_truncated_length(self):
        with pytest.raises(ProtocolError):
            unpack_fields(b"\x00\x00")

    def test_truncated_body(self):
        with pytest.raises(ProtocolError):
            unpack_fields(b"\x00\x00\x05ab")

    def test_u64(self):
        assert unpack_u64(pack_u64(2 ** 40)) == 2 ** 40
        with pytest.raises(ProtocolError):
            unpack_u64(b"\x00")


class TestSealOpen:
    def test_roundtrip(self):
        wire = seal_record(ENC, MAC, 0, RT_APPDATA, b"payload")
        assert open_record(ENC, MAC, 0, RT_APPDATA, wire) == b"payload"

    def test_ciphertext_hides_plaintext(self):
        wire = seal_record(ENC, MAC, 0, RT_APPDATA, b"attack at dawn")
        assert b"attack" not in wire

    def test_wrong_seq_fails(self):
        wire = seal_record(ENC, MAC, 3, RT_APPDATA, b"x")
        with pytest.raises(MacFailure):
            open_record(ENC, MAC, 4, RT_APPDATA, wire)

    def test_wrong_type_fails(self):
        wire = seal_record(ENC, MAC, 0, RT_APPDATA, b"x")
        with pytest.raises(MacFailure):
            open_record(ENC, MAC, 0, RT_HANDSHAKE, wire)

    def test_bitflip_fails(self):
        wire = bytearray(seal_record(ENC, MAC, 0, RT_APPDATA, b"money"))
        wire[2] ^= 1
        with pytest.raises(MacFailure):
            open_record(ENC, MAC, 0, RT_APPDATA, bytes(wire))

    def test_wrong_keys_fail(self):
        wire = seal_record(ENC, MAC, 0, RT_APPDATA, b"x")
        with pytest.raises(MacFailure):
            open_record(ENC, b"n" * 32, 0, RT_APPDATA, wire)
        with pytest.raises(MacFailure):
            open_record(b"n" * 32, MAC, 0, RT_APPDATA, wire)

    def test_truncated_record_fails(self):
        with pytest.raises(MacFailure):
            open_record(ENC, MAC, 0, RT_APPDATA, b"short")

    def test_same_payload_different_seq_differs(self):
        a = seal_record(ENC, MAC, 0, RT_APPDATA, b"same")
        b = seal_record(ENC, MAC, 1, RT_APPDATA, b"same")
        assert a != b


class TestChannel:
    def make_pair(self):
        a, b = DuplexStream.pipe_pair("chan")
        return (RecordChannel(StreamTransport(a, 2)),
                RecordChannel(StreamTransport(b, 2)))

    def test_cleartext_phase(self):
        left, right = self.make_pair()
        left.send_record(RT_HANDSHAKE, b"hello")
        rtype, payload = right.recv_record()
        assert (rtype, payload) == (RT_HANDSHAKE, b"hello")

    def test_protected_phase(self):
        left, right = self.make_pair()
        left.activate_send(ENC, MAC)
        right.activate_recv(ENC, MAC)
        for i in range(3):
            left.send_record(RT_APPDATA, f"msg{i}".encode())
        for i in range(3):
            rtype, payload = right.recv_record()
            assert payload == f"msg{i}".encode()

    def test_replayed_record_detected(self):
        """An attacker replaying a captured record trips the MAC."""
        a, b = DuplexStream.pipe_pair("chan")
        left = RecordChannel(StreamTransport(a, 2))
        right = RecordChannel(StreamTransport(b, 2))
        left.activate_send(ENC, MAC)
        right.activate_recv(ENC, MAC)
        left.send_record(RT_APPDATA, b"pay me $1")
        # the attacker captures the raw frame off the wire...
        from repro.tls.records import read_frame, frame
        rtype, body = read_frame(StreamTransport(b, 2))
        raw = frame(rtype, body)
        # ...delivers it once (looks legitimate at seq 0)...
        a.send(raw)
        assert right.recv_record()[1] == b"pay me $1"
        # ...and replays it: the receiver now expects seq 1
        a.send(raw)
        with pytest.raises(MacFailure):
            right.recv_record()

    def test_expect_mismatch(self):
        left, right = self.make_pair()
        left.send_record(RT_APPDATA, b"x")
        with pytest.raises(ProtocolError):
            right.recv_record(expect=RT_HANDSHAKE)

    def test_oversized_record_rejected(self):
        left, right = self.make_pair()
        with pytest.raises(ProtocolError):
            left.send_record(RT_APPDATA, b"x" * (records.MAX_RECORD + 1))
