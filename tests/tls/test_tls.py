"""TLS handshake messages, full client/server handshakes, caching."""

import threading

import pytest

from repro.core.errors import HandshakeFailure, ProtocolError
from repro.crypto import DetRNG, rsa
from repro.net import Network
from repro.tls import SessionCache, StreamTransport, TlsClient
from repro.tls.handshake import (HS_CLIENT_HELLO, ClientHello, Finished,
                                 ServerHello, Transcript,
                                 extend_transcript, parse_handshake)
from repro.tls.records import RT_APPDATA
from repro.tls.server_core import ServerHandshake


@pytest.fixture(scope="module")
def server_key():
    return rsa.generate_keypair(DetRNG("tls-test-key"))


class TestHandshakeMessages:
    def test_client_hello_roundtrip(self):
        hello = ClientHello(b"r" * 32, b"s" * 16, b"ext-data")
        parsed = parse_handshake(hello.pack(), expect=HS_CLIENT_HELLO)
        assert parsed.client_random == b"r" * 32
        assert parsed.session_id == b"s" * 16
        assert parsed.extensions == b"ext-data"

    def test_bad_random_length(self):
        hello = ClientHello(b"short", b"", b"")
        with pytest.raises(ProtocolError):
            parse_handshake(hello.pack())

    def test_bad_session_id_length(self):
        hello = ClientHello(b"r" * 32, b"bad", b"")
        with pytest.raises(ProtocolError):
            parse_handshake(hello.pack())

    def test_unexpected_type(self):
        finished = Finished(b"x" * 12).pack()
        with pytest.raises(ProtocolError):
            parse_handshake(finished, expect=HS_CLIENT_HELLO)

    def test_unknown_type(self):
        with pytest.raises(ProtocolError):
            parse_handshake(b"\x63whatever")

    def test_empty_message(self):
        with pytest.raises(ProtocolError):
            parse_handshake(b"")

    def test_server_hello_resumed_flag(self):
        hello = ServerHello(b"r" * 32, b"s" * 16, True)
        assert parse_handshake(hello.pack()).resumed is True

    def test_transcript_chaining_matches_incremental(self):
        t = Transcript()
        t.add(b"msg1")
        t.add(b"msg2")
        manual = extend_transcript(extend_transcript(b"", b"msg1"),
                                   b"msg2")
        assert t.digest() == manual


def run_server(network, addr, key, cache, count, results):
    listener = network.listen(addr)

    def serve():
        for i in range(count):
            sock = listener.accept(timeout=10)
            hs = ServerHandshake(StreamTransport(sock, 5), key,
                                 DetRNG(f"srv{i}"), session_cache=cache)
            try:
                channel = hs.run()
                rtype, payload = channel.recv_record()
                channel.send_record(RT_APPDATA, b"ok:" + payload)
                results.append(("served", hs.resumed))
            except Exception as exc:   # noqa: BLE001 - recorded for asserts
                results.append(("error", str(exc)))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


class TestFullHandshake:
    def test_fresh_handshake_and_data(self, server_key):
        net = Network()
        results = []
        run_server(net, "tls:1", server_key, SessionCache(), 1, results)
        client = TlsClient(DetRNG("c1"),
                           expected_server_key=server_key.public())
        conn = client.connect(net, "tls:1")
        assert not conn.resumed
        assert conn.request(b"ping") == b"ok:ping"

    def test_resumption_skips_key_exchange(self, server_key):
        net = Network()
        results = []
        cache = SessionCache()
        run_server(net, "tls:2", server_key, cache, 2, results)
        client = TlsClient(DetRNG("c2"),
                           expected_server_key=server_key.public())
        conn1 = client.connect(net, "tls:2")
        conn1.request(b"a")
        conn2 = client.connect(net, "tls:2")
        conn2.request(b"b")
        assert not conn1.resumed and conn2.resumed
        assert cache.hits == 1
        # the two connections share the master but derive fresh keys
        assert conn1.master == conn2.master
        assert conn1.keys["client_enc"] != conn2.keys["client_enc"]

    def test_resume_disabled(self, server_key):
        net = Network()
        results = []
        run_server(net, "tls:3", server_key, SessionCache(), 2, results)
        client = TlsClient(DetRNG("c3"),
                           expected_server_key=server_key.public())
        client.connect(net, "tls:3").request(b"a")
        conn = client.connect(net, "tls:3", resume=False)
        assert not conn.resumed

    def test_pinned_key_mismatch_detected(self, server_key):
        net = Network()
        results = []
        run_server(net, "tls:4", server_key, SessionCache(), 1, results)
        wrong = rsa.generate_keypair(DetRNG("imposter"))
        client = TlsClient(DetRNG("c4"),
                           expected_server_key=wrong.public())
        with pytest.raises(HandshakeFailure):
            client.connect(net, "tls:4")

    def test_tampered_finished_rejected_by_server(self, server_key):
        """A client lying in its Finished is turned away."""
        net = Network()
        results = []
        run_server(net, "tls:5", server_key, SessionCache(), 1, results)

        class LyingClient(TlsClient):
            pass

        # tamper at the record level: use a correct client but corrupt
        # the transcript by injecting different extensions after hashing
        import repro.tls.client as client_mod
        client = TlsClient(DetRNG("c5"),
                           expected_server_key=server_key.public())
        original = client_mod.finished_verify_data

        def bad_verify(master, label, th):
            data = original(master, label, th)
            return bytes(12) if label == "client finished" else data

        client_mod.finished_verify_data = bad_verify
        try:
            with pytest.raises(Exception):
                client.connect(net, "tls:5")
        finally:
            client_mod.finished_verify_data = original
        import time
        time.sleep(0.1)
        assert results and results[0][0] == "error"


class TestSessionCache:
    def test_store_lookup(self):
        cache = SessionCache()
        cache.store(b"sid1", b"master1")
        assert cache.lookup(b"sid1") == b"master1"
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = SessionCache()
        assert cache.lookup(b"nope") is None
        assert cache.misses == 1

    def test_empty_sid_never_hits(self):
        cache = SessionCache()
        cache.store(b"", b"m")
        assert cache.lookup(b"") is None

    def test_lru_eviction(self):
        cache = SessionCache(capacity=2)
        cache.store(b"a", b"1")
        cache.store(b"b", b"2")
        cache.lookup(b"a")          # refresh a
        cache.store(b"c", b"3")     # evicts b
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"a") == b"1"

    def test_invalidate(self):
        cache = SessionCache()
        cache.store(b"a", b"1")
        cache.invalidate(b"a")
        assert cache.lookup(b"a") is None
