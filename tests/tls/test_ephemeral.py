"""Ephemeral-RSA (forward secrecy) tests — the mode the paper presumes
off because of its computational cost (§5.1.1)."""

import threading

import pytest

from repro.core.errors import HandshakeFailure
from repro.crypto import DetRNG, rsa
from repro.net import Network
from repro.tls import SessionCache, StreamTransport, TlsClient
from repro.tls.records import RT_APPDATA
from repro.tls.server_core import ServerHandshake


@pytest.fixture(scope="module")
def server_key():
    return rsa.generate_keypair(DetRNG("ephemeral-test"))


def serve_one(net, addr, key, *, ephemeral, captured):
    listener = net.listen(addr)

    def run():
        sock = listener.accept(timeout=10)
        handshake = ServerHandshake(
            StreamTransport(sock, 5), key, DetRNG("srv"),
            session_cache=SessionCache(), ephemeral=ephemeral,
            ephemeral_bits=384)
        channel = handshake.run()
        rtype, payload = channel.recv_record()
        channel.send_record(RT_APPDATA, b"ok")
        captured["master"] = handshake.master

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestEphemeralHandshake:
    def test_handshake_completes(self, server_key):
        net = Network()
        captured = {}
        serve_one(net, "eph:1", server_key, ephemeral=True,
                  captured=captured)
        client = TlsClient(DetRNG("c"),
                           expected_server_key=server_key.public())
        conn = client.connect(net, "eph:1")
        assert conn.request(b"hello") == b"ok"
        assert captured["master"] == conn.master

    def test_client_rejects_unsigned_ephemeral_key(self, server_key):
        """A MITM substituting its own ephemeral key fails the
        long-term-key signature check."""
        net = Network()
        listener = net.listen("eph:2")

        def evil_server():
            from repro.tls.handshake import (Certificate,
                                             CERT_FLAG_EPHEMERAL,
                                             ClientHello, ServerHello,
                                             ServerKeyExchange,
                                             parse_handshake)
            from repro.tls.records import RecordChannel, RT_HANDSHAKE
            sock = listener.accept(timeout=10)
            channel = RecordChannel(StreamTransport(sock, 5))
            channel.recv_record(expect=RT_HANDSHAKE)
            rng = DetRNG("evil")
            channel.send_record(RT_HANDSHAKE, ServerHello(
                rng.bytes(32), rng.bytes(16), False).pack())
            channel.send_record(RT_HANDSHAKE, Certificate(
                server_key.public().to_bytes(), b"evil",
                CERT_FLAG_EPHEMERAL).pack())
            mallory = rsa.generate_keypair(rng, 384)
            channel.send_record(RT_HANDSHAKE, ServerKeyExchange(
                mallory.public().to_bytes(),
                b"\x00" * 64).pack())   # forged signature

        thread = threading.Thread(target=evil_server, daemon=True)
        thread.start()
        client = TlsClient(DetRNG("c2"),
                           expected_server_key=server_key.public())
        with pytest.raises(HandshakeFailure, match="signature"):
            client.connect(net, "eph:2")

    def test_forward_secrecy_property(self, server_key):
        """The point of the mode: stealing the *long-term* key after
        the fact does not decrypt a recorded key exchange."""
        from repro.core.errors import CryptoError
        from repro.crypto.prf import derive_master_secret
        net = Network()
        captured = {}
        serve_one(net, "eph:3", server_key, ephemeral=True,
                  captured=captured)

        # the attacker records the client key exchange off the wire
        recorded = {}
        original_encrypt = rsa.RsaPublicKey.encrypt

        def tapping_encrypt(self, message, rng):
            ct = original_encrypt(self, message, rng)
            recorded["epms"] = ct
            return ct

        rsa.RsaPublicKey.encrypt = tapping_encrypt
        try:
            client = TlsClient(DetRNG("c3"),
                               expected_server_key=server_key.public())
            conn = client.connect(net, "eph:3")
            conn.request(b"x")
        finally:
            rsa.RsaPublicKey.encrypt = original_encrypt

        # later, the long-term private key leaks in full...
        with pytest.raises(CryptoError):
            # ...but it cannot decrypt the recorded premaster: that was
            # encrypted to the (discarded) ephemeral key
            server_key.decrypt(recorded["epms"])

    def test_static_mode_lacks_forward_secrecy(self, server_key):
        """The contrast: without ephemeral keys, a stolen long-term key
        decrypts recorded traffic (why protecting it matters so much)."""
        net = Network()
        captured = {}
        serve_one(net, "eph:4", server_key, ephemeral=False,
                  captured=captured)
        recorded = {}
        original_encrypt = rsa.RsaPublicKey.encrypt

        def tapping_encrypt(self, message, rng):
            ct = original_encrypt(self, message, rng)
            recorded["epms"] = ct
            recorded["premaster"] = message
            return ct

        rsa.RsaPublicKey.encrypt = tapping_encrypt
        try:
            client = TlsClient(DetRNG("c4"),
                               expected_server_key=server_key.public())
            conn = client.connect(net, "eph:4")
            conn.request(b"x")
        finally:
            rsa.RsaPublicKey.encrypt = original_encrypt
        # the stolen long-term key decrypts the recorded exchange
        assert server_key.decrypt(recorded["epms"]) == \
            recorded["premaster"]
