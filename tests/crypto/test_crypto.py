"""Unit tests for the crypto substrate."""

import pytest

from repro.core.errors import CryptoError
from repro.crypto import DetRNG, StreamCipher, hmac_sha256
from repro.crypto import dsa, prf, primes, rsa, skey
from repro.crypto.mac import constant_time_eq


@pytest.fixture(scope="module")
def rsa_key():
    return rsa.generate_keypair(DetRNG("test-rsa"), 512)


@pytest.fixture(scope="module")
def dsa_key():
    return dsa.generate_keypair(DetRNG("test-dsa"))


class TestRng:
    def test_deterministic(self):
        assert DetRNG("seed").bytes(32) == DetRNG("seed").bytes(32)

    def test_different_seeds_differ(self):
        assert DetRNG("a").bytes(32) != DetRNG("b").bytes(32)

    def test_randint_bounds(self):
        rng = DetRNG(1)
        values = [rng.randint(5, 9) for _ in range(200)]
        assert min(values) == 5 and max(values) == 9

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            DetRNG(1).randint(5, 4)

    def test_odd_integer_has_top_bit(self):
        value = DetRNG(2).odd_integer(64)
        assert value % 2 == 1
        assert value.bit_length() == 64

    def test_fork_is_independent(self):
        rng = DetRNG("x")
        assert rng.fork("a").bytes(8) != rng.fork("b").bytes(8)

    def test_stream_continuity(self):
        rng = DetRNG("y")
        first = rng.bytes(10)
        second = rng.bytes(10)
        both = DetRNG("y").bytes(20)
        assert first + second == both


class TestPrimes:
    def test_small_primes(self):
        rng = DetRNG(3)
        for n in (2, 3, 5, 7, 97, 101):
            assert primes.is_probable_prime(n, rng)

    def test_small_composites(self):
        rng = DetRNG(3)
        for n in (0, 1, 4, 100, 561, 1105):   # incl. Carmichael numbers
            assert not primes.is_probable_prime(n, rng)

    def test_gen_prime_size(self):
        p = primes.gen_prime(128, DetRNG(4))
        assert p.bit_length() == 128
        assert primes.is_probable_prime(p, DetRNG(5))

    def test_invmod(self):
        assert (primes.invmod(3, 11) * 3) % 11 == 1
        with pytest.raises(ValueError):
            primes.invmod(6, 9)

    def test_int_bytes_roundtrip(self):
        for n in (0, 1, 255, 256, 2 ** 64 + 17):
            assert primes.bytes_to_int(primes.int_to_bytes(n)) == n

    def test_int_to_bytes_fixed_length(self):
        assert len(primes.int_to_bytes(5, 8)) == 8


class TestRsa:
    def test_encrypt_decrypt(self, rsa_key):
        rng = DetRNG("enc")
        ct = rsa_key.public().encrypt(b"premaster", rng)
        assert rsa_key.decrypt(ct) == b"premaster"

    def test_padding_randomises_ciphertext(self, rsa_key):
        rng = DetRNG("enc2")
        a = rsa_key.public().encrypt(b"same", rng)
        b = rsa_key.public().encrypt(b"same", rng)
        assert a != b

    def test_message_too_long(self, rsa_key):
        with pytest.raises(CryptoError):
            rsa_key.public().encrypt(b"x" * 100, DetRNG(1))

    def test_tampered_ciphertext_fails(self, rsa_key):
        ct = bytearray(rsa_key.public().encrypt(b"hi", DetRNG(2)))
        ct[5] ^= 0xFF
        with pytest.raises(CryptoError):
            rsa_key.decrypt(bytes(ct))

    def test_sign_verify(self, rsa_key):
        sig = rsa_key.sign(b"message")
        assert rsa_key.public().verify(b"message", sig)
        assert not rsa_key.public().verify(b"other", sig)
        assert not rsa_key.public().verify(b"message", b"\x00" * 64)

    def test_serialization_roundtrip(self, rsa_key):
        pub = rsa.RsaPublicKey.from_bytes(rsa_key.public().to_bytes())
        assert pub == rsa_key.public()
        priv = rsa.RsaPrivateKey.from_bytes(rsa_key.to_bytes())
        assert priv.decrypt(pub.encrypt(b"x", DetRNG(6))) == b"x"

    def test_malformed_public_key(self):
        with pytest.raises(CryptoError):
            rsa.RsaPublicKey.from_bytes(b"\x00\x01")

    def test_distinct_primes(self, rsa_key):
        assert rsa_key.p != rsa_key.q
        assert rsa_key.p * rsa_key.q == rsa_key.n


class TestDsa:
    def test_sign_verify(self, dsa_key):
        sig = dsa_key.sign(b"host identity", DetRNG("k"))
        assert dsa_key.public().verify(b"host identity", sig)
        assert not dsa_key.public().verify(b"imposter", sig)

    def test_wrong_key_fails(self, dsa_key):
        other = dsa.generate_keypair(DetRNG("other"))
        sig = dsa_key.sign(b"msg", DetRNG("k2"))
        assert not other.public().verify(b"msg", sig)

    def test_garbage_signature(self, dsa_key):
        assert not dsa_key.public().verify(b"msg", b"junk")
        assert not dsa_key.public().verify(b"msg", dsa.encode_sig(0, 1))

    def test_params_structure(self):
        params = dsa.default_params()
        assert (params.p - 1) % params.q == 0
        assert pow(params.g, params.q, params.p) == 1
        assert params.g != 1

    def test_serialization(self, dsa_key):
        pub = dsa.DsaPublicKey.from_bytes(dsa_key.public().to_bytes())
        sig = dsa_key.sign(b"m", DetRNG("k3"))
        assert pub.verify(b"m", sig)
        priv = dsa.DsaPrivateKey.from_bytes(dsa_key.to_bytes())
        assert priv.y == dsa_key.y

    def test_private_magic_required(self):
        with pytest.raises(CryptoError):
            dsa.DsaPrivateKey.from_bytes(b"\x00\x04abcd")

    def test_sig_codec_rejects_trailing(self):
        good = dsa.encode_sig(123, 456)
        assert dsa.decode_sig(good) == (123, 456)
        with pytest.raises(CryptoError):
            dsa.decode_sig(good + b"x")


class TestMacAndStream:
    def test_hmac_rfc_vector(self):
        # RFC 4231 test case 2
        digest = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert digest.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
            "64ec3843")

    def test_constant_time_eq(self):
        assert constant_time_eq(b"abc", b"abc")
        assert not constant_time_eq(b"abc", b"abd")
        assert not constant_time_eq(b"abc", b"abcd")

    def test_stream_roundtrip(self):
        enc = StreamCipher(b"k" * 32, b"nonce")
        dec = StreamCipher(b"k" * 32, b"nonce")
        messages = [b"first", b"second message", b"x" * 1000]
        for msg in messages:
            assert dec.decrypt(enc.encrypt(msg)) == msg

    def test_stream_position_matters(self):
        a = StreamCipher(b"k" * 32)
        b = StreamCipher(b"k" * 32)
        a.encrypt(b"offset")
        assert a.encrypt(b"hello") != b.encrypt(b"hello")

    def test_different_nonce_different_stream(self):
        a = StreamCipher(b"k" * 32, b"n1").encrypt(b"hello")
        b = StreamCipher(b"k" * 32, b"n2").encrypt(b"hello")
        assert a != b

    def test_clone_preserves_position(self):
        a = StreamCipher(b"k" * 32)
        a.encrypt(b"abcdef")
        b = a.clone()
        assert a.encrypt(b"tail") == b.encrypt(b"tail")


class TestPrf:
    def test_deterministic_and_length(self):
        out = prf.prf(b"secret", "label", b"seed", 48)
        assert len(out) == 48
        assert out == prf.prf(b"secret", "label", b"seed", 48)

    def test_label_separates(self):
        a = prf.prf(b"s", "client finished", b"x", 12)
        b = prf.prf(b"s", "server finished", b"x", 12)
        assert a != b

    def test_key_block_fields(self):
        master = prf.derive_master_secret(b"pm", b"c" * 32, b"s" * 32)
        assert len(master) == prf.MASTER_SECRET_LEN
        keys = prf.derive_key_block(master, b"c" * 32, b"s" * 32)
        assert sorted(keys) == ["client_enc", "client_mac", "server_enc",
                                "server_mac"]
        assert len(set(keys.values())) == 4   # all distinct

    def test_randoms_change_master(self):
        a = prf.derive_master_secret(b"pm", b"c" * 32, b"s" * 32)
        b = prf.derive_master_secret(b"pm", b"c" * 32, b"t" * 32)
        assert a != b


class TestSkey:
    def test_enroll_challenge_respond(self):
        entry = skey.SkeyEntry.enroll(b"password", b"seed99")
        count, seed = entry.challenge()
        assert entry.verify(skey.respond(b"password", seed, count))

    def test_chain_steps_down(self):
        entry = skey.SkeyEntry.enroll(b"pw", b"s", sequence=10)
        for expected in (9, 8, 7):
            count, seed = entry.challenge()
            assert count == expected
            assert entry.verify(skey.respond(b"pw", seed, count))

    def test_wrong_password_fails(self):
        entry = skey.SkeyEntry.enroll(b"pw", b"s")
        count, seed = entry.challenge()
        assert not entry.verify(skey.respond(b"wrong", seed, count))

    def test_replay_fails(self):
        entry = skey.SkeyEntry.enroll(b"pw", b"s")
        count, seed = entry.challenge()
        response = skey.respond(b"pw", seed, count)
        assert entry.verify(response)
        assert not entry.verify(response)   # chain moved on

    def test_exhaustion(self):
        from repro.core.errors import AuthenticationFailure
        entry = skey.SkeyEntry.enroll(b"pw", b"s", sequence=1)
        with pytest.raises(AuthenticationFailure):
            entry.challenge()
