"""Unit tests for the session channel (chunked transfers, errors)."""

import threading

import pytest

from repro.core.errors import ProtocolError
from repro.net.stream import DuplexStream
from repro.sshlib import channel as chanmod
from repro.tls.records import RecordChannel, StreamTransport

FT = 45  # any frame type


def channel_pair():
    a, b = DuplexStream.pipe_pair("chan")
    return (RecordChannel(StreamTransport(a, 2)),
            RecordChannel(StreamTransport(b, 2)))


class TestSessionMessages:
    def test_pack_parse_roundtrip(self):
        body = chanmod.pack_session(chanmod.CMD_EXEC, b"whoami",
                                    b"extra")
        cmd, fields = chanmod.parse_session(body)
        assert cmd == chanmod.CMD_EXEC
        assert fields == [b"whoami", b"extra"]

    def test_empty_message_rejected(self):
        with pytest.raises(ProtocolError):
            chanmod.parse_session(b"")


class TestFileStreaming:
    def test_small_file(self):
        left, right = channel_pair()
        chanmod.send_file(left, FT, b"tiny")
        assert chanmod.recv_file(right, FT) == b"tiny"

    def test_empty_file(self):
        left, right = channel_pair()
        chanmod.send_file(left, FT, b"")
        assert chanmod.recv_file(right, FT) == b""

    def test_multi_chunk_file(self):
        left, right = channel_pair()
        payload = bytes(range(256)) * 300   # > 4 chunks
        done = threading.Event()
        received = {}

        def receiver():
            received["data"] = chanmod.recv_file(right, FT)
            done.set()

        thread = threading.Thread(target=receiver, daemon=True)
        thread.start()
        chanmod.send_file(left, FT, payload)
        assert done.wait(5)
        assert received["data"] == payload

    def test_chunking_boundary_exact(self):
        left, right = channel_pair()
        payload = b"x" * (2 * chanmod.CHUNK)
        done = threading.Event()
        received = {}

        def receiver():
            received["data"] = chanmod.recv_file(right, FT)
            done.set()

        threading.Thread(target=receiver, daemon=True).start()
        chanmod.send_file(left, FT, payload)
        assert done.wait(5)
        assert received["data"] == payload

    def test_error_mid_stream_raises(self):
        left, right = channel_pair()
        left.send_record(FT, chanmod.pack_session(chanmod.CMD_DATA,
                                                  b"part"))
        left.send_record(FT, chanmod.pack_session(chanmod.CMD_ERROR,
                                                  b"disk full"))
        with pytest.raises(ProtocolError, match="disk full"):
            chanmod.recv_file(right, FT)

    def test_unexpected_command_rejected(self):
        left, right = channel_pair()
        left.send_record(FT, chanmod.pack_session(chanmod.CMD_EXEC,
                                                  b"ls"))
        with pytest.raises(ProtocolError):
            chanmod.recv_file(right, FT)
