"""SSH transport, userauth logic, and end-to-end client/server."""

import threading

import pytest

from repro.core.errors import (AuthenticationFailure, HandshakeFailure,
                               ProtocolError)
from repro.crypto import DetRNG, dsa, skey
from repro.net import Network
from repro.sshlib import transport, userauth
from repro.sshlib.client import SshClient
from repro.tls.records import StreamTransport


@pytest.fixture(scope="module")
def host_key():
    return dsa.generate_keypair(DetRNG("ssh-host"))


class TestDh:
    def test_shared_secret_agrees(self):
        rng = DetRNG("dh")
        p, g = transport.dh_group()
        a = rng.randint(2, p - 2)
        b = rng.randint(2, p - 2)
        assert transport.dh_shared(transport.dh_public(b), a) == \
            transport.dh_shared(transport.dh_public(a), b)

    def test_degenerate_values_rejected(self):
        p, _ = transport.dh_group()
        for evil in (0, 1, p - 1, p):
            with pytest.raises(HandshakeFailure):
                transport.dh_shared(evil, 12345)

    def test_channel_keys_distinct(self):
        keys = transport.derive_channel_keys(12345, b"h" * 32)
        assert len(set(keys.values())) == 4


class TestTransportHandshake:
    def run_pair(self, host_key, *, expected=None):
        net = Network()
        listener = net.listen("s:22")
        result = {}

        def server():
            sock = listener.accept(timeout=5)

            def signer(session_hash):
                return host_key.sign(session_hash, DetRNG("sig"))

            driver = transport.ServerTransport(
                StreamTransport(sock, 5), DetRNG("srv"),
                host_pub_bytes=host_key.public().to_bytes(),
                signer=signer)
            try:
                driver.run()
                result["server_keys"] = driver.keys
                result["server_hash"] = driver.session_hash
            except Exception as exc:   # noqa: BLE001
                result["server_error"] = exc

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        sock = net.connect("s:22")
        client = transport.ClientTransport(
            StreamTransport(sock, 5), DetRNG("cli"),
            expected_host_key=expected)
        client.run()
        thread.join(5)
        return client, result

    def test_keys_and_hash_agree(self, host_key):
        client, result = self.run_pair(host_key)
        assert client.keys == result["server_keys"]
        assert client.session_hash == result["server_hash"]

    def test_known_hosts_pinning(self, host_key):
        other = dsa.generate_keypair(DetRNG("imposter"))
        with pytest.raises(HandshakeFailure):
            self.run_pair(host_key, expected=other.public())

    def test_pinned_correct_key_accepted(self, host_key):
        client, result = self.run_pair(host_key,
                                       expected=host_key.public())
        assert client.keys is not None


class TestUserauthLogic:
    def test_shadow_roundtrip(self):
        line = userauth.shadow_line("alice", b"s1", b"pw", 1000,
                                    "/home/alice")
        entries = userauth.parse_shadow(line)
        assert userauth.check_password(entries, "alice", b"pw")
        assert not userauth.check_password(entries, "alice", b"no")
        assert not userauth.check_password(entries, "ghost", b"pw")

    def test_lookup_passwd(self):
        entries = userauth.parse_shadow(
            userauth.shadow_line("bob", b"s", b"p", 1001, "/home/bob"))
        pw = userauth.lookup_passwd(entries, "bob")
        assert pw.uid == 1001 and pw.home == "/home/bob"
        assert userauth.lookup_passwd(entries, "ghost") is None

    def test_corrupt_shadow(self):
        with pytest.raises(ProtocolError):
            userauth.parse_shadow(b"not:enough")

    def test_dummy_passwd_is_deterministic_and_plausible(self):
        a = userauth.dummy_passwd("ghost")
        b = userauth.dummy_passwd("ghost")
        assert a == b
        assert a.uid >= 20000
        assert a.home == "/home/ghost"
        assert userauth.dummy_passwd("other").uid != a.uid or True

    def test_authorized_keys_roundtrip(self):
        key = dsa.generate_keypair(DetRNG("u"))
        blob = userauth.authorized_keys_line(key.public()) + b"\n"
        keys = userauth.parse_authorized_keys(blob + b"garbage\n")
        assert len(keys) == 1 and keys[0].y == key.y

    def test_check_pubkey(self):
        key = dsa.generate_keypair(DetRNG("u2"))
        session_hash = b"h" * 32
        sig = key.sign(userauth.pubkey_sign_payload(session_hash,
                                                    "alice"),
                       DetRNG("n"))
        authorized = [key.public()]
        assert userauth.check_pubkey(authorized, session_hash, "alice",
                                     key.public().to_bytes(), sig)
        # signature bound to the user name
        assert not userauth.check_pubkey(authorized, session_hash, "bob",
                                         key.public().to_bytes(), sig)
        # unauthorized key rejected even with valid signature
        stranger = dsa.generate_keypair(DetRNG("u3"))
        sig2 = stranger.sign(
            userauth.pubkey_sign_payload(session_hash, "alice"),
            DetRNG("n2"))
        assert not userauth.check_pubkey(
            authorized, session_hash, "alice",
            stranger.public().to_bytes(), sig2)

    def test_skey_db_roundtrip(self):
        entry = skey.SkeyEntry.enroll(b"pw", b"seed", 50)
        blob = userauth.serialize_skey_db({"alice": entry})
        parsed = userauth.parse_skey_db(blob)
        count, seed = parsed["alice"].challenge()
        assert count == 49 and seed == b"seed"

    def test_dummy_skey_challenge_deterministic(self):
        assert userauth.dummy_skey_challenge("ghost") == \
            userauth.dummy_skey_challenge("ghost")
        count, seed = userauth.dummy_skey_challenge("ghost")
        assert 1 <= count <= 100 and seed

    def test_auth_messages_roundtrip(self):
        body = userauth.pack_auth_request(userauth.AUTH_PASSWORD,
                                          "alice", b"pw")
        method, user, payload = userauth.parse_auth_request(body)
        assert (method, user, payload) == (userauth.AUTH_PASSWORD,
                                           "alice", b"pw")

    def test_require_auth_ok(self):
        with pytest.raises(AuthenticationFailure):
            userauth.require_auth_ok(userauth.RESULT_FAIL, b"denied")
        userauth.require_auth_ok(userauth.RESULT_OK, b"")
