"""Shared fixtures: booted kernels, networks, and payload hygiene."""

import pytest

from repro.attacks.exploit import registry, start_campaign
from repro.core.kernel import Kernel
from repro.net import Network


@pytest.fixture
def kernel():
    """A booted kernel with an attached network."""
    k = Kernel(net=Network(), name="test")
    k.start_main()
    return k


@pytest.fixture
def bare_kernel():
    """A kernel before start_main (for image/boundary declarations)."""
    return Kernel(net=Network(), name="test-bare")


@pytest.fixture
def network():
    return Network()


@pytest.fixture
def campaign():
    """Fresh attack loot for tests that run exploit payloads."""
    loot = start_campaign()
    yield loot


@pytest.fixture
def payloads_loaded():
    """Ensure the standard payload module is imported/registered."""
    import repro.attacks.payloads as payloads
    return payloads
