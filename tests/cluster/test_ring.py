"""Unit tests for the consistent-hash ring (repro.cluster.ring)."""

import pytest

from repro.cluster.ring import HashRing
from repro.core.errors import WedgeError

NAMES = [f"replica{i}" for i in range(6)]
KEYS = [f"key{i:05d}".encode() for i in range(200)]


class TestRingBasics:
    def test_needs_members(self):
        with pytest.raises(WedgeError):
            HashRing([])

    def test_route_is_deterministic(self):
        a = HashRing(NAMES)
        b = HashRing(list(NAMES))
        for key in KEYS:
            assert a.route(key) == b.route(key)
            assert a.order(key) == b.order(key)

    def test_order_is_a_permutation_of_members(self):
        ring = HashRing(NAMES)
        for key in KEYS[:50]:
            order = ring.order(key)
            assert sorted(order) == list(range(len(NAMES)))

    def test_alive_filter_drops_dead_members(self):
        ring = HashRing(NAMES)
        alive = [1, 0, 1, 1, 0, 1]
        for key in KEYS[:50]:
            order = ring.order(key, alive=alive)
            assert 1 not in order and 4 not in order
            assert sorted(order) == [0, 2, 3, 5]

    def test_route_none_when_everyone_dead(self):
        ring = HashRing(NAMES)
        assert ring.route(b"key", alive=[0] * len(NAMES)) is None


class TestBoundedRemapping:
    def test_killing_one_member_only_moves_its_keys(self):
        """The property TLS session caches lean on: ejecting one
        replica remaps only the keys whose primary died."""
        ring = HashRing(NAMES)
        before = {key: ring.route(key) for key in KEYS}
        victim = 2
        alive = [0 if i == victim else 1 for i in range(len(NAMES))]
        moved = 0
        for key in KEYS:
            after = ring.route(key, alive=alive)
            if before[key] == victim:
                assert after != victim
                moved += 1
            else:
                assert after == before[key]
        # the victim owned a nontrivial share of the keyspace
        assert 0 < moved < len(KEYS)

    def test_failover_target_is_next_in_preference_order(self):
        ring = HashRing(NAMES)
        victim = 0
        alive = [0 if i == victim else 1 for i in range(len(NAMES))]
        for key in KEYS[:50]:
            full = ring.order(key)
            if full[0] != victim:
                continue
            assert ring.route(key, alive=alive) == full[1]


class TestSerialization:
    def test_round_trip_preserves_routing(self):
        ring = HashRing(NAMES, vnodes=8)
        clone = HashRing.deserialize(ring.serialize())
        assert clone.names == ring.names
        assert clone.vnodes == ring.vnodes
        for key in KEYS[:50]:
            assert clone.order(key) == ring.order(key)

    def test_truncated_blob_rejected(self):
        blob = HashRing(NAMES).serialize()
        with pytest.raises(WedgeError):
            HashRing.deserialize(blob[:7])

    def test_garbage_blob_rejected(self):
        with pytest.raises(WedgeError):
            HashRing.deserialize(b"\xff" * 3)

    def test_empty_blob_rejected(self):
        with pytest.raises(WedgeError):
            HashRing.deserialize(b"")
