"""Failover tests: kill a kernel, watch the balancer route around it."""

import pytest

from repro.cluster.campaign import run_cluster
from repro.cluster.cluster import Cluster
from repro.faults.kernelfail import KernelFailure
from repro.faults.plan import FaultPlan
from repro.observe.events import CLUSTER_EJECTED, CLUSTER_RECOVERED
from repro.observe.observer import Observer
from repro.resilience.breaker import BreakerPolicy

KEYS = [f"fo-key{i:02d}".encode()[:8].ljust(8, b"0") for i in range(4)]


def small_cluster(kernels=2, replicas=2):
    # cooldown 0.0 so half-open admission depends only on control flow
    return Cluster(kernels=kernels, replicas=replicas,
                   breaker_policy=BreakerPolicy(cooldown=0.0),
                   probe_timeout=1.0)


@pytest.fixture
def cluster():
    c = small_cluster().start()
    c.lb.health_sweep()
    try:
        yield c
    finally:
        c.stop()


class TestServing:
    def test_responses_byte_identical_across_replicas(self, cluster):
        for key in KEYS:
            first = cluster.request(key, resume=False)
            second = cluster.request(key, resume=False)
            assert first and first == second

    def test_routing_is_stable(self, cluster):
        key = KEYS[0]
        cluster.request(key, resume=False)
        cluster.request(key, resume=False)
        primaries = {d["primary"] for d in cluster.lb.audit
                     if d["key"] == key}
        assert len(primaries) == 1

    def test_session_resumes_on_its_replica(self, cluster):
        client = cluster.make_client("sticky")
        key = KEYS[1]
        assert cluster.request(key, client=client)
        assert not client.last_resumed
        assert cluster.request(key, client=client)
        # ring stability keeps the key on the replica that cached the
        # session, so the abbreviated handshake hits
        assert client.last_resumed


class TestKillAndRecover:
    def test_kill_eject_failover_revive(self, cluster):
        observers = [Observer(cluster.lb.kernel).attach()]
        try:
            baseline = {key: cluster.request(key, resume=False)
                        for key in KEYS}
            killed = cluster.kill_kernel("node1")
            dead = {cluster.backend_index(name) for name in killed}

            # threshold is 1: a single sweep must eject both replicas
            sweep = cluster.lb.health_sweep()
            assert set(killed) <= set(sweep["ejected"])
            health = cluster.lb.health_bytes()
            assert all(health[i] == 0 for i in dead)
            ejected_events = [
                e for e in observers[0].recorder.last()
                if e.kind == CLUSTER_EJECTED]
            assert {e.fields["backend"]
                    for e in ejected_events} >= set(killed)

            # every key still serves, byte-identical, and no routing
            # decision offers a dead replica
            audit_mark = len(cluster.lb.audit)
            for key in KEYS:
                assert cluster.request(key, resume=False) == baseline[key]
            for decision in cluster.lb.audit[audit_mark:]:
                assert not set(decision["order"]) & dead

            # the replacement machine is re-admitted by half-open
            # probes alone — nobody tells the balancer it is back
            cluster.revive("node1")
            recovered = set()
            for _ in range(5):
                recovered |= set(cluster.lb.health_sweep()["recovered"])
                if set(killed) <= recovered:
                    break
            assert set(killed) <= recovered
            assert all(cluster.lb.health_bytes())
            recovered_events = [
                e for e in observers[0].recorder.last()
                if e.kind == CLUSTER_RECOVERED]
            assert {e.fields["backend"]
                    for e in recovered_events} >= set(killed)

            for key in KEYS:
                assert cluster.request(key, resume=False) == baseline[key]
        finally:
            for obs in observers:
                obs.detach()


class TestSeededKill:
    def test_kernel_failure_is_deterministic_per_seed(self):
        names = ["node0", "node1", "node2"]

        def schedule(seed):
            failure = KernelFailure(FaultPlan(seed), names, window=(2, 5))
            return [(i, failure.step()) for i in range(8)]

        assert schedule(7) == schedule(7)
        kills = [v for _, v in schedule(7) if v is not None]
        assert len(kills) == 1 and kills[0] in names

    def test_campaign_smoke(self):
        report = run_cluster(kernels=2, replicas=1, requests=3,
                             rounds=4, seed=3)
        assert report.passed, report.violations
        artifact = report.artifact()
        assert artifact["artifact"] == "cluster"
        for metric in ("scale1_goodput", "scale2_goodput",
                       "linearity_goodput", "kill_goodput",
                       "availability_goodput"):
            assert metric in artifact["metrics"]
        assert artifact["info"]["victim"] is not None
        assert artifact["info"]["sweeps_to_eject"] == 1
