"""Tests for the sharded multi-kernel cluster (repro.cluster)."""
