#!/usr/bin/env python3
"""The kv/cache tier: cache-aside httpd on a cluster, then a crash.

Act 1 boots a two-kernel httpd cluster with the shared kv cache
(``Cluster(cache=True)``): the first ``/cgi/`` request renders in a
disposable per-request-tag sthread and stores the bytes in the
Wedge-partitioned kv server; every later request — from *any* replica —
is a cache hit that spawns no handler at all.

Act 2 puts a supervised kv server under a flight recorder and crashes
its storage callgate with a seeded fault plan: the supervisor restarts
it, exhausts the restart budget, degrades the gate (the black box dumps
the last events), and the circuit breaker's half-open probe brings the
store back — contents intact, because the store region survives
restart-from-snapshot byte-identical.

Run:  python examples/kv_demo.py
"""

from repro import Kernel, Network
from repro.apps.kv import KvClient, KvServer
from repro.cluster import Cluster
from repro.core import WedgeError
from repro.faults import FaultPlan, RestartPolicy
from repro.observe import Observer
from repro.resilience import BreakerPolicy


def act_one_cache_aside_cluster():
    print("=== Act 1: cache-aside /cgi/ pages on a 2-kernel cluster ===")
    cluster = Cluster(kernels=2, replicas=1, cache=True).start()
    try:
        cluster.lb.health_sweep()
        keys = [b"client%02d" % i for i in range(4)]
        bodies = {cluster.request(k, "/cgi/report", resume=False)
                  for k in keys}
        renders = sum(r._cgi_serial for node in cluster.nodes
                      for r in node.replicas)
        hits = sum(r.cache.hits for node in cluster.nodes
                   for r in node.replicas)
        print(f"  {len(keys)} requests across the ring -> "
              f"{renders} handler spawn(s), {hits} cache hit(s)")
        print(f"  all byte-identical: {len(bodies) == 1}")
        stats = KvClient(cluster.lb.kernel, cluster.kv.addr).stat()
        print(f"  kv tier saw: hits={stats['hits']} "
              f"misses={stats['misses']} entries={stats['entries']}")
    finally:
        cluster.stop()


def act_two_storage_crash_on_camera():
    print("=== Act 2: crash the storage gate under supervision ===")
    net = Network()
    policy = RestartPolicy(max_restarts=1, backoff=0.0,
                           breaker=BreakerPolicy(cooldown=0.0))
    kv = KvServer(net, "demo-kv:9090", concurrent=True,
                  supervise=policy).start()
    observer = Observer(kv.kernel)
    observer.attach()
    app = Kernel(net=net, name="demo-app")
    app.start_main()
    cli = KvClient(app, kv.addr)
    try:
        cli.set("motd", b"wedge holds")
        print(f"  stored, read back: {cli.get('motd')!r}")

        # the seeded plan: the next two storage-gate entries crash —
        # entry one burns the restart budget, entry two degrades it
        plan = FaultPlan(seed=2008)
        plan.add("cgate", "crash", at=(1, 2))
        kv.kernel.install_faults(plan)
        try:
            cli.get("motd")
            print("  !!! gate survived the injected crashes — BUG")
        except WedgeError as exc:
            print(f"  degraded, parser fails typed: {exc}")

        print("  --- flight-recorder dump (the black box) ---")
        for line in observer.recorder.format_dump().splitlines():
            print(f"  {line}")

        # breaker cooldown is zero: the very next call is the half-open
        # probe, and the plan has no third fault to feed it
        value = cli.get("motd")
        print(f"  breaker probe re-admitted the gate: {value!r} "
              f"(store survived restart byte-identical)")
        print(f"  faults injected: {len(plan.injected)}, "
              f"dumps captured: {len(observer.recorder.dumps)}")
    finally:
        observer.detach()
        kv.stop()


def main():
    act_one_cache_aside_cluster()
    print()
    act_two_storage_crash_on_camera()


if __name__ == "__main__":
    main()
