#!/usr/bin/env python3
"""The paper's headline attack (§5.1.2), end to end.

A man-in-the-middle relays a legitimate client's HTTPS connection while
arming the ClientHello with an exploit.  The hijacked worker finishes
the handshake so the victim suspects nothing — and then:

* against the **Figure 2** partitioning, the worker holds the session
  key; the attacker exfiltrates it and decrypts the victim's page;
* against the **Figures 3-5** partitioning, the very same campaign gets
  one boolean out of the receive_finished gate and a pile of protection
  violations; the victim's session completes safely.

Run:  python examples/mitm_attack_demo.py
"""

import time

from repro.apps.httpd import MitmPartitionHttpd, SimplePartitionHttpd
from repro.apps.httpd.content import build_request, response_body
from repro.attacks import payloads
from repro.attacks.exploit import start_campaign
from repro.attacks.mitm import MitmAttacker, hello_exploit_rewriter
from repro.crypto import DetRNG
from repro.net import Network
from repro.tls import TlsClient


def campaign(title, server_cls, payload_id, addr, **kwargs):
    print(f"\n=== {title}")
    net = Network()
    server = server_cls(net, addr, **kwargs).start()
    loot = start_campaign()
    attacker = MitmAttacker(
        client_to_server=hello_exploit_rewriter(payload_id), loot=loot)
    net.interpose(addr, attacker)

    victim = TlsClient(DetRNG("victim"),
                       expected_server_key=server.public_key)
    conn = victim.connect(net, addr)
    response = conn.request(build_request("/account"))
    time.sleep(0.3)

    print(f"  victim's view: got "
          f"{response_body(response).decode(errors='replace')!r}")
    stolen = loot.get("session_master")
    if stolen == conn.master:
        print("  ATTACKER WINS: the victim's master secret was stolen "
              "and exfiltrated")
        print(f"    exfiltrated on the wire: "
              f"{stolen == attacker.exfiltrated()[0]}")
    else:
        print("  attacker got NOTHING:")
        print(f"    oracle probe answered: {loot.get('oracle_reply')}")
        for what, error in loot.attempts[:6]:
            print(f"    denied: {what} ({error.split(':')[0]})")
        if len(loot.attempts) > 6:
            print(f"    ... and {len(loot.attempts) - 6} more denials")
    server.stop()


def main():
    campaign("MITM + exploit vs Figure 2 (private key protected, "
             "session key returned to worker)",
             SimplePartitionHttpd, payloads.PAYLOAD_STEAL_SESSION_KEY,
             "demo-fig2:443")
    campaign("The SAME campaign vs Figures 3-5 (two-phase partitioning)",
             MitmPartitionHttpd, payloads.PAYLOAD_PROBE_FINE_PARTITION,
             "demo-fig35:443")
    print("\nConclusion: the fine-grained partitioning leaves the "
          "attacker outside the\nMAC'ed channel even though he "
          "controlled the handshake compartment.")


if __name__ == "__main__":
    main()
