#!/usr/bin/env python3
"""The Crowbar-assisted partitioning workflow (§3.4) on a toy service.

Shows what a developer actually does with cb-log and cb-analyze:

1. trace the monolithic code on an innocuous workload;
2. ask query 1: what memory does ``handle_order`` (and its descendants)
   touch, and how?
3. ask query 3 + query 2: where does the sensitive card number flow,
   and which procedures touch it (the callgate candidates)?
4. derive the sthread policy from the trace and run for real;
5. refactor, crash, re-run under the emulation library, learn the
   missing grant in ONE run, fix the policy.

Run:  python examples/crowbar_workflow.py
"""

from repro import Kernel, Network, PROT_READ, PROT_RW, SecurityContext
from repro.core import sc_mem_add
from repro.core.emulation import emulated_sthread_create
from repro.crowbar import (CbLog, emulation_gaps, format_report,
                           memory_for_procedure, procedures_using,
                           suggest_policy, writes_of_procedure)


def main():
    kernel = Kernel(net=Network())
    kernel.start_main()

    # the shop's data: catalog (public-ish), orders, and card numbers
    catalog_tag = kernel.tag_new(name="catalog")
    orders_tag = kernel.tag_new(name="orders")
    cards_tag = kernel.tag_new(name="card-numbers")
    catalog = kernel.alloc_buf(64, tag=catalog_tag,
                               init=b"widget=10;gizmo=25" + bytes(46))
    orders = kernel.alloc_buf(128, tag=orders_tag, init=bytes(128))
    cards = kernel.alloc_buf(32, tag=cards_tag,
                             init=b"4111-1111-1111-1111")

    # -- the monolithic application ----------------------------------------
    def lookup_price(item):
        table = kernel.mem_read(catalog.addr, 64).rstrip(b"\x00")
        for entry in table.split(b";"):
            name, _, price = entry.partition(b"=")
            if name == item:
                return int(price)
        return 0

    def record_order(item, price):
        line = item + b":" + str(price).encode() + b";"
        kernel.mem_write(orders.addr, line)

    def charge_card(price):
        number = kernel.mem_read(cards.addr, 19)
        return b"charged " + str(price).encode() + b" to " + number[-4:]

    def handle_order(item):
        price = lookup_price(item)
        record_order(item, price)
        return charge_card(price)

    # -- 1+2: trace and query ------------------------------------------------
    print("step 1: tracing one innocuous run under cb-log...")
    with CbLog(kernel, label="innocuous") as log:
        handle_order(b"widget")
    print(f"  {len(log.trace)} accesses recorded\n")

    print("step 2 (query 1): memory used by handle_order + descendants")
    print(format_report(memory_for_procedure(log.trace, "handle_order"),
                        title="handle_order"))

    print("\nstep 3 (queries 3+2): where card data flows / who touches "
          "card-numbers")
    writes = writes_of_procedure(log.trace, "charge_card")
    card_items = [record.item for record in log.trace.accesses
                  if record.item.tag_id == cards_tag.id]
    users = procedures_using(log.trace, card_items,
                             innermost_only=True)
    print(f"  charge_card writes: "
          f"{[item.name for item in writes] or 'nothing'}")
    print(f"  procedures touching card numbers: {sorted(users)}")
    print("  -> charge_card is the callgate candidate; everything else "
          "can be unprivileged")

    # -- 4: derive the sthread policy WITHOUT the card tag --------------------
    grants, untaggable = suggest_policy(log.trace, "handle_order")
    print(f"\nstep 4: suggested grants for handle_order: {grants}")
    grants.pop(cards_tag.id, None)   # the card store goes behind a gate

    def order_worker_v1(arg):
        price = lookup_price(b"widget")
        record_order(b"widget", price)
        return price   # charging now happens via a callgate (not shown)

    def grants_to_sc(grant_map):
        sc = SecurityContext()
        for tag_id, mode in grant_map.items():
            sc_mem_add(sc, tag_id,
                       PROT_RW if mode == "rw" else PROT_READ)
        return sc

    worker = kernel.sthread_create(grants_to_sc(grants), order_worker_v1,
                                   spawn="inline")
    print(f"  worker ran with derived policy: result="
          f"{kernel.sthread_join(worker)}, faulted={worker.faulted}")

    # -- 5: refactor -> crash -> emulation reveals the gap --------------------
    loyalty_tag = kernel.tag_new(name="loyalty-points")
    loyalty = kernel.alloc_buf(16, tag=loyalty_tag, init=bytes(16))

    def order_worker_v2(arg):
        price = lookup_price(b"gizmo")
        record_order(b"gizmo", price)
        kernel.mem_write(loyalty.addr, b"+5")   # NEW dependency
        return price

    crashed = kernel.sthread_create(grants_to_sc(grants),
                                    order_worker_v2, spawn="inline")
    kernel.sthread_join(crashed)
    print(f"\nstep 5: after refactoring, the sthread faulted: "
          f"{crashed.fault}")

    print("  re-running under the emulation library with cb-log...")
    with CbLog(kernel, label="emulated") as log2:
        emulated = emulated_sthread_create(
            kernel, grants_to_sc(grants), order_worker_v2)
        kernel.sthread_join(emulated)
    for item, modes in emulation_gaps(log2.trace).items():
        print(f"  missing grant: {item!r} needs {sorted(modes)}")
        if item.tag_id is not None:
            grants[item.tag_id] = ("rw" if "write" in modes else "r")

    fixed = kernel.sthread_create(grants_to_sc(grants), order_worker_v2,
                                  spawn="inline")
    kernel.sthread_join(fixed)
    print(f"  with the extended policy: faulted={fixed.faulted} — green")


if __name__ == "__main__":
    main()
