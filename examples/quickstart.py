#!/usr/bin/env python3
"""Quickstart: Wedge's three primitives in thirty lines of real use.

Creates a compartmentalised "password checker": the secret lives in
tagged memory, an untrusted parser sthread runs default-deny, and a
callgate is the only bridge between them.

Run:  python examples/quickstart.py
"""

from repro import (Kernel, Network, PROT_READ, SecurityContext,
                   sc_cgate_add, sc_fd_add, sc_mem_add, FD_RW)
from repro.core import MemoryViolation


def main():
    kernel = Kernel(net=Network())
    kernel.start_main()

    # -- tagged memory: the secret is named by a tag ----------------------
    secret_tag = kernel.tag_new(name="password-db")
    secret = kernel.alloc_buf(32, tag=secret_tag,
                              init=b"hunter2".ljust(32, b"\x00"))
    print(f"secret stored at 0x{secret.addr:x} under tag "
          f"{secret_tag.id}")

    # -- a callgate: the only code allowed to touch the secret ------------
    def check_password_gate(trusted, arg):
        stored = kernel.mem_read(trusted["addr"], 32).rstrip(b"\x00")
        return {"ok": stored == bytes(arg["guess"])}

    gate_sc = sc_mem_add(SecurityContext(), secret_tag, PROT_READ)

    # -- an sthread: the untrusted network-facing parser ------------------
    def parser_body(arg):
        gate_id = next(iter(kernel.current().gates))
        # 1. the legitimate path: ask the gate
        verdict = kernel.cgate(gate_id, None, {"guess": b"hunter2"})
        print(f"  [parser] gate says password ok = {verdict['ok']}")
        # 2. the illegitimate path: read the secret directly
        try:
            kernel.mem_read(secret.addr, 32)
            print("  [parser] !!! read the secret directly — BUG")
        except MemoryViolation as fault:
            print(f"  [parser] direct read denied: {fault}")
        return "done"

    sc = SecurityContext()                       # default-deny
    sc_cgate_add(sc, check_password_gate, gate_sc,
                 {"addr": secret.addr})          # ...one gate only

    print("spawning the default-deny parser sthread:")
    parser = kernel.sthread_create(sc, parser_body, name="parser",
                                   spawn="inline")
    print(f"parser finished: {kernel.sthread_join(parser)!r} "
          f"(status={parser.status})")

    # -- the accounting the kernel kept ------------------------------------
    print(f"total model cycles charged: {kernel.costs.cycles():,}")


if __name__ == "__main__":
    main()
