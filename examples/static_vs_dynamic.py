#!/usr/bin/env python3
"""Static vs dynamic policy analysis — the paper's §7 trade-off, live.

    "Static analysis will yield a superset of the required permissions
    for an sthread, as some code paths may never execute in practice.
    [...] Yet these permissions could well include privileges for
    sensitive data that could allow an exploit to leak that data."

This demo builds a request handler with a dead debug branch that dumps
key material, derives its policy both ways, and shows:

* the static policy RUNS but over-grants — an exploit of the sthread
  can read the key through the excess grant;
* the dynamic (Crowbar) policy is tight — the very same exploit faults.

Run:  python examples/static_vs_dynamic.py
"""

from repro import Kernel, Network, PROT_READ, PROT_RW, SecurityContext
from repro.core import MemoryViolation, sc_mem_add
from repro.crowbar import CbLog, suggest_policy
from repro.crowbar.static import compare_with_trace, static_policy


def main():
    kernel = Kernel(net=Network())
    kernel.start_main()

    config_tag = kernel.tag_new(name="config")
    key_tag = kernel.tag_new(name="signing-key")
    log_tag = kernel.tag_new(name="request-log")
    config_buf = kernel.alloc_buf(32, tag=config_tag,
                                  init=b"debug=no".ljust(32, b"\x00"))
    key_buf = kernel.alloc_buf(32, tag=key_tag, init=b"K" * 32)
    log_buf = kernel.alloc_buf(64, tag=log_tag)

    def handle_request():
        config = config_buf.read(8)
        if config.startswith(b"debug=yes"):
            # dead in production: dumps the signing key to the log
            log_buf.write(key_buf.read(32))
        log_buf.write(b"request served")
        return "ok"

    # -- derive both policies -------------------------------------------------
    report = static_policy(handle_request,
                           {"config_buf": config_buf,
                            "key_buf": key_buf, "log_buf": log_buf})
    print(f"static policy  : {report.grants}")

    with CbLog(kernel) as log:
        handle_request()
    dynamic, _ = suggest_policy(log.trace, "handle_request")
    print(f"dynamic policy : {dynamic}")

    excess, missing = compare_with_trace(report, log.trace,
                                         "handle_request")
    print(f"static excess  : {excess}  <- the §7 warning "
          f"(tag {key_tag.id} is the signing key!)")

    # -- run the handler under each policy, then exploit it ---------------------
    def to_sc(grant_map):
        sc = SecurityContext()
        for tag_id, mode in grant_map.items():
            sc_mem_add(sc, tag_id,
                       PROT_RW if mode == "rw" else PROT_READ)
        return sc

    def exploited_body(arg):
        handle_request()                      # looks legitimate...
        try:                                  # ...then the injected code
            stolen = kernel.mem_read(key_buf.addr, 32)
            return ("LEAKED", stolen)
        except MemoryViolation:
            return ("DENIED", None)

    for name, grant_map in (("static", report.grants),
                            ("dynamic", dynamic)):
        worker = kernel.sthread_create(to_sc(grant_map), exploited_body,
                                       name=f"{name}-worker",
                                       spawn="inline")
        verdict, stolen = kernel.sthread_join(worker)
        print(f"exploit under the {name:7s} policy: {verdict}"
              + (f" ({stolen[:8]}...)" if stolen else ""))

    print("\nConclusion: run-time analysis of an innocuous workload "
          "yields the privileges\nneeded for correct execution and "
          "nothing more — which is why Crowbar is\ndynamic (paper §7).")


if __name__ == "__main__":
    main()
