#!/usr/bin/env python3
"""OpenSSH three ways (§5.2): what one exploit steals from each.

Runs the same reconnaissance payload inside a hijacked pre-auth
compartment of the monolithic, privilege-separated, and Wedge sshd,
after a legitimate user logged in once (so PAM residue exists):

====================  ==========  =========  ======
loot / probe          monolithic  privsep    wedge
====================  ==========  =========  ======
host private key      stolen      scrubbed   denied
PAM password residue  own heap    STOLEN     denied
username oracle       leak        LEAK       dummy
/etc/shadow           stolen      denied     denied
====================  ==========  =========  ======

Run:  python examples/sshd_demo.py
"""

import time

from repro.apps.sshd import MonolithicSshd, PrivsepSshd, WedgeSshd
from repro.attacks import payloads
from repro.attacks.exploit import make_exploit_blob, start_campaign
from repro.crypto import DetRNG
from repro.net import Network
from repro.sshlib import SshClient


def attack(server_cls, addr):
    net = Network()
    server = server_cls(net, addr).start()
    # a legitimate login first: the monitor/daemon authenticates alice,
    # PAM leaves scratch in its heap (paper ref [8])
    legit = SshClient(DetRNG("legit"),
                      expected_host_key=server.env.host_key.public())
    conn = legit.connect(net, addr)
    conn.auth_password("alice", b"wonderland")
    conn.close()
    time.sleep(0.1)

    loot = start_campaign()
    attacker = SshClient(DetRNG("attacker"))
    conn = attacker.connect(net, addr)
    try:
        conn.auth_password(
            "mallory", make_exploit_blob(payloads.PAYLOAD_SSHD_RECON))
    except Exception:
        pass
    deadline = time.time() + 5
    while "uid_after_probe" not in loot.items and time.time() < deadline:
        time.sleep(0.02)
    server.stop()
    return loot


def show(name, loot):
    print(f"\n=== {name}")
    key = loot.get("host_private_key")
    print(f"  host private key : "
          f"{'STOLEN' if key else 'not obtained'}")
    residue = loot.get("pam_residue")
    print(f"  PAM residue      : "
          f"{residue.decode(errors='replace') if residue else 'none'}")
    print(f"  username oracle  : "
          f"{'LEAKS' if loot.get('username_oracle') else 'defeated'} "
          f"{loot.get('username_probe')}")
    shadow = loot.get("shadow_file")
    print(f"  /etc/shadow      : "
          f"{'STOLEN' if shadow else 'denied'}")
    print(f"  uid after probes : {loot.get('uid_after_probe')}")
    print(f"  denials          : {len(loot.attempts)}")


def main():
    show("monolithic sshd (fork-per-connection, fully privileged)",
         attack(MonolithicSshd, "demo-mono:22"))
    show("privilege-separated sshd (Provos monitor/slave)",
         attack(PrivsepSshd, "demo-priv:22"))
    show("Wedge sshd (Figure 6: worker sthread + four callgates)",
         attack(WedgeSshd, "demo-wedge:22"))
    print("\nConclusion: privsep already contains the host key (by "
          "scrubbing), but fork\ninheritance leaks the PAM scratch and "
          "the monitor interface leaks usernames.\nWedge's default-deny "
          "sthreads have nothing to scrub, and the dummy-passwd\ngate "
          "interface leaves nothing to probe.")


if __name__ == "__main__":
    main()
