#!/usr/bin/env python3
"""The POP3 motivating example (§2, Figure 1), with the attack contrast.

Serves mail from both the monolithic and the partitioned server, then
throws the same exploit at each client handler and shows what it can
reach.

Run:  python examples/pop3_demo.py
"""

import time

from repro.apps.pop3 import MonolithicPop3, PartitionedPop3, Pop3Client
from repro.attacks.exploit import make_exploit_blob, registry
from repro.net import Network


def normal_session(server_cls, addr):
    net = Network()
    server = server_cls(net, addr).start()
    client = Pop3Client(net, addr)
    client.login("alice", b"wonderland")
    sizes = client.list_messages()
    first = client.retrieve(1)
    client.quit()
    print(f"  {server_cls.variant}: {len(sizes)} messages for alice, "
          f"first from {first.splitlines()[0].decode()!r}")
    server.stop()


def exploit_session(server_cls, addr):
    result = {}

    @registry.register("pop3-demo-thief")
    def thief(api):
        result["passwords"] = api.scan_all_memory(b"wonderland")
        result["mail"] = api.scan_all_memory(
            b"queen@hearts".hex().encode())
        gates = api.context.get("gates")
        if gates:
            result["skip-auth"] = api.try_cgate(
                gates["retrieve_gate"], None, {"op": "list"},
                what="retrieve without login")
        result["done"] = True

    net = Network()
    server = server_cls(net, addr).start()
    client = Pop3Client(net, addr)
    try:
        client.raw_command(b"USER " +
                           make_exploit_blob("pop3-demo-thief"))
    except Exception:
        pass
    deadline = time.time() + 5
    while "done" not in result and time.time() < deadline:
        time.sleep(0.02)
    server.stop()

    print(f"  {server_cls.variant}: exploit in the client handler "
          f"found:")
    print(f"    password database : "
          f"{'READ' if result.get('passwords') else 'unreachable'}")
    print(f"    mail spool        : "
          f"{'READ' if result.get('mail') else 'unreachable'}")
    if "skip-auth" in result:
        print(f"    skip authentication: retrieve gate said "
              f"{result['skip-auth']}")


def main():
    print("normal service (both variants behave identically):")
    normal_session(MonolithicPop3, "pop-demo-m:110")
    normal_session(PartitionedPop3, "pop-demo-p:110")
    print("\nnow the exploit (paper §2: 'an exploit within the client "
          "handler cannot\nreveal any passwords or e-mails'):")
    exploit_session(MonolithicPop3, "pop-atk-m:110")
    exploit_session(PartitionedPop3, "pop-atk-p:110")


if __name__ == "__main__":
    main()
