"""Wedge: splitting applications into reduced-privilege compartments.

A pure-Python reproduction of Bittau, Marchenko, Handley and Karp's
NSDI 2008 paper, built on a simulated OS substrate (see DESIGN.md).

Quick tour::

    from repro import Kernel, SecurityContext, sc_mem_add, PROT_READ

    kernel = Kernel()
    kernel.start_main()
    secrets = kernel.tag_new(name="secrets")
    buf = kernel.alloc_buf(32, tag=secrets, init=b"the key")

    sc = SecurityContext()                 # default-deny: no grants
    child = kernel.sthread_create(sc, lambda a: kernel.mem_read(
        buf.addr, 7), spawn="inline")
    assert child.faulted                   # protection violation

Subpackages: :mod:`repro.core` (sthreads, tagged memory, callgates),
:mod:`repro.crowbar` (cb-log / cb-analyze), :mod:`repro.crypto`,
:mod:`repro.net`, :mod:`repro.tls`, :mod:`repro.sshlib`,
:mod:`repro.apps` (POP3, httpd, sshd), :mod:`repro.attacks`,
:mod:`repro.workloads`, :mod:`repro.metrics`.
"""

from repro.core import (BOUNDARY_TAG, BOUNDARY_VAR, FD_READ, FD_RW,
                        FD_WRITE, PROT_COW, PROT_READ, PROT_RW,
                        PROT_WRITE, Buffer, CallgateError,
                        CompartmentFault, Kernel, MemoryViolation,
                        PolicyError, SecurityContext, SELinuxPolicy,
                        SyscallDenied, TagError, WedgeError,
                        sc_cgate_add, sc_fd_add, sc_mem_add,
                        sc_sel_context)
from repro.net import Network

__version__ = "0.1.0"

__all__ = [
    "BOUNDARY_TAG", "BOUNDARY_VAR", "Buffer", "CallgateError",
    "CompartmentFault", "FD_READ", "FD_RW", "FD_WRITE", "Kernel",
    "MemoryViolation", "Network", "PROT_COW", "PROT_READ", "PROT_RW",
    "PROT_WRITE", "PolicyError", "SELinuxPolicy", "SecurityContext",
    "SyscallDenied", "TagError", "WedgeError", "sc_cgate_add",
    "sc_fd_add", "sc_mem_add", "sc_sel_context", "__version__",
]
