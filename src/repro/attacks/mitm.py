"""The man-in-the-middle attacker (paper section 5.1.2's threat model).

Installed on a network address via
:meth:`repro.net.network.Network.interpose`, the attacker receives every
new connection to the server, opens its own upstream connection, and
pumps *frames* between the two — eavesdropping on, rewriting, or
injecting records in either direction.

The canonical campaign against the Figure-2 partitioning:

1. rewrite the legitimate client's ClientHello in flight, embedding an
   exploit blob in the extensions field (keeping the original hello bytes
   inside the blob so the hijacked worker can keep the transcript
   consistent);
2. pass everything else through untouched, so the handshake completes;
3. collect the session key the hijacked worker exfiltrates as a
   cleartext alert frame, then read or inject into the "protected"
   session at will.

Against the Figures-3-5 partitioning the same campaign fails at step 3:
the hijacked handshake sthread cannot read the session key, and the
``receive_finished`` / ``send_finished`` callgates give it neither the
key nor an encryption/decryption oracle.
"""

from __future__ import annotations

import threading

from repro.attacks.exploit import LOOT_PREFIX, Loot
from repro.core.errors import NetworkError, ProtocolError, WedgeError
from repro.net.stream import DuplexStream
from repro.tls import records as tls_records
from repro.tls.records import RT_ALERT, StreamTransport


class MitmAttacker:
    """Frame-level interposer with per-direction rewrite hooks.

    *client_to_server* / *server_to_client* are callables
    ``hook(rtype, body, session) -> (rtype, body) | None`` — return the
    (possibly rewritten) frame to forward, or ``None`` to drop it.
    """

    def __init__(self, *, client_to_server=None, server_to_client=None,
                 loot=None):
        self.network = None   # set by Network.interpose
        self.client_to_server = client_to_server
        self.server_to_client = server_to_client
        self.loot = loot if loot is not None else Loot()
        self.sessions = []
        self._lock = threading.Lock()

    # -- Network integration ------------------------------------------------

    def _client_connected(self, addr):
        """Called by the network for each victim connection."""
        victim_end, attacker_end = DuplexStream.pipe_pair(f"mitm:{addr}")
        upstream = self.network.connect_direct(addr)
        session = MitmSession(self, attacker_end, upstream, addr)
        with self._lock:
            self.sessions.append(session)
        session.start()
        return victim_end

    def collect_loot_frame(self, body):
        """Record an exfiltrated secret found on the wire."""
        secret = body[len(LOOT_PREFIX):]
        with self._lock:
            n = len([k for k in self.loot.items if k.startswith("exfil")])
            self.loot.grab(f"exfil{n}", secret)

    def exfiltrated(self):
        """All secrets collected off the wire so far."""
        with self._lock:
            return [v for k, v in sorted(self.loot.items.items())
                    if k.startswith("exfil")]

    def wait_idle(self, timeout=10.0):
        """Block until every pump thread has drained (tests)."""
        with self._lock:
            sessions = list(self.sessions)
        for session in sessions:
            session.join(timeout)


class MitmSession:
    """One interposed connection: two pump threads plus a transcript."""

    def __init__(self, attacker, client_side, server_side, addr):
        self.attacker = attacker
        self.client_side = client_side
        self.server_side = server_side
        self.addr = addr
        self.transcript = []   # (direction, rtype, body) as forwarded
        self._threads = []

    def start(self):
        for direction, src, dst, hook in (
                ("c2s", self.client_side, self.server_side,
                 self.attacker.client_to_server),
                ("s2c", self.server_side, self.client_side,
                 self.attacker.server_to_client)):
            thread = threading.Thread(
                target=self._pump, args=(direction, src, dst, hook),
                name=f"mitm-{direction}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _pump(self, direction, src, dst, hook):
        transport = StreamTransport(src, timeout=10.0)
        while True:
            try:
                rtype, body = tls_records.read_frame(transport)
            except (WedgeError, ProtocolError, NetworkError):
                try:
                    dst.shutdown_write()
                except WedgeError:
                    pass
                return
            if rtype == RT_ALERT and body.startswith(LOOT_PREFIX):
                # a hijacked compartment is talking to us: swallow it
                self.attacker.collect_loot_frame(body)
                continue
            if hook is not None:
                result = hook(rtype, body, self)
                if result is None:
                    continue
                rtype, body = result
            self.transcript.append((direction, rtype, body))
            try:
                dst.send(tls_records.frame(rtype, body))
            except WedgeError:
                return

    def join(self, timeout=10.0):
        for thread in self._threads:
            thread.join(timeout)


def passive_tap(loot=None):
    """An attacker that only eavesdrops (and picks up exfiltration)."""
    return MitmAttacker(loot=loot)


def hello_exploit_rewriter(payload_id):
    """A client→server hook that arms the ClientHello with an exploit.

    The first handshake frame of each session is rewritten: the exploit
    blob goes into the extensions field, and the *original* hello bytes
    ride inside the blob so the hijacked worker can keep the legitimate
    client's transcript consistent (see
    :func:`repro.attacks.payloads.steal_session_key`).
    """
    from repro.attacks.exploit import make_exploit_blob
    from repro.tls.handshake import (HS_CLIENT_HELLO, ClientHello,
                                     parse_handshake)
    from repro.tls.records import RT_HANDSHAKE

    def hook(rtype, body, session):
        if rtype != RT_HANDSHAKE or getattr(session, "_armed", False):
            return rtype, body
        try:
            hello = parse_handshake(body, expect=HS_CLIENT_HELLO)
        except Exception:
            return rtype, body
        session._armed = True
        armed = ClientHello(hello.client_random, hello.session_id,
                            make_exploit_blob(payload_id, data=body))
        return rtype, armed.pack()

    return hook
