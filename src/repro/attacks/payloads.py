"""Reusable exploit payloads for the paper's attack scenarios.

Each payload is attacker code that runs inside a hijacked compartment
(see :mod:`repro.attacks.exploit`).  Payloads reuse the compartment's own
driver objects to keep the protocol flowing — the simulation's equivalent
of return-to-own-code shellcode — and record whatever they can steal in
the campaign :class:`~repro.attacks.exploit.Loot`.

The same payload attacked at the same point in the protocol succeeds or
fails purely on the compartment's privileges, which is the paper's
thesis:

=============================  =======================================
Partitioning                   ``steal_session_key`` outcome
=============================  =======================================
monolithic                     private key AND session key stolen
Figure 2 (simple)              session key stolen (gate returns it);
                               private key out of reach
Figures 3-5 (mitm)             nothing: key unreadable, gates give one
                               boolean, no oracle
=============================  =======================================
"""

from __future__ import annotations

from repro.attacks.exploit import registry
from repro.core.errors import WedgeError
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.primes import int_to_bytes
from repro.tls.handshake import HS_CLIENT_HELLO, parse_handshake

PAYLOAD_STEAL_PRIVATE_KEY = "steal-private-key"
PAYLOAD_STEAL_SESSION_KEY = "steal-session-key"
PAYLOAD_PROBE_FINE_PARTITION = "probe-fine-partition"
PAYLOAD_HANDLER_LEAK = "handler-leak"


def _original_hello(api):
    """The hello the legitimate client actually sent.

    In the MITM campaign the attacker rewrites the hello on the wire and
    embeds the *original* bytes in the blob (``api.data``), so the
    hijacked compartment can keep the client's transcript consistent.  In
    a direct attack the attacker is the client: its own hello (in the
    context) is the original.
    """
    if api.data:
        body = api.data
    else:
        body = api.context["hello_bytes"]
    return parse_handshake(body, expect=HS_CLIENT_HELLO), body


@registry.register(PAYLOAD_STEAL_PRIVATE_KEY)
def steal_private_key(api):
    """Sweep the compartment's readable memory for the RSA private key.

    The attacker knows the server's *public* modulus from the
    certificate, so it scans for the modulus bytes and parses the
    serialised private key around the hit — exactly what real memory
    disclosure exploits do with key material.
    """
    pub = RsaPublicKey.from_bytes(api.context.get("pub_bytes")
                                  or api.data)
    needle = int_to_bytes(pub.n)
    hits = api.scan_all_memory(needle)
    for seg_name, offset in hits:
        for seg in api.kernel.space.segments():
            if seg.name != seg_name:
                continue
            start = max(0, offset - 2)
            blob = api.try_read(seg.base + start,
                                min(seg.size - start, 4096),
                                what=f"key bytes in {seg_name!r}")
            if blob is None:
                continue
            try:
                key = RsaPrivateKey.from_bytes(blob)
            except WedgeError:
                continue
            if key.n == pub.n:
                api.loot.grab("private_key", key.to_bytes())
                return
    api.loot.denied("private key", WedgeError("modulus not found in any "
                                              "readable segment"))


@registry.register(PAYLOAD_STEAL_SESSION_KEY)
def steal_session_key(api):
    """Finish the handshake from inside the hijacked worker; steal the
    session key if the compartment can see it; exfiltrate it.

    Against Figure 2 the driver *returns* the master secret (the gate
    hands it to the worker), so this succeeds.  Against Figures 3-5 the
    driver returns ``None`` — the key exists only in a tag this
    compartment does not map — and the read attempt faults.
    """
    driver = api.context["driver"]
    hello, hello_bytes = _original_hello(api)
    master = driver.complete(hello, hello_bytes)
    if master is not None:
        api.loot.grab("session_master", master)
        api.exfiltrate(api.context["fd"], master)
        return
    # Figures 3-5: probe for the key anyway
    state_addr = api.context.get("state_addr")
    if state_addr is not None:
        stolen = api.try_read(state_addr, 48, what="session key tag")
        if stolen is not None:
            api.loot.grab("session_master", stolen)
            api.exfiltrate(api.context["fd"], stolen)


@registry.register(PAYLOAD_PROBE_FINE_PARTITION)
def probe_fine_partition(api):
    """Everything an attacker can try from a hijacked ssl_handshake
    sthread under the Figures 3-5 partitioning — the paper's claim is
    that none of it yields the session key or an oracle.
    """
    kernel = api.kernel
    gates = api.context["gates"]
    state_addr = api.context["state_addr"]
    finished_addr = api.context["finished_addr"]
    driver = api.context["driver"]

    # 1. complete the handshake so the session (and the key) exists
    hello, hello_bytes = _original_hello(api)
    driver.complete(hello, hello_bytes)

    # 2. direct read of the session key tag -> protection violation
    stolen = api.try_read(state_addr, 48, what="session key tag")
    if stolen is not None:
        api.loot.grab("session_master", stolen)
        api.exfiltrate(api.context["fd"], stolen)

    # 3. the finished-state tag is equally unreachable
    fin = api.try_read(finished_addr, 32, what="finished_state tag")
    if fin is not None:
        api.loot.grab("finished_state", fin)

    # 4. try receive_finished as a decryption oracle: feed it ciphertext;
    #    it returns only ok=False — record what came back
    probe = driver._gate_arg(wire=b"\x00" * 64,
                             transcript_hash=b"\x00" * 32)
    reply = api.try_cgate(gates["receive_finished_gate"], None, probe,
                          what="decryption oracle")
    if reply is not None:
        api.loot.grab("oracle_reply", tuple(sorted(reply.items())))

    # 5. try send_finished as an encryption oracle: it takes no payload,
    #    so there is nothing to encrypt on the attacker's behalf
    reply = api.try_cgate(gates["send_finished_gate"], None,
                          driver._gate_arg(), what="encryption oracle")
    if reply is not None:
        api.loot.grab("send_finished_bytes", reply.get("wire"))

    # 6. sweep every segment for the handshake-done flag byte pattern;
    #    the sweep itself shows how little of the machine this
    #    compartment can map (the denials land in the loot)
    hits = api.scan_all_memory(b"\x03")
    api.loot.grab("scan_hits", hits)


PAYLOAD_KV_STORE_THIEF = "kv-store-thief"
PAYLOAD_CGI_RESIDUE = "cgi-residue"


@registry.register(PAYLOAD_KV_STORE_THIEF)
def kv_store_thief(api):
    """Everything a hijacked kv command parser can try.

    ================   ===========  ==========================
    loot / probe       kv-mono      kv (wedge)
    ================   ===========  ==========================
    store sweep        whole store  denied (tag unmapped)
    kv-store/kv-meta   n/a*         denied (both tags refused)
    eviction gate      n/a*         denied (id not delegated)
    raw client write   succeeds     denied (fd grant read-only)
    ================   ===========  ==========================

    (* the monolithic build has no tags or gates to probe — the sweep
    already yields the whole store from main's heap.)

    ``api.data`` carries a value the attacker knows is stored (its own
    earlier ``SET``, or a leaked fragment) as the sweep needle.
    """
    kernel = api.kernel
    needle = api.data or b"wedge"
    api.loot.grab("store_hits", api.scan_all_memory(needle))
    denied = []
    for seg in kernel.space.segments():
        if seg.name in ("kv-store", "kv-meta"):
            if api.try_read(seg.base, 64,
                            what=f"{seg.name} tag") is None:
                denied.append(seg.name)
    api.loot.grab("denied_tags", sorted(denied))
    evict_id = api.context.get("evict_gate_id")
    if evict_id is not None:
        reply = api.try_cgate(evict_id, None, {"op": "pick"},
                              what="eviction gate")
        if reply is not None:
            api.loot.grab("evict_victim", reply.get("victim"))
    # the parser's client-fd grant is read-only end to end: raw
    # exfiltration over the socket must die in the fd table
    if api.try_send(api.context["fd"], b"OWNED\r\n",
                    what="client fd write") is not None:
        api.loot.grab("raw_client_write", True)


@registry.register(PAYLOAD_CGI_RESIDUE)
def cgi_residue(api):
    """Cross-request theft from a hijacked CGI handler.

    Disposable mode: the previous request's scratch tag was deleted on
    its way out, so the probe either faults (window unmapped) or — when
    the tag cache recycled that segment into *this* request's scratch —
    reads back freshly scrubbed zeros (paper §4.1: reuse scrubs the
    payload bytes).  Either way no residue is recoverable, and the key
    read faults.  Inline mode: the persistent scratch still holds the
    previous request's body and the server's RSA key sits one heap
    read away.

    The blob travels inside the request path, so httpd's request-line
    and hello parsers see it first; the exploit is crafted against the
    dynamic-content handler and stays inert (``NOT_ARMED``) until the
    hook that carries a ``cgi_mode`` context fires.
    """
    if api.context.get("cgi_mode") is None:
        from repro.attacks.exploit import NOT_ARMED
        return NOT_ARMED
    prev = api.context.get("prev")
    if prev is not None:
        blob = api.try_read(
            prev["addr"], prev["len"],
            what=f"previous request's scratch ({prev['tag']})")
        if blob is not None:
            # exfiltrate whatever the window held; the attack tests
            # judge whether any cross-request bytes are actually in it
            # (disposable mode: scrubbed zeros + allocator bookkeeping,
            # inline mode: the previous request's length-prefixed body)
            api.loot.grab("scratch_window", bytes(blob))
    key_buf = api.context.get("key_buf")
    if key_buf is not None:
        stolen = api.try_read(key_buf.addr, key_buf.size,
                              what="server RSA key")
        if stolen is not None:
            api.loot.grab("cgi_private_key", bytes(stolen))
    api.loot.grab("cgi_hijacked", api.context.get("cgi_mode"))


PAYLOAD_SSHD_RECON = "sshd-recon"


@registry.register(PAYLOAD_SSHD_RECON)
def sshd_recon(api):
    """Full reconnaissance from a hijacked pre-auth sshd compartment.

    Attempts every theft the paper's OpenSSH section discusses; what
    succeeds depends entirely on the architecture:

    ====================  ==========  =========  ======
    loot / probe          monolithic  privsep    wedge
    ====================  ==========  =========  ======
    host private key      stolen      scrubbed   denied (tag unmapped)
    PAM scratch residue   n/a*        stolen     denied
    username probe        leak        leak       dummy passwd
    read /etc/shadow      stolen      denied     denied (chroot+uid)
    setuid(0) directly    no-op**     denied     denied
    ====================  ==========  =========  ======

    (* the monolithic child's own heap has no residue from other
    connections; ** the monolithic child already runs as root.)
    """
    from repro.apps.sshd.pam import SCRATCH_MARKER
    from repro.crypto.dsa import DsaPrivateKey, DsaPublicKey
    from repro.core.errors import SyscallDenied, VfsError
    kernel = api.kernel

    # 1. sweep readable memory for a serialised DSA private key and
    #    check it against the advertised host public key
    host_pub = DsaPublicKey.from_bytes(api.context["host_pub_bytes"])
    for seg_name, offset in api.scan_all_memory(DsaPrivateKey.MAGIC):
        for seg in kernel.space.segments():
            if seg.name != seg_name:
                continue
            blob = api.try_read(seg.base + offset, 512,
                                what=f"host key in {seg_name!r}")
            if blob is None:
                continue
            try:
                key = DsaPrivateKey.from_bytes(blob)
            except WedgeError:
                continue
            if key.y == host_pub.y:
                api.loot.grab("host_private_key", key.to_bytes())

    # 2. sweep for PAM scratch residue (other users' passwords)
    for seg_name, offset in api.scan_all_memory(SCRATCH_MARKER):
        for seg in kernel.space.segments():
            if seg.name != seg_name:
                continue
            blob = api.try_read(seg.base + offset, 128,
                                what=f"pam residue in {seg_name!r}")
            if blob is not None:
                residue = blob.split(b"\x00")[0]
                api.loot.grab("pam_residue", residue)

    # 3. probe the user database for a username oracle
    probes = {}
    monitor = api.context.get("monitor")
    gates = api.context.get("gates")
    if monitor is not None:
        probes["alice"] = monitor.getpwnam("alice") is not None
        probes["zz-no-such-user"] = \
            monitor.getpwnam("zz-no-such-user") is not None
    elif gates is not None and "password_gate" in gates:
        for user in ("alice", "zz-no-such-user"):
            reply = api.try_cgate(gates["password_gate"], None,
                                  {"op": "getpwnam", "user": user},
                                  what="getpwnam gate")
            probes[user] = (reply is not None
                            and reply.get("passwd") is not None)
    else:
        shadow = api.context.get("shadow_reader")
        if shadow is not None:
            probes = shadow()
    if probes:
        api.loot.grab("username_probe", probes)
        api.loot.grab("username_oracle",
                      probes.get("alice") != probes.get("zz-no-such-user"))

    # 4. try to read /etc/shadow directly
    try:
        fd = kernel.open("/etc/shadow", "r")
        api.loot.grab("shadow_file", kernel.read(fd, 65536))
        kernel.close(fd)
    except (VfsError, SyscallDenied) as exc:
        api.loot.denied("/etc/shadow", exc)

    # 5. try to become root / a user without authenticating
    try:
        kernel.setuid(0)
        api.loot.grab("setuid_root", kernel.getuid() == 0)
    except (SyscallDenied, WedgeError) as exc:
        api.loot.denied("setuid(0)", exc)
    api.loot.grab("uid_after_probe", kernel.getuid())

    # 6. try the user's private file (auth bypass check)
    try:
        fd = kernel.open("/home/alice/secret.txt", "r")
        api.loot.grab("alice_secret", kernel.read(fd, 4096))
        kernel.close(fd)
    except (VfsError, SyscallDenied) as exc:
        api.loot.denied("alice's secret", exc)


@registry.register(PAYLOAD_HANDLER_LEAK)
def handler_leak(api):
    """Exploit of client_handler (requires a validly MAC'ed request, i.e.
    a malicious authenticated client).  Defense in depth: no raw network
    write, no key material — plaintext can leave only through ssl_write,
    sealed to the attacker's own session.
    """
    state_addr = api.context["state_addr"]
    stolen = api.try_read(state_addr, 48, what="session key tag")
    if stolen is not None:
        api.loot.grab("session_master", stolen)
    # raw exfiltration needs network write, which this sthread lacks
    # under the fresh-gate partitioning
    api.exfiltrate(api.context["fd"], b"handler-was-here")
    api.loot.grab("handler_hijacked", True)
