"""Attack harness: in-compartment exploits and man-in-the-middle.

Implements the paper's threat models so the security claims of each
partitioning can be tested end to end: exploited compartments run
attacker code under their own security context, and a network interposer
can eavesdrop, rewrite and inject frames.
"""

from repro.attacks.exploit import (EXPLOIT_MAGIC, LOOT_PREFIX, ExploitApi,
                                   ExploitTakeover, Loot,
                                   make_exploit_blob,
                                   maybe_trigger_exploit, registry,
                                   start_campaign)
from repro.attacks.mitm import MitmAttacker, MitmSession, passive_tap

__all__ = ["EXPLOIT_MAGIC", "ExploitApi", "ExploitTakeover", "LOOT_PREFIX",
           "Loot", "MitmAttacker", "MitmSession", "make_exploit_blob",
           "maybe_trigger_exploit", "passive_tap", "registry",
           "start_campaign"]
