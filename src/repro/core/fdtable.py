"""File descriptors: open-file descriptions and per-sthread fd tables.

Like UNIX, a descriptor number indexes a per-sthread table whose entries
reference shared *open file descriptions* (so a dup'ed file shares its
offset).  Unlike plain UNIX, each table entry also carries the Wedge
permission bits granted by the sthread's security policy — the kernel
checks them on every read/write (paper section 3.1: "the file descriptors
the sthread may access, and the permissions for each").
"""

from __future__ import annotations

from repro.core.errors import (BadFileDescriptor, ConnectionClosed,
                               FdPermissionError)
from repro.core.policy import FD_READ, FD_RW, FD_WRITE


class OpenFile:
    """Base class for shared open-file descriptions."""

    kind = "file"

    def __init__(self):
        self.refcount = 0

    def incref(self):
        self.refcount += 1

    def decref(self):
        self.refcount -= 1
        if self.refcount <= 0:
            self.on_last_close()

    def on_last_close(self):
        pass

    def read(self, size):
        raise BadFileDescriptor(f"{self.kind} is not readable")

    def write(self, data):
        raise BadFileDescriptor(f"{self.kind} is not writable")


class VfsOpenFile(OpenFile):
    """An open regular file with a shared offset."""

    kind = "vfs"

    def __init__(self, node, path, *, append=False):
        super().__init__()
        self.node = node
        self.path = path
        self.offset = len(node.data) if append else 0

    def read(self, size):
        data = bytes(self.node.data[self.offset:self.offset + size])
        self.offset += len(data)
        return data

    def write(self, data):
        end = self.offset + len(data)
        if end > len(self.node.data):
            self.node.data.extend(b"\x00" * (end - len(self.node.data)))
        self.node.data[self.offset:end] = data
        self.offset = end
        return len(data)

    def seek(self, offset):
        self.offset = offset


class SocketOpenFile(OpenFile):
    """A connected simulated stream socket."""

    kind = "socket"

    def __init__(self, sock):
        super().__init__()
        self.sock = sock

    def read(self, size):
        data = self.sock.recv(size)
        if data is None:
            raise ConnectionClosed("peer closed the connection")
        return data

    def write(self, data):
        self.sock.send(data)
        return len(data)

    def on_last_close(self):
        self.sock.close()


class ListenerOpenFile(OpenFile):
    """A listening socket; ``accept`` happens at the kernel layer."""

    kind = "listener"

    def __init__(self, listener):
        super().__init__()
        self.listener = listener

    def on_last_close(self):
        self.listener.close()


class PipeOpenFile(OpenFile):
    """One end of an in-kernel pipe (used by the privsep IPC)."""

    kind = "pipe"

    def __init__(self, stream, *, readable):
        super().__init__()
        self.stream = stream
        self.readable = readable

    def read(self, size):
        if not self.readable:
            raise BadFileDescriptor("write end of pipe is not readable")
        data = self.stream.recv(size)
        if data is None:
            raise ConnectionClosed("pipe closed")
        return data

    def write(self, data):
        if self.readable:
            raise BadFileDescriptor("read end of pipe is not writable")
        self.stream.send(data)
        return len(data)

    def on_last_close(self):
        self.stream.close()


class DiskOpenFile(OpenFile):
    """A simulated block device (:class:`repro.disk.SimDisk`).

    Disk I/O is offset-addressed and barrier-ordered, so it goes through
    the dedicated ``disk_read``/``disk_write``/``disk_fsync`` syscalls
    rather than the streaming ``read``/``write`` pair; using the latter
    on a disk fd is a type error, reported as such.  The device outlives
    every kernel that opens it — ``on_last_close`` is deliberately a
    no-op: closing the descriptor (or killing the kernel) never destroys
    the platter.
    """

    kind = "disk"

    def __init__(self, disk):
        super().__init__()
        self.disk = disk

    def read(self, size):
        raise BadFileDescriptor(
            "disk fds are offset-addressed: use disk_read")

    def write(self, data):
        raise BadFileDescriptor(
            "disk fds are offset-addressed: use disk_write")


class FdEntry:
    __slots__ = ("file", "perms")

    def __init__(self, file, perms):
        self.file = file
        self.perms = perms


class FdTable:
    """Per-sthread descriptor table with Wedge permission bits."""

    def __init__(self):
        import threading
        self._entries = {}
        self._next_fd = 3  # 0-2 reserved, as a nod to stdio
        # a master serving concurrent connections installs/accepts from
        # several dispatcher threads at once
        self._lock = threading.Lock()

    def install(self, file, perms=FD_RW, *, fd=None):
        """Install *file* and return its descriptor number."""
        with self._lock:
            if fd is None:
                fd = self._next_fd
                self._next_fd += 1
            else:
                self._next_fd = max(self._next_fd, fd + 1)
            file.incref()
            self._entries[fd] = FdEntry(file, perms)
            return fd

    def lookup(self, fd, needed=0):
        entry = self._entries.get(fd)
        if entry is None:
            raise BadFileDescriptor(f"fd {fd} is not open")
        if needed & ~entry.perms:
            need = []
            if needed & FD_READ and not entry.perms & FD_READ:
                need.append("read")
            if needed & FD_WRITE and not entry.perms & FD_WRITE:
                need.append("write")
            raise FdPermissionError(
                f"fd {fd} lacks {'/'.join(need)} permission "
                f"under this sthread's policy")
        return entry

    def close(self, fd):
        entry = self._entries.pop(fd, None)
        if entry is None:
            raise BadFileDescriptor(f"fd {fd} is not open")
        entry.file.decref()

    def close_all(self):
        for fd in list(self._entries):
            self.close(fd)

    def dup_subset(self, fd_perms, *, costs=None):
        """Build a child table holding only the policy-granted fds.

        *fd_perms* maps fd number -> permission bits (already validated as
        a subset of this table's own bits by the policy layer).
        """
        child = FdTable()
        for fd, perms in fd_perms.items():
            entry = self._entries.get(fd)
            if entry is None:
                raise BadFileDescriptor(
                    f"policy grants fd {fd} which is not open in parent")
            child.install(entry.file, perms, fd=fd)
        if costs is not None and fd_perms:
            costs.charge("fd_copy", len(fd_perms))
        return child

    def dup_all(self, *, costs=None):
        """Full copy (what ``fork`` does)."""
        child = FdTable()
        for fd, entry in self._entries.items():
            child.install(entry.file, entry.perms, fd=fd)
        if costs is not None and self._entries:
            costs.charge("fd_copy", len(self._entries))
        return child

    def perms_of(self, fd):
        """Permission bits held on *fd* (0 if not open)."""
        entry = self._entries.get(fd)
        return entry.perms if entry is not None else 0

    def fds(self):
        return sorted(self._entries)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, fd):
        return fd in self._entries
