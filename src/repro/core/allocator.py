"""Boundary-tag heap allocator used by ``smalloc`` and private heaps.

The paper derives ``smalloc`` from dlmalloc (section 4.1).  This module is
a compact allocator in the same family: in-band chunk headers and footers
(boundary tags), an explicit doubly-linked free list threaded through free
chunks' payloads, first-fit search, splitting, and immediate coalescing
with both neighbours on free.

All bookkeeping lives *inside the segment's bytes*.  That matters for two
paper mechanisms:

* the tag free-list cache scrubs a reused tag by copying a cached,
  pre-initialised bookkeeping image over it rather than re-running
  initialisation (section 4.1) — which only works if initialisation state
  is a pure function of the segment bytes; and
* a callgate's scratch allocations are unreachable by its caller simply
  because the backing segment is not in the caller's page table — no
  allocator-level cooperation needed (the PAM lesson, section 5.2).

Chunk layout (all fields little-endian uint32):

    offset 0   size        total chunk size including header/footer
    offset 4   flags       bit 0: in use
    offset 8   payload...  (free chunks: next_free, prev_free here)
    size-4     size        footer copy of size (free chunks only need it,
                           but we maintain it always for simplicity)

Offsets handed to callers point at the payload (header + 8).
"""

from __future__ import annotations

import struct

from repro.core.errors import AllocationError, OutOfMemory

HEADER = 8          # size + flags
FOOTER = 4          # trailing size copy
OVERHEAD = HEADER + FOOTER
MIN_PAYLOAD = 8     # room for the two free-list links
MIN_CHUNK = HEADER + MIN_PAYLOAD + FOOTER
ALIGN = 8

FLAG_INUSE = 1

_U32 = struct.Struct("<I")
_FREE_NIL = 0xFFFFFFFF


def _align_up(n, align=ALIGN):
    return (n + align - 1) & ~(align - 1)


class Heap:
    """An allocator over a region exposing ``read_raw``/``write_raw``.

    The region is normally a :class:`~repro.core.memory.Segment`; the
    allocator never touches anything outside ``[0, capacity)``.
    """

    def __init__(self, region, capacity=None, *, costs=None):
        self.region = region
        self.capacity = capacity if capacity is not None else region.size
        if self.capacity < MIN_CHUNK + 8:
            raise ValueError("heap region too small")
        self._costs = costs

    # -- raw field helpers ----------------------------------------------------

    def _get_u32(self, off):
        return _U32.unpack(self.region.read_raw(off, 4))[0]

    def _set_u32(self, off, value):
        self.region.write_raw(off, _U32.pack(value))

    # Heap-global state lives in the first 8 bytes: free-list head and a
    # magic word so a formatted heap is recognisable.
    _MAGIC_OFF = 0
    _HEAD_OFF = 4
    _ARENA = 8
    _MAGIC = 0x57454447  # "WEDG"

    def format(self):
        """Initialise bookkeeping: one big free chunk spanning the arena.

        Returns the number of bookkeeping bytes written, which the tag
        layer charges as ``alloc_init_byte`` work.
        """
        arena_size = _align_up(self.capacity - self._ARENA, ALIGN) - ALIGN
        arena_size = min(arena_size, self.capacity - self._ARENA)
        first = self._ARENA
        self._set_u32(self._MAGIC_OFF, self._MAGIC)
        self._write_free_chunk(first, arena_size, nxt=_FREE_NIL,
                               prv=_FREE_NIL)
        self._set_u32(self._HEAD_OFF, first)
        return 8 + HEADER + 8 + FOOTER

    def is_formatted(self):
        return self._get_u32(self._MAGIC_OFF) == self._MAGIC

    def bookkeeping_extents(self):
        """Byte ranges holding a freshly formatted heap's bookkeeping.

        The tag reuse cache copies exactly these ranges (the heap-global
        words, the initial chunk's header and free links, and its footer)
        to scrub a recycled segment back to pristine state.
        """
        arena_size = self._arena_size()
        return [
            (0, self._ARENA + HEADER + 8),
            (self._ARENA + arena_size - FOOTER, FOOTER),
        ]

    # -- chunk accessors --------------------------------------------------------

    def _chunk_size(self, chunk):
        return self._get_u32(chunk)

    def _chunk_flags(self, chunk):
        return self._get_u32(chunk + 4)

    def _chunk_inuse(self, chunk):
        return bool(self._chunk_flags(chunk) & FLAG_INUSE)

    def _write_header(self, chunk, size, flags):
        self._set_u32(chunk, size)
        self._set_u32(chunk + 4, flags)
        self._set_u32(chunk + size - FOOTER, size)

    def _write_free_chunk(self, chunk, size, nxt, prv):
        self._write_header(chunk, size, 0)
        self._set_u32(chunk + HEADER, nxt)
        self._set_u32(chunk + HEADER + 4, prv)

    def _free_next(self, chunk):
        return self._get_u32(chunk + HEADER)

    def _free_prev(self, chunk):
        return self._get_u32(chunk + HEADER + 4)

    def _set_free_next(self, chunk, nxt):
        self._set_u32(chunk + HEADER, nxt)

    def _set_free_prev(self, chunk, prv):
        self._set_u32(chunk + HEADER + 4, prv)

    # -- free-list maintenance -----------------------------------------------------

    def _free_head(self):
        return self._get_u32(self._HEAD_OFF)

    def _push_free(self, chunk):
        head = self._free_head()
        self._set_free_next(chunk, head)
        self._set_free_prev(chunk, _FREE_NIL)
        if head != _FREE_NIL:
            self._set_free_prev(head, chunk)
        self._set_u32(self._HEAD_OFF, chunk)

    def _unlink_free(self, chunk):
        nxt = self._free_next(chunk)
        prv = self._free_prev(chunk)
        if prv != _FREE_NIL:
            self._set_free_next(prv, nxt)
        else:
            self._set_u32(self._HEAD_OFF, nxt)
        if nxt != _FREE_NIL:
            self._set_free_prev(nxt, prv)

    # -- public interface --------------------------------------------------------

    def alloc(self, size):
        """Allocate *size* bytes; return the payload offset.

        First-fit over the explicit free list, splitting when the
        remainder can hold another minimal chunk.
        """
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        if self._costs is not None:
            self._costs.charge("alloc_op")
        need = _align_up(max(size, MIN_PAYLOAD)) + OVERHEAD
        chunk = self._free_head()
        while chunk != _FREE_NIL:
            csize = self._chunk_size(chunk)
            if csize >= need:
                self._unlink_free(chunk)
                remainder = csize - need
                if remainder >= MIN_CHUNK:
                    self._write_header(chunk, need, FLAG_INUSE)
                    rest = chunk + need
                    self._write_free_chunk(rest, remainder, _FREE_NIL,
                                           _FREE_NIL)
                    self._push_free(rest)
                else:
                    self._write_header(chunk, csize, FLAG_INUSE)
                return chunk + HEADER
            chunk = self._free_next(chunk)
        raise OutOfMemory(
            f"no free chunk of {size} bytes in region "
            f"{getattr(self.region, 'name', '?')!r}")

    def free(self, payload_off):
        """Free the chunk whose payload starts at *payload_off*."""
        chunk = payload_off - HEADER
        self._check_chunk(chunk, expect_inuse=True)
        if self._costs is not None:
            self._costs.charge("alloc_op")
        size = self._chunk_size(chunk)

        # coalesce with right neighbour
        right = chunk + size
        if right + HEADER <= self._ARENA + self._arena_size():
            if not self._chunk_inuse(right):
                self._unlink_free(right)
                size += self._chunk_size(right)

        # coalesce with left neighbour (via its footer)
        if chunk > self._ARENA:
            left_size = self._get_u32(chunk - FOOTER)
            left = chunk - left_size
            if (left >= self._ARENA and left_size >= MIN_CHUNK
                    and not self._chunk_inuse(left)):
                self._unlink_free(left)
                chunk = left
                size += left_size

        self._write_free_chunk(chunk, size, _FREE_NIL, _FREE_NIL)
        self._push_free(chunk)

    def usable_size(self, payload_off):
        chunk = payload_off - HEADER
        self._check_chunk(chunk, expect_inuse=True)
        return self._chunk_size(chunk) - OVERHEAD

    def _arena_size(self):
        arena_size = _align_up(self.capacity - self._ARENA, ALIGN) - ALIGN
        return min(arena_size, self.capacity - self._ARENA)

    def _check_chunk(self, chunk, *, expect_inuse):
        end = self._ARENA + self._arena_size()
        if chunk < self._ARENA or chunk + MIN_CHUNK > end + 1:
            raise AllocationError(f"offset {chunk} is not a chunk")
        size = self._chunk_size(chunk)
        if size < MIN_CHUNK or chunk + size > end:
            raise AllocationError(
                f"corrupt chunk header at offset {chunk} (size={size})")
        if expect_inuse and not self._chunk_inuse(chunk):
            raise AllocationError(f"double free at offset {chunk}")

    # -- introspection (tests and Crowbar) --------------------------------------------

    def walk(self):
        """Yield ``(offset, size, inuse)`` for every chunk in order."""
        chunk = self._ARENA
        end = self._ARENA + self._arena_size()
        while chunk + HEADER <= end:
            size = self._chunk_size(chunk)
            if size < MIN_CHUNK or chunk + size > end:
                break
            yield chunk, size, self._chunk_inuse(chunk)
            chunk += size

    def free_bytes(self):
        return sum(size - OVERHEAD for _, size, inuse in self.walk()
                   if not inuse)

    def inuse_chunks(self):
        return [(off + HEADER, size - OVERHEAD)
                for off, size, inuse in self.walk() if inuse]

    def check_invariants(self):
        """Verify heap consistency; raise AllocationError on corruption.

        Checked invariants: chunks tile the arena exactly; footers match
        headers; no two adjacent free chunks (coalescing is complete); the
        free list contains exactly the free chunks.
        """
        chunks = list(self.walk())
        pos = self._ARENA
        prev_free = False
        free_offsets = set()
        for off, size, inuse in chunks:
            if off != pos:
                raise AllocationError(f"gap or overlap at offset {off}")
            footer = self._get_u32(off + size - FOOTER)
            if footer != size:
                raise AllocationError(f"footer mismatch at offset {off}")
            if not inuse:
                if prev_free:
                    raise AllocationError(
                        f"adjacent free chunks at offset {off}")
                free_offsets.add(off)
            prev_free = not inuse
            pos += size
        if pos != self._ARENA + self._arena_size():
            raise AllocationError("chunks do not tile the arena")
        # free list agreement
        listed = set()
        chunk = self._free_head()
        while chunk != _FREE_NIL:
            if chunk in listed:
                raise AllocationError("cycle in free list")
            listed.add(chunk)
            chunk = self._free_next(chunk)
        if listed != free_offsets:
            raise AllocationError("free list does not match free chunks")
