"""A small in-memory filesystem with uid-based permissions and chroot.

The OpenSSH partitioning depends on filesystem semantics: the password
callgate reads ``/etc/shadow`` directly from disk *because it inherits the
filesystem root and uid of its creator, not of its caller* (paper section
5.2), and workers are confined to an empty chroot.  This VFS provides just
enough for that: absolute paths, per-file owner uid and mode bits, and
root-prefix resolution for chrooted sthreads.
"""

from __future__ import annotations

import posixpath

from repro.core.errors import VfsError


def _normalize(path):
    if not path.startswith("/"):
        raise VfsError(f"path must be absolute: {path!r}")
    norm = posixpath.normpath(path)
    return "/" if norm in ("", "/") else norm


class VfsFile:
    """One regular file: bytes plus owner uid and a UNIX-ish mode."""

    def __init__(self, data=b"", *, owner=0, mode=0o644):
        self.data = bytearray(data)
        self.owner = owner
        self.mode = mode

    def readable_by(self, uid):
        if uid == 0 or uid == self.owner:
            return bool(self.mode & 0o400)
        return bool(self.mode & 0o004)

    def writable_by(self, uid):
        if uid == 0:
            return True
        if uid == self.owner:
            return bool(self.mode & 0o200)
        return bool(self.mode & 0o002)


class Vfs:
    """Path → file map; directories exist implicitly."""

    def __init__(self):
        self._files = {}
        self._dirs = {"/"}

    # -- population (setup code, runs as the simulated root) -------------------

    def mkdir(self, path):
        path = _normalize(path)
        parts = path.strip("/").split("/")
        cur = ""
        for part in parts:
            cur += "/" + part
            self._dirs.add(cur)
        return path

    def write_file(self, path, data, *, owner=0, mode=0o644):
        path = _normalize(path)
        self.mkdir(posixpath.dirname(path) or "/")
        self._files[path] = VfsFile(data, owner=owner, mode=mode)
        return path

    # -- resolution --------------------------------------------------------------

    def resolve(self, root, path):
        """Join a chroot *root* and an in-jail *path* to a real path.

        ``..`` cannot escape the jail: the path is normalised before the
        root prefix is applied.
        """
        path = _normalize(path)
        root = _normalize(root or "/")
        if root == "/":
            return path
        return _normalize(root + path)

    # -- access (already-resolved real paths) ---------------------------------------

    def exists(self, path):
        path = _normalize(path)
        return path in self._files or path in self._dirs

    def is_dir(self, path):
        return _normalize(path) in self._dirs

    def lookup(self, path):
        path = _normalize(path)
        node = self._files.get(path)
        if node is None:
            raise VfsError(f"no such file: {path}")
        return node

    def open_read(self, path, uid):
        node = self.lookup(path)
        if not node.readable_by(uid):
            raise VfsError(f"permission denied reading {path} (uid={uid})")
        return node

    def open_write(self, path, uid, *, create=True, truncate=False):
        path = _normalize(path)
        node = self._files.get(path)
        if node is None:
            if not create:
                raise VfsError(f"no such file: {path}")
            self.mkdir(posixpath.dirname(path) or "/")
            node = VfsFile(owner=uid)
            self._files[path] = node
        elif not node.writable_by(uid):
            raise VfsError(f"permission denied writing {path} (uid={uid})")
        if truncate:
            node.data = bytearray()
        return node

    def unlink(self, path, uid):
        node = self.lookup(path)
        if not node.writable_by(uid):
            raise VfsError(f"permission denied unlinking {path}")
        del self._files[_normalize(path)]

    def listdir(self, path):
        path = _normalize(path)
        if path not in self._dirs:
            raise VfsError(f"no such directory: {path}")
        prefix = path if path.endswith("/") else path + "/"
        names = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                names.add(candidate[len(prefix):].split("/")[0])
        return sorted(names)
