"""Exception hierarchy for the Wedge simulation.

Every fault that the real Wedge kernel would deliver as a signal (e.g. a
SIGSEGV on a page-protection violation) is modelled as a Python exception
raised at the offending simulated operation.  Compartment runners catch
:class:`CompartmentFault` subclasses and terminate the compartment, exactly
as the kernel would kill a faulting sthread.
"""

from __future__ import annotations


class WedgeError(Exception):
    """Base class for every error raised by the simulation."""


class CompartmentFault(WedgeError):
    """A fault that terminates the compartment in which it occurred.

    Corresponds to the class of errors the real kernel delivers as fatal
    signals (protection violations, bad addresses, denied syscalls).
    """


class MemoryViolation(CompartmentFault):
    """An sthread touched memory its page table does not permit.

    Mirrors a hardware page-protection fault.  Carries enough context for
    the emulation library and for tests to assert on the exact failure.
    """

    def __init__(self, message, *, addr=None, op=None, sthread=None,
                 segment=None):
        super().__init__(message)
        self.addr = addr
        self.op = op
        self.sthread = sthread
        self.segment = segment


class BadAddress(MemoryViolation):
    """An access fell outside every mapped segment (wild pointer)."""


class PolicyError(WedgeError):
    """A security-context operation violated Wedge's monotonicity rules.

    Raised when a parent tries to grant a child sthread privileges the
    parent itself does not hold, when write-only memory permissions are
    requested (unsupported, per paper section 3.1), or when a callgate's
    permissions exceed its creator's.
    """


class SyscallDenied(CompartmentFault):
    """The SELinux-lite policy denied a system call for the current SID."""

    def __init__(self, message, *, syscall=None, sid=None):
        super().__init__(message)
        self.syscall = syscall
        self.sid = sid


class FdPermissionError(CompartmentFault):
    """An sthread used a file descriptor in a mode its policy denies."""


class BadFileDescriptor(WedgeError):
    """Operation on a descriptor that is closed or was never granted."""


class VfsError(WedgeError):
    """Simulated filesystem error (missing path, permission bits, ...)."""


class AllocationError(WedgeError):
    """The tagged-memory allocator could not satisfy a request."""


class OutOfMemory(AllocationError):
    """The segment backing a tag has no chunk large enough."""


class QuotaExceeded(AllocationError):
    """A compartment hit its memory quota (the DoS-limitation
    extension; the paper's Wedge has no such mechanism, §7)."""


class TagError(WedgeError):
    """Bad tag usage: unknown tag, double delete, freeing a foreign ptr."""


class CallgateError(WedgeError):
    """Bad callgate usage: unknown gate, invocation without a grant."""


class SthreadError(WedgeError):
    """Sthread lifecycle error (double join, join of unknown thread)."""


class NetworkError(WedgeError):
    """Simulated network failure (no listener, connection reset)."""


class ConnectionClosed(NetworkError):
    """The peer closed the simulated stream."""


class ProtocolError(WedgeError):
    """A TLS/SSH/POP3 peer sent a malformed or unexpected message."""


class HandshakeFailure(ProtocolError):
    """The secure-channel handshake did not complete."""


class MacFailure(ProtocolError):
    """Record-layer MAC verification failed: the record is discarded."""


class AuthenticationFailure(ProtocolError):
    """User authentication was rejected."""


class CryptoError(WedgeError):
    """Low-level crypto failure (bad padding, bad signature encoding)."""
