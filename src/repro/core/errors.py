"""Exception hierarchy for the Wedge simulation.

Every fault that the real Wedge kernel would deliver as a signal (e.g. a
SIGSEGV on a page-protection violation) is modelled as a Python exception
raised at the offending simulated operation.  Compartment runners catch
:class:`CompartmentFault` subclasses and terminate the compartment, exactly
as the kernel would kill a faulting sthread.
"""

from __future__ import annotations


class WedgeError(Exception):
    """Base class for every error raised by the simulation."""


class CompartmentFault(WedgeError):
    """A fault that terminates the compartment in which it occurred.

    Corresponds to the class of errors the real kernel delivers as fatal
    signals (protection violations, bad addresses, denied syscalls).
    """


class MemoryViolation(CompartmentFault):
    """An sthread touched memory its page table does not permit.

    Mirrors a hardware page-protection fault.  Carries enough context for
    the emulation library and for tests to assert on the exact failure.
    """

    def __init__(self, message, *, addr=None, op=None, sthread=None,
                 segment=None):
        super().__init__(message)
        self.addr = addr
        self.op = op
        self.sthread = sthread
        self.segment = segment


class BadAddress(MemoryViolation):
    """An access fell outside every mapped segment (wild pointer)."""


class PolicyError(WedgeError):
    """A security-context operation violated Wedge's monotonicity rules.

    Raised when a parent tries to grant a child sthread privileges the
    parent itself does not hold, when write-only memory permissions are
    requested (unsupported, per paper section 3.1), or when a callgate's
    permissions exceed its creator's.
    """


class SyscallDenied(CompartmentFault):
    """The SELinux-lite policy denied a system call for the current SID."""

    def __init__(self, message, *, syscall=None, sid=None):
        super().__init__(message)
        self.syscall = syscall
        self.sid = sid


class FdPermissionError(CompartmentFault):
    """An sthread used a file descriptor in a mode its policy denies."""


class BadFileDescriptor(WedgeError):
    """Operation on a descriptor that is closed or was never granted."""


class VfsError(WedgeError):
    """Simulated filesystem error (missing path, permission bits, ...)."""


class AllocationError(WedgeError):
    """The tagged-memory allocator could not satisfy a request."""


class OutOfMemory(AllocationError):
    """The segment backing a tag has no chunk large enough."""


class QuotaExceeded(AllocationError):
    """A compartment hit its memory quota (the DoS-limitation
    extension; the paper's Wedge has no such mechanism, §7)."""


class TagError(WedgeError):
    """Bad tag usage: unknown tag, double delete, freeing a foreign ptr."""


class CallgateError(WedgeError):
    """Bad callgate usage: unknown gate, invocation without a grant."""


class SthreadError(WedgeError):
    """Sthread lifecycle error (double join, join of unknown thread)."""


class JoinTimeout(SthreadError):
    """``sthread_join`` gave up waiting; the child may still be running."""

    def __init__(self, message, *, sthread=None, timeout=None):
        super().__init__(message)
        self.sthread = sthread
        self.timeout = timeout


class SthreadFaulted(SthreadError):
    """The joined sthread died of a :class:`CompartmentFault`.

    The fault that killed the compartment is chained as ``__cause__``
    and also exposed as :attr:`fault` for callers that match on it.
    """

    def __init__(self, message, *, sthread=None, fault=None):
        super().__init__(message)
        self.sthread = sthread
        self.fault = fault


class CompartmentDown(WedgeError):
    """A supervised compartment exhausted its restart budget.

    Surfaced to callers instead of the raw fault traceback once a
    :class:`~repro.faults.RestartPolicy` declares the compartment
    *degraded*: the service keeps running, the compartment does not.
    """

    def __init__(self, message, *, name=None, restarts=None, last_fault=None):
        super().__init__(message)
        self.name = name
        self.restarts = restarts
        self.last_fault = last_fault


class CallgateDegraded(CompartmentDown):
    """A supervised callgate is terminally degraded (no more restarts)."""


class GateTimeout(CallgateError):
    """A watchdogged callgate invocation exceeded its deadline.

    The incarnation that hung is abandoned; a supervised gate may be
    restarted from the COW snapshot on the next invocation.
    """

    def __init__(self, message, *, gate_id=None, timeout=None):
        super().__init__(message)
        self.gate_id = gate_id
        self.timeout = timeout


class KernelDead(WedgeError):
    """A syscall trapped into a kernel that has been killed.

    Whole-kernel failure (the ``repro.cluster`` chaos mode) marks the
    kernel dead; every subsequent syscall on it raises this instead of
    executing, so in-flight compartments on the dead node unwind
    promptly rather than computing on a ghost.
    """

    def __init__(self, message, *, kernel=None):
        super().__init__(message)
        self.kernel = kernel


class NetworkError(WedgeError):
    """Simulated network failure (no listener, connection reset)."""


class ConnectionClosed(NetworkError):
    """The peer closed the simulated stream."""


class ConnectionRefused(NetworkError):
    """No listener at the address (or the connect was refused/raced a
    concurrent ``Listener.close``).  The typed face of every failure on
    the connect path that is *not* load shedding."""

    def __init__(self, message, *, addr=None):
        super().__init__(message)
        self.addr = addr


class ConnectionShed(NetworkError):
    """The listener's accept backlog was full: the connection was
    deterministically shed at admission (overload, not failure).

    Retryable by design — a client-side
    :class:`~repro.resilience.RetryPolicy` backs off and tries again.
    """

    def __init__(self, message, *, addr=None, backlog=None):
        super().__init__(message)
        self.addr = addr
        self.backlog = backlog


class NetTimeout(NetworkError):
    """A blocking network operation (accept/recv) exceeded its timeout."""

    def __init__(self, message, *, op=None, timeout=None):
        super().__init__(message)
        self.op = op
        self.timeout = timeout


class DeadlineExceeded(NetTimeout):
    """The request's end-to-end :class:`~repro.resilience.Deadline`
    expired before the operation completed.

    Subclasses :class:`NetTimeout` so timeout-tolerant code keeps
    working, but is *not* retryable: the whole request is out of budget,
    no per-hop retry can help.
    """

    def __init__(self, message, *, op=None, deadline=None):
        super().__init__(message, op=op, timeout=None)
        self.deadline = deadline


class PeerReset(NetworkError):
    """The connection was torn down abruptly (simulated RST)."""


class ProtocolError(WedgeError):
    """A TLS/SSH/POP3 peer sent a malformed or unexpected message."""


class HandshakeFailure(ProtocolError):
    """The secure-channel handshake did not complete."""


class MacFailure(ProtocolError):
    """Record-layer MAC verification failed: the record is discarded."""


class AuthenticationFailure(ProtocolError):
    """User authentication was rejected."""


class CryptoError(WedgeError):
    """Low-level crypto failure (bad padding, bad signature encoding)."""
