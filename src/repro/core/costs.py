"""Deterministic cost model for kernel primitives.

The paper's microbenchmarks (Figures 7 and 8) measure wall-clock latency of
primitive operations on real hardware.  This simulation does *real
proportional work* for each primitive (page-table copies, COW marking,
allocator-bookkeeping initialisation, scrubbing), so wall-clock ratios are
already meaningful — but wall-clock on an interpreted simulator is noisy.

To let benchmarks report robust, reproducible ratios alongside wall time,
the kernel also charges every operation to a :class:`CostAccount` using the
cycle weights below.  The weights are calibrated to the relative costs
reported in the paper and in the Linux sources it builds on:

* a syscall trap is a few hundred cycles;
* copying one page-table entry is tens of cycles; copying a page is ~1k;
* creating a kernel task (thread) is tens of thousands of cycles;
* a futex wake/wait round trip (recycled callgates) is ~2k cycles.

Tests pin the *ordering* and rough ratios of the model, not exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cycle weights per unit of work.  These are the model's only free
#: parameters; everything else is counted from work actually performed.
WEIGHTS = {
    "syscall": 300,           # kernel trap + return
    "task_create": 16_000,    # allocate + schedule a kernel task
    "task_destroy": 6_000,
    "mm_create": 110_000,     # mm_struct + VMA list + page-table root
    "mm_destroy": 36_000,
    "pte_copy": 40,           # copy one page-table entry
    "cow_mark": 60,           # write-protect one page for COW
    "page_copy": 1_100,       # copy one 4 KiB page
    "fd_copy": 120,           # dup one file descriptor
    "futex_roundtrip": 18_000,  # recycled-callgate wake + wait + switches
    "segment_create": 1_200,  # mmap-style VMA setup
    "segment_destroy": 600,
    "alloc_init_byte": 1,     # initialise one byte of allocator bookkeeping
    "scrub_page": 60,         # memset one 4 KiB page on tag reuse
    "alloc_op": 60,           # one malloc/smalloc/free list operation
    "policy_check": 25,       # one permission-table lookup
    "cgate_lookup": 150,      # kernel-side callgate record fetch + checks
    "tlb_hit": 2,             # translation served from the simulated TLB
    "pt_walk": 50,            # full page-table walk (TLB miss or tlb=False)
    "tlb_shootdown": 200,     # invalidate one cached translation (invlpg)
    "observe_emit": 5,        # one enabled tracepoint firing (repro.observe)
    "verified_access": 1,     # certificate-covered access (no translation)
    "verified_syscall": 30,   # certificate-allowed syscall (no policy trap)
    "cert_bind": 1_000,       # bind a policy certificate to an sthread
    "disk_sector_read": 120,    # read one sector through the buffer cache
    "disk_sector_write": 150,   # buffer one sector (DMA into the cache)
    "disk_fsync": 90_000,       # the barrier: flush + media acknowledge
}


@dataclass
class CostAccount:
    """Accumulates work counts and converts them to model cycles.

    One account exists per :class:`~repro.core.kernel.Kernel`; the
    ``checkpoint``/``delta`` helpers let benchmarks meter a single
    operation.
    """

    counters: dict = field(default_factory=dict)
    _sources: list = field(default_factory=list, repr=False)

    def charge(self, kind, units=1):
        """Charge *units* of work of the given *kind* (a WEIGHTS key)."""
        if kind not in WEIGHTS:
            raise KeyError(f"unknown cost kind: {kind!r}")
        self.counters[kind] = self.counters.get(kind, 0) + units

    def register_source(self, drain):
        """Register a batched-work source: a callable returning
        ``{kind: units}`` of work counted since its last call.

        Hot paths (the memory bus's per-access TLB accounting) tally
        work in plain integers and surface it here lazily, so charging
        one access costs an integer increment instead of a dict update.
        The batched work is absorbed into :attr:`counters` whenever the
        account is observed (:meth:`cycles` / :meth:`checkpoint`).
        """
        self._sources.append(drain)

    def _absorb(self):
        for drain in self._sources:
            for kind, units in drain().items():
                if units:
                    self.counters[kind] = self.counters.get(kind, 0) + units

    def cycles(self):
        """Total model cycles charged so far."""
        self._absorb()
        return sum(WEIGHTS[k] * units for k, units in self.counters.items())

    def checkpoint(self):
        """Snapshot the counters; pass the result to :meth:`delta`."""
        self._absorb()
        return dict(self.counters)

    def delta(self, checkpoint):
        """Model cycles charged since *checkpoint*."""
        then = sum(WEIGHTS[k] * v for k, v in checkpoint.items())
        return self.cycles() - then

    def reset(self):
        self._absorb()   # batched work before the reset dies with it
        self.counters.clear()


class NullAccount(CostAccount):
    """A cost account that ignores charges (used by raw workload runs)."""

    def charge(self, kind, units=1):  # noqa: D102 - intentionally inert
        pass

    def register_source(self, drain):  # noqa: D102 - intentionally inert
        pass
