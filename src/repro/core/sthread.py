"""Sthread objects: compartments with a thread of control and a policy.

An :class:`Sthread` bundles the paper's section 3.1 state: a page table
built strictly from the security context it was created with, a private
stack and heap, a file-descriptor table holding only policy-granted
descriptors, the set of callgates it may invoke, and UNIX uid / filesystem
root / SELinux SID.

The *thread of control* has two spawn modes (see DESIGN.md): ``"thread"``
runs the body on a real OS thread (servers need master/worker overlap);
``"inline"`` runs it synchronously for deterministic tests and
microbenchmarks.  Either way the body executes with this sthread as the
current compartment, and a :class:`~repro.core.errors.CompartmentFault`
terminates only this compartment.
"""

from __future__ import annotations

import threading

from repro.core.errors import CompartmentFault, JoinTimeout, SthreadError
from repro.core.memory import PAGE_SIZE, PageTable
from repro.observe.events import STHREAD_EXIT

#: Default private-region sizes (paper: every sthread receives a private
#: stack and heap as part of its pristine snapshot).
STACK_SIZE = 8 * PAGE_SIZE
HEAP_SIZE = 32 * PAGE_SIZE

STATUS_NEW = "new"
STATUS_RUNNING = "running"
STATUS_EXITED = "exited"
STATUS_FAULTED = "faulted"
STATUS_ERROR = "error"


class Sthread:
    """One compartment.  Created only by the kernel; never directly."""

    def __init__(self, sid_counter, name, ctx, *, uid, root, sel_sid,
                 kind="sthread", parent=None):
        self.id = sid_counter
        self.name = name or f"sthread{sid_counter}"
        self.ctx = ctx                      # effective SecurityContext
        self.kind = kind                    # sthread | process | pthread | callgate
        self.parent = parent
        self.uid = uid
        self.root = root
        self.sel_sid = sel_sid
        self.table = PageTable(owner_name=self.name)
        self.fdtable = None                 # set by the kernel
        self.gates = set()                  # callgate ids this sthread may invoke
        self.heap_segment = None
        self.stack_segment = None
        self.stack_sp = 0                   # bump pointer into the stack
        self.stack_frames = []              # (func_name, saved_sp, base_off)
        self.smalloc_tag = None             # smalloc_on state
        self.alloc_bytes = 0                # live allocation accounting
        self.status = STATUS_NEW
        self.result = None
        self.fault = None
        self.error = None
        #: current trace span (repro.observe): the request root set at
        #: accept time, or the spawn span this compartment was born with
        self.span = None
        self._thread = None
        self._task = None                   # reactor Task (coop spawn)
        self._done = threading.Event()
        self._watchers = []                 # reactor endpoint protocol
        self._watch_lock = threading.Lock()
        self._joined = False

    # -- lifecycle ----------------------------------------------------------------

    def run_body(self, kernel, body, arg):
        """Execute *body(arg)* as this compartment (kernel-internal)."""
        from repro.core.errors import WedgeError
        self.status = STATUS_RUNNING
        with kernel._as_current(self):
            try:
                self.result = body(arg)
                self.status = STATUS_EXITED
            except CompartmentFault as fault:
                # the kernel kills a faulting sthread; the parent learns of
                # it at join time.  Its cached translations die with it —
                # a supervised restart must start translation-cold.
                self.fault = fault
                self.status = STATUS_FAULTED
                self.table.flush_tlb(costs=kernel.costs)
            except WedgeError as exc:
                # an ordinary runtime error (peer hung up, protocol
                # violation): the compartment exits abnormally but it is
                # not a protection fault
                self.error = exc
                self.status = STATUS_ERROR
            finally:
                # exiting closes this compartment's descriptor copies
                # (private copies: the parent is unaffected, paper §4.1);
                # pthreads share the parent's table and must not close it
                if self.kind != "pthread" and self.fdtable is not None:
                    self.fdtable.close_all()
                obs = kernel.observe
                if obs.enabled:
                    obs.emit(STHREAD_EXIT, comp=self.name,
                             status=self.status)
                if obs.tracer is not None:
                    obs.tracer.end(self.span, status=self.status)
                self._exit_done()

    def start_thread(self, kernel, body, arg):
        self._thread = threading.Thread(
            target=self.run_body, args=(kernel, body, arg),
            name=self.name, daemon=True)
        self._thread.start()

    def coop_body(self, kernel, body, arg):
        """Generator twin of :meth:`run_body` for the reactor scheduler.

        *body* is a generator function; its yields (Wait descriptors)
        pass straight through to the reactor, which re-enters this
        compartment's context around every step — so the status machine,
        fd teardown and exit events here are line-for-line the threaded
        path's, just suspendable.
        """
        from repro.core.errors import WedgeError
        self.status = STATUS_RUNNING
        try:
            self.result = yield from body(arg)
            self.status = STATUS_EXITED
        except CompartmentFault as fault:
            self.fault = fault
            self.status = STATUS_FAULTED
            self.table.flush_tlb(costs=kernel.costs)
        except WedgeError as exc:
            self.error = exc
            self.status = STATUS_ERROR
        finally:
            if self.kind != "pthread" and self.fdtable is not None:
                self.fdtable.close_all()
            obs = kernel.observe
            if obs.enabled:
                obs.emit(STHREAD_EXIT, comp=self.name,
                         status=self.status)
            if obs.tracer is not None:
                obs.tracer.end(self.span, status=self.status)
            self._exit_done()

    def start_coop(self, kernel, body, arg):
        """Schedule *body* as a cooperative task on the kernel's reactor.

        The reactor pushes this sthread as the current compartment
        around every step, so kernel syscalls made by the body are
        attributed (and policy-checked) exactly as on an OS thread.
        Nothing runs until something drives the loop —
        ``reactor.run_until_idle()`` or ``reactor.ensure_running()``.
        """
        self._task = kernel.reactor.spawn(
            self.coop_body(kernel, body, arg),
            name=self.name, sthread=self)
        return self._task

    def join(self, timeout=30.0):
        """Block until the compartment exits; return its result.

        A faulted sthread yields ``None`` (the real kernel reaps a killed
        child without a return value); inspect :attr:`fault` for the
        violation.  Double joins raise, like ``pthread_join``.
        """
        if self._joined:
            raise SthreadError(f"{self.name} already joined")
        if not self._done.wait(timeout):
            raise JoinTimeout(f"join of {self.name} timed out "
                              f"after {timeout}s",
                              sthread=self, timeout=timeout)
        self._joined = True
        if self._thread is not None:
            self._thread.join(timeout)
        return self.result

    @property
    def done(self):
        return self._done.is_set()

    @property
    def faulted(self):
        return self.status == STATUS_FAULTED

    # -- reactor endpoint protocol (so parents can park on the exit) ---------

    def _exit_done(self):
        """Mark the compartment finished and wake any reactor waiters."""
        with self._watch_lock:
            self._done.set()
            watchers = list(self._watchers)
        for cb in watchers:
            cb(self)

    def ready(self):
        return self._done.is_set()

    def add_watcher(self, cb):
        with self._watch_lock:
            if cb not in self._watchers:
                self._watchers.append(cb)

    def remove_watcher(self, cb):
        with self._watch_lock:
            try:
                self._watchers.remove(cb)
            except ValueError:
                pass

    # -- stack frames (Crowbar's stack category) -----------------------------------

    def push_frame(self, func_name):
        self.stack_frames.append((func_name, self.stack_sp))

    def pop_frame(self):
        _, saved = self.stack_frames.pop()
        self.stack_sp = saved

    def frame_for_offset(self, offset):
        """Which function's frame covers *offset* in the stack segment?"""
        for i, (name, base) in enumerate(self.stack_frames):
            end = (self.stack_frames[i + 1][1]
                   if i + 1 < len(self.stack_frames) else self.stack_sp)
            if base <= offset < end:
                return name
        return None

    def __repr__(self):
        return (f"<Sthread #{self.id} {self.name!r} kind={self.kind} "
                f"uid={self.uid} status={self.status}>")
