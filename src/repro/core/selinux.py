"""SELinux-lite: per-SID syscall allow-sets and domain transitions.

Wedge attaches an SELinux security identifier (SID) to each sthread to
limit the system calls it may invoke (paper section 3.1).  This module is
a deliberately small model of that machinery: a system-wide policy maps a
SID string (``user:role:type``) to the set of syscall names it may issue,
plus an explicit table of allowed domain transitions.

A child sthread's SID may differ from its parent's only if the transition
``parent_sid -> child_sid`` is allowed by the system policy — mirroring
the paper's rule that SELinux policy changes "must be explicitly allowed
as domain transitions in the system-wide SELinux policy".
"""

from __future__ import annotations

from repro.core.errors import PolicyError, SyscallDenied

#: SID of the initial process, allowed everything (like unconfined_t).
UNCONFINED = "system_u:system_r:unconfined_t"

#: Marker meaning "all syscalls" in an allow-set.
ALL_SYSCALLS = "*"


class SELinuxPolicy:
    """The system-wide policy: allow-sets and domain transitions."""

    def __init__(self):
        self._allow = {UNCONFINED: {ALL_SYSCALLS}}
        self._transitions = set()

    # -- policy authoring -----------------------------------------------------

    def define_domain(self, sid, syscalls):
        """Define (or replace) the allow-set for *sid*."""
        self._allow[sid] = set(syscalls)

    def allow_transition(self, from_sid, to_sid):
        self._transitions.add((from_sid, to_sid))

    def known(self, sid):
        return sid in self._allow

    # -- enforcement -------------------------------------------------------------

    def check_syscall(self, sid, syscall):
        """Raise :class:`SyscallDenied` unless *sid* may issue *syscall*."""
        allowed = self._allow.get(sid)
        if allowed is None:
            raise SyscallDenied(f"unknown SID {sid!r}", syscall=syscall,
                                sid=sid)
        if ALL_SYSCALLS in allowed or syscall in allowed:
            return
        raise SyscallDenied(
            f"SELinux: {sid} may not call {syscall}", syscall=syscall,
            sid=sid)

    def check_transition(self, from_sid, to_sid):
        """Raise :class:`PolicyError` unless the transition is allowed."""
        if from_sid == to_sid:
            return
        if from_sid == UNCONFINED:
            # the unconfined bootstrap domain may enter any defined domain
            if not self.known(to_sid):
                raise PolicyError(f"transition to unknown SID {to_sid!r}")
            return
        if (from_sid, to_sid) not in self._transitions:
            raise PolicyError(
                f"SELinux: domain transition {from_sid} -> {to_sid} "
                f"is not allowed by the system policy")


def permissive_policy():
    """A policy whose every defined domain allows all syscalls.

    The paper's evaluation "specif[ies] SELinux policies for all sthreads
    that explicitly grant access to all system calls" to focus on memory
    privileges; applications use this helper to do the same.
    """
    policy = SELinuxPolicy()
    policy.define_domain("system_u:system_r:wedge_app_t", {ALL_SYSCALLS})
    return policy
