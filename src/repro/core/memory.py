"""Simulated physical memory, segments, page tables and the memory bus.

This module is the simulation's stand-in for the MMU.  All application
state that matters for isolation lives in :class:`Segment` objects inside a
single kernel-wide :class:`AddressSpace`.  Each sthread owns a
:class:`PageTable`; every load and store issued on behalf of an sthread
goes through :class:`MemoryBus`, which resolves the address through that
page table and enforces the page protections — raising
:class:`~repro.core.errors.MemoryViolation` exactly where real hardware
would deliver a page fault.

Copy-on-write is modelled at page granularity: a PTE carrying
:data:`PROT_COW` shares the pristine frame until the first write, at which
point the frame is copied privately into that page table (and the copy is
charged to the cost account).

Like a real MMU, the bus amortises the page-table walk with a simulated
per-table TLB: resolved ``(frame, prot, segment)`` translations are
cached so repeated accesses skip the walk.  Correctness rests on one
rule, enforced by tests: **every** PTE mutation goes through
:meth:`PageTable._invalidate` (the single choke point), so rights can
never be exercised through a stale cached translation — not after a
revocation (``unmap_segment``), a protection narrowing (remap), a COW
first-write frame replacement, a fork downgrade, or a compartment fault.
"""

from __future__ import annotations

import bisect
import threading

from repro.core.errors import BadAddress, MemoryViolation
from repro.observe.events import (ANALYSIS_REVOKED, COW_BREAK,
                                  MEM_VIOLATION, TLB_HIT, TLB_MISS,
                                  TLB_SHOOTDOWN)

PAGE_SIZE = 4096
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1

#: Page / tag protection bits.  Wedge has no write-only memory (paper
#: section 3.1): :data:`PROT_WRITE` alone is rejected at the policy layer.
PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_RW = PROT_READ | PROT_WRITE
PROT_COW = 4  # readable; private copy made on first write

_PROT_NAMES = {
    PROT_NONE: "none",
    PROT_READ: "r",
    PROT_WRITE: "w",
    PROT_RW: "rw",
    PROT_COW: "cow",
    PROT_READ | PROT_COW: "cow",
}


def prot_name(prot):
    """Human-readable name for a protection value (for logs and errors)."""
    return _PROT_NAMES.get(prot, f"prot({prot})")


def page_count(size):
    """Number of pages needed to back *size* bytes."""
    return (size + PAGE_SIZE - 1) >> PAGE_SHIFT


class Frame:
    """One 4 KiB physical frame."""

    __slots__ = ("data",)

    def __init__(self, data=None):
        if data is None:
            self.data = bytearray(PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise ValueError("frame data must be exactly one page")
            self.data = bytearray(data)

    def copy(self):
        return Frame(self.data)


class Segment:
    """A contiguous, page-aligned region of the simulated address space.

    Segments are the unit of tagging: a tag maps to one segment (paper
    section 3.2, ``tag_new`` behaves like anonymous mmap).  ``kind`` is a
    descriptive label: ``"tag"``, ``"heap"``, ``"stack"``, ``"globals"``,
    ``"boundary"``.
    """

    def __init__(self, seg_id, base, size, *, name="", kind="anon",
                 tag_id=None):
        if base % PAGE_SIZE:
            raise ValueError("segment base must be page aligned")
        self.id = seg_id
        self.base = base
        self.size = size
        self.npages = page_count(size)
        self.name = name
        self.kind = kind
        self.tag_id = tag_id
        self.frames = [Frame() for _ in range(self.npages)]
        self.live = True

    @property
    def limit(self):
        """One past the last mapped byte (page-granular)."""
        return self.base + self.npages * PAGE_SIZE

    def contains(self, addr):
        return self.base <= addr < self.limit

    # -- kernel-level raw access (bypasses page tables) -------------------
    #
    # Used by trusted runtime components that conceptually live inside the
    # kernel or operate on memory before any sthread exists (snapshotting,
    # tag scrubbing).  Application code never calls these; it goes through
    # MemoryBus.

    def read_raw(self, offset, size):
        if offset < 0 or offset + size > self.npages * PAGE_SIZE:
            raise BadAddress(f"raw read outside segment {self.name!r}",
                             addr=self.base + offset, op="read")
        out = bytearray()
        while size:
            page, off = divmod(offset, PAGE_SIZE)
            take = min(size, PAGE_SIZE - off)
            out += self.frames[page].data[off:off + take]
            offset += take
            size -= take
        return bytes(out)

    def write_raw(self, offset, data):
        if offset < 0 or offset + len(data) > self.npages * PAGE_SIZE:
            raise BadAddress(f"raw write outside segment {self.name!r}",
                             addr=self.base + offset, op="write")
        pos = 0
        while pos < len(data):
            page, off = divmod(offset + pos, PAGE_SIZE)
            take = min(len(data) - pos, PAGE_SIZE - off)
            self.frames[page].data[off:off + take] = data[pos:pos + take]
            pos += take

    def snapshot_frames(self):
        """Deep-copy the backing frames (used for the pre-main snapshot)."""
        return [frame.copy() for frame in self.frames]

    def __repr__(self):
        return (f"<Segment #{self.id} {self.name!r} kind={self.kind} "
                f"base=0x{self.base:x} size={self.size}>")


class AddressSpace:
    """Kernel-wide registry of segments and allocator of base addresses.

    Bases are handed out bump-pointer style with a one-page guard gap, so
    no two segments are ever adjacent — ``tag_new`` must not merge
    neighbouring mappings (paper section 4.1) because they may be used in
    different security contexts.
    """

    _BASE = 0x1000_0000

    def __init__(self):
        self._segments = {}
        self._bases = []      # sorted bases for bisect lookup
        self._by_base = {}
        self._next_base = self._BASE
        self._next_id = 1
        # creation/destruction may happen from concurrent masters
        self._lock = threading.Lock()

    def create_segment(self, size, *, name="", kind="anon", tag_id=None):
        if size <= 0:
            raise ValueError("segment size must be positive")
        with self._lock:
            base = self._next_base
            seg = Segment(self._next_id, base, size, name=name,
                          kind=kind, tag_id=tag_id)
            self._next_id += 1
            # guard page gap after the segment
            self._next_base = seg.limit + PAGE_SIZE
            self._segments[seg.id] = seg
            bisect.insort(self._bases, base)
            self._by_base[base] = seg
            return seg

    def destroy_segment(self, seg):
        with self._lock:
            if not seg.live:
                return
            seg.live = False
            del self._segments[seg.id]
            self._bases.remove(seg.base)
            del self._by_base[seg.base]

    def find(self, addr):
        """Resolve *addr* to ``(segment, offset)`` or raise BadAddress."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            seg = self._by_base[self._bases[idx]]
            if seg.contains(addr):
                return seg, addr - seg.base
        raise BadAddress(f"address 0x{addr:x} is not mapped by any segment",
                         addr=addr)

    def segments(self):
        return list(self._segments.values())

    def __len__(self):
        return len(self._segments)


class PTE:
    """One page-table entry: a frame reference plus protection bits."""

    __slots__ = ("frame", "prot", "segment")

    def __init__(self, frame, prot, segment):
        self.frame = frame
        self.prot = prot
        self.segment = segment

    def copy(self):
        return PTE(self.frame, self.prot, self.segment)


class VerifiedMap:
    """Certificate-proven translations for the verified bus fast path.

    Built by :meth:`~repro.core.kernel.Kernel.enter_verified` from a
    signed :class:`~repro.analysis.verify.PolicyCertificate` and
    installed on a table via :meth:`PageTable.install_certificate`.
    ``rpages`` / ``wpages`` map absolute page numbers to
    ``(memoryview, segment)`` pairs over the proven frames — accesses
    they cover need no permission resolution and no TLB lookup at all.
    ``syscalls`` is the certificate's syscall allow-set, consulted by
    the kernel's syscall gate for the matching fast path.
    """

    __slots__ = ("rpages", "wpages", "syscalls", "cert")

    def __init__(self, rpages, wpages, syscalls, cert=None):
        self.rpages = rpages
        self.wpages = wpages
        self.syscalls = frozenset(syscalls)
        self.cert = cert

    def __repr__(self):
        return (f"<VerifiedMap r={len(self.rpages)}p "
                f"w={len(self.wpages)}p "
                f"syscalls={len(self.syscalls)}>")


class PageTable:
    """Per-sthread virtual-to-physical mapping with protections.

    ``emulation`` switches the table into the sthread emulation library's
    grant-all mode: violations are recorded on ``violations`` instead of
    raised, so Crowbar can report every missing permission in one run
    (paper section 3.4).
    """

    #: EventBus emitting tlb.shootdown, or None.  A class default so
    #: tables built outside a kernel (unit tests) stay silent; the
    #: kernel stamps every compartment table with its bus.
    observe = None

    def __init__(self, owner_name=""):
        self.entries = {}   # absolute page number -> PTE
        self.owner_name = owner_name
        self.emulation = False
        self.violations = []
        #: simulated TLB: absolute page number -> (frame, prot, segment).
        #: Filled by the memory bus; invalidated only via _invalidate().
        self.tlb = {}
        self.tlb_shootdowns = 0
        #: bound :class:`VerifiedMap`, or None (checked mode).  Installed
        #: only via install_certificate(); revoked only via _invalidate().
        self.verified = None
        self.cert_revocations = 0

    # -- TLB maintenance (the single invalidation choke point) -------------

    def _invalidate(self, first_page, npages, *, costs=None):
        """Drop cached translations for ``[first_page, first_page+npages)``.

        This is the **only** way TLB entries leave the cache, and every
        PTE mutation below funnels through it — so a mapping can never
        move or narrow while a stale translation survives.  Returns the
        number of entries shot down (0 when nothing was cached, in which
        case nothing is charged either).

        A bound policy certificate is proven against the *current*
        mappings, so any invalidation — even one that finds no cached
        translation, on a ``tlb=False`` kernel — voids the proof first:
        the table atomically drops back to the checked path.
        """
        if self.verified is not None:
            self.verified = None
            self.cert_revocations += 1
            obs = self.observe
            if obs is not None and obs.enabled:
                obs.emit(ANALYSIS_REVOKED, comp=self.owner_name,
                         pages=npages)
        tlb = self.tlb
        if not tlb:
            return 0
        dropped = 0
        if npages > len(tlb):
            last = first_page + npages
            for pageno in [p for p in tlb if first_page <= p < last]:
                del tlb[pageno]
                dropped += 1
        else:
            for pageno in range(first_page, first_page + npages):
                if tlb.pop(pageno, None) is not None:
                    dropped += 1
        if dropped:
            self.tlb_shootdowns += dropped
            if costs is not None:
                costs.charge("tlb_shootdown", dropped)
            obs = self.observe
            if obs is not None and obs.enabled:
                obs.emit(TLB_SHOOTDOWN, comp=self.owner_name,
                         pages=dropped)
        return dropped

    def flush_tlb(self, *, costs=None):
        """Drop every cached translation (compartment fault / teardown).

        Delegates to :meth:`_invalidate` so shootdown accounting and
        certificate revocation have exactly one home: the choke point.
        """
        tlb = self.tlb
        if not tlb:
            if self.verified is not None:
                self._invalidate(0, 0, costs=costs)
            return 0
        first = min(tlb)
        return self._invalidate(first, max(tlb) - first + 1, costs=costs)

    def install_certificate(self, vmap, *, costs=None):
        """Bind a :class:`VerifiedMap` (kernel-only; the single install
        site, mirroring ``_invalidate`` as the single revocation site).

        Emulation-mode tables record violations instead of raising, so
        a check-free path would change behaviour there: refuse.
        """
        if self.emulation:
            raise ValueError(
                f"cannot certify emulation-mode table {self.owner_name!r}")
        self.verified = vmap
        if costs is not None:
            costs.charge("cert_bind")

    def revoke_certificate(self, *, costs=None):
        """Void the bound certificate, if any (delegates to the
        :meth:`_invalidate` choke point).  Returns True if one was bound.
        """
        if self.verified is None:
            return False
        self._invalidate(0, 0, costs=costs)
        return True

    # -- construction ------------------------------------------------------

    def map_segment(self, seg, prot, *, costs=None, frames=None):
        """Map every page of *seg* with *prot*.

        *frames* overrides the segment's own frames (used to map the
        pristine snapshot image rather than the live globals).  A remap
        over live pages may narrow rights or move frames, so the mapped
        range is shot down from the TLB.
        """
        source = frames if frames is not None else seg.frames
        first_page = seg.base >> PAGE_SHIFT
        for i in range(seg.npages):
            self.entries[first_page + i] = PTE(source[i], prot, seg)
        self._invalidate(first_page, seg.npages, costs=costs)
        if costs is not None:
            costs.charge("pte_copy", seg.npages)
            if prot & PROT_COW:
                costs.charge("cow_mark", seg.npages)
        return seg.npages

    def unmap_segment(self, seg, *, costs=None):
        """Remove *seg*'s pages — revocation, so shoot down the range."""
        first_page = seg.base >> PAGE_SHIFT
        for i in range(seg.npages):
            self.entries.pop(first_page + i, None)
        self._invalidate(first_page, seg.npages, costs=costs)

    def clone(self, *, costs=None, owner_name=""):
        """Full copy of this table (what ``fork`` does).

        The clone starts with a cold TLB: translations are an execution
        artefact of the original compartment, never inherited state.
        """
        other = PageTable(owner_name=owner_name)
        for pageno, pte in self.entries.items():
            other.entries[pageno] = pte.copy()
        if costs is not None:
            costs.charge("pte_copy", len(self.entries))
        return other

    def mark_all_cow(self, *, costs=None):
        """Downgrade every writable mapping to COW (fork semantics)."""
        marked = 0
        for pageno, pte in self.entries.items():
            if pte.prot & PROT_WRITE:
                pte.prot = PROT_READ | PROT_COW
                self._invalidate(pageno, 1, costs=costs)
                marked += 1
        if costs is not None and marked:
            costs.charge("cow_mark", marked)
        return marked

    def downgrade_to_cow(self, kinds, *, costs=None):
        """Downgrade writable mappings of the given segment *kinds* to
        COW (fork's treatment of private, non-shared regions)."""
        marked = 0
        for pageno, pte in self.entries.items():
            if pte.segment.kind in kinds and pte.prot & PROT_WRITE:
                pte.prot = PROT_READ | PROT_COW
                if costs is not None:
                    costs.charge("cow_mark")
                self._invalidate(pageno, 1, costs=costs)
                marked += 1
        return marked

    def cow_break(self, pageno, *, costs=None):
        """First write to a COW page: copy the frame privately.

        The frame reference changes, so the old cached translation (which
        still points at the shared pristine frame) is shot down; the bus
        refills it with the private copy.  Returns the updated PTE.
        """
        pte = self.entries[pageno]
        pte.frame = pte.frame.copy()
        pte.prot = PROT_RW
        if costs is not None:
            costs.charge("page_copy")
        self._invalidate(pageno, 1, costs=costs)
        return pte

    # -- lookup -------------------------------------------------------------

    def lookup(self, pageno):
        return self.entries.get(pageno)

    def mapped_segments(self):
        return {id(pte.segment): pte.segment for pte in
                self.entries.values()}.values()

    def __len__(self):
        return len(self.entries)


class MemoryBus:
    """The load/store path: resolves, checks, and (optionally) traces.

    ``hooks`` is the Crowbar attachment point: each hook is called as
    ``hook(op, table, addr, size, segment, offset)`` for every access that
    passes the permission check (and for emulated violations).

    With ``tlb=True`` (the default) the bus caches resolved translations
    in the accessing table's :attr:`PageTable.tlb` and serves single-page
    accesses whose cached protection already admits the operation without
    walking ``entries`` at all.  The fast path may change *cycles*, never
    *behaviour*: any access that could fault, break COW, span pages, or
    run under emulation falls through to the walk path, and every PTE
    mutation shoots down its cached translation (see module docstring).
    """

    def __init__(self, space, costs, *, tlb=True):
        self.space = space
        self.costs = costs
        #: EventBus for mem.violation / cow.break / tlb.* events, or
        #: None (buses built outside a kernel).  The high-volume
        #: tlb.hit/tlb.miss kinds additionally require a sink that
        #: subscribed to them (``observe.tlb_active``).
        self.observe = None
        self.hooks = []
        self.tlb_enabled = tlb
        #: lifetime translation counters (plain ints on the hot path;
        #: the cost account absorbs them lazily via the drain below).
        self.tlb_hits = 0
        self.tlb_walks = 0
        #: accesses served check-free from a policy certificate.  One
        #: unit per bus call, however many pages the range spans —
        #: the certificate proves the whole range at bind time, so the
        #: model charges range-batched, not per-page.
        self.verified_ops = 0
        self._drained_hits = 0
        self._drained_walks = 0
        self._drained_verified = 0
        register = getattr(costs, "register_source", None)
        if register is not None:
            register(self._drain_translation_work)

    def _drain_translation_work(self):
        """Batched-work source for :meth:`CostAccount.register_source`."""
        hits = self.tlb_hits - self._drained_hits
        walks = self.tlb_walks - self._drained_walks
        verified = self.verified_ops - self._drained_verified
        self._drained_hits = self.tlb_hits
        self._drained_walks = self.tlb_walks
        self._drained_verified = self.verified_ops
        return {"tlb_hit": hits, "pt_walk": walks,
                "verified_access": verified}

    def _translate(self, table, pageno):
        """Resolve *pageno* to ``(frame, prot, segment)``, TLB first.

        Returns ``None`` for unmapped pages.  Fills the TLB on a miss so
        the next access to the page can take the fast path.
        """
        if self.tlb_enabled:
            entry = table.tlb.get(pageno)
            if entry is not None:
                self.tlb_hits += 1
                return entry
        self.tlb_walks += 1
        obs = self.observe
        if obs is not None and obs.tlb_active:
            obs.emit(TLB_MISS, comp=table.owner_name, pageno=pageno,
                     walk_only=not self.tlb_enabled)
        pte = table.lookup(pageno)
        if pte is None:
            return None
        entry = (pte.frame, pte.prot, pte.segment)
        if self.tlb_enabled:
            table.tlb[pageno] = entry
        return entry

    # -- hook management ----------------------------------------------------

    def add_hook(self, hook):
        self.hooks.append(hook)

    def remove_hook(self, hook):
        self.hooks.remove(hook)

    def _fire(self, op, table, addr, size, segment, offset):
        for hook in self.hooks:
            hook(op, table, addr, size, segment, offset)

    # -- faults -------------------------------------------------------------

    def _violation(self, table, addr, op, message, segment=None):
        fault = MemoryViolation(message, addr=addr, op=op,
                                sthread=table.owner_name, segment=segment)
        obs = self.observe
        if obs is not None and obs.enabled:
            obs.emit(MEM_VIOLATION, comp=table.owner_name,
                     addr=addr, op=op, emulated=table.emulation,
                     segment=segment.name if segment is not None
                     else None)
        if table.emulation:
            table.violations.append(fault)
            return False
        raise fault

    # -- loads and stores ----------------------------------------------------

    # -- the verified fast path (certificate-covered, check-free) ------------
    #
    # A bound VerifiedMap is a *proof* that this table may access the
    # covered pages, established once at bind time and voided by the
    # _invalidate choke point the instant any mapping narrows.  Accesses
    # it covers therefore skip permission resolution and TLB lookup
    # entirely; anything it does not cover (unproven page, emulation,
    # COW first-write, zero-size) falls through to the checked path
    # unchanged.  Each helper snapshots ``table.verified`` once: a
    # concurrent shootdown linearises *between* bus calls — this call
    # completes under the proof it started with, the next call walks.

    def _verified_read_span(self, table, ver, addr, size):
        """Bulk read across proven pages; None if any page is unproven."""
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        rpages = ver.rpages
        if any(p not in rpages for p in range(first, last + 1)):
            return None
        out = bytearray()
        pos, remaining = addr, size
        while remaining:
            off = pos & PAGE_MASK
            take = min(remaining, PAGE_SIZE - off)
            view, seg = rpages[pos >> PAGE_SHIFT]
            out += view[off:off + take]
            if self.hooks:
                self._fire("read", table, pos, take, seg, pos - seg.base)
            pos += take
            remaining -= take
        self.verified_ops += 1
        return bytes(out)

    def _verified_write_span(self, table, ver, addr, data):
        """Bulk write across proven pages; False if any is unproven."""
        size = len(data)
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        wpages = ver.wpages
        if any(p not in wpages for p in range(first, last + 1)):
            return False
        view = memoryview(bytes(data))
        pos, offset = addr, 0
        while offset < size:
            off = pos & PAGE_MASK
            take = min(size - offset, PAGE_SIZE - off)
            page_view, seg = wpages[pos >> PAGE_SHIFT]
            page_view[off:off + take] = view[offset:offset + take]
            if self.hooks:
                self._fire("write", table, pos, take, seg, pos - seg.base)
            pos += take
            offset += take
        self.verified_ops += 1
        return True

    def read(self, table, addr, size):
        """Read *size* bytes at *addr* under *table*'s protections."""
        if size < 0:
            raise ValueError("negative read size")
        ver = table.verified
        if ver is not None and size > 0:
            off = addr & PAGE_MASK
            if size <= PAGE_SIZE - off:
                page = ver.rpages.get(addr >> PAGE_SHIFT)
                if page is not None:
                    self.verified_ops += 1
                    if self.hooks:
                        seg = page[1]
                        self._fire("read", table, addr, size, seg,
                                   addr - seg.base)
                    return bytes(page[0][off:off + size])
            else:
                data = self._verified_read_span(table, ver, addr, size)
                if data is not None:
                    return data
        if self.tlb_enabled:
            # Fast path: single-page access through a cached translation
            # whose protection already admits the read.  Anything else
            # (miss, prot fault, page-spanning, size 0) walks below.
            entry = table.tlb.get(addr >> PAGE_SHIFT)
            if entry is not None and entry[1] & PROT_READ:
                off = addr & PAGE_MASK
                if 0 < size <= PAGE_SIZE - off:
                    self.tlb_hits += 1
                    obs = self.observe
                    if obs is not None and obs.tlb_active:
                        obs.emit(TLB_HIT, comp=table.owner_name,
                                 addr=addr, op="read")
                    if self.hooks:
                        seg = entry[2]
                        self._fire("read", table, addr, size, seg,
                                   addr - seg.base)
                    return bytes(entry[0].data[off:off + size])
        out = bytearray()
        pos = addr
        remaining = size
        while remaining:
            pageno, off = divmod(pos, PAGE_SIZE)
            take = min(remaining, PAGE_SIZE - off)
            entry = self._translate(table, pageno)
            if entry is None:
                seg, seg_off = self._find_for_fault(pos)
                denied = self._violation(
                    table, pos, "read",
                    f"sthread {table.owner_name!r} read of unmapped "
                    f"address 0x{pos:x}"
                    + (f" (segment {seg.name!r})" if seg else ""),
                    segment=seg)
                if not denied and seg is not None:
                    # emulation mode: satisfy from the live segment
                    out += seg.read_raw(seg_off, take)
                    self._fire("read", table, pos, take, seg, seg_off)
                    pos += take
                    remaining -= take
                    continue
                out += b"\x00" * take
                pos += take
                remaining -= take
                continue
            frame, prot, segment = entry
            if not prot & PROT_READ:
                self._violation(
                    table, pos, "read",
                    f"sthread {table.owner_name!r} read of "
                    f"{prot_name(prot)} page at 0x{pos:x} "
                    f"(segment {segment.name!r})",
                    segment=segment)
            out += frame.data[off:off + take]
            self._fire("read", table, pos, take, segment,
                       pos - segment.base)
            pos += take
            remaining -= take
        return bytes(out)

    def write(self, table, addr, data):
        """Write *data* at *addr* under *table*'s protections (with COW)."""
        ver = table.verified
        if ver is not None and data:
            off = addr & PAGE_MASK
            size = len(data)
            if size <= PAGE_SIZE - off:
                page = ver.wpages.get(addr >> PAGE_SHIFT)
                if page is not None:
                    self.verified_ops += 1
                    page[0][off:off + size] = bytes(data)
                    if self.hooks:
                        seg = page[1]
                        self._fire("write", table, addr, size, seg,
                                   addr - seg.base)
                    return
            elif self._verified_write_span(table, ver, addr, data):
                return
        if self.tlb_enabled:
            # Fast path: single-page store through a cached translation
            # that is already privately writable.  COW pages never carry
            # PROT_WRITE, so first writes always take the walk path and
            # break the COW there.
            entry = table.tlb.get(addr >> PAGE_SHIFT)
            if entry is not None and entry[1] & PROT_WRITE:
                off = addr & PAGE_MASK
                size = len(data)
                if 0 < size <= PAGE_SIZE - off:
                    self.tlb_hits += 1
                    obs = self.observe
                    if obs is not None and obs.tlb_active:
                        obs.emit(TLB_HIT, comp=table.owner_name,
                                 addr=addr, op="write")
                    entry[0].data[off:off + size] = bytes(data)
                    if self.hooks:
                        seg = entry[2]
                        self._fire("write", table, addr, size, seg,
                                   addr - seg.base)
                    return
        pos = addr
        view = memoryview(bytes(data))
        offset = 0
        total = len(view)
        while offset < total:
            pageno, page_off = divmod(pos, PAGE_SIZE)
            take = min(total - offset, PAGE_SIZE - page_off)
            entry = self._translate(table, pageno)
            if entry is None:
                seg, seg_off = self._find_for_fault(pos)
                denied = self._violation(
                    table, pos, "write",
                    f"sthread {table.owner_name!r} write to unmapped "
                    f"address 0x{pos:x}"
                    + (f" (segment {seg.name!r})" if seg else ""),
                    segment=seg)
                if not denied and seg is not None:
                    seg.write_raw(seg_off, bytes(view[offset:offset + take]))
                    self._fire("write", table, pos, take, seg, seg_off)
                pos += take
                offset += take
                continue
            frame, prot, segment = entry
            if prot & PROT_WRITE:
                pass
            elif prot & PROT_COW:
                # first write to a COW page: copy the frame privately
                # (shoots down the stale shared-frame translation, then
                # re-caches the private copy)
                pte = table.cow_break(pageno, costs=self.costs)
                frame = pte.frame
                obs = self.observe
                if obs is not None and obs.enabled:
                    obs.emit(COW_BREAK, comp=table.owner_name,
                             pageno=pageno, segment=pte.segment.name)
                if self.tlb_enabled:
                    table.tlb[pageno] = (pte.frame, pte.prot, pte.segment)
            else:
                self._violation(
                    table, pos, "write",
                    f"sthread {table.owner_name!r} write to "
                    f"{prot_name(prot)} page at 0x{pos:x} "
                    f"(segment {segment.name!r})",
                    segment=segment)
                pos += take
                offset += take
                continue
            frame.data[page_off:page_off + take] = view[offset:offset + take]
            self._fire("write", table, pos, take, segment,
                       pos - segment.base)
            pos += take
            offset += take

    def _find_for_fault(self, addr):
        """Best-effort resolve for diagnostics / emulation mode."""
        try:
            return self.space.find(addr)
        except BadAddress:
            return None, None
