"""The sthread emulation library (paper section 3.4).

After refactoring, an sthread may touch memory its policy no longer
covers, and under default-deny it would be killed at the *first* missing
permission — revealing only one gap per run.  The emulation library
instead grants the sthread access to all memory and *records* every
would-be protection violation, so one complete program execution reveals
every missing grant.  Used together with Crowbar it answers "what do I
still need to add to this policy?".

The mechanism lives in :class:`~repro.core.memory.PageTable.emulation`
(the bus satisfies unauthorised accesses from the live segments and
appends the fault to ``table.violations``); this module is the user-facing
wrapper plus the report formatter.
"""

from __future__ import annotations


def emulated_sthread_create(kernel, sc, body, arg=None, *, name="",
                            spawn="inline"):
    """Like ``sthread_create`` but with grant-all emulation enabled."""
    return kernel.sthread_create(sc, body, arg, name=name, spawn=spawn,
                                 emulate=True)


def violation_report(sthread):
    """Summarise an emulated sthread's recorded violations.

    Returns a list of dicts with one entry per (segment, op) pair:
    ``{"segment": name, "tag_id": id-or-None, "op": "read"/"write",
    "count": n, "first_addr": addr}`` — exactly what a programmer needs to
    extend the policy, expressed at tag granularity where possible.
    """
    summary = {}
    for fault in sthread.table.violations:
        seg = fault.segment
        key = (seg.name if seg is not None else "<unmapped>", fault.op)
        entry = summary.get(key)
        if entry is None:
            summary[key] = {
                "segment": key[0],
                "tag_id": seg.tag_id if seg is not None else None,
                "kind": seg.kind if seg is not None else None,
                "op": fault.op,
                "count": 1,
                "first_addr": fault.addr,
            }
        else:
            entry["count"] += 1
    return sorted(summary.values(),
                  key=lambda e: (e["segment"], e["op"]))


def suggested_grants(sthread):
    """Turn a violation report into ``(tag_id, 'r'|'rw')`` suggestions.

    Only tagged segments can be named in a policy (untagged memory
    "cannot even be named", paper section 3.2), so suggestions cover
    tagged violations; the rest are reported for refactoring.
    """
    grants = {}
    unnameable = []
    for entry in violation_report(sthread):
        if entry["tag_id"] is None:
            unnameable.append(entry)
            continue
        mode = grants.get(entry["tag_id"], "r")
        if entry["op"] == "write":
            mode = "rw"
        grants[entry["tag_id"]] = mode
    return grants, unnameable
