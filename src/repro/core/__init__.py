"""Wedge's isolation primitives: sthreads, tagged memory, callgates.

This subpackage is the paper's primary contribution (sections 3 and 4):
the simulated kernel, default-deny compartments, the tagged-memory
allocator, callgates, the boundary-variable mechanism, and the sthread
emulation library.  See DESIGN.md for how the simulation substitutes for
the real Linux kernel mechanisms.
"""

from repro.core.boundary import BOUNDARY_TAG, BOUNDARY_VAR
from repro.core.costs import WEIGHTS, CostAccount
from repro.core.emulation import (emulated_sthread_create, suggested_grants,
                                  violation_report)
from repro.core.errors import (AllocationError, AuthenticationFailure,
                               BadAddress, BadFileDescriptor, CallgateError,
                               CompartmentFault, ConnectionClosed,
                               CryptoError, FdPermissionError,
                               HandshakeFailure, MacFailure, MemoryViolation,
                               NetworkError, OutOfMemory, PolicyError,
                               ProtocolError, SthreadError, SyscallDenied,
                               TagError, VfsError, WedgeError)
from repro.core.kernel import Buffer, Kernel
from repro.core.memory import (PAGE_SIZE, PROT_COW, PROT_NONE, PROT_READ,
                               PROT_RW, PROT_WRITE)
from repro.core.policy import (FD_READ, FD_RW, FD_WRITE, SecurityContext,
                               sc_cgate_add, sc_fd_add, sc_mem_add,
                               sc_sel_context)
from repro.core.selinux import (ALL_SYSCALLS, UNCONFINED, SELinuxPolicy,
                                permissive_policy)
from repro.core.tags import DEFAULT_TAG_SIZE, Tag

__all__ = [
    "ALL_SYSCALLS", "AllocationError", "AuthenticationFailure",
    "BOUNDARY_TAG", "BOUNDARY_VAR", "BadAddress", "BadFileDescriptor",
    "Buffer", "CallgateError", "CompartmentFault", "ConnectionClosed",
    "CostAccount", "CryptoError", "DEFAULT_TAG_SIZE", "FD_READ", "FD_RW",
    "FD_WRITE", "FdPermissionError", "HandshakeFailure", "Kernel",
    "MacFailure", "MemoryViolation", "NetworkError", "OutOfMemory",
    "PAGE_SIZE", "PROT_COW", "PROT_NONE", "PROT_READ", "PROT_RW",
    "PROT_WRITE", "PolicyError", "ProtocolError", "SELinuxPolicy",
    "SecurityContext", "SthreadError", "SyscallDenied", "Tag", "TagError",
    "UNCONFINED", "VfsError", "WEIGHTS", "WedgeError",
    "emulated_sthread_create", "permissive_policy", "sc_cgate_add",
    "sc_fd_add", "sc_mem_add", "sc_sel_context", "suggested_grants",
    "violation_report",
]
