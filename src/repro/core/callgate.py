"""Kernel-side callgate records.

A callgate is defined by an entry point, a set of permissions, and a
trusted argument supplied by its *creator* (paper section 3.3).  All three
are stored kernel-side so the eventual caller cannot tamper with them, and
the gate inherits the filesystem root and uid of its creator — which is
what lets OpenSSH's password callgate read ``/etc/shadow`` on behalf of a
chrooted, unprivileged worker.

Recycled callgates keep their underlying sthread alive between
invocations, trading isolation for speed: the record retains the persistent
compartment (with its private heap) and invocation costs only a futex
round trip (paper sections 3.3 and 4.1).
"""

from __future__ import annotations


class CallgateRecord:
    """The tamper-proof kernel record for one instantiated callgate."""

    def __init__(self, gate_id, entry, sc, trusted_arg, *, creator_uid,
                 creator_root, creator_sid, fd_files, recycled=False,
                 supervise=None, name=""):
        self.id = gate_id
        self.entry = entry
        self.sc = sc
        self.trusted_arg = trusted_arg
        self.creator_uid = creator_uid
        self.creator_root = creator_root
        self.creator_sid = creator_sid
        #: descriptors resolved at creation time from the *creator's* fd
        #: table: list of (fd_number, OpenFile, perms).  Resolving early
        #: means a malicious caller cannot swap descriptors underneath
        #: the gate.
        self.fd_files = fd_files
        self.recycled = recycled
        self.name = name or getattr(entry, "__name__", f"gate{gate_id}")
        #: persistent compartment for recycled gates (built lazily)
        self.persistent = None
        self.invocations = 0
        #: RestartPolicy for supervised gates, or None
        self.supervise = supervise
        #: grants frozen at instantiation: a restart may never widen them
        #: (lint's RESTART_WIDENING compares the live sc against this)
        self.baseline_grants = (dict(sc.mem), dict(sc.fds),
                                tuple(sorted(sc.gate_ids)))
        self.restarts = 0
        self.degraded = False
        self.last_fault = None
        #: CircuitBreaker built lazily on first degrade when the policy
        #: carries a BreakerPolicy; stays None otherwise (degraded is
        #: then terminal, the pre-breaker behaviour)
        self.breaker = None

    @property
    def span_name(self):
        """Label for this gate's trace spans (repro.observe)."""
        return f"cgate:{self.name}"

    def __repr__(self):
        flavor = "recycled " if self.recycled else ""
        return f"<{flavor}Callgate #{self.id} {self.name!r}>"
