"""The pre-``main`` process image and its pristine snapshot.

A newly created sthread holds no rights by default *except* copy-on-write
access to a pristine snapshot of the original process's memory, taken just
before ``main`` runs (paper sections 3.1 and 4.1).  That snapshot contains
initialised library/loader state — vital for execution — but no sensitive
application data, because the application's code has not run yet.

Applications declare their global variables on an :class:`ImageBuilder`
during "static initialisation".  Sealing the image materialises one
``globals`` segment, writes the initial values, and captures the snapshot
frames that every future sthread will map COW.  Globals declared through
``BOUNDARY_VAR`` instead land in per-boundary-id segments that are *not*
part of the default snapshot mapping (see :mod:`repro.core.boundary`).
"""

from __future__ import annotations

from repro.core.errors import WedgeError
from repro.core.memory import PAGE_SIZE

#: Simulated size of the loader/libc state that dominates a real image.
RUNTIME_STATE_SIZE = 8 * PAGE_SIZE


class GlobalVar:
    """One named global: its segment offset, size and initial bytes."""

    __slots__ = ("name", "offset", "size", "init")

    def __init__(self, name, offset, size, init):
        self.name = name
        self.offset = offset
        self.size = size
        self.init = init


class ImageBuilder:
    """Collects global declarations until the image is sealed."""

    def __init__(self, *, runtime_state=RUNTIME_STATE_SIZE):
        self._vars = []
        self._cursor = runtime_state  # loader state occupies the front
        self._by_name = {}
        self.sealed = False

    def declare(self, name, size, init=b""):
        """Declare a named global of *size* bytes; returns its var record.

        Addresses are only known after sealing; use
        :meth:`ProcessImage.addr_of`.
        """
        if self.sealed:
            raise WedgeError("image already sealed; declare globals "
                             "before main starts")
        if name in self._by_name:
            raise WedgeError(f"global {name!r} already declared")
        if len(init) > size:
            raise WedgeError(f"initialiser for {name!r} exceeds its size")
        var = GlobalVar(name, self._cursor, size, bytes(init))
        # 8-byte alignment, like a linker would
        self._cursor += (size + 7) & ~7
        self._vars.append(var)
        self._by_name[name] = var
        return var

    def seal(self, space):
        """Materialise the globals segment and take the pristine snapshot."""
        if self.sealed:
            raise WedgeError("image already sealed")
        self.sealed = True
        size = max(self._cursor, PAGE_SIZE)
        segment = space.create_segment(size, name="globals",
                                       kind="globals")
        for var in self._vars:
            if var.init:
                segment.write_raw(var.offset, var.init)
        snapshot = segment.snapshot_frames()
        return ProcessImage(segment, snapshot, self._vars)


class ProcessImage:
    """The sealed image: live segment + pristine snapshot frames."""

    def __init__(self, segment, snapshot_frames, variables):
        self.segment = segment
        self.snapshot_frames = snapshot_frames
        self._vars = {v.name: v for v in variables}

    def addr_of(self, name):
        """Absolute address of a declared global."""
        var = self._vars.get(name)
        if var is None:
            raise WedgeError(f"unknown global {name!r}")
        return self.segment.base + var.offset

    def var_at(self, offset):
        """Resolve a segment offset to ``(GlobalVar, inner_offset)``.

        Used by Crowbar to name global accesses by variable (paper
        section 4.2: "for globals, we use debugging symbols to obtain the
        base and limit of each variable").
        """
        for var in self._vars.values():
            if var.offset <= offset < var.offset + var.size:
                return var, offset - var.offset
        return None, None

    def variables(self):
        return list(self._vars.values())
