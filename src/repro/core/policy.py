"""Security contexts (the paper's ``sc_t``) and monotonicity rules.

A :class:`SecurityContext` is the declarative policy a parent attaches to
a new sthread (paper section 3.1): memory-tag permissions, file-descriptor
permissions, callgate grants, and optionally a UNIX uid, filesystem root
and SELinux SID.

The kernel enforces monotonicity when the context is *bound* to a new
sthread: a parent can only ever grant subsets of its own privileges.  The
checks live here (:func:`check_subset_of`) and are called by
``sthread_create`` and by callgate instantiation.
"""

from __future__ import annotations

from repro.core.errors import PolicyError
from repro.core.memory import PROT_COW, PROT_READ, PROT_RW, PROT_WRITE

#: File-descriptor permission bits.
FD_READ = 1
FD_WRITE = 2
FD_RW = FD_READ | FD_WRITE

_VALID_MEM_PROTS = {PROT_READ, PROT_RW, PROT_COW, PROT_COW | PROT_READ}


def validate_mem_prot(prot):
    """Reject invalid memory protections, notably write-only.

    Most CPUs cannot express write-only pages, so Wedge refuses them
    (paper section 3.1): the programmer must grant read-write instead.
    """
    if prot == PROT_WRITE:
        raise PolicyError(
            "write-only memory permissions are not supported; "
            "grant read-write instead (paper section 3.1)")
    if prot not in _VALID_MEM_PROTS:
        raise PolicyError(f"invalid memory protection {prot!r}")
    return prot | PROT_READ if prot & PROT_COW else prot


class CallgateSpec:
    """A not-yet-instantiated callgate carried inside a SecurityContext.

    Produced by :func:`sc_cgate_add` with a callable entry point.  The
    kernel instantiates it — creating the tamper-proof kernel-side record
    holding (entry, permissions, trusted argument) — when the context is
    bound to a new sthread, per paper section 4.1.
    """

    def __init__(self, entry, gate_sc, trusted_arg, *, recycled=False,
                 supervise=None):
        self.entry = entry
        self.gate_sc = gate_sc
        self.trusted_arg = trusted_arg
        self.recycled = recycled
        #: optional RestartPolicy: restart the gate from the COW
        #: snapshot on a fault, bounded by the policy's budget
        self.supervise = supervise

    def __repr__(self):
        name = getattr(self.entry, "__name__", repr(self.entry))
        return f"<CallgateSpec entry={name}>"


class SecurityContext:
    """The ``sc_t`` structure: everything a new sthread may touch."""

    def __init__(self, *, uid=None, root=None, sid=None,
                 mem_quota=None):
        self.mem = {}        # tag id -> prot
        self.fds = {}        # fd number -> FD_* bits
        self.gate_specs = []  # CallgateSpec, instantiated at bind time
        self.gate_ids = []    # ids of existing callgates re-granted
        self.uid = uid
        self.root = root
        self.sid = sid
        #: optional allocation cap in bytes — an extension beyond the
        #: paper, which provides no DoS protection (§7)
        self.mem_quota = mem_quota

    def copy(self):
        other = SecurityContext(uid=self.uid, root=self.root,
                                sid=self.sid, mem_quota=self.mem_quota)
        other.mem = dict(self.mem)
        other.fds = dict(self.fds)
        other.gate_specs = list(self.gate_specs)
        other.gate_ids = list(self.gate_ids)
        return other

    def __repr__(self):
        return (f"<SecurityContext mem={self.mem} fds={self.fds} "
                f"gates={len(self.gate_specs) + len(self.gate_ids)} "
                f"uid={self.uid} root={self.root!r} sid={self.sid!r}>")


# -- the paper's sc_* calls ----------------------------------------------------------

def sc_mem_add(sc, tag, prot):
    """Grant *prot* on *tag*'s memory (``sc_mem_add`` in Table 1)."""
    sc.mem[int(tag)] = validate_mem_prot(prot)
    return sc


def sc_fd_add(sc, fd, prot):
    """Grant *prot* on file descriptor *fd* (``sc_fd_add`` in Table 1)."""
    if prot & ~FD_RW or prot == 0:
        raise PolicyError(f"invalid fd protection {prot!r}")
    sc.fds[int(fd)] = prot
    return sc


def sc_sel_context(sc, sid):
    """Attach an SELinux SID (``sc_sel_context`` in Table 1)."""
    sc.sid = sid
    return sc


def sc_cgate_add(sc, gate, gate_sc=None, trusted_arg=None, *,
                 recycled=False, supervise=None):
    """Add a callgate grant (``sc_cgate_add`` in Table 1).

    Two forms, matching how the paper's API is used:

    * ``sc_cgate_add(sc, entry_fn, gate_sc, trusted_arg)`` — define a new
      callgate at entry point *entry_fn* running with *gate_sc*; it is
      instantiated kernel-side when *sc* is bound to a new sthread.
      ``recycled=True`` makes it a long-lived recycled callgate;
      ``supervise=RestartPolicy(...)`` makes the kernel restart it from
      the COW snapshot when an invocation faults.
    * ``sc_cgate_add(sc, gate_id)`` — re-grant an existing callgate the
      caller itself may invoke (delegation to a child).
    """
    if callable(gate):
        if gate_sc is None:
            raise PolicyError("a new callgate needs a security context")
        sc.gate_specs.append(
            CallgateSpec(gate, gate_sc, trusted_arg, recycled=recycled,
                         supervise=supervise))
    else:
        if gate_sc is not None or trusted_arg is not None or \
                supervise is not None:
            raise PolicyError(
                "re-granting an existing callgate takes no context/arg")
        sc.gate_ids.append(int(gate))
    return sc


# -- monotonicity ---------------------------------------------------------------------

def mem_prot_subset(child_prot, parent_prot):
    """May a parent holding *parent_prot* grant *child_prot*?

    Shared-write authority (PROT_WRITE) may only be delegated by a parent
    that itself holds it.  Read and copy-on-write access may be delegated
    by any parent that can read the data at all.
    """
    if child_prot & PROT_WRITE and not parent_prot & PROT_WRITE:
        return False
    return bool(parent_prot & (PROT_READ | PROT_COW))


def check_subset_of(child_sc, parent, selinux_policy, *, what="sthread"):
    """Enforce that *child_sc* grants no more than *parent* holds.

    *parent* is the creating :class:`~repro.core.sthread.Sthread` (or the
    bootstrap process, which holds every privilege it created).  Raises
    :class:`PolicyError` on any excess grant.
    """
    pctx = parent.ctx
    for tag_id, prot in child_sc.mem.items():
        parent_prot = pctx.mem.get(tag_id)
        if parent_prot is None:
            raise PolicyError(
                f"{what}: parent {parent.name!r} holds no access to "
                f"tag {tag_id} and so cannot grant it")
        if not mem_prot_subset(prot, parent_prot):
            raise PolicyError(
                f"{what}: grant on tag {tag_id} exceeds parent "
                f"{parent.name!r}'s own permission")
    for fd, prot in child_sc.fds.items():
        # the descriptor table is authoritative for what the parent holds
        parent_prot = parent.fdtable.perms_of(fd)
        if prot & ~parent_prot:
            raise PolicyError(
                f"{what}: fd {fd} grant exceeds parent {parent.name!r}'s "
                f"own permission")
    for gate_id in child_sc.gate_ids:
        if gate_id not in parent.gates:
            raise PolicyError(
                f"{what}: parent {parent.name!r} may not invoke callgate "
                f"{gate_id} and so cannot delegate it")
    if child_sc.uid is not None and child_sc.uid != parent.uid:
        if parent.uid != 0:
            raise PolicyError(
                f"{what}: only root may change a child's uid "
                f"(parent uid={parent.uid})")
    if child_sc.root is not None and child_sc.root != parent.root:
        if parent.uid != 0:
            raise PolicyError(
                f"{what}: only root may change a child's filesystem root")
    if child_sc.sid is not None and child_sc.sid != parent.sel_sid:
        selinux_policy.check_transition(parent.sel_sid, child_sc.sid)
