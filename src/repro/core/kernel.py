"""The simulated Wedge kernel.

One :class:`Kernel` instance models one machine: an address space, a tag
namespace, a VFS, an optional network attachment, and the population of
compartments (the bootstrap process plus every sthread, fork child,
pthread and callgate created from it).

Everything in the paper's Table 1 is a method here, with the same
semantics:

====================  =====================================================
Paper call            Kernel method
====================  =====================================================
``sthread_create``    :meth:`Kernel.sthread_create`
``sthread_join``      :meth:`Kernel.sthread_join`
``tag_new``           :meth:`Kernel.tag_new`
``tag_delete``        :meth:`Kernel.tag_delete`
``smalloc``           :meth:`Kernel.smalloc`
``sfree``             :meth:`Kernel.sfree` (also :meth:`Kernel.free`)
``smalloc_on/off``    :meth:`Kernel.smalloc_on` / :meth:`Kernel.smalloc_off`
``BOUNDARY_VAR/TAG``  :mod:`repro.core.boundary`
``sc_*``              :mod:`repro.core.policy`
``cgate``             :meth:`Kernel.cgate`
====================  =====================================================

Compartment tracking is a per-OS-thread context stack: whichever sthread
is on top of the stack is "running", and every kernel entry point charges
its costs and checks its permissions against that compartment.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import hmac
import inspect
import os
import random
import threading
import time

from repro.core.callgate import CallgateRecord
from repro.core.costs import CostAccount
from repro.core.errors import (CallgateDegraded, CallgateError,
                               CompartmentDown, CompartmentFault,
                               DeadlineExceeded, GateTimeout, JoinTimeout,
                               KernelDead, MemoryViolation, NetTimeout,
                               OutOfMemory, PolicyError, SthreadError,
                               SthreadFaulted, SyscallDenied, TagError,
                               VfsError, WedgeError)
from repro.core.fdtable import (DiskOpenFile, FdTable, ListenerOpenFile,
                                PipeOpenFile, SocketOpenFile, VfsOpenFile)
from repro.core.image import ImageBuilder
from repro.core.memory import (PAGE_SHIFT, PAGE_SIZE, PROT_COW, PROT_READ,
                               PROT_RW, PROT_WRITE, AddressSpace, MemoryBus,
                               VerifiedMap)
from repro.core.policy import (FD_READ, FD_RW, FD_WRITE, SecurityContext,
                               check_subset_of, validate_mem_prot)
from repro.core.reactor import (Reactor, wait_acceptable, wait_done,
                                wait_readable, wait_writable)
from repro.core.selinux import UNCONFINED, SELinuxPolicy
from repro.core.sthread import HEAP_SIZE, STACK_SIZE, Sthread
from repro.core.tags import DEFAULT_TAG_SIZE, TagManager
from repro.core.vfs import Vfs
from repro.net.stream import DEFAULT_TIMEOUT as DEFAULT_STREAM_TIMEOUT
from repro.net.stream import ByteStream, DuplexStream
from repro.observe import events as ev
from repro.observe.bus import EventBus
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import current_deadline, deadline_scope


def _traced_syscall(fn):
    """Emit paired ``syscall.enter``/``syscall.exit`` events around a
    syscall method.  The disabled path is one attribute test and a
    plain call — no event, no kwargs, no model cycles."""
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        obs = self.observe
        if not obs.enabled:
            return fn(self, *args, **kwargs)
        comp = self._comp_name()
        obs.emit(ev.SYSCALL_ENTER, comp=comp, name=name)
        try:
            result = fn(self, *args, **kwargs)
        except BaseException as exc:
            obs.emit(ev.SYSCALL_EXIT, comp=comp, name=name, ok=False,
                     error=type(exc).__name__)
            raise
        obs.emit(ev.SYSCALL_EXIT, comp=comp, name=name, ok=True)
        return result
    return wrapper


class TableView:
    """Adapter letting the heap allocator run through a page table.

    ``smalloc`` is userland code executing *inside* the calling sthread,
    so its bookkeeping loads and stores must obey that sthread's page
    protections (and show up in Crowbar traces).  This view exposes a
    segment-relative ``read_raw``/``write_raw`` that routes through the
    memory bus under a given table.
    """

    def __init__(self, bus, table, segment, size):
        self._bus = bus
        self._table = table
        self._base = segment.base
        self.size = size
        self.name = segment.name

    def read_raw(self, offset, size):
        return self._bus.read(self._table, self._base + offset, size)

    def write_raw(self, offset, data):
        self._bus.write(self._table, self._base + offset, data)


class Buffer:
    """Convenience handle for a tagged allocation: address + length."""

    __slots__ = ("kernel", "addr", "size")

    def __init__(self, kernel, addr, size):
        self.kernel = kernel
        self.addr = addr
        self.size = size

    def read(self, size=None, offset=0):
        size = self.size - offset if size is None else size
        return self.kernel.mem_read(self.addr + offset, size)

    def write(self, data, offset=0):
        if offset + len(data) > self.size:
            raise WedgeError("write beyond buffer end")
        self.kernel.mem_write(self.addr + offset, data)

    def __len__(self):
        return self.size


class Kernel:
    """One simulated machine running one Wedge-partitioned application."""

    #: Default for the ``tlb=`` switch.  Tests and the chaos runner
    #: override this (not the instances) to ablate apps that construct
    #: their own Kernel internally.
    DEFAULT_TLB = True

    #: Default for the ``scheduler=`` switch: ``"threads"`` is the
    #: original thread-per-connection path (the deterministic reference
    #: oracle); ``"reactor"`` multiplexes generator-bodied sthreads as
    #: cooperative continuations on one readiness loop per kernel.
    #: Campaign harnesses override the *class* attribute (same idiom as
    #: DEFAULT_TLB) to flip apps that construct their Kernel internally.
    DEFAULT_SCHEDULER = "threads"

    def __init__(self, *, selinux=None, tag_cache=True, net=None,
                 name="wedge", tlb=None, scheduler=None):
        self.name = name
        scheduler = (self.DEFAULT_SCHEDULER if scheduler is None
                     else scheduler)
        if scheduler not in ("threads", "reactor"):
            raise WedgeError(f"unknown scheduler {scheduler!r} "
                             "(expected 'threads' or 'reactor')")
        self.scheduler = scheduler
        self._reactor = None
        self.costs = CostAccount()
        #: the observability event bus; disabled (no sinks) until an
        #: Observer attaches, at which point the chokepoints light up
        self.observe = EventBus(self.costs, kernel_name=name)
        self.space = AddressSpace()
        self.bus = MemoryBus(self.space, self.costs,
                             tlb=self.DEFAULT_TLB if tlb is None else tlb)
        self.bus.observe = self.observe
        self.tags = TagManager(self.space, self.costs,
                               cache_enabled=tag_cache)
        self.selinux = selinux if selinux is not None else SELinuxPolicy()
        self.vfs = Vfs()
        self.net = net
        self.image_builder = ImageBuilder()
        from repro.core.boundary import BoundaryRegistry
        self.boundary = BoundaryRegistry()
        self.image = None
        self.main = None
        self._gates = {}
        self._next_sthread_id = 1
        self._next_gate_id = 1
        self._tls = threading.local()
        self._spawn_lock = threading.Lock()
        #: Crowbar attachment points: callables fired on allocation events
        #: as ``hook(event, addr, size, segment, sthread)``.
        self.alloc_hooks = []
        #: live heap allocations (addr -> (size, segment)); lets a
        #: late-attaching cb-log resolve objects allocated before it
        self.live_allocations = {}
        self.sthreads = []
        #: installed FaultPlan, or None.  The hot paths test this one
        #: attribute and branch away, so the disabled overhead is a
        #: single None check.
        self.faults = None
        #: proof-carrying fast path (repro.analysis.verify): certificate
        #: templates consulted at compartment build time, the in-process
        #: signing secret, and the verified-syscall counter.  Verified
        #: mode is strictly opt-in: with no templates registered nothing
        #: here is ever consulted on a hot path beyond a None check.
        self._cert_templates = []
        self._cert_secret = os.urandom(16)
        self.verified_syscalls = 0
        #: whole-kernel liveness (repro.cluster): kill() flips this and
        #: every subsequent syscall raises KernelDead.  The hot path is
        #: a single truthiness test.
        self.alive = True
        #: network endpoints opened by this kernel's syscalls, so that
        #: kill() can tear the machine off the wire: listeners unbind,
        #: established connections reset (peers see PeerReset, not hangs)
        self._owned_listeners = []
        self._owned_socks = []
        #: simulated disks opened on this kernel (repro.disk).  The
        #: devices outlive the kernel — kill() crashes them (dropping or
        #: tearing unflushed writes) but never destroys them, so a fresh
        #: incarnation can re-open and recover.
        self._disks = []
        #: campaign hook: a callable fired with the syscall name at the
        #: top of every trap, before any work.  The recovery campaign's
        #: kill-at-any-point sweep installs its counter/killer here; the
        #: disabled overhead is one attribute test.
        self.syscall_tap = None

    # ------------------------------------------------------------------
    # scheduling (repro.core.reactor)
    # ------------------------------------------------------------------

    @property
    def reactor(self):
        """This kernel's readiness loop (created on first use).

        Only meaningful under ``scheduler="reactor"``; asking a
        threads-scheduled kernel for one is a programming error and
        raises, so tests can't silently run the wrong mode.
        """
        if self.scheduler != "reactor":
            raise WedgeError(
                f"kernel {self.name!r} uses scheduler='threads'; "
                "construct it with scheduler='reactor' for a reactor")
        if self._reactor is None:
            self._reactor = Reactor(kernel=self,
                                    name=f"{self.name}-reactor")
        return self._reactor

    @classmethod
    @contextlib.contextmanager
    def scheduler_override(cls, scheduler):
        """Temporarily flip :attr:`DEFAULT_SCHEDULER` (save/restore).

        The campaign harnesses wrap app construction in this so apps
        that build their own Kernel internally pick up the requested
        scheduler, exactly like the chaos runner's DEFAULT_TLB idiom.
        ``scheduler=None`` is a no-op scope.
        """
        saved = cls.DEFAULT_SCHEDULER
        if scheduler is not None:
            cls.DEFAULT_SCHEDULER = scheduler
        try:
            yield
        finally:
            cls.DEFAULT_SCHEDULER = saved

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------

    def declare_global(self, name, size, init=b""):
        """Declare a pre-``main`` global (static initialisation time)."""
        return self.image_builder.declare(name, size, init)

    def start_main(self):
        """Seal the image, snapshot it, and enter ``main``.

        Returns the bootstrap compartment (the original process), which
        holds uid 0, root ``/``, the unconfined SID, and a live (non-COW)
        mapping of the globals image.
        """
        if self.main is not None:
            raise WedgeError("start_main called twice")
        self.image = self.image_builder.seal(self.space)
        self.boundary.materialise_all(self.space)
        ctx = SecurityContext()
        main = self._new_compartment("main", ctx, uid=0, root="/",
                                     sel_sid=UNCONFINED, kind="process")
        main.table.map_segment(self.image.segment, PROT_RW)
        self._give_private_regions(main)
        main.fdtable = FdTable()
        main.status = "running"
        self.main = main
        self._stack().append(main)
        if self.observe.enabled:
            self.observe.emit(ev.COW_SNAPSHOT, comp=main.name,
                              pages=len(self.image.snapshot_frames))
        return main

    def _new_compartment(self, name, ctx, *, uid, root, sel_sid, kind,
                         parent=None):
        with self._spawn_lock:
            sid = self._next_sthread_id
            self._next_sthread_id += 1
        st = Sthread(sid, name, ctx, uid=uid, root=root, sel_sid=sel_sid,
                     kind=kind, parent=parent)
        st.table.observe = self.observe   # tlb.shootdown emit point
        self.sthreads.append(st)
        return st

    def _give_private_regions(self, st, *, heap_size=HEAP_SIZE,
                              stack_size=STACK_SIZE):
        """Create and map the compartment's private heap and stack."""
        heap_seg = self.space.create_segment(
            heap_size, name=f"{st.name}:heap", kind="heap")
        stack_seg = self.space.create_segment(
            stack_size, name=f"{st.name}:stack", kind="stack")
        st.heap_segment = heap_seg
        st.stack_segment = stack_seg
        st.table.map_segment(heap_seg, PROT_RW, costs=self.costs)
        st.table.map_segment(stack_seg, PROT_RW, costs=self.costs)
        self.costs.charge("segment_create", 2)
        self._heap_for(st).format()

    def _heap_for(self, st):
        view = TableView(self.bus, st.table, st.heap_segment,
                         st.heap_segment.size)
        from repro.core.allocator import Heap
        return Heap(view, st.heap_segment.size, costs=self.costs)

    # ------------------------------------------------------------------
    # compartment context tracking
    # ------------------------------------------------------------------

    def _stack(self):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current(self):
        """The compartment executing on this OS thread."""
        stack = self._stack()
        if not stack:
            if self.main is None:
                raise WedgeError("kernel not booted: call start_main()")
            return self.main
        return stack[-1]

    def _comp_name(self):
        """Current compartment's name for event stamping (None pre-boot).

        Unlike :meth:`current` this never raises, so the enabled branch
        of an emit point is safe at any kernel lifecycle stage.
        """
        stack = self._stack()
        if stack:
            return stack[-1].name
        return self.main.name if self.main is not None else None

    def caller(self):
        """The compartment that invoked the current callgate.

        Used by authentication callgates to promote their caller's uid
        and filesystem root on success (paper section 5.2).
        """
        stack = self._stack()
        if len(stack) < 2:
            raise WedgeError("no caller: not inside a callgate")
        return stack[-2]

    class _AsCurrent:
        def __init__(self, kernel, st):
            self.kernel = kernel
            self.st = st

        def __enter__(self):
            self.kernel._stack().append(self.st)
            return self.st

        def __exit__(self, *exc):
            self.kernel._stack().pop()
            return False

    def _as_current(self, st):
        return self._AsCurrent(self, st)

    # ------------------------------------------------------------------
    # syscall gate (SELinux-lite)
    # ------------------------------------------------------------------

    def _syscall(self, name):
        """Charge the trap and run the SELinux check for the caller.

        With a bound policy certificate whose allow-set covers *name*
        the SELinux check is provably redundant (verified against the
        granted SID at certification time), so the trap is charged at
        the cheaper ``verified_syscall`` weight and the check elided.
        """
        if not self.alive:
            raise KernelDead(
                f"kernel {self.name!r} is dead: syscall {name!r} refused",
                kernel=self.name)
        tap = self.syscall_tap
        if tap is not None:
            tap(self, name)
        st = self.current()
        ver = st.table.verified
        if ver is not None and name in ver.syscalls:
            self.costs.charge("verified_syscall")
            self.verified_syscalls += 1
            return st
        self.costs.charge("syscall")
        self.selinux.check_syscall(st.sel_sid, name)
        return st

    # ------------------------------------------------------------------
    # whole-kernel liveness (repro.cluster)
    # ------------------------------------------------------------------

    #: seed-mixing constant so the power-loss prefix draw is independent
    #: of the fault plan's own rate draws (the kernelfail.py idiom)
    _POWER_SALT = 0x504F5752   # "POWR"

    def kill(self, *, power_loss=False, seed=None):
        """Kill the whole machine: the cluster chaos mode's one verb.

        Marks the kernel dead (every later syscall raises
        :class:`~repro.core.errors.KernelDead`) and tears it off the
        network — owned listeners close (in-flight connects map to the
        typed :class:`~repro.core.errors.ConnectionRefused` race path),
        established connections reset so remote peers blocked in
        recv/send wake promptly with
        :class:`~repro.core.errors.PeerReset` instead of timing out.
        Idempotent.

        Attached disks crash honestly either way: a plain kill discards
        every unflushed write (the buffer cache dies with the machine);
        ``power_loss=True`` instead snapshots each device at a seeded
        arbitrary prefix of its unflushed write stream — reordered
        across sectors, torn at sector granularity — drawn from *seed*
        (default: the installed fault plan's seed, else 0).  Everything
        an ``fsync`` barrier acknowledged is durable in both modes.
        """
        if not self.alive:
            return
        if self._disks:
            if power_loss:
                base = seed
                if base is None:
                    base = self.faults.seed if self.faults is not None \
                        else 0
                rng = random.Random((int(base) << 1) ^ self._POWER_SALT)
                for disk in self._disks:
                    applied, dropped = disk.power_loss(rng)
                    if self.observe.enabled:
                        self.observe.emit(
                            ev.DISK_POWER_LOSS, comp=None,
                            disk=disk.name, applied=applied,
                            dropped=dropped)
            else:
                for disk in self._disks:
                    disk.drop_pending()
        self.alive = False
        for listener in self._owned_listeners:
            try:
                listener.close()
            except WedgeError:
                pass
        for sock in self._owned_socks:
            try:
                sock.reset()
            except WedgeError:
                pass
        if self._reactor is not None:
            self._reactor.close()

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------

    def install_faults(self, plan):
        """Attach a :class:`~repro.faults.FaultPlan` (or None to remove).

        The plan is consulted at the kernel chokepoints and propagated
        to the attached network so connect/send faults fire too.  The
        plan also learns this kernel's event bus, so every injection —
        kernel- or network-site — shows up as a ``fault.fired`` event.
        """
        self.faults = plan
        if plan is not None:
            plan.observer = self.observe
        if self.net is not None:
            self.net.faults = plan
        return plan

    def _fault_point(self, site, addr=None):
        """Consult the installed plan at *site*; raise the chosen fault."""
        st = self.current()
        spec = self.faults.fire(site, compartment=st)
        if spec is None:
            return
        # a fired injection falsifies the static proof's assumptions for
        # this compartment: drop back to the checked path before the
        # fault even surfaces (revocation goes through _invalidate)
        st.table.revoke_certificate(costs=self.costs)
        kind = spec.kind
        if kind == "memfault":
            raise MemoryViolation(
                f"injected fault: {site} in {st.name}", addr=addr,
                op="injected", sthread=st)
        if kind == "enomem":
            raise OutOfMemory(
                f"injected allocator exhaustion in {st.name}")
        if kind == "crash":
            raise MemoryViolation(
                f"injected crash at {site} in {st.name}",
                op="injected", sthread=st)
        if kind == "delay":
            time.sleep(spec.delay)
            return
        raise WedgeError(f"unhandled injected fault kind {kind!r}")

    # ------------------------------------------------------------------
    # memory: loads/stores, tags, allocators
    # ------------------------------------------------------------------

    def mem_read(self, addr, size):
        """Load *size* bytes under the current compartment's protections."""
        if self.faults is not None and self.faults.enabled:
            self._fault_point("mem_read", addr)
        return self.bus.read(self.current().table, addr, size)

    def mem_write(self, addr, data):
        """Store bytes under the current compartment's protections."""
        if self.faults is not None and self.faults.enabled:
            self._fault_point("mem_write", addr)
        self.bus.write(self.current().table, addr, bytes(data))

    def tlb_stats(self):
        """Aggregate simulated-TLB counters for this kernel.

        ``hits``/``walks`` come from the bus (a walk is any full
        page-table lookup: a TLB miss, or every access when disabled);
        ``shootdowns`` and ``entries`` are summed over the distinct live
        page tables (pthreads share their parent's table).
        """
        tables = {}
        for st in self.sthreads:
            tables[id(st.table)] = st.table
        return {
            "enabled": self.bus.tlb_enabled,
            "hits": self.bus.tlb_hits,
            "walks": self.bus.tlb_walks,
            "shootdowns": sum(t.tlb_shootdowns for t in tables.values()),
            "entries": sum(len(t.tlb) for t in tables.values()),
        }

    def verified_stats(self):
        """Aggregate verified-mode counters for this kernel."""
        tables = {}
        for st in self.sthreads:
            tables[id(st.table)] = st.table
        return {
            "accesses": self.bus.verified_ops,
            "syscalls": self.verified_syscalls,
            "certified": sum(1 for t in tables.values()
                             if t.verified is not None),
            "revocations": sum(t.cert_revocations
                               for t in tables.values()),
        }

    # ------------------------------------------------------------------
    # verified mode (repro.analysis.verify)
    # ------------------------------------------------------------------

    def enable_verified(self, templates):
        """Register certificate templates (see
        :class:`~repro.analysis.verify.CertificateTemplate`).

        Every subsequently built compartment whose name matches a
        template is bound a policy certificate at spawn time and runs
        check-free until the first rights narrowing revokes it.
        """
        self._cert_templates = list(templates)
        return self._cert_templates

    def sign_policy(self, payload):
        """HMAC a certificate payload with the kernel-held secret.

        The signature makes certificates unforgeable by compartment
        code: :meth:`enter_verified` rejects anything not signed here.
        """
        return hmac.new(self._cert_secret, payload,
                        hashlib.sha256).hexdigest()

    def _maybe_certify(self, st):
        """Bind the first matching registered template to *st*, if any.

        A failed bind (grants moved out from under the template) is not
        an error — the compartment simply runs on the checked path.
        """
        for template in self._cert_templates:
            if template.matches(st):
                template.bind(st, self)
                return

    def enter_verified(self, cert, st=None):
        """Install a signed policy certificate on *st* (default: the
        current compartment), entering verified mode.

        The certificate's claims were proven by ``repro.analysis.verify``
        against the *granted* security context; this method re-derives
        the concrete page maps from the table's live PTEs, so the
        resulting :class:`VerifiedMap` can never exceed what the table
        itself maps: a page is covered for reading (writing) only if its
        PTE carries PROT_READ (PROT_WRITE) right now.  Any later
        narrowing funnels through ``PageTable._invalidate``, which voids
        the map atomically.
        """
        st = self.current() if st is None else st
        table = st.table
        if not hmac.compare_digest(cert.signature,
                                   self.sign_policy(cert.payload())):
            raise PolicyError(
                f"policy certificate for {cert.sthread!r} has an "
                f"invalid signature")
        if cert.sthread != st.name or cert.table_id != id(table):
            raise PolicyError(
                f"certificate bound to {cert.sthread!r} cannot be "
                f"installed on {st.name!r}: certificates are "
                f"per-incarnation and never survive a restart")
        rpages, wpages = {}, {}

        def cover(segment, want_write):
            first = segment.base >> PAGE_SHIFT
            for i in range(segment.npages):
                pte = table.entries.get(first + i)
                if pte is None:
                    continue
                view = memoryview(pte.frame.data)
                if pte.prot & PROT_READ:
                    rpages[first + i] = (view, segment)
                if want_write and pte.prot & PROT_WRITE:
                    wpages[first + i] = (view, segment)

        # the compartment's own regions: private by construction, so
        # the analyzer's PRIVATE_ALLOC accesses are proven trivially
        if st.heap_segment is not None:
            cover(st.heap_segment, True)
        if st.stack_segment is not None:
            cover(st.stack_segment, True)
        if self.image is not None:
            # the globals image: RW for main, COW (read-only cover; a
            # first write breaks COW on the checked path and revokes)
            # for every other compartment
            cover(self.image.segment, True)
        for tag_id, rights in cert.mem.items():
            tag = self.tags.get(tag_id)
            if tag is None:
                raise PolicyError(
                    f"certificate for {st.name!r} names deleted tag "
                    f"{tag_id}")
            cover(tag.segment, "w" in rights)
        vmap = VerifiedMap(rpages, wpages, cert.syscalls, cert)
        table.install_certificate(vmap, costs=self.costs)
        if self.observe.enabled:
            self.observe.emit(ev.ANALYSIS_CERTIFIED, comp=st.name,
                              rpages=len(rpages), wpages=len(wpages),
                              syscalls=sorted(cert.syscalls))
        return vmap

    def tag_new(self, size=DEFAULT_TAG_SIZE, *, name=""):
        """Create a tag; the creator gets read-write access implicitly."""
        st = self.current()
        # the cached-reuse fast path deliberately avoids the kernel trap;
        # TagManager charges the syscall only on the fresh path
        self.selinux.check_syscall(st.sel_sid, "tag_new")
        tag = self.tags.tag_new(size, name=name)
        st.ctx.mem[tag.id] = PROT_RW
        st.table.map_segment(tag.segment, PROT_RW, costs=self.costs)
        return tag

    def tag_delete(self, tag):
        # deleting into the userland cache avoids the kernel trap; the
        # TagManager charges the syscall only when it really unmaps
        st = self.current()
        self.selinux.check_syscall(st.sel_sid, "tag_delete")
        tag = self.tags.resolve(tag)
        if st.ctx.mem.get(tag.id) is None:
            raise TagError(f"{st.name} holds no access to tag {tag.id}")
        st.table.unmap_segment(tag.segment, costs=self.costs)
        st.ctx.mem.pop(tag.id, None)
        self.tags.tag_delete(tag)

    def adopt_boundary_segment(self, segment):
        """Wrap an existing boundary section in a tag (kernel-internal).

        Used by ``BOUNDARY_TAG``: the section already exists in the ELF
        image; the tag merely names it so policies can grant it.  The
        current compartment receives read-write access, like ``tag_new``.
        """
        st = self.current()
        tag = self.tags.adopt(segment)
        st.ctx.mem[tag.id] = PROT_RW
        st.table.map_segment(segment, PROT_RW, costs=self.costs)
        return tag

    def smalloc(self, size, tag):
        """Allocate *size* bytes of memory carrying *tag*."""
        st = self.current()
        tag = self.tags.resolve(tag)
        prot = st.ctx.mem.get(tag.id, 0)
        self.costs.charge("policy_check")
        if not prot & PROT_READ or not prot & 2:  # needs RW to manage heap
            raise PolicyError(
                f"{st.name} lacks read-write access to tag {tag.id} "
                f"and so cannot smalloc from it")
        if tag.heap is None:
            raise TagError(f"tag {tag.id} is a boundary section; "
                           f"it cannot back smalloc")
        self._check_quota(st, size)
        if self.faults is not None and self.faults.enabled:
            self._fault_point("smalloc")
        from repro.core.allocator import Heap
        view = TableView(self.bus, st.table, tag.segment, tag.segment.size)
        heap = Heap(view, tag.segment.size, costs=self.costs)
        with tag.lock:
            offset = heap.alloc(size)
        addr = tag.segment.base + offset
        self._fire_alloc("alloc", addr, size, tag.segment, st)
        return addr

    def malloc(self, size):
        """Allocate from the private heap — or, under ``smalloc_on``,
        from the active tag (paper section 3.2's legacy-tagging aid)."""
        st = self.current()
        if st.smalloc_tag is not None:
            return self.smalloc(size, st.smalloc_tag)
        if self.faults is not None and self.faults.enabled:
            self._fault_point("malloc")
        self._check_quota(st, size)
        heap = self._heap_for(st)
        offset = heap.alloc(size)
        addr = st.heap_segment.base + offset
        self._fire_alloc("alloc", addr, size, st.heap_segment, st)
        return addr

    def sfree(self, addr):
        """Free a tagged or private-heap allocation by address."""
        st = self.current()
        segment, offset = self.space.find(addr)
        from repro.core.allocator import Heap
        if segment.tag_id is not None:
            tag = self.tags.get(segment.tag_id)
            if tag is None:
                raise TagError(f"address 0x{addr:x} belongs to a deleted tag")
            prot = st.ctx.mem.get(tag.id, 0)
            if not prot & 2:
                raise PolicyError(
                    f"{st.name} lacks write access to tag {tag.id}")
            view = TableView(self.bus, st.table, segment, segment.size)
            with tag.lock:
                Heap(view, segment.size, costs=self.costs).free(offset)
        elif segment is st.heap_segment:
            self._heap_for(st).free(offset)
        else:
            raise TagError(
                f"address 0x{addr:x} is not a heap allocation of {st.name}")
        self._fire_alloc("free", addr, 0, segment, st)

    #: ``free`` is an alias: the LD_PRELOAD shim routes both names here.
    free = sfree

    def smalloc_on(self, tag):
        """Route subsequent ``malloc`` calls to *tag* (paper section 4.1).

        Per the paper, this is a single per-sthread flag: not recursive,
        not signal- or thread-safe within one sthread.  Use
        :meth:`smalloc_state` / :meth:`smalloc_restore` to save and
        restore around signal handlers or recursion.
        """
        st = self.current()
        tag = self.tags.resolve(tag)
        if st.smalloc_tag is not None:
            raise WedgeError(
                "smalloc_on is not recursive (paper section 4.1); "
                "save and restore the state instead")
        st.smalloc_tag = tag

    def smalloc_off(self):
        st = self.current()
        if st.smalloc_tag is None:
            raise WedgeError("smalloc_off without smalloc_on")
        st.smalloc_tag = None

    def smalloc_state(self):
        return self.current().smalloc_tag

    def smalloc_restore(self, state):
        self.current().smalloc_tag = state

    def alloc_buf(self, size, tag=None, init=None):
        """Allocate and return a :class:`Buffer` (tagged if *tag* given)."""
        addr = self.malloc(size) if tag is None else self.smalloc(size, tag)
        buf = Buffer(self, addr, size)
        if init is not None:
            buf.write(init)
        return buf

    def _fire_alloc(self, event, addr, size, segment, st):
        if event == "alloc":
            self.live_allocations[addr] = (size, segment)
            st.alloc_bytes += size
        else:
            freed = self.live_allocations.pop(addr, None)
            if freed is not None:
                st.alloc_bytes = max(0, st.alloc_bytes - freed[0])
        for hook in self.alloc_hooks:
            hook(event, addr, size, segment, st)

    def _check_quota(self, st, size):
        """Enforce the compartment's allocation cap, if it has one.

        An extension beyond the paper (which offers no DoS protection,
        §7): an exploited compartment cannot consume unbounded memory.
        """
        quota = st.ctx.mem_quota
        if quota is not None and st.alloc_bytes + size > quota:
            from repro.core.errors import QuotaExceeded
            raise QuotaExceeded(
                f"{st.name}: allocation of {size} bytes exceeds its "
                f"{quota}-byte quota ({st.alloc_bytes} in use)")

    # -- stack allocations (Crowbar's stack category) ---------------------

    class _StackFrame:
        def __init__(self, kernel, name):
            self.kernel = kernel
            self.name = name

        def __enter__(self):
            self.kernel.current().push_frame(self.name)
            return self

        def __exit__(self, *exc):
            self.kernel.current().pop_frame()
            return False

    def stack_frame(self, func_name):
        """Context manager declaring a simulated stack frame."""
        return self._StackFrame(self, func_name)

    def stack_alloc(self, size):
        """Bump-allocate in the current frame (``alloca`` equivalent)."""
        st = self.current()
        if not st.stack_frames:
            raise WedgeError("stack_alloc outside a stack_frame")
        self._check_quota(st, size)
        size = (size + 7) & ~7
        if st.stack_sp + size > st.stack_segment.size:
            raise WedgeError(f"stack overflow in {st.name}")
        addr = st.stack_segment.base + st.stack_sp
        st.stack_sp += size
        self._fire_alloc("alloc", addr, size, st.stack_segment, st)
        return addr

    # ------------------------------------------------------------------
    # sthreads, fork, pthreads
    # ------------------------------------------------------------------

    @_traced_syscall
    def sthread_create(self, sc, body, arg=None, *, name="",
                       spawn="thread", emulate=False, supervise=None,
                       heap_size=None, stack_size=None):
        """Create a compartment with exactly the privileges in *sc*.

        ``spawn="thread"`` runs *body* concurrently; ``spawn="inline"``
        runs it to completion before returning (deterministic mode).
        ``emulate=True`` uses the sthread emulation library: the child
        gets grant-all memory and its violations are recorded on
        ``child.table.violations`` instead of killing it (paper §3.4).
        ``supervise=RestartPolicy(...)`` wraps the compartment in a
        supervisor that restarts it from the COW snapshot on a
        :class:`CompartmentFault`, up to the policy's budget; the
        returned handle is a
        :class:`~repro.faults.supervise.SupervisedSthread`.

        ``heap_size``/``stack_size`` (bytes, page-granular) override the
        default private-region sizes — the 10k-connection campaigns
        spawn per-connection sthreads with page-sized regions so memory
        stays linear in live connections, not in default heap size.

        Under ``scheduler="reactor"``, a *generator-function* body is
        scheduled as a cooperative continuation on the kernel's
        readiness loop instead of an OS thread; plain callables keep
        their thread (the escape hatch for blocking bodies).
        """
        parent = self._syscall("sthread_create")
        check_subset_of(sc, parent, self.selinux)
        if supervise is not None:
            from repro.faults.supervise import SupervisedSthread
            handle = SupervisedSthread(
                self, sc, parent, body, arg,
                name=name or f"sup{self._next_sthread_id}",
                policy=supervise, spawn=spawn, emulate=emulate)
            return handle.start()
        child = self._build_sthread(sc, parent, name=name or None,
                                    kind="sthread", heap_size=heap_size,
                                    stack_size=stack_size)
        child.table.emulation = emulate
        self.costs.charge("task_create")
        self._start(child, body, arg, spawn)
        return child

    def _build_sthread(self, sc, parent, *, name, kind, span_parent=None,
                       heap_size=None, stack_size=None):
        """Construct the compartment state for a bound security context.

        *span_parent* overrides the trace linkage (default: the
        spawner's current span); supervision passes the crashed
        incarnation's span here so restarts chain visibly.
        """
        uid = sc.uid if sc.uid is not None else parent.uid
        root = sc.root if sc.root is not None else parent.root
        sel_sid = sc.sid if sc.sid is not None else parent.sel_sid
        ctx = SecurityContext(uid=uid, root=root, sid=sel_sid,
                              mem_quota=sc.mem_quota)
        ctx.mem = dict(sc.mem)
        ctx.fds = dict(sc.fds)
        child = self._new_compartment(
            name or f"sthread{self._next_sthread_id}", ctx, uid=uid,
            root=root, sel_sid=sel_sid, kind=kind, parent=parent)
        self.costs.charge("mm_create")
        # COW view of the pristine pre-main snapshot (paper section 4.1)
        child.table.map_segment(self.image.segment,
                                PROT_READ | PROT_COW, costs=self.costs,
                                frames=self.image.snapshot_frames)
        self._give_private_regions(
            child,
            heap_size=HEAP_SIZE if heap_size is None else heap_size,
            stack_size=STACK_SIZE if stack_size is None else stack_size)
        # policy-granted tagged memory
        for tag_id, prot in sc.mem.items():
            tag = self.tags.resolve(tag_id)
            child.table.map_segment(tag.segment, prot, costs=self.costs)
        # policy-granted descriptors
        child.fdtable = parent.fdtable.dup_subset(sc.fds, costs=self.costs)
        # callgates: new instantiations plus delegated existing gates
        for spec in sc.gate_specs:
            record = self._instantiate_gate(spec, parent)
            child.gates.add(record.id)
        for gate_id in sc.gate_ids:
            child.gates.add(gate_id)
        self._observe_spawn(child, parent, span_parent=span_parent)
        if self._cert_templates:
            self._maybe_certify(child)
        return child

    def _observe_spawn(self, child, parent, *, span_parent=None):
        """Emit the spawn event and open the child's span (if tracing)."""
        obs = self.observe
        if obs.enabled:
            obs.emit(ev.STHREAD_SPAWN, comp=parent.name,
                     child=child.name, kind=child.kind)
        tracer = obs.tracer
        if tracer is not None:
            origin = span_parent if span_parent is not None \
                else parent.span
            child.span = tracer.begin(f"{child.kind}:{child.name}",
                                      comp=child.name, parent=origin)

    def _start(self, child, body, arg, spawn):
        if spawn == "inline":
            child.run_body(self, body, arg)
        elif spawn == "thread":
            if (self.scheduler == "reactor"
                    and inspect.isgeneratorfunction(body)):
                child.start_coop(self, body, arg)
            else:
                child.start_thread(self, body, arg)
        else:
            raise WedgeError(f"unknown spawn mode {spawn!r}")

    def sthread_join(self, st, timeout=30.0):
        """Wait for *st*; returns its result.

        Raises typed errors instead of burying failure in ``None``:

        * :class:`~repro.core.errors.JoinTimeout` — *st* is still
          running after *timeout*;
        * :class:`~repro.core.errors.SthreadFaulted` — *st* died of a
          :class:`CompartmentFault` (chained as ``__cause__``);
        * :class:`~repro.core.errors.CompartmentDown` — a supervised
          *st* exhausted its restart budget.
        """
        result = st.join(timeout)
        self.costs.charge("task_destroy")
        if st.kind != "pthread":  # pthreads share the mm; nothing to tear down
            self.costs.charge("mm_destroy")
        if getattr(st, "degraded", False):
            raise st.down_error() from st.last_fault
        if st.faulted:
            raise SthreadFaulted(
                f"sthread {st.name!r} faulted: {st.fault}",
                sthread=st, fault=st.fault) from st.fault
        return result

    @_traced_syscall
    def fork(self, body, arg=None, *, name="", spawn="thread"):
        """UNIX fork: the child inherits *everything* — which is the
        paper's core criticism of processes as compartments."""
        parent = self._syscall("fork")
        ctx = parent.ctx.copy()
        child = self._new_compartment(name or f"{parent.name}:fork", ctx,
                                      uid=parent.uid, root=parent.root,
                                      sel_sid=parent.sel_sid,
                                      kind="process", parent=parent)
        self.costs.charge("task_create")
        self.costs.charge("mm_create")
        child.table = parent.table.clone(costs=self.costs,
                                         owner_name=child.name)
        # private (non-shared) regions become COW on both sides; the
        # downgrade narrows rights, so it shoots down cached translations
        for table in (parent.table, child.table):
            table.downgrade_to_cow(("heap", "stack", "globals"),
                                   costs=self.costs)
        child.heap_segment = parent.heap_segment
        child.stack_segment = parent.stack_segment
        child.stack_sp = parent.stack_sp
        child.stack_frames = list(parent.stack_frames)
        child.fdtable = parent.fdtable.dup_all(costs=self.costs)
        child.gates = set(parent.gates)
        child.table.observe = self.observe  # the clone replaced the table
        self._observe_spawn(child, parent)
        self._start(child, body, arg, spawn)
        return child

    @_traced_syscall
    def pthread_create(self, body, arg=None, *, name="", spawn="thread"):
        """POSIX thread: shares the address space, fds and privileges."""
        parent = self._syscall("pthread_create")
        child = self._new_compartment(name or f"{parent.name}:pthread",
                                      parent.ctx, uid=parent.uid,
                                      root=parent.root,
                                      sel_sid=parent.sel_sid,
                                      kind="pthread", parent=parent)
        self.costs.charge("task_create")
        child.table = parent.table            # shared address space
        child.fdtable = parent.fdtable
        child.gates = parent.gates
        child.heap_segment = parent.heap_segment
        # pthreads do get their own stack
        stack_seg = self.space.create_segment(
            STACK_SIZE, name=f"{child.name}:stack", kind="stack")
        child.stack_segment = stack_seg
        parent.table.map_segment(stack_seg, PROT_RW, costs=self.costs)
        self._observe_spawn(child, parent)
        self._start(child, body, arg, spawn)
        return child

    # ------------------------------------------------------------------
    # callgates
    # ------------------------------------------------------------------

    def _instantiate_gate(self, spec, creator):
        """Create the kernel-side record for a callgate spec.

        The gate's permissions must be a subset of its *creator's* (paper
        section 3.3), and the record captures the creator's uid, root and
        SID plus resolved descriptor objects so the eventual caller can
        tamper with none of them.
        """
        if spec.gate_sc.gate_specs:
            raise PolicyError(
                "a callgate's context may delegate existing gates but "
                "not define new ones")
        check_subset_of(spec.gate_sc, creator, self.selinux,
                        what="callgate")
        fd_files = []
        for fd, perms in spec.gate_sc.fds.items():
            entry = creator.fdtable.lookup(fd)
            fd_files.append((fd, entry.file, perms))
        with self._spawn_lock:
            gate_id = self._next_gate_id
            self._next_gate_id += 1
        record = CallgateRecord(
            gate_id, spec.entry, spec.gate_sc, spec.trusted_arg,
            creator_uid=creator.uid, creator_root=creator.root,
            creator_sid=(spec.gate_sc.sid or creator.sel_sid),
            fd_files=fd_files, recycled=spec.recycled,
            supervise=spec.supervise)
        self._gates[gate_id] = record
        return record

    def create_gate(self, entry, gate_sc, trusted_arg=None, *,
                    recycled=False, supervise=None):
        """Create a callgate for the *current* compartment.

        The paper's primary idiom: "after a privileged sthread creates a
        callgate, it may spawn a child sthread with reduced privilege,
        but grant that child permission to invoke the callgate" (section
        3.3).  The creator itself receives invocation rights; delegate to
        children with ``sc_cgate_add(sc, gate.id)``.
        """
        from repro.core.policy import CallgateSpec
        creator = self.current()
        spec = CallgateSpec(entry, gate_sc, trusted_arg, recycled=recycled,
                            supervise=supervise)
        record = self._instantiate_gate(spec, creator)
        creator.gates.add(record.id)
        return record

    @_traced_syscall
    def cgate(self, gate_id, perms=None, arg=None):
        """Invoke a callgate (paper Table 1's ``cgate``).

        *perms* grants the gate additional access from the *caller's* own
        privileges — normally read access to the tag holding *arg* — and
        is validated as a subset of the caller's permissions.  The caller
        blocks until the gate returns.
        """
        caller = self._syscall("cgate")
        self.costs.charge("cgate_lookup")
        record = self._gates.get(int(gate_id))
        if record is None:
            raise CallgateError(f"no such callgate: {gate_id}")
        if record.id not in caller.gates:
            raise CallgateError(
                f"{caller.name} has not been granted callgate "
                f"{record.name!r}")
        if perms is not None:
            check_subset_of(perms, caller, self.selinux,
                            what="cgate arg perms")
            if perms.gate_specs or perms.gate_ids:
                raise PolicyError("cgate arg perms cannot carry callgates")
        record.invocations += 1
        deadline = current_deadline()
        if deadline is not None and deadline.expired:
            # fail at the trust boundary, before any compartment is
            # built: the caller is out of end-to-end budget
            if self.observe.enabled:
                self.observe.emit(ev.DEADLINE_EXCEEDED, comp=caller.name,
                                  gate=record.name, op="cgate")
            raise DeadlineExceeded(
                f"deadline expired before invoking callgate "
                f"{record.name!r}", op="cgate", deadline=deadline)
        if record.supervise is not None:
            return self._invoke_supervised(record, caller, perms, arg)
        return self._invoke_once(record, caller, perms, arg)

    def _invoke_once(self, record, caller, perms, arg):
        if record.recycled:
            return self._invoke_recycled(record, caller, perms, arg)
        return self._invoke_fresh(record, caller, perms, arg)

    def _gate_base_context(self, record):
        ctx = SecurityContext(uid=record.creator_uid,
                              root=record.creator_root,
                              sid=record.creator_sid,
                              mem_quota=record.sc.mem_quota)
        ctx.mem = dict(record.sc.mem)
        ctx.fds = dict(record.sc.fds)
        gate = self._new_compartment(
            f"cg:{record.name}", ctx, uid=record.creator_uid,
            root=record.creator_root, sel_sid=record.creator_sid,
            kind="callgate")
        self.costs.charge("mm_create")
        gate.table.map_segment(self.image.segment,
                               PROT_READ | PROT_COW, costs=self.costs,
                               frames=self.image.snapshot_frames)
        self._give_private_regions(gate)
        for tag_id, prot in record.sc.mem.items():
            tag = self.tags.resolve(tag_id)
            gate.table.map_segment(tag.segment, prot, costs=self.costs)
        gate.fdtable = FdTable()
        for fd, file, fperms in record.fd_files:
            gate.fdtable.install(file, fperms, fd=fd)
            self.costs.charge("fd_copy")
        gate.gates = set(record.sc.gate_ids)
        if self._cert_templates:
            self._maybe_certify(gate)
        return gate

    def _apply_caller_perms(self, gate, caller, perms):
        """Map the caller-supplied extra grants into the gate."""
        if perms is None:
            return []
        mapped = []
        for tag_id, prot in perms.mem.items():
            tag = self.tags.resolve(tag_id)
            if tag_id in gate.ctx.mem:
                continue
            gate.table.map_segment(tag.segment, prot, costs=self.costs)
            gate.ctx.mem[tag_id] = prot
            mapped.append(tag)
        for fd, fperms in perms.fds.items():
            entry = caller.fdtable.lookup(fd)
            gate.fdtable.install(entry.file, fperms, fd=fd)
        return mapped

    def _run_gate(self, gate, record, arg, caller=None):
        gate.status = "running"
        obs = self.observe
        if obs.enabled:
            obs.emit(ev.CGATE_ENTER,
                     comp=caller.name if caller is not None else None,
                     gate=record.name, recycled=record.recycled)
        tracer = obs.tracer
        if tracer is not None:
            # the span context crosses the trust boundary with the call
            gate.span = tracer.begin(
                record.span_name, comp=gate.name,
                parent=caller.span if caller is not None else None)
        with self._as_current(gate):
            try:
                if self.faults is not None and self.faults.enabled:
                    self._fault_point("cgate")
                result = record.entry(record.trusted_arg, arg)
                gate.status = "exited"
                return result
            except CompartmentFault as fault:
                gate.fault = fault
                gate.status = "faulted"
                # the incarnation is dead; none of its cached
                # translations may survive into a rebuilt/reused gate
                gate.table.flush_tlb(costs=self.costs)
                raise CallgateError(
                    f"callgate {record.name!r} faulted: {fault}") from fault
            finally:
                # "running" here means the entry raised an ordinary
                # application error rather than exiting or faulting
                status = ("error" if gate.status == "running"
                          else gate.status)
                if tracer is not None:
                    tracer.end(gate.span, status=status)
                if obs.enabled:
                    obs.emit(ev.CGATE_EXIT, comp=gate.name,
                             gate=record.name, status=status)

    def _invoke_fresh(self, record, caller, perms, arg):
        self.costs.charge("task_create")
        gate = self._gate_base_context(record)
        self._apply_caller_perms(gate, caller, perms)
        try:
            return self._run_gate(gate, record, arg, caller)
        finally:
            gate.fdtable.close_all()
            self.costs.charge("task_destroy")
            self.costs.charge("mm_destroy")

    def _invoke_recycled(self, record, caller, perms, arg):
        """Recycled gates reuse one long-lived compartment (paper §3.3).

        Only a futex round trip is charged per call.  The persistent
        private heap is *not* scrubbed between invocations — the isolation
        trade-off the paper warns about, demonstrated in the tests.
        """
        self.costs.charge("futex_roundtrip")
        if record.persistent is None:
            # first use pays the construction cost, amortised thereafter
            self.costs.charge("task_create")
            record.persistent = self._gate_base_context(record)
        gate = record.persistent
        mapped = self._apply_caller_perms(gate, caller, perms)
        extra_fds = list(perms.fds) if perms is not None else []
        try:
            return self._run_gate(gate, record, arg, caller)
        finally:
            for tag in mapped:
                gate.table.unmap_segment(tag.segment, costs=self.costs)
                gate.ctx.mem.pop(tag.id, None)
            for fd in extra_fds:
                if fd in gate.fdtable:
                    gate.fdtable.close(fd)
            if gate.status == "faulted":
                record.persistent = None  # a dead gate is not reused
            else:
                gate.status = "running"

    def _invoke_supervised(self, record, caller, perms, arg):
        """Invoke a supervised gate: watchdog, restart-on-fault, degrade.

        A faulted (or watchdog-abandoned) incarnation is discarded —
        ``record.persistent = None`` forces the next attempt to rebuild
        the compartment from the pristine COW snapshot — and the call is
        retried after a backoff, up to the policy's cumulative restart
        budget.  Past the budget the gate turns terminally *degraded*:
        this and every later invocation raise
        :class:`~repro.core.errors.CallgateDegraded`.

        Only compartment deaths count: a gate that raises an ordinary
        application error (bad password, handshake failure) finished its
        job and is not restarted.

        When the policy carries a :class:`~repro.resilience.BreakerPolicy`
        the degraded state is no longer terminal: the degrade trips a
        circuit breaker, calls fail fast while it is open, and once the
        cooldown elapses exactly one caller is admitted as a half-open
        probe.  A successful probe closes the breaker — the gate rebuilds
        from the pristine COW snapshot with a fresh restart budget; a
        failed probe re-opens it with an escalated cooldown.
        """
        policy = record.supervise
        if record.degraded:
            breaker = record.breaker
            if breaker is None or not breaker.try_probe():
                # no breaker (terminal, the pre-breaker contract), still
                # cooling down, or another probe is in flight: fail fast
                raise CallgateDegraded(
                    f"callgate {record.name!r} is degraded after "
                    f"{record.restarts} restart(s)",
                    name=record.name, restarts=record.restarts,
                    last_fault=record.last_fault)
            return self._invoke_probe(record, caller, perms, arg, breaker)
        delay = policy.backoff
        while True:
            try:
                if policy.watchdog is not None:
                    return self._invoke_with_watchdog(
                        record, caller, perms, arg, policy.watchdog)
                return self._invoke_once(record, caller, perms, arg)
            except CallgateError as exc:
                # CallgateError here means the incarnation died (a
                # CompartmentFault surfaced by _run_gate, or a watchdog
                # GateTimeout); application-level errors pass through
                record.last_fault = exc
                record.persistent = None   # restart = rebuild from COW
                if record.restarts >= policy.max_restarts:
                    record.degraded = True
                    if policy.breaker is not None:
                        if record.breaker is None:
                            record.breaker = CircuitBreaker(policy.breaker)
                        record.breaker.trip()
                        if self.observe.enabled:
                            self.observe.emit(
                                ev.BREAKER_OPEN, comp=caller.name,
                                gate=record.name,
                                cooldown=record.breaker.current_cooldown)
                    if self.observe.enabled:
                        self.observe.emit(
                            ev.CGATE_DEGRADED, comp=caller.name,
                            gate=record.name, restarts=record.restarts)
                    raise CallgateDegraded(
                        f"callgate {record.name!r} degraded after "
                        f"{record.restarts} restart(s): {exc}",
                        name=record.name, restarts=record.restarts,
                        last_fault=exc) from exc
                record.restarts += 1
                if self.observe.enabled:
                    self.observe.emit(
                        ev.SUPERVISE_RESTART, comp=caller.name,
                        gate=record.name, generation=record.restarts)
                if delay > 0:
                    time.sleep(delay)
                delay *= policy.backoff_factor

    def _invoke_probe(self, record, caller, perms, arg, breaker):
        """One admitted half-open invocation of a degraded gate."""
        policy = record.supervise
        if self.observe.enabled:
            self.observe.emit(ev.BREAKER_HALF_OPEN, comp=caller.name,
                              gate=record.name,
                              probes=breaker.probe_count)
        try:
            if policy.watchdog is not None:
                result = self._invoke_with_watchdog(
                    record, caller, perms, arg, policy.watchdog)
            else:
                result = self._invoke_once(record, caller, perms, arg)
        except CallgateError as exc:
            record.last_fault = exc
            record.persistent = None
            breaker.probe_failed()
            if self.observe.enabled:
                self.observe.emit(ev.BREAKER_OPEN, comp=caller.name,
                                  gate=record.name, reopened=True,
                                  cooldown=breaker.current_cooldown)
            raise CallgateDegraded(
                f"callgate {record.name!r} half-open probe failed: {exc}",
                name=record.name, restarts=record.restarts,
                last_fault=exc) from exc
        breaker.probe_succeeded()
        record.degraded = False
        record.restarts = 0
        record.last_fault = None
        if self.observe.enabled:
            self.observe.emit(ev.BREAKER_CLOSE, comp=caller.name,
                              gate=record.name,
                              recoveries=breaker.recoveries)
        return result

    def _invoke_with_watchdog(self, record, caller, perms, arg, watchdog):
        """Run one invocation on a worker thread; abandon it on timeout.

        The worker's compartment-context stack is pre-seeded with the
        real caller so ``kernel.caller()`` keeps resolving correctly for
        promote-style gates, and the caller's ambient deadline (if any)
        is carried onto the worker thread so gate-internal net ops keep
        honouring the end-to-end budget.  The effective wait is the
        *smaller* of the watchdog and the remaining budget; a wait cut
        short by the deadline raises
        :class:`~repro.core.errors.DeadlineExceeded` (the request is out
        of time), a genuine watchdog expiry raises
        :class:`~repro.core.errors.GateTimeout` (the gate hung).  Either
        way the hung incarnation is simply abandoned (daemon thread) and
        the persistent compartment, if any, is dropped so it cannot be
        reused mid-invocation.
        """
        box = {}
        ambient = current_deadline()

        def run():
            self._stack().append(caller)
            try:
                with deadline_scope(ambient):
                    box["result"] = self._invoke_once(record, caller,
                                                      perms, arg)
            except BaseException as exc:  # re-raised on the caller thread
                box["error"] = exc

        worker = threading.Thread(target=run, name=f"wd:{record.name}",
                                  daemon=True)
        worker.start()
        budget = (watchdog if ambient is None
                  else ambient.clamp(watchdog))
        worker.join(budget)
        if worker.is_alive():
            record.persistent = None   # never reuse a hung incarnation
            if ambient is not None and ambient.expired:
                if self.observe.enabled:
                    self.observe.emit(ev.DEADLINE_EXCEEDED,
                                      comp=caller.name, gate=record.name,
                                      op="watchdog")
                raise DeadlineExceeded(
                    f"deadline expired inside callgate {record.name!r} "
                    f"(incarnation abandoned)", op="watchdog",
                    deadline=ambient)
            raise GateTimeout(
                f"callgate {record.name!r} exceeded its {watchdog}s "
                f"watchdog", gate_id=record.id, timeout=watchdog)
        if "error" in box:
            raise box["error"]
        return box.get("result")

    def gate_record(self, gate_id):
        return self._gates.get(int(gate_id))

    # ------------------------------------------------------------------
    # identity syscalls
    # ------------------------------------------------------------------

    def getuid(self):
        return self.current().uid

    @_traced_syscall
    def setuid(self, uid):
        st = self._syscall("setuid")
        if st.uid != 0 and uid != st.uid:
            raise SyscallDenied(f"setuid({uid}) as uid {st.uid}",
                                syscall="setuid", sid=st.sel_sid)
        st.uid = uid

    @_traced_syscall
    def chroot(self, path):
        st = self._syscall("chroot")
        if st.uid != 0:
            raise SyscallDenied("chroot requires uid 0", syscall="chroot",
                                sid=st.sel_sid)
        st.root = self.vfs.resolve(st.root, path)

    def promote(self, target, *, uid=None, root=None):
        """Change another compartment's uid/root — the authentication-
        callgate idiom (paper section 5.2, crediting Privtrans)."""
        st = self.current()
        if st.uid != 0:
            raise SyscallDenied("promote requires uid 0",
                                syscall="promote", sid=st.sel_sid)
        if uid is not None:
            target.uid = uid
            target.ctx.uid = uid
        if root is not None:
            target.root = root
            target.ctx.root = root

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------

    @_traced_syscall
    def open(self, path, mode="r"):
        """Open a VFS file; returns an fd with matching permission bits."""
        st = self._syscall("open")
        real = self.vfs.resolve(st.root, path)
        if mode == "r":
            node = self.vfs.open_read(real, st.uid)
            file = VfsOpenFile(node, real)
            return st.fdtable.install(file, FD_READ)
        if mode in ("w", "a"):
            node = self.vfs.open_write(real, st.uid,
                                       truncate=(mode == "w"))
            file = VfsOpenFile(node, real, append=(mode == "a"))
            return st.fdtable.install(file, FD_WRITE)
        if mode == "rw":
            node = self.vfs.open_write(real, st.uid)
            if not node.readable_by(st.uid):
                raise VfsError(f"permission denied reading {real}")
            return st.fdtable.install(VfsOpenFile(node, real), FD_RW)
        raise VfsError(f"bad open mode {mode!r}")

    @_traced_syscall
    def read(self, fd, size):
        st = self._syscall("read")
        entry = st.fdtable.lookup(fd, needed=FD_READ)
        return entry.file.read(size)

    @_traced_syscall
    def write(self, fd, data):
        st = self._syscall("write")
        entry = st.fdtable.lookup(fd, needed=FD_WRITE)
        return entry.file.write(bytes(data))

    @_traced_syscall
    def close(self, fd):
        st = self._syscall("close")
        st.fdtable.close(fd)

    @_traced_syscall
    def pipe(self):
        """Create a pipe; returns ``(read_fd, write_fd)``."""
        st = self._syscall("pipe")
        stream = ByteStream("pipe")
        rfd = st.fdtable.install(PipeOpenFile(stream, readable=True),
                                 FD_READ)
        wfd = st.fdtable.install(PipeOpenFile(stream, readable=False),
                                 FD_WRITE)
        return rfd, wfd

    # ------------------------------------------------------------------
    # disk (repro.disk): the sc_disk_* family
    # ------------------------------------------------------------------
    #
    # Offset-addressed, barrier-ordered block I/O.  The descriptor is an
    # ordinary fd-table entry, so disk rights are granted, delegated and
    # linted exactly like socket or pipe rights: `sc_fd_add` puts the fd
    # in one compartment's SecurityContext and the three-way analyzer
    # proves nobody else can reach the platter.

    @_traced_syscall
    def disk_open(self, disk):
        """Attach a :class:`~repro.disk.SimDisk`; returns an FD_RW fd.

        The device registers with this kernel so :meth:`kill` can crash
        it (drop or tear unflushed writes); the device object itself is
        never destroyed and may be re-opened by a later incarnation.
        """
        st = self._syscall("disk_open")
        if disk not in self._disks:
            self._disks.append(disk)
        return st.fdtable.install(DiskOpenFile(disk), FD_RW)

    @_traced_syscall
    def disk_read(self, fd, offset, size):
        """Read through the buffer cache (pending writes included)."""
        st = self._syscall("disk_read")
        entry = st.fdtable.lookup(fd, needed=FD_READ)
        disk = entry.file.disk
        data = disk.read(offset, size)
        self.costs.charge("disk_sector_read",
                          disk.sector_span(offset, len(data)))
        return data

    @_traced_syscall
    def disk_write(self, fd, offset, data):
        """Buffer one write; NOT durable until :meth:`disk_fsync`."""
        st = self._syscall("disk_write")
        entry = st.fdtable.lookup(fd, needed=FD_WRITE)
        disk = entry.file.disk
        data = bytes(data)
        n = disk.write(offset, data)
        self.costs.charge("disk_sector_write",
                          disk.sector_span(offset, n))
        if self.observe.enabled:
            self.observe.emit(ev.DISK_WRITE, comp=st.name,
                              disk=disk.name, offset=offset, nbytes=n,
                              pending=disk.pending_count)
        return n

    @_traced_syscall
    def disk_fsync(self, fd):
        """The barrier: every buffered write becomes durable, in order.

        Returns the number of sector sub-writes flushed.  This is the
        only operation after which a write is guaranteed to survive
        ``kill(power_loss=True)``.
        """
        st = self._syscall("disk_fsync")
        entry = st.fdtable.lookup(fd, needed=FD_WRITE)
        disk = entry.file.disk
        flushed = disk.fsync()
        self.costs.charge("disk_fsync")
        if self.observe.enabled:
            self.observe.emit(ev.DISK_FSYNC, comp=st.name,
                              disk=disk.name, flushed=flushed)
        return flushed

    # ------------------------------------------------------------------
    # network
    # ------------------------------------------------------------------

    def _need_net(self):
        if self.net is None:
            raise WedgeError("kernel has no network attached")
        return self.net

    @_traced_syscall
    def listen(self, addr, backlog=None):
        st = self._syscall("listen")
        listener = self._need_net().listen(addr, backlog=backlog)
        self._owned_listeners.append(listener)
        fd = st.fdtable.install(ListenerOpenFile(listener), FD_READ)
        if self.observe.enabled:
            self.observe.emit(ev.NET_LISTEN, comp=st.name, addr=addr,
                              fd=fd, backlog=listener.backlog)
        return fd

    @_traced_syscall
    def accept(self, listen_fd, timeout=30.0):
        st = self._syscall("accept")
        entry = st.fdtable.lookup(listen_fd, needed=FD_READ)
        sock = entry.file.listener.accept(timeout)
        self._owned_socks.append(sock)
        fd = st.fdtable.install(SocketOpenFile(sock), FD_RW)
        obs = self.observe
        if obs.enabled:
            obs.emit(ev.NET_ACCEPT, comp=st.name, fd=fd,
                     addr=getattr(sock, "addr", None), cid=sock.cid)
        tracer = obs.tracer
        if tracer is not None:
            # one inbound connection, one trace: a fresh root span
            # replaces the accepting compartment's previous request root
            if st.span is not None and st.span.parent_id is None:
                tracer.end(st.span)
            st.span = tracer.begin("request", comp=st.name,
                                   addr=getattr(sock, "addr", None),
                                   cid=sock.cid)
        return fd

    @_traced_syscall
    def connect(self, addr):
        st = self._syscall("connect")
        sock = self._need_net().connect(addr)
        self._owned_socks.append(sock)
        fd = st.fdtable.install(SocketOpenFile(sock), FD_RW)
        if self.observe.enabled:
            self.observe.emit(ev.NET_CONNECT, comp=st.name, addr=addr,
                              fd=fd, cid=sock.cid)
        if st.span is not None and sock.cid is not None:
            # the outbound hop's cid joins this span's trace to the
            # accepting span on the remote kernel (observe.stitch)
            st.span.fields.setdefault("cids", []).append(sock.cid)
        return fd

    @_traced_syscall
    def send(self, fd, data):
        st = self._syscall("send")
        entry = st.fdtable.lookup(fd, needed=FD_WRITE)
        if self.observe.enabled:
            # nbytes only: payload bytes never enter the event stream
            self.observe.emit(ev.NET_SEND, comp=st.name, fd=fd,
                              nbytes=len(data))
        return entry.file.write(bytes(data))

    @_traced_syscall
    def shutdown(self, fd):
        """Half-close: end the write direction of a socket fd.

        The peer's reads drain buffered bytes and then see EOF, while
        this side can keep reading — the forwarding idiom the lb app's
        splice compartments rely on.  Demands FD_WRITE (it is the write
        direction being retired).
        """
        st = self._syscall("shutdown")
        entry = st.fdtable.lookup(fd, needed=FD_WRITE)
        if entry.file.kind != "socket":
            raise WedgeError(f"shutdown on non-socket fd {fd}")
        entry.file.sock.shutdown_write()

    @_traced_syscall
    def recv(self, fd, size, timeout=None):
        st = self._syscall("recv")
        entry = st.fdtable.lookup(fd, needed=FD_READ)
        if timeout is not None and entry.file.kind == "socket":
            data = entry.file.sock.recv(size, timeout)
            if data is None:
                from repro.core.errors import ConnectionClosed
                raise ConnectionClosed("peer closed the connection")
        else:
            data = entry.file.read(size)
        if self.observe.enabled:
            # nbytes only: payload bytes never enter the event stream
            self.observe.emit(ev.NET_RECV, comp=st.name, fd=fd,
                              nbytes=len(data))
        return data

    def recv_exact(self, fd, size, timeout=30.0):
        """Framing helper: exactly *size* bytes or ConnectionClosed."""
        out = bytearray()
        while len(out) < size:
            out += self.recv(fd, size - len(out), timeout)
        return bytes(out)

    # ------------------------------------------------------------------
    # cooperative network syscalls (repro.core.reactor)
    # ------------------------------------------------------------------
    #
    # Each co_* helper is a generator for reactor tasks to ``yield
    # from``.  The contract is *readiness, then syscall*: the helper
    # waits silently (no cycle charges, no events — a parked waiter
    # costs nothing, like a thread asleep in the threaded oracle) until
    # the endpoint's level-triggered predicate guarantees the unchanged
    # blocking syscall above completes without blocking, then calls it.
    # Everything observable — bytes, model cycles, emitted events,
    # SELinux checks — therefore happens in the real syscall, identical
    # to the threaded path by construction.

    def _co_endpoint(self, fd, needed):
        """Resolve *fd* to its waitable endpoint without charging.

        ``FdTable.lookup`` is cost-free (the trap is charged by the
        eventual real syscall); it still enforces the fd permission
        bits, so a policy violation surfaces at the wait site too.
        """
        st = self.current()
        entry = st.fdtable.lookup(fd, needed=needed)
        file = entry.file
        if file.kind == "socket":
            return file.sock.rx if needed == FD_READ else file.sock.tx
        if file.kind == "pipe":
            return file.stream
        if file.kind == "listener":
            return file.listener
        raise WedgeError(f"fd {fd} ({file.kind}) is not waitable")

    def _co_stall(self, op, deadline, timeout, give_up):
        """Typed timeout/deadline handling for a still-blocked wait;
        returns the wake_at for the next Wait descriptor."""
        now = time.monotonic()
        if deadline is not None and deadline.expired:
            deadline.check(op)
        if give_up is not None and now >= give_up:
            raise NetTimeout(f"{op} timed out after {timeout}s",
                             op=op, timeout=timeout)
        wake_at = give_up
        if deadline is not None:
            expiry = now + max(0.0, deadline.remaining())
            wake_at = expiry if wake_at is None else min(wake_at, expiry)
        return wake_at

    def co_accept(self, listen_fd, timeout=None):
        """Cooperative :meth:`accept`: wait acceptable, then accept.

        ``timeout=None`` waits indefinitely (the accept-loop idiom —
        the listener closing wakes the waiter with the typed
        closed-listener error instead of a poll timeout).
        """
        deadline = current_deadline()
        give_up = (None if timeout is None
                   else time.monotonic() + float(timeout))
        while True:
            listener = self._co_endpoint(listen_fd, FD_READ)
            if listener.acceptable:
                # readiness guaranteed: cannot block (a raced-away
                # connection re-enters the wait loop via NetTimeout)
                try:
                    return self.accept(listen_fd, timeout=0.05)
                except NetTimeout:
                    continue
            wake_at = self._co_stall("accept", deadline, timeout, give_up)
            yield wait_acceptable(listener, wake_at=wake_at)

    def co_wait_readable(self, fd, timeout=None):
        """Cooperatively park until *fd* has bytes (or EOF) to read.

        Unlike :meth:`co_recv` this consumes nothing — it exists so a
        cooperative job can front an ordinary *blocking* handler:
        first-byte readiness guarantees the handler's opening read
        returns without parking the loop, and a client that connects
        but never speaks costs no pool thread while it dawdles.
        """
        eff = DEFAULT_STREAM_TIMEOUT if timeout is None else timeout
        deadline = current_deadline()
        give_up = time.monotonic() + float(eff)
        while True:
            stream = self._co_endpoint(fd, FD_READ)
            if stream.readable:
                return
            wake_at = self._co_stall("recv", deadline, eff, give_up)
            yield wait_readable(stream, wake_at=wake_at)

    def co_sthread_join(self, st, timeout=30.0):
        """Cooperative twin of :meth:`sthread_join`.

        Parks the calling reactor task on the compartment's exit event
        (sthreads are joinable endpoints, like tasks) instead of tying
        up an OS thread — a connection job can spawn worker sthreads
        and wait for them while thousands of its siblings share the
        loop.  Once the child settles, the blocking join runs inline:
        identical cost charging and the same typed errors
        (:class:`~repro.core.errors.SthreadFaulted`,
        :class:`~repro.core.errors.CompartmentDown`).
        """
        give_up = time.monotonic() + float(timeout)
        while not st.done:
            if time.monotonic() >= give_up:
                raise JoinTimeout(f"join of {st.name} timed out "
                                  f"after {timeout}s",
                                  sthread=st, timeout=timeout)
            yield wait_done(st, wake_at=give_up)
        return self.sthread_join(st, timeout=max(1.0, float(timeout)))

    def co_recv(self, fd, size, timeout=None):
        """Cooperative :meth:`recv`: wait readable, then recv."""
        eff = DEFAULT_STREAM_TIMEOUT if timeout is None else timeout
        deadline = current_deadline()
        give_up = time.monotonic() + float(eff)
        while True:
            stream = self._co_endpoint(fd, FD_READ)
            if stream.readable:
                return self.recv(fd, size, timeout=eff)
            wake_at = self._co_stall("recv", deadline, eff, give_up)
            yield wait_readable(stream, wake_at=wake_at)

    def co_recv_exact(self, fd, size, timeout=30.0):
        """Cooperative :meth:`recv_exact`."""
        out = bytearray()
        while len(out) < size:
            out += yield from self.co_recv(fd, size - len(out), timeout)
        return bytes(out)

    def co_send(self, fd, data, timeout=None):
        """Cooperative :meth:`send`: wait for room, then send.

        Fully cooperative for payloads up to the stream's high-water
        mark (the wait guarantees the whole payload fits, so the real
        send never blocks).  Larger payloads fall back to the blocking
        chunk loop inside :meth:`send` once high-water bytes of room
        exist — callers moving bulk data under the reactor should
        offload or frame their writes below the mark.
        """
        eff = DEFAULT_STREAM_TIMEOUT if timeout is None else timeout
        deadline = current_deadline()
        give_up = time.monotonic() + float(eff)
        need = len(data)
        while True:
            stream = self._co_endpoint(fd, FD_WRITE)
            if stream.has_room(need):
                return self.send(fd, data)
            stream.backpressure_waits += 1
            wake_at = self._co_stall("send", deadline, eff, give_up)
            yield wait_writable(stream, need, wake_at=wake_at)
