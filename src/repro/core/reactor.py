"""The reactor: event-driven scheduling for thousands of connections.

Thread-per-connection tops out around a few hundred clients: every
blocked ``recv`` pins an OS thread, and the overload campaign spends its
budget on context switches instead of service.  The reactor replaces
that with one readiness loop per kernel that multiplexes *cooperative
continuations* — plain Python generators that ``yield`` a
:class:`Wait` descriptor whenever they would block — over the simulated
endpoints (byte streams, listeners, completed tasks, pool gates).

Design rules, in decreasing order of load-bearing-ness:

1. **Readiness, then syscall.**  Cooperative code never re-implements
   I/O.  It waits (silently — no model-cycle charges, no events) until
   an endpoint's level-triggered predicate says the *unchanged* blocking
   syscall would complete immediately, then calls that syscall.  Bytes
   moved, cycles charged and events emitted are therefore identical to
   the threaded oracle **by construction**; the differential suite in
   ``tests/net/test_reactor_differential.py`` checks it anyway.

2. **No lost wakeups.**  Registration order is: append the task to the
   endpoint's FIFO waiter queue, attach the watcher, *then* probe the
   readiness predicate once more.  An event that fired between the
   task's own probe and registration is re-observed by that final probe;
   an event after registration reaches the watcher.  There is no window
   in which readiness can be missed.

3. **No double dispatch.**  A task is removed from its waiter queue the
   moment it is moved to the ready queue; a second notification for the
   same readiness event finds no waiter.  ``double_dispatches`` counts
   violations (it must stay 0 — the property suite asserts it).

4. **FIFO everywhere.**  The ready queue is FIFO; each endpoint's waiter
   queue is FIFO; wakeups preserve waiter order.  Per-endpoint fairness
   is therefore structural, not probabilistic.

5. **Watchers never take reactor locks.**  Endpoint watchers run under
   the endpoint's own condition lock, so all they may do is append to a
   thread-safe notification deque and set an event — the loop drains
   the deque on its own thread.  This is what makes the reactor safe to
   drive from watcher callbacks fired by *other* kernels' threads.

Two poll modes share every other line of the scheduler:

- ``"watch"`` (default): endpoints push notifications via watchers; the
  idle loop blocks on an event.  O(ready work) per pass.
- ``"scan"``: the walk-every-time oracle — every pass re-probes every
  waiter's predicate and never relies on a notification.  O(waiters)
  per pass, obviously correct, and the reference the property suite
  compares "watch" against.

Genuinely blocking work (watchdog-supervised callgate bodies, handler
callables that cannot yield) escapes to a small thread pool via
:meth:`Reactor.offload`; pool size 1 (the default) preserves the
sequential serving order of the threaded apps exactly, which is what
keeps chaos campaigns byte-identical across schedulers.

This module imports only :mod:`repro.core.errors` and
:mod:`repro.resilience.deadline` — the kernel imports *it*, never the
reverse.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque

from repro.core.errors import WedgeError
from repro.resilience.deadline import deadline_scope

#: How long the background loop sleeps when idle with no timer armed.
#: Purely a liveness backstop — every real wakeup arrives via _wake.
_IDLE_TICK = 0.05


class Wait:
    """What a cooperative continuation yields when it would block.

    One descriptor = one endpoint + one level-triggered readiness
    predicate + an optional absolute monotonic time at which the waiter
    wants waking regardless (so timeouts and deadlines make progress
    even if the endpoint stays silent).
    """

    __slots__ = ("endpoint", "kind", "need", "wake_at")

    READABLE = "readable"
    WRITABLE = "writable"
    ACCEPTABLE = "acceptable"
    DONE = "done"

    def __init__(self, endpoint, kind, *, need=1, wake_at=None):
        self.endpoint = endpoint
        self.kind = kind
        self.need = need
        self.wake_at = wake_at

    def ready(self):
        kind = self.kind
        if kind == Wait.READABLE:
            return self.endpoint.readable
        if kind == Wait.WRITABLE:
            return self.endpoint.has_room(self.need)
        if kind == Wait.ACCEPTABLE:
            return self.endpoint.acceptable
        return self.endpoint.ready()

    def __repr__(self):
        return (f"<Wait {self.kind} on "
                f"{getattr(self.endpoint, 'name', self.endpoint)!r}>")


def wait_readable(stream, *, wake_at=None):
    """Wait until ``stream.recv`` would return without blocking."""
    return Wait(stream, Wait.READABLE, wake_at=wake_at)


def wait_writable(stream, need=1, *, wake_at=None):
    """Wait until *need* bytes (clamped to high-water) fit in *stream*."""
    return Wait(stream, Wait.WRITABLE, need=need, wake_at=wake_at)


def wait_acceptable(listener, *, wake_at=None):
    """Wait until ``listener.accept`` would return without blocking."""
    return Wait(listener, Wait.ACCEPTABLE, wake_at=wake_at)


def wait_done(task_or_gate, *, wake_at=None):
    """Wait for a :class:`Task` or offload gate to complete."""
    return Wait(task_or_gate, Wait.DONE, wake_at=wake_at)


class Task:
    """One cooperative continuation scheduled by a reactor.

    A task doubles as an endpoint (``ready``/watchers) so other tasks
    can ``yield wait_done(task)`` to join it cooperatively, and plain
    threads can :meth:`wait` on it.
    """

    __slots__ = ("gen", "name", "sthread", "deadline", "waiting",
                 "result", "error", "wakeups", "steps", "_queued",
                 "_done", "_watchers", "_lock")

    def __init__(self, gen, *, name="", sthread=None, deadline=None):
        self.gen = gen
        self.name = name
        #: Sthread whose compartment context the task's steps run under,
        #: or None for bare (kernel-less) tasks.
        self.sthread = sthread
        #: Ambient Deadline re-entered around every step (captured once
        #: at spawn — cooperative bodies must not hold a deadline_scope
        #: open across a yield, it would leak to whatever runs next).
        self.deadline = deadline
        self.waiting = None
        self.result = None
        self.error = None
        self.wakeups = 0
        self.steps = 0
        self._queued = False
        self._done = threading.Event()
        self._watchers = []
        self._lock = threading.Lock()

    # -- endpoint protocol (so tasks are joinable via wait_done) ----------

    def ready(self):
        return self._done.is_set()

    @property
    def done(self):
        return self._done.is_set()

    def add_watcher(self, cb):
        with self._lock:
            if cb not in self._watchers:
                self._watchers.append(cb)

    def remove_watcher(self, cb):
        with self._lock:
            try:
                self._watchers.remove(cb)
            except ValueError:
                pass

    def _finish(self, result, error):
        self.result = result
        self.error = error
        with self._lock:
            self._done.set()
            watchers = list(self._watchers)
        for cb in watchers:
            cb(self)

    def wait(self, timeout=None):
        """Block a *plain thread* until the task completes."""
        return self._done.wait(timeout)

    def __repr__(self):
        state = ("done" if self.done
                 else "waiting" if self.waiting is not None else "ready")
        return f"<Task {self.name!r} {state} steps={self.steps}>"


class _Gate:
    """One-shot completion endpoint for offloaded (pool) work."""

    __slots__ = ("name", "result", "error", "_event", "_watchers",
                 "_lock")

    def __init__(self, name=""):
        self.name = name
        self.result = None
        self.error = None
        self._event = threading.Event()
        self._watchers = []
        self._lock = threading.Lock()

    def ready(self):
        return self._event.is_set()

    def add_watcher(self, cb):
        with self._lock:
            if cb not in self._watchers:
                self._watchers.append(cb)

    def remove_watcher(self, cb):
        with self._lock:
            try:
                self._watchers.remove(cb)
            except ValueError:
                pass

    def fire(self, result, error):
        self.result = result
        self.error = error
        with self._lock:
            self._event.set()
            watchers = list(self._watchers)
        for cb in watchers:
            cb(self)

    def wait(self, timeout=None):
        return self._event.wait(timeout)


class _Pool:
    """The escape hatch: a bounded pool for genuinely blocking work.

    Size 1 by default, deliberately: one worker drains jobs in FIFO
    order, which reproduces the sequential accept-then-handle serving
    order of the threaded apps — the property chaos determinism rests
    on.
    """

    def __init__(self, size=1, *, name="reactor"):
        self.size = max(1, int(size))
        self.name = name
        self._jobs = queue.SimpleQueue()
        self._threads = []
        self._lock = threading.Lock()
        self.outstanding = 0

    def submit(self, fn, args, kwargs, gate):
        with self._lock:
            self.outstanding += 1
            while len(self._threads) < self.size:
                t = threading.Thread(
                    target=self._worker, daemon=True,
                    name=f"{self.name}-pool-{len(self._threads)}")
                self._threads.append(t)
                t.start()
        self._jobs.put((fn, args, kwargs, gate))

    def _worker(self):
        while True:
            fn, args, kwargs, gate = self._jobs.get()
            if fn is None:
                return
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:  # delivered at the await site
                gate.fire(None, exc)
            else:
                gate.fire(result, None)
            finally:
                with self._lock:
                    self.outstanding -= 1

    def close(self):
        with self._lock:
            threads = list(self._threads)
        for _ in threads:
            self._jobs.put((None, None, None, None))


class Reactor:
    """A per-kernel readiness loop scheduling cooperative continuations.

    Drive it either synchronously (:meth:`run_until_idle` — fully
    deterministic, used by the scale campaign and the property suite) or
    by a background daemon thread (:meth:`ensure_running` — used when
    reactor-scheduled servers must serve threaded clients concurrently,
    e.g. the differential suite and live apps).
    """

    def __init__(self, *, kernel=None, name="reactor", mode="watch",
                 pool_size=1):
        if mode not in ("watch", "scan"):
            raise WedgeError(f"unknown reactor mode {mode!r} "
                             "(expected 'watch' or 'scan')")
        self.kernel = kernel
        self.name = name
        self.mode = mode
        self._ready = deque()          # Tasks runnable now (FIFO)
        self._waiting = {}             # id(endpoint) -> deque[Task]
        self._keep = {}                # id(endpoint) -> endpoint (strong)
        self._notified = deque()       # endpoints poked by watchers
        self._wake = threading.Event()
        self._next_timer = None        # min wake_at over all waiters
        self._pool = _Pool(pool_size, name=name)
        self._thread = None
        self._loop_lock = threading.Lock()
        self._closing = False
        #: instrumentation (the property suite asserts on these)
        self.dispatch_count = 0
        self.double_dispatches = 0
        self.spawned = 0
        self.live = 0
        self.peak_live = 0
        #: tasks that died with a non-Wedge exception (cooperative
        #: bodies handle WedgeError themselves, mirroring run_body)
        self.crashed = []
        #: optional list; when set, (task_name, endpoint_name) wake
        #: pairs are appended — the FIFO-fairness property reads it
        self.trace = None

    # -- spawning ---------------------------------------------------------

    def spawn(self, gen, *, name="", sthread=None, deadline=None):
        """Schedule generator *gen* as a new task; returns the Task."""
        if self._closing:
            raise WedgeError(f"reactor {self.name!r} is closed")
        task = Task(gen, name=name, sthread=sthread, deadline=deadline)
        self.spawned += 1
        self.live += 1
        if self.live > self.peak_live:
            self.peak_live = self.live
        self._enqueue(task)
        self._wake.set()
        return task

    def submit(self, fn, *args, **kwargs):
        """Run blocking *fn* on the pool; returns its completion gate."""
        gate = _Gate(name=getattr(fn, "__name__", "job"))
        self._pool.submit(fn, args, kwargs, gate)
        return gate

    def offload(self, fn, *args, **kwargs):
        """Cooperative escape hatch: run blocking *fn* on the pool and
        wait for it without blocking the loop.  ``yield from`` this."""
        gate = self.submit(fn, *args, **kwargs)
        while not gate.ready():
            yield wait_done(gate)
        if gate.error is not None:
            raise gate.error
        return gate.result

    # -- the scheduling pass ----------------------------------------------

    def _enqueue(self, task):
        if task._queued:
            self.double_dispatches += 1
            return
        task._queued = True
        self._ready.append(task)

    def _on_event(self, endpoint):
        """Watcher callback — runs under the *endpoint's* lock, possibly
        on a foreign thread.  Thread-safe appends only (rule 5)."""
        self._notified.append(endpoint)
        self._wake.set()

    def _register(self, task, wait):
        task.waiting = wait
        endpoint = wait.endpoint
        key = id(endpoint)
        waiters = self._waiting.get(key)
        if waiters is None:
            waiters = self._waiting[key] = deque()
            self._keep[key] = endpoint
            if self.mode == "watch":
                endpoint.add_watcher(self._on_event)
        waiters.append(task)
        if wait.wake_at is not None:
            if self._next_timer is None or wait.wake_at < self._next_timer:
                self._next_timer = wait.wake_at
        # rule 2: close the probe-vs-register race with a final probe
        if wait.ready():
            self._notified.append(endpoint)

    def _wake_endpoint(self, endpoint):
        key = id(endpoint)
        waiters = self._waiting.get(key)
        if not waiters:
            return
        still = deque()
        for task in waiters:
            if task.waiting is not None and task.waiting.ready():
                task.waiting = None
                task.wakeups += 1
                if self.trace is not None:
                    self.trace.append(
                        (task.name, getattr(endpoint, "name", "")))
                self._enqueue(task)
            else:
                still.append(task)
        if still:
            self._waiting[key] = still
        else:
            del self._waiting[key]
            del self._keep[key]
            if self.mode == "watch":
                endpoint.remove_watcher(self._on_event)

    def _fire_timers(self):
        if self._next_timer is None or time.monotonic() < self._next_timer:
            return
        # walk waiters once: wake expired timers, recompute the horizon
        horizon = None
        now = time.monotonic()
        for endpoint in list(self._keep.values()):
            waiters = self._waiting.get(id(endpoint))
            if not waiters:
                continue
            expired = any(
                t.waiting is not None and t.waiting.wake_at is not None
                and t.waiting.wake_at <= now for t in waiters)
            if expired:
                self._wake_timed(endpoint, now)
                waiters = self._waiting.get(id(endpoint))
            if waiters:
                for t in waiters:
                    wa = t.waiting.wake_at if t.waiting is not None \
                        else None
                    if wa is not None and (horizon is None or wa < horizon):
                        horizon = wa
        self._next_timer = horizon

    def _wake_timed(self, endpoint, now):
        """Wake waiters whose wake_at elapsed even though the endpoint is
        not ready — their helper re-checks and raises its timeout."""
        key = id(endpoint)
        waiters = self._waiting.get(key)
        if not waiters:
            return
        still = deque()
        for task in waiters:
            wait = task.waiting
            if wait is not None and wait.wake_at is not None \
                    and wait.wake_at <= now:
                task.waiting = None
                task.wakeups += 1
                self._enqueue(task)
            else:
                still.append(task)
        if still:
            self._waiting[key] = still
        else:
            del self._waiting[key]
            del self._keep[key]
            if self.mode == "watch":
                endpoint.remove_watcher(self._on_event)

    def _scan_all(self):
        """The walk-every-time oracle: probe every waiter, every pass."""
        for endpoint in list(self._keep.values()):
            self._wake_endpoint(endpoint)

    def _drain_notifications(self):
        while True:
            try:
                endpoint = self._notified.popleft()
            except IndexError:
                return
            self._wake_endpoint(endpoint)

    def _dispatch(self, task):
        task._queued = False
        task.steps += 1
        self.dispatch_count += 1
        kernel = self.kernel
        pushed = False
        if task.sthread is not None and kernel is not None:
            kernel._stack().append(task.sthread)
            pushed = True
        finished = False
        result = error = None
        try:
            with deadline_scope(task.deadline):
                try:
                    yielded = task.gen.send(None)
                except StopIteration as stop:
                    finished, result = True, stop.value
                except BaseException as exc:
                    finished, error = True, exc
        finally:
            if pushed:
                kernel._stack().pop()
        if finished:
            self.live -= 1
            if error is not None:
                self.crashed.append((task, error))
            task._finish(result, error)
            return
        if yielded is None:
            self._enqueue(task)            # cooperative reschedule
        elif isinstance(yielded, Wait):
            self._register(task, yielded)
        else:
            self.live -= 1
            err = WedgeError(
                f"task {task.name!r} yielded {yielded!r} "
                "(expected a Wait descriptor or None)")
            task.gen.close()
            self.crashed.append((task, err))
            task._finish(None, err)

    def _poll(self):
        """One scheduling pass; True iff a task was stepped."""
        self._drain_notifications()
        if self.mode == "scan":
            self._scan_all()
        self._fire_timers()
        if not self._ready:
            return False
        self._dispatch(self._ready.popleft())
        return True

    # -- synchronous driver -----------------------------------------------

    def run_until_idle(self, *, max_steps=5_000_000, external=False,
                       raise_crashes=True):
        """Run on the calling thread until no task is live.

        Deterministic when all activity lives on this reactor (the scale
        campaign, the property suite).  With ``external=True``, idle
        moments wait for foreign-thread notifications instead of
        treating a silent waiter set as a deadlock.
        """
        if self._thread is not None and self._thread.is_alive():
            raise WedgeError(
                f"reactor {self.name!r} already runs on a background "
                "thread; run_until_idle would race it")
        steps = 0
        while True:
            if self._poll():
                steps += 1
                if steps > max_steps:
                    raise WedgeError(
                        f"reactor {self.name!r} exceeded {max_steps} "
                        "steps without going idle (livelock?)")
                continue
            if not self._waiting and not self._ready:
                break
            if self._pool.outstanding > 0 or external:
                self._wake.wait(_IDLE_TICK)
                self._wake.clear()
                continue
            if self._next_timer is not None:
                delay = self._next_timer - time.monotonic()
                if delay > 0:
                    self._wake.wait(min(delay, _IDLE_TICK))
                    self._wake.clear()
                continue
            names = [t.name for q in self._waiting.values() for t in q]
            raise WedgeError(
                f"reactor {self.name!r} deadlocked: {len(names)} task(s) "
                f"waiting with nothing runnable: {names[:8]!r}")
        if raise_crashes and self.crashed:
            task, error = self.crashed[0]
            raise error
        return steps

    # -- background driver ------------------------------------------------

    def ensure_running(self):
        """Start (once) the daemon loop thread; idempotent."""
        with self._loop_lock:
            if self._thread is not None and self._thread.is_alive():
                return self._thread
            self._closing = False
            self._thread = threading.Thread(
                target=self._run_forever, daemon=True,
                name=f"{self.name}-loop")
            self._thread.start()
            return self._thread

    def _run_forever(self):
        while not self._closing:
            if self._poll():
                continue
            timeout = _IDLE_TICK
            if self._next_timer is not None:
                timeout = min(
                    timeout,
                    max(0.0, self._next_timer - time.monotonic()))
            self._wake.wait(timeout)
            self._wake.clear()

    def close(self):
        """Stop the loop thread and the pool; waiting tasks are dropped
        (their sthreads' owned fds are reset by ``Kernel.kill``)."""
        self._closing = True
        self._wake.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        self._pool.close()

    def __repr__(self):
        return (f"<Reactor {self.name!r} mode={self.mode} "
                f"live={self.live} ready={len(self._ready)} "
                f"waiting={sum(len(q) for q in self._waiting.values())}>")
