"""Tagged memory: ``tag_new`` / ``tag_delete`` and the reuse cache.

A tag names one segment of the simulated address space (paper section 3.2:
``tag_new`` behaves like anonymous mmap and additionally initialises the
smalloc bookkeeping for that region).  The tag namespace is flat — holding
one tag implies nothing about any other.

``tag_delete`` returns the segment to a userland free-list cache keyed by
size.  ``tag_new`` prefers a cached segment, scrubbing it for secrecy by
copying a cached *pre-initialised bookkeeping image* over it — the paper's
optimisation that makes reuse ~5x cheaper than a fresh mmap (section 4.1,
Figure 8).  The cache can be disabled to measure the ablation.
"""

from __future__ import annotations

import threading

from repro.core.allocator import Heap
from repro.core.errors import TagError
from repro.core.memory import PAGE_SIZE

#: Default size of the segment backing a tag.  Real Wedge lets the tag
#: grow; we keep a fixed default that applications can override.
DEFAULT_TAG_SIZE = 4 * PAGE_SIZE


class Tag:
    """A live tag: an integer id bound to a segment plus its heap."""

    def __init__(self, tag_id, segment, heap, *, name=""):
        self.id = tag_id
        self.segment = segment
        self.heap = heap
        self.name = name or f"tag{tag_id}"
        self.live = True
        #: serialises allocator bookkeeping updates across sthreads, like
        #: the arena lock inside a real multi-threaded malloc
        self.lock = threading.Lock()

    def __repr__(self):
        return f"<Tag {self.id} {self.name!r} seg=#{self.segment.id}>"

    def __int__(self):
        return self.id


class TagManager:
    """Owns the tag namespace, the reuse cache, and the scrub images."""

    def __init__(self, space, costs, *, cache_enabled=True):
        self.space = space
        self.costs = costs
        self.cache_enabled = cache_enabled
        self._tags = {}
        self._next_id = 1
        self._cache = {}         # size -> [segment, ...]
        self._scrub_images = {}  # size -> bytes of a freshly formatted heap
        self.stats = {"fresh": 0, "reused": 0, "deleted": 0}
        # tag creation/deletion may race across concurrent masters
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------------

    def tag_new(self, size=DEFAULT_TAG_SIZE, *, name=""):
        """Create a tag over a segment of *size* bytes."""
        if size <= 0:
            raise TagError("tag size must be positive")
        with self._lock:
            tag_id = self._next_id
            self._next_id += 1
            seg = self._take_cached(size)
        if seg is not None:
            self.stats["reused"] += 1
            seg.tag_id = tag_id
            seg.name = name or f"tag{tag_id}"
            self._scrub(seg, size)
            heap = Heap(seg, size, costs=self.costs)
        else:
            self.stats["fresh"] += 1
            # mmap-equivalent: syscall + VMA setup, then bookkeeping init
            self.costs.charge("syscall")
            seg = self.space.create_segment(size, name=name or
                                            f"tag{tag_id}", kind="tag",
                                            tag_id=tag_id)
            heap = Heap(seg, size, costs=self.costs)
            init_bytes = heap.format()
            self.costs.charge("segment_create")
            self.costs.charge("alloc_init_byte", init_bytes)
            self._remember_image(seg, size, heap)
        tag = Tag(tag_id, seg, heap, name=name)
        self._tags[tag_id] = tag
        return tag

    def tag_delete(self, tag):
        """Delete *tag*; its segment goes to the reuse cache."""
        tag = self.resolve(tag)
        if not tag.live:
            raise TagError(f"double delete of {tag!r}")
        tag.live = False
        del self._tags[tag.id]
        self.stats["deleted"] += 1
        if self.cache_enabled:
            self._cache.setdefault(tag.segment.size, []).append(tag.segment)
        else:
            self.costs.charge("syscall")
            self.costs.charge("segment_destroy")
            self.space.destroy_segment(tag.segment)

    def adopt(self, segment, *, name=""):
        """Wrap an existing segment (a boundary section) in a tag.

        Boundary sections hold statically laid-out globals, not a heap,
        so the resulting tag cannot back ``smalloc`` (``heap`` is None).
        """
        with self._lock:
            tag_id = self._next_id
            self._next_id += 1
        segment.tag_id = tag_id
        tag = Tag(tag_id, segment, None, name=name or segment.name)
        self._tags[tag_id] = tag
        return tag

    def resolve(self, tag):
        """Accept a Tag or an int id; return the live Tag."""
        if isinstance(tag, Tag):
            if not tag.live:
                raise TagError(f"{tag!r} has been deleted")
            return tag
        try:
            return self._tags[int(tag)]
        except (KeyError, TypeError, ValueError):
            raise TagError(f"unknown tag {tag!r}") from None

    def get(self, tag_id):
        return self._tags.get(tag_id)

    def live_tags(self):
        return list(self._tags.values())

    # -- cache internals -----------------------------------------------------------

    def _take_cached(self, size):
        if not self.cache_enabled:
            return None
        bucket = self._cache.get(size)
        if bucket:
            return bucket.pop()
        return None

    def _remember_image(self, seg, size, heap):
        """Cache the pre-initialised bookkeeping patches for scrubbing."""
        if size not in self._scrub_images:
            patches = [(off, seg.read_raw(off, length))
                       for off, length in heap.bookkeeping_extents()]
            self._scrub_images[size] = patches

    def _scrub(self, seg, size):
        """Scrub a reused segment: zero it, then restore bookkeeping.

        The paper avoids recomputing the allocator metadata by copying a
        cached pre-initialised bookkeeping image; the payload bytes must
        still be cleared for secrecy.  The saving relative to a fresh tag
        is the avoided syscall, VMA setup and bookkeeping recomputation.
        """
        zero_page = bytes(PAGE_SIZE)
        for off in range(0, seg.npages * PAGE_SIZE, PAGE_SIZE):
            seg.write_raw(off, zero_page)
        self.costs.charge("scrub_page", seg.npages)
        patches = self._scrub_images.get(size)
        if patches is not None:
            for off, data in patches:
                seg.write_raw(off, data)
        else:
            heap = Heap(seg, size, costs=self.costs)
            init_bytes = heap.format()
            self.costs.charge("alloc_init_byte", init_bytes)
            self._remember_image(seg, size, heap)
