"""``BOUNDARY_VAR`` / ``BOUNDARY_TAG``: tagging statically-initialised globals.

Ordinary globals live in the snapshot image, which every sthread maps COW
by default.  When a statically initialised global is *sensitive* — or
simply needs to be shared read-write between sthreads — the programmer
declares it with ``BOUNDARY_VAR(def, id)``: all globals with the same
integer id are placed together in a distinct, page-aligned ELF section
(paper sections 3.2 and 4.1).  Such sections are **not** part of the
default snapshot mapping, so sthreads do not see them unless granted.

At runtime ``BOUNDARY_TAG(id)`` allocates (once) and returns a tag naming
that section, which the programmer passes to ``sc_mem_add`` like any other
tag.
"""

from __future__ import annotations

from repro.core.errors import WedgeError
from repro.core.image import GlobalVar
from repro.core.memory import PAGE_SIZE


class BoundarySection:
    """One to-be-materialised ELF section for a boundary id."""

    def __init__(self, boundary_id):
        self.boundary_id = boundary_id
        self.vars = []
        self._cursor = 0
        self._by_name = {}
        self.segment = None   # set when materialised
        self.tag = None       # set by the first BOUNDARY_TAG

    def declare(self, name, size, init):
        if self.segment is not None:
            raise WedgeError(
                "BOUNDARY_VAR after main started; boundary globals are "
                "static declarations")
        if name in self._by_name:
            raise WedgeError(
                f"boundary global {name!r} already declared in section "
                f"{self.boundary_id}")
        var = GlobalVar(name, self._cursor, size, bytes(init))
        self._cursor += (size + 7) & ~7
        self.vars.append(var)
        self._by_name[name] = var
        return var

    def materialise(self, space):
        size = max(self._cursor, PAGE_SIZE)
        self.segment = space.create_segment(
            size, name=f"boundary{self.boundary_id}", kind="boundary")
        for var in self.vars:
            if var.init:
                self.segment.write_raw(var.offset, var.init)

    def addr_of(self, name):
        var = self._by_name.get(name)
        if var is None:
            raise WedgeError(f"unknown boundary global {name!r}")
        if self.segment is None:
            raise WedgeError("boundary section not yet materialised")
        return self.segment.base + var.offset

    def var_at(self, offset):
        for var in self.vars:
            if var.offset <= offset < var.offset + var.size:
                return var, offset - var.offset
        return None, None


class BoundaryRegistry:
    """All boundary sections of one process image."""

    def __init__(self):
        self._sections = {}
        self.sealed = False

    def section(self, boundary_id):
        sec = self._sections.get(boundary_id)
        if sec is None:
            if self.sealed:
                raise WedgeError(
                    f"no boundary section {boundary_id} was declared")
            sec = BoundarySection(boundary_id)
            self._sections[boundary_id] = sec
        return sec

    def materialise_all(self, space):
        self.sealed = True
        for sec in self._sections.values():
            sec.materialise(space)

    def sections(self):
        return list(self._sections.values())


def BOUNDARY_VAR(kernel, boundary_id, name, size, init=b""):
    """Declare global *name* in the page-aligned section *boundary_id*.

    Mirrors the paper's ``BOUNDARY_VAR(def, id)`` macro.  Must run before
    :meth:`~repro.core.kernel.Kernel.start_main`.
    """
    return kernel.boundary.section(boundary_id).declare(name, size, init)


def BOUNDARY_TAG(kernel, boundary_id):
    """Return the unique tag for section *boundary_id* (allocating it on
    first use).  Mirrors the paper's ``BOUNDARY_TAG(id)`` macro."""
    sec = kernel.boundary.section(boundary_id)
    if sec.segment is None:
        raise WedgeError("BOUNDARY_TAG before main started")
    if sec.tag is None:
        sec.tag = kernel.adopt_boundary_segment(sec.segment)
    return sec.tag
