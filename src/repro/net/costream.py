"""Cooperative (reactor-side) stream helpers for DuplexStream clients.

The kernel's ``co_*`` syscall wrappers cover server compartments; these
cover the *client* side of a connection — code that holds a raw
:class:`~repro.net.stream.DuplexStream` from ``Network.connect`` and
runs as a reactor task (the 10k-connection scale campaign's simulated
clients).  Each helper is a generator: ``yield from`` it inside a
reactor task.  It yields :class:`~repro.core.reactor.Wait` descriptors
while the stream would block and re-raises the same typed errors as the
blocking API (:class:`NetTimeout`, :class:`DeadlineExceeded`,
:class:`PeerReset`, :class:`ConnectionClosed`).

Backpressure semantics match the blocking path: :func:`co_send` never
lets the buffered bytes exceed the high-water mark (it chunks through
``try_send``) and counts each stall in ``backpressure_waits``, so the
overload campaign's peak-buffer audits hold verbatim under the reactor.
"""

from __future__ import annotations

import time

from repro.core.errors import (ConnectionClosed, DeadlineExceeded,
                               NetTimeout, PeerReset)
from repro.core.reactor import wait_readable, wait_writable
from repro.net.stream import DEFAULT_TIMEOUT
from repro.resilience.deadline import current_deadline


def _stall(op, name, deadline, timeout, give_up):
    """Raise the typed error for a wait that ran out of time, or return
    the wake_at for the next Wait descriptor."""
    now = time.monotonic()
    if deadline is not None and deadline.expired:
        raise DeadlineExceeded(
            f"deadline expired in {op} on {name!r}",
            op=op, deadline=deadline)
    if give_up is not None and now >= give_up:
        raise NetTimeout(
            f"{op} timed out after {timeout}s on {name!r}",
            op=op, timeout=timeout)
    wake_at = give_up
    if deadline is not None:
        expiry = now + max(0.0, deadline.remaining())
        wake_at = expiry if wake_at is None else min(wake_at, expiry)
    return wake_at


def co_send(sock, data, timeout=DEFAULT_TIMEOUT):
    """Cooperatively send all of *data* on a DuplexStream.

    Applies the endpoint's fault plan once up front with the same
    semantics as ``DuplexStream.send`` (drop swallows the payload,
    delay sleeps, reset raises), then chunks through
    ``try_send``/wait-writable until everything is buffered.
    """
    if sock.faults is not None:
        spec = sock.faults.fire("net_send")
        if spec is not None:
            if spec.kind == "drop":
                return len(data)   # silently lost in transit
            if spec.kind == "delay":
                time.sleep(spec.delay)
            elif spec.kind == "reset":
                sock.reset()
                raise PeerReset(
                    f"connection reset on {sock.name!r} (injected)")
    data = bytes(data)
    if not data:
        sock.try_send(b"")        # raises if closed/reset, like send
        return 0
    stream = sock.tx
    deadline = current_deadline()
    if deadline is not None:
        deadline.check("send")
    give_up = (None if timeout is None
               else time.monotonic() + float(timeout))
    offset = 0
    while offset < len(data):
        wrote = stream.try_send(data[offset:])
        if wrote:
            offset += wrote
            continue
        stream.backpressure_waits += 1
        wake_at = _stall("send", stream.name, deadline, timeout, give_up)
        yield wait_writable(stream, len(data) - offset, wake_at=wake_at)
    return len(data)


def co_recv(sock, size, timeout=DEFAULT_TIMEOUT):
    """Cooperatively receive 1..size bytes (None at EOF)."""
    stream = sock.rx
    deadline = current_deadline()
    if deadline is not None:
        deadline.check("recv")
    give_up = (None if timeout is None
               else time.monotonic() + float(timeout))
    while not stream.readable:
        wake_at = _stall("recv", stream.name, deadline, timeout, give_up)
        yield wait_readable(stream, wake_at=wake_at)
    # readiness guaranteed: the blocking recv returns immediately
    return stream.recv(size, timeout=DEFAULT_TIMEOUT)


def co_recv_exact(sock, size, timeout=DEFAULT_TIMEOUT):
    """Cooperatively receive exactly *size* bytes or raise."""
    out = bytearray()
    while len(out) < size:
        chunk = yield from co_recv(sock, size - len(out), timeout)
        if chunk is None:
            raise ConnectionClosed(
                f"stream {sock.name!r} closed mid-message "
                f"({len(out)}/{size} bytes)")
        out += chunk
    return bytes(out)
