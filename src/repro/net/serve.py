"""Scheduler-aware accept loops: one serving skeleton for every app.

Every server in the tree (three httpd variants, pop3, sshd, the lb, the
cluster health responder) runs the same skeleton: accept with a short
timeout, tolerate transient errors, hand the connection to a handler,
sequentially by default.  :func:`start_accept_loop` centralises it and
picks the runner matching the kernel's scheduler:

- ``scheduler="threads"``: the classic dedicated accept thread — the
  deterministic reference oracle, byte-for-byte the loop the apps
  carried before the reactor existed.
- ``scheduler="reactor"``: a cooperative acceptor task on the kernel's
  readiness loop (woken by the listener, never polling), which runs the
  handler through the reactor's thread-pool escape hatch.  Pool size 1
  keeps the accept→handle→accept sequencing of the threaded oracle, so
  chaos fault ordering and response bytes are identical.

The app supplies ``on_conn(conn_fd) -> job``: called *synchronously* in
loop order (bump counters, fork per-connection RNGs here — order is the
determinism contract), returning either the zero-argument callable that
serves the connection or — under the reactor — a *generator*, which the
acceptor task drives inline (``yield from``) instead of burning a pool
thread on it.  Either way the job owns conn_fd's lifecycle, including
close.
"""

from __future__ import annotations

import threading
import types

from repro.core.errors import KernelDead, NetworkError, WedgeError


def start_accept_loop(kernel, listen_fd, on_conn, *, stop, name,
                      concurrent=False):
    """Start serving *listen_fd*; returns a runner with ``join(timeout)``.

    *stop* is the server's ``threading.Event``; set it (and close the
    listen fd) to wind the loop down.  ``concurrent=True`` serves each
    connection on its own worker instead of sequentially.
    """
    if kernel.scheduler == "reactor":
        runner = _ReactorRunner(kernel, listen_fd, on_conn, stop=stop,
                                name=name, concurrent=concurrent)
    else:
        runner = _ThreadRunner(kernel, listen_fd, on_conn, stop=stop,
                               name=name, concurrent=concurrent)
    runner.start()
    return runner


class _ThreadRunner:
    """The threaded oracle: a dedicated accept thread, 0.5 s poll."""

    def __init__(self, kernel, listen_fd, on_conn, *, stop, name,
                 concurrent):
        self.kernel = kernel
        self.listen_fd = listen_fd
        self.on_conn = on_conn
        self.stop = stop
        self.name = name
        self.concurrent = concurrent
        self._thread = None
        self._served = 0

    def start(self):
        self._thread = threading.Thread(
            target=self._loop, name=self.name, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self.stop.is_set():
            try:
                conn_fd = self.kernel.accept(self.listen_fd, timeout=0.5)
            except KernelDead:
                return   # the host kernel died: no spinning on a ghost
            except WedgeError:
                continue
            self._served += 1
            job = self.on_conn(conn_fd)
            if self.concurrent:
                threading.Thread(
                    target=job, name=f"{self.name}-conn{self._served}",
                    daemon=True).start()
            else:
                job()

    def join(self, timeout=None):
        if self._thread is not None:
            self._thread.join(timeout)


class _ReactorRunner:
    """The cooperative acceptor: one task, woken by listener readiness."""

    def __init__(self, kernel, listen_fd, on_conn, *, stop, name,
                 concurrent):
        self.kernel = kernel
        self.listen_fd = listen_fd
        self.on_conn = on_conn
        self.stop = stop
        self.name = name
        self.concurrent = concurrent
        self.task = None

    def start(self):
        reactor = self.kernel.reactor
        reactor.ensure_running()
        self.task = reactor.spawn(self._loop(), name=self.name)

    def _loop(self):
        kernel = self.kernel
        reactor = kernel.reactor
        while not self.stop.is_set():
            try:
                conn_fd = yield from kernel.co_accept(self.listen_fd,
                                                      timeout=None)
            except KernelDead:
                return
            except NetworkError:
                return   # listener closed: the cooperative stop signal
            except WedgeError:
                continue
            job = self.on_conn(conn_fd)
            if isinstance(job, types.GeneratorType):
                # cooperative job: no pool thread at all — driven on
                # this task (sequential: identical serving order to the
                # threaded oracle) or as its own task (concurrent)
                if self.concurrent:
                    reactor.spawn(job, name=f"{self.name}-conn")
                else:
                    yield from job
            elif self.concurrent:
                reactor.submit(job)
            else:
                # pool size 1 → same sequential serving order as the
                # threaded oracle, without blocking the readiness loop
                yield from reactor.offload(job)

    def join(self, timeout=None):
        if self.task is not None:
            self.task.wait(timeout)
