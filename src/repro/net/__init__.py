"""Simulated network substrate: byte streams, rendezvous, interposition."""

from repro.net.network import Listener, Network
from repro.net.stream import (DEFAULT_HIGH_WATER, DEFAULT_TIMEOUT,
                              ByteStream, DuplexStream)

__all__ = ["ByteStream", "DEFAULT_HIGH_WATER", "DEFAULT_TIMEOUT",
           "DuplexStream", "Listener", "Network"]
