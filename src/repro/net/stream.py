"""Byte streams: the shared transport under pipes and simulated sockets.

A :class:`ByteStream` is one unidirectional, thread-safe byte queue with
blocking reads, EOF, and timeouts.  A :class:`DuplexStream` pairs two of
them into a connected-socket-like object.  These are deliberately
stream-oriented (``recv`` may return short reads) so protocol code on top
has to do real framing, as it would over TCP.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import ConnectionClosed, NetTimeout, PeerReset

#: Default blocking-receive timeout.  Finite so a deadlocked test fails
#: loudly instead of hanging the suite.
DEFAULT_TIMEOUT = 10.0


class ByteStream:
    """One direction of a connection: a bounded-blocking byte queue."""

    def __init__(self, name=""):
        self.name = name
        self._buf = bytearray()
        self._eof = False
        self._reset = False
        self._cond = threading.Condition()

    def send(self, data):
        """Append bytes; wakes any blocked reader."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("streams carry bytes")
        with self._cond:
            if self._reset:
                raise PeerReset(
                    f"send on reset stream {self.name!r}")
            if self._eof:
                raise ConnectionClosed(
                    f"send on closed stream {self.name!r}")
            self._buf += bytes(data)
            self._cond.notify_all()
        return len(data)

    def recv(self, size, timeout=DEFAULT_TIMEOUT):
        """Return 1..size bytes, or ``None`` at EOF.

        Blocks until data is available; raises
        :class:`~repro.core.errors.NetTimeout` on timeout and
        :class:`~repro.core.errors.PeerReset` on an abrupt teardown.
        """
        if size <= 0:
            return b""
        with self._cond:
            if not self._cond.wait_for(
                    lambda: self._buf or self._eof, timeout):
                raise NetTimeout(
                    f"recv timed out after {timeout}s on {self.name!r}",
                    op="recv", timeout=timeout)
            if self._reset:
                raise PeerReset(
                    f"connection reset on stream {self.name!r}")
            if not self._buf:
                return None  # EOF
            data = bytes(self._buf[:size])
            del self._buf[:size]
            return data

    def recv_exact(self, size, timeout=DEFAULT_TIMEOUT):
        """Return exactly *size* bytes or raise on EOF/timeout."""
        out = bytearray()
        while len(out) < size:
            chunk = self.recv(size - len(out), timeout)
            if chunk is None:
                raise ConnectionClosed(
                    f"stream {self.name!r} closed mid-message "
                    f"({len(out)}/{size} bytes)")
            out += chunk
        return bytes(out)

    def close(self):
        """Signal EOF; pending bytes remain readable."""
        with self._cond:
            self._eof = True
            self._cond.notify_all()

    def reset(self):
        """Tear down abruptly: pending bytes are lost (simulated RST)."""
        with self._cond:
            self._reset = True
            self._eof = True
            del self._buf[:]
            self._cond.notify_all()

    @property
    def closed(self):
        with self._cond:
            return self._eof

    def pending(self):
        with self._cond:
            return len(self._buf)


class DuplexStream:
    """A connected socket: paired read/write byte streams."""

    #: per-endpoint FaultPlan attached by Network.connect, or None; the
    #: send path tests this one attribute (same discipline as the kernel
    #: hot paths)
    faults = None

    def __init__(self, rx, tx, *, name=""):
        self._rx = rx
        self._tx = tx
        self.name = name

    @classmethod
    def pipe_pair(cls, name=""):
        """Two connected endpoints (socketpair semantics)."""
        a_to_b = ByteStream(f"{name}:a>b")
        b_to_a = ByteStream(f"{name}:b>a")
        end_a = cls(b_to_a, a_to_b, name=f"{name}:a")
        end_b = cls(a_to_b, b_to_a, name=f"{name}:b")
        return end_a, end_b

    def send(self, data):
        if self.faults is not None:
            spec = self.faults.fire("net_send")
            if spec is not None:
                if spec.kind == "drop":
                    return len(data)   # silently lost in transit
                if spec.kind == "delay":
                    time.sleep(spec.delay)
                elif spec.kind == "reset":
                    self.reset()
                    raise PeerReset(
                        f"connection reset on {self.name!r} (injected)")
        return self._tx.send(data)

    def recv(self, size, timeout=DEFAULT_TIMEOUT):
        return self._rx.recv(size, timeout)

    def recv_exact(self, size, timeout=DEFAULT_TIMEOUT):
        return self._rx.recv_exact(size, timeout)

    def close(self):
        """Close both directions (full socket close)."""
        self._tx.close()
        self._rx.close()

    def reset(self):
        """Abruptly tear down both directions (simulated RST)."""
        self._tx.reset()
        self._rx.reset()

    def shutdown_write(self):
        self._tx.close()

    @property
    def closed(self):
        return self._tx.closed and self._rx.closed
