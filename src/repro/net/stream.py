"""Byte streams: the shared transport under pipes and simulated sockets.

A :class:`ByteStream` is one unidirectional, thread-safe byte queue with
blocking reads, EOF, and timeouts.  A :class:`DuplexStream` pairs two of
them into a connected-socket-like object.  These are deliberately
stream-oriented (``recv`` may return short reads) so protocol code on top
has to do real framing, as it would over TCP.

The queue is **bounded and blocking in both directions**: a reader
blocks until bytes arrive, and a sender blocks once the buffered bytes
reach the stream's high-water mark, until the reader drains room (real
backpressure — a fast sender cannot grow the buffer without bound).
Both directions honour their timeout and any ambient
:class:`~repro.resilience.Deadline`; deadline exhaustion surfaces as
:class:`~repro.core.errors.DeadlineExceeded` rather than a generic
timeout.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import (ConnectionClosed, DeadlineExceeded,
                               NetTimeout, PeerReset)
from repro.observe.events import STREAM_BACKPRESSURE
from repro.resilience.deadline import current_deadline

#: Default blocking-receive timeout.  Finite so a deadlocked test fails
#: loudly instead of hanging the suite.
DEFAULT_TIMEOUT = 10.0

#: Default high-water mark, bytes.  Large enough that the shipped
#: protocols' single-threaded request/response phases never block, small
#: enough that a flood is bounded; the overload campaign tightens it.
DEFAULT_HIGH_WATER = 256 * 1024


class ByteStream:
    """One direction of a connection: a bounded-blocking byte queue."""

    def __init__(self, name="", *, high_water=None):
        self.name = name
        self.high_water = (DEFAULT_HIGH_WATER if high_water is None
                           else max(1, int(high_water)))
        self._buf = bytearray()
        self._eof = False
        self._reset = False
        self._cond = threading.Condition()
        #: high-water accounting for the overload campaign's audits
        self.peak_buffered = 0
        self.backpressure_waits = 0
        #: EventBus attached by Network when an Observer is wired up, or
        #: None (the hot path tests this one attribute, same discipline
        #: as the kernel chokepoints)
        self.observer = None
        #: reactor watcher callbacks, poked on every state transition
        #: (bytes appended, room drained, EOF, reset).  Fired under
        #: ``_cond``, so a watcher may only do lock-free work — the
        #: reactor's appends to its notification deque (reactor rule 5).
        self._watchers = []

    # -- reactor integration ----------------------------------------------

    def add_watcher(self, cb):
        with self._cond:
            if cb not in self._watchers:
                self._watchers.append(cb)

    def remove_watcher(self, cb):
        with self._cond:
            try:
                self._watchers.remove(cb)
            except ValueError:
                pass

    def _notify_watchers(self):
        # called with self._cond held
        for cb in list(self._watchers):
            cb(self)

    @property
    def readable(self):
        """True iff :meth:`recv` would return without blocking."""
        with self._cond:
            return bool(self._buf) or self._eof

    def has_room(self, need=1):
        """True iff :meth:`send` of ``min(need, high_water)`` bytes
        would complete without blocking (closed/reset streams report
        True so a waiting sender wakes up and collects its typed
        error)."""
        need = min(max(1, int(need)), self.high_water)
        with self._cond:
            if self._eof or self._reset:
                return True
            return (self.high_water - len(self._buf)) >= need

    def try_send(self, data):
        """Append as many bytes as fit *without blocking*.

        Returns the number of bytes written (0 when the buffer is at
        its high-water mark).  Raises the same typed errors as
        :meth:`send` on a closed/reset stream.  This is the reactor's
        send primitive: cooperative senders loop try_send/wait-writable
        instead of blocking at the high-water mark.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("streams carry bytes")
        data = bytes(data)
        with self._cond:
            self._check_open_for_send()
            if not data:
                return 0
            room = self.high_water - len(self._buf)
            if room <= 0:
                return 0
            chunk = data[:room]
            self._buf += chunk
            if len(self._buf) > self.peak_buffered:
                self.peak_buffered = len(self._buf)
            self._cond.notify_all()
            if self._watchers:
                self._notify_watchers()
            return len(chunk)

    def _check_open_for_send(self):
        if self._reset:
            raise PeerReset(f"send on reset stream {self.name!r}")
        if self._eof:
            raise ConnectionClosed(f"send on closed stream {self.name!r}")

    def send(self, data, timeout=DEFAULT_TIMEOUT):
        """Append bytes; wakes any blocked reader.

        Blocks while the buffer is at its high-water mark until the
        reader drains room (chunking as room appears, so the buffered
        bytes never exceed ``high_water``).  Raises
        :class:`~repro.core.errors.NetTimeout` if room does not appear
        within *timeout* and
        :class:`~repro.core.errors.DeadlineExceeded` when an ambient
        deadline expires first.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("streams carry bytes")
        data = bytes(data)
        if not data:
            with self._cond:
                self._check_open_for_send()
            return 0
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("send")
        give_up = (None if timeout is None
                   else time.monotonic() + float(timeout))
        offset = 0
        with self._cond:
            while True:
                self._check_open_for_send()
                room = self.high_water - len(self._buf)
                if room > 0:
                    chunk = data[offset:offset + room]
                    self._buf += chunk
                    offset += len(chunk)
                    if len(self._buf) > self.peak_buffered:
                        self.peak_buffered = len(self._buf)
                    self._cond.notify_all()
                    if self._watchers:
                        self._notify_watchers()
                    if offset >= len(data):
                        return len(data)
                # at the high-water mark: block until the reader drains
                self.backpressure_waits += 1
                obs = self.observer
                if obs is not None and obs.enabled:
                    obs.emit(STREAM_BACKPRESSURE, stream=self.name,
                             buffered=len(self._buf),
                             waiting=len(data) - offset)
                wait = None if give_up is None \
                    else give_up - time.monotonic()
                if deadline is not None:
                    wait = deadline.clamp(wait)
                if wait is not None and wait <= 0:
                    self._raise_send_stall(deadline, timeout, offset)
                if not self._cond.wait_for(
                        lambda: self._eof or self._reset
                        or len(self._buf) < self.high_water, wait):
                    self._raise_send_stall(deadline, timeout, offset)

    def _raise_send_stall(self, deadline, timeout, offset):
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"deadline expired mid-send on {self.name!r} "
                f"({offset} bytes written)", op="send", deadline=deadline)
        raise NetTimeout(
            f"send blocked on backpressure for {timeout}s on "
            f"{self.name!r} ({offset} bytes written)",
            op="send", timeout=timeout)

    def recv(self, size, timeout=DEFAULT_TIMEOUT):
        """Return 1..size bytes, or ``None`` at EOF.

        Blocks until data is available; raises
        :class:`~repro.core.errors.NetTimeout` on timeout,
        :class:`~repro.core.errors.DeadlineExceeded` when an ambient
        deadline expires first, and
        :class:`~repro.core.errors.PeerReset` on an abrupt teardown.
        """
        if size <= 0:
            return b""
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("recv")
        wait = timeout if deadline is None else deadline.clamp(timeout)
        with self._cond:
            if not self._cond.wait_for(
                    lambda: self._buf or self._eof, wait):
                if deadline is not None and deadline.expired:
                    raise DeadlineExceeded(
                        f"deadline expired in recv on {self.name!r}",
                        op="recv", deadline=deadline)
                raise NetTimeout(
                    f"recv timed out after {timeout}s on {self.name!r}",
                    op="recv", timeout=timeout)
            if self._reset:
                raise PeerReset(
                    f"connection reset on stream {self.name!r}")
            if not self._buf:
                return None  # EOF
            data = bytes(self._buf[:size])
            del self._buf[:size]
            # room appeared: wake senders blocked at the high-water mark
            self._cond.notify_all()
            if self._watchers:
                self._notify_watchers()
            return data

    def recv_exact(self, size, timeout=DEFAULT_TIMEOUT):
        """Return exactly *size* bytes or raise on EOF/timeout."""
        out = bytearray()
        while len(out) < size:
            chunk = self.recv(size - len(out), timeout)
            if chunk is None:
                raise ConnectionClosed(
                    f"stream {self.name!r} closed mid-message "
                    f"({len(out)}/{size} bytes)")
            out += chunk
        return bytes(out)

    def close(self):
        """Signal EOF; pending bytes remain readable."""
        with self._cond:
            self._eof = True
            self._cond.notify_all()
            if self._watchers:
                self._notify_watchers()

    def reset(self):
        """Tear down abruptly: pending bytes are lost (simulated RST)."""
        with self._cond:
            self._reset = True
            self._eof = True
            del self._buf[:]
            self._cond.notify_all()
            if self._watchers:
                self._notify_watchers()

    @property
    def closed(self):
        with self._cond:
            return self._eof

    def pending(self):
        with self._cond:
            return len(self._buf)


class DuplexStream:
    """A connected socket: paired read/write byte streams."""

    #: per-endpoint FaultPlan attached by Network.connect, or None; the
    #: send path tests this one attribute (same discipline as the kernel
    #: hot paths)
    faults = None
    #: connection id stamped by Network._deliver on both endpoints —
    #: the join key for cross-kernel span stitching (repro.observe.stitch)
    cid = None
    #: the other end of the pipe pair (set by pipe_pair), or None for a
    #: standalone endpoint.  Lets close/reset eagerly purge a peer that
    #: is still queued in a listener backlog (the mid-handoff drop fix).
    peer = None
    #: the Listener whose backlog currently holds this endpoint, set by
    #: Listener._enqueue and cleared by accept/purge (under the
    #: listener's lock).
    _pending_on = None

    def __init__(self, rx, tx, *, name=""):
        self._rx = rx
        self._tx = tx
        self.name = name

    @classmethod
    def pipe_pair(cls, name="", *, high_water=None):
        """Two connected endpoints (socketpair semantics)."""
        a_to_b = ByteStream(f"{name}:a>b", high_water=high_water)
        b_to_a = ByteStream(f"{name}:b>a", high_water=high_water)
        end_a = cls(b_to_a, a_to_b, name=f"{name}:a")
        end_b = cls(a_to_b, b_to_a, name=f"{name}:b")
        end_a.peer = end_b
        end_b.peer = end_a
        return end_a, end_b

    # -- reactor integration ----------------------------------------------

    @property
    def rx(self):
        """The receive-direction ByteStream (the readable endpoint)."""
        return self._rx

    @property
    def tx(self):
        """The send-direction ByteStream (the writable endpoint)."""
        return self._tx

    def try_send(self, data):
        """Non-blocking send of as much of *data* as fits; see
        :meth:`ByteStream.try_send`.  Does **not** run fault plans —
        cooperative senders interpose faults once up front
        (:func:`repro.net.costream.co_send` does)."""
        return self._tx.try_send(data)

    def send(self, data, timeout=DEFAULT_TIMEOUT):
        if self.faults is not None:
            spec = self.faults.fire("net_send")
            if spec is not None:
                if spec.kind == "drop":
                    return len(data)   # silently lost in transit
                if spec.kind == "delay":
                    time.sleep(spec.delay)
                elif spec.kind == "reset":
                    self.reset()
                    raise PeerReset(
                        f"connection reset on {self.name!r} (injected)")
        return self._tx.send(data, timeout)

    def recv(self, size, timeout=DEFAULT_TIMEOUT):
        return self._rx.recv(size, timeout)

    def recv_exact(self, size, timeout=DEFAULT_TIMEOUT):
        return self._rx.recv_exact(size, timeout)

    def close(self):
        """Close both directions (full socket close)."""
        self._tx.close()
        self._rx.close()
        self._drop_pending_peer()

    def reset(self):
        """Abruptly tear down both directions (simulated RST)."""
        self._tx.reset()
        self._rx.reset()
        self._drop_pending_peer()

    def _drop_pending_peer(self):
        """Purge our peer from a listener backlog it is still queued in.

        This is the fix for the stranded-queue hang: a client that
        closes (or resets) after ``connect`` admitted it but before the
        server's ``accept`` popped it used to leave a dead server end in
        the backlog — the server would accept it, block in ``recv`` and
        hang silently until its timeout.  Now the dead entry is removed
        eagerly and reset, so anything racing into it gets a typed
        :class:`~repro.core.errors.PeerReset` immediately.
        """
        peer = self.peer
        if peer is None:
            return
        listener = peer._pending_on
        if listener is not None and listener._purge(peer):
            peer.reset()

    def shutdown_write(self):
        self._tx.close()

    @property
    def closed(self):
        return self._tx.closed and self._rx.closed
