"""The simulated network: listeners, connections and interposition.

A :class:`Network` is a rendezvous for in-process stream connections.
Servers :meth:`listen` on string addresses (``"server:443"``); clients
:meth:`connect` to them and get one end of a
:class:`~repro.net.stream.DuplexStream`.

Admission control is part of the medium: every :class:`Listener` has a
bounded accept backlog.  A connect that finds the backlog full is
**shed deterministically** — the client gets a typed
:class:`~repro.core.errors.ConnectionShed` and nothing is queued — so a
connect flood can never grow server-side state without bound (the
overload regime the resilience layer is built around).

The network also exposes the attacker's vantage point: an
:meth:`interpose` hook places a man-in-the-middle on an address, so every
new connection is routed through attacker code that can eavesdrop on,
forward, and inject messages in both directions — the threat model of
paper section 5.1.2.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque

from repro.core.errors import (ConnectionRefused, ConnectionShed,
                               NetTimeout, NetworkError)
from repro.net.stream import DuplexStream
from repro.observe.events import NET_CONNECT, NET_SHED
from repro.resilience.deadline import current_deadline


class Listener:
    """A bound address's accept queue — bounded, like a real somaxconn."""

    def __init__(self, network, addr, *, backlog=None):
        self.network = network
        self.addr = addr
        self.backlog = (network.default_backlog if backlog is None
                        else max(1, int(backlog)))
        self._pending = deque()
        self._cond = threading.Condition()
        self._closed = False
        #: admission-control accounting for the overload campaign
        self.shed_count = 0
        self.peak_pending = 0
        self.accepted_count = 0
        #: connections dropped from the backlog because the client end
        #: closed/reset before accept could pop them (the mid-handoff
        #: drop fix — see DuplexStream._drop_pending_peer)
        self.purged_count = 0
        #: reactor watcher callbacks, poked when the queue gains an
        #: entry or the listener closes.  Fired under ``_cond``; same
        #: lock-free-watcher contract as ByteStream.
        self._watchers = []

    # -- reactor integration ----------------------------------------------

    def add_watcher(self, cb):
        with self._cond:
            if cb not in self._watchers:
                self._watchers.append(cb)

    def remove_watcher(self, cb):
        with self._cond:
            try:
                self._watchers.remove(cb)
            except ValueError:
                pass

    def _notify_watchers(self):
        # called with self._cond held
        for cb in list(self._watchers):
            cb(self)

    @property
    def acceptable(self):
        """True iff :meth:`accept` would return (or raise the typed
        closed-listener error) without blocking."""
        with self._cond:
            return bool(self._pending) or self._closed

    def _enqueue(self, sock):
        with self._cond:
            if self._closed:
                raise NetworkError(f"listener {self.addr!r} is closed")
            if len(self._pending) >= self.backlog:
                self.shed_count += 1
                raise ConnectionShed(
                    f"listener {self.addr!r} backlog full "
                    f"({self.backlog}): connection shed",
                    addr=self.addr, backlog=self.backlog)
            self._pending.append(sock)
            sock._pending_on = self
            if len(self._pending) > self.peak_pending:
                self.peak_pending = len(self._pending)
            self._cond.notify()
            if self._watchers:
                self._notify_watchers()

    def accept(self, timeout=30.0):
        """Block for the next inbound connection."""
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("accept")
            timeout = deadline.clamp(timeout)
        with self._cond:
            if not self._cond.wait_for(
                    lambda: self._pending or self._closed, timeout):
                raise NetTimeout(f"accept timed out on {self.addr!r}",
                                 op="accept", timeout=timeout)
            if self._closed and not self._pending:
                raise NetworkError(f"listener {self.addr!r} is closed")
            self.accepted_count += 1
            sock = self._pending.popleft()
            sock._pending_on = None
            return sock

    def _purge(self, sock):
        """Drop *sock* from the backlog if it is still queued.

        Called (via the stream layer) when the *peer* end is closed or
        reset mid-handoff.  Returns True iff the entry was removed; a
        False return means a concurrent :meth:`accept` already popped
        it, and the acceptor keeps the (EOF'd) socket as before.
        """
        with self._cond:
            if sock._pending_on is not self:
                return False
            try:
                self._pending.remove(sock)
            except ValueError:
                return False
            sock._pending_on = None
            self.purged_count += 1
            return True

    def pending_count(self):
        with self._cond:
            return len(self._pending)

    def close(self):
        """Close the listener; queued-but-unaccepted clients are reset.

        Resetting the stranded server ends gives every already-admitted
        client a prompt typed outcome (:class:`PeerReset`) instead of a
        silent hang until its recv timeout — the queue cannot leak
        streams across a close.
        """
        with self._cond:
            self._closed = True
            stranded = list(self._pending)
            self._pending.clear()
            for sock in stranded:
                sock._pending_on = None
            self._cond.notify_all()
            if self._watchers:
                self._notify_watchers()
        for sock in stranded:
            sock.reset()
        self.network._unbind(self.addr, self)


class Network:
    """One shared medium connecting every kernel attached to it."""

    #: Class-level default backlog, overridable per instance/listener.
    #: Campaign harnesses (chaos/overload) tighten it around internally
    #: constructed Networks, the same save/restore idiom as
    #: ``Kernel.DEFAULT_TLB``.
    DEFAULT_BACKLOG = 128
    #: Class-level per-stream high-water override (None = the stream
    #: module's default).
    DEFAULT_HIGH_WATER = None

    def __init__(self, *, default_backlog=None, default_high_water=None):
        self._listeners = {}
        self._interposers = {}
        self._lock = threading.Lock()
        self.connections_made = 0
        self.default_backlog = (self.DEFAULT_BACKLOG
                                if default_backlog is None
                                else max(1, int(default_backlog)))
        self.default_high_water = (self.DEFAULT_HIGH_WATER
                                   if default_high_water is None
                                   else default_high_water)
        #: total connections shed by any listener on this medium
        self.shed_count = 0
        #: when a campaign sets this to a list, every ByteStream built by
        #: connect is appended for post-hoc peak-buffer audits (None by
        #: default: no references are retained)
        self.streams = None
        #: FaultPlan propagated by Kernel.install_faults, or None
        self.faults = None
        #: EventBus attached by repro.observe.Observer, or None (a
        #: network is shared between kernels, so it is not wired up by
        #: any single kernel's constructor)
        self.observer = None
        #: medium-wide connection ids; both ends of every delivered
        #: connection share one, so traces on different kernels can be
        #: stitched by cid (repro.observe.stitch)
        self._cids = itertools.count(1)

    # -- server side -------------------------------------------------------

    def listen(self, addr, *, backlog=None):
        with self._lock:
            if addr in self._listeners:
                raise NetworkError(f"address {addr!r} already in use")
            listener = Listener(self, addr, backlog=backlog)
            self._listeners[addr] = listener
            return listener

    def _unbind(self, addr, listener):
        with self._lock:
            if self._listeners.get(addr) is listener:
                del self._listeners[addr]

    # -- client side -------------------------------------------------------

    def connect(self, addr):
        """Open a connection to *addr*; returns the client endpoint.

        If an interposer is registered for *addr*, the connection is
        silently routed through it instead of reaching the listener
        directly — the client cannot tell.  A full backlog sheds the
        connection (:class:`~repro.core.errors.ConnectionShed`); a
        missing or concurrently-closed listener refuses it
        (:class:`~repro.core.errors.ConnectionRefused`).
        """
        with self._lock:
            interposer = self._interposers.get(addr)
            listener = self._listeners.get(addr)
        self.connections_made += 1
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.emit(NET_CONNECT, addr=addr,
                     interposed=interposer is not None)
        if self.faults is not None and \
                self.faults.fire("net_connect") is not None:
            raise ConnectionRefused(
                f"connection refused (injected): {addr!r}", addr=addr)
        if interposer is not None:
            return interposer._client_connected(addr)
        if listener is None:
            raise ConnectionRefused(f"connection refused: {addr!r}",
                                    addr=addr)
        return self._deliver(listener, addr)

    def connect_direct(self, addr):
        """Connect bypassing any interposer (the attacker's own upstream
        path to the real server).  Same accounting, fault attachment and
        admission control as :meth:`connect`."""
        with self._lock:
            listener = self._listeners.get(addr)
        self.connections_made += 1
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.emit(NET_CONNECT, addr=addr, interposed=False,
                     direct=True)
        if listener is None:
            raise ConnectionRefused(f"connection refused: {addr!r}",
                                    addr=addr)
        return self._deliver(listener, addr)

    def _deliver(self, listener, addr):
        """Build the pipe pair and enqueue the server end.

        The enqueue can race a concurrent :meth:`Listener.close` (or hit
        a full backlog); either way both just-created stream ends are
        closed before the typed error propagates, so a losing connect
        never leaks a half-open pipe pair.
        """
        client_end, server_end = DuplexStream.pipe_pair(
            addr, high_water=self.default_high_water)
        cid = next(self._cids)
        client_end.cid = cid
        server_end.cid = cid
        if self.faults is not None:
            client_end.faults = self.faults
            server_end.faults = self.faults
        obs = self.observer
        for stream in (client_end._rx, client_end._tx):
            if obs is not None:
                stream.observer = obs
            if self.streams is not None:
                self.streams.append(stream)
        try:
            listener._enqueue(server_end)
        except ConnectionShed:
            self.shed_count += 1
            client_end.close()
            server_end.close()
            if obs is not None and obs.enabled:
                obs.emit(NET_SHED, addr=addr, backlog=listener.backlog,
                         shed_total=self.shed_count)
            raise
        except NetworkError as exc:
            # lost the race against Listener.close(): map to the typed
            # connection-refused path instead of a bare NetworkError
            client_end.close()
            server_end.close()
            raise ConnectionRefused(
                f"connection refused: {addr!r} (listener closed)",
                addr=addr) from exc
        return client_end

    # -- the attacker's vantage point ------------------------------------------

    def interpose(self, addr, interposer):
        """Install a man-in-the-middle on *addr*.

        *interposer* must implement ``_client_connected(addr) -> socket``;
        see :class:`repro.attacks.mitm.MitmAttacker`.
        """
        with self._lock:
            self._interposers[addr] = interposer
            interposer.network = self

    def remove_interposer(self, addr):
        with self._lock:
            self._interposers.pop(addr, None)
