"""The simulated network: listeners, connections and interposition.

A :class:`Network` is a rendezvous for in-process stream connections.
Servers :meth:`listen` on string addresses (``"server:443"``); clients
:meth:`connect` to them and get one end of a
:class:`~repro.net.stream.DuplexStream`.

The network also exposes the attacker's vantage point: an
:meth:`interpose` hook places a man-in-the-middle on an address, so every
new connection is routed through attacker code that can eavesdrop on,
forward, and inject messages in both directions — the threat model of
paper section 5.1.2.
"""

from __future__ import annotations

import threading

from repro.core.errors import NetTimeout, NetworkError
from repro.net.stream import DuplexStream
from repro.observe.events import NET_CONNECT


class Listener:
    """A bound address's accept queue."""

    def __init__(self, network, addr):
        self.network = network
        self.addr = addr
        self._pending = []
        self._cond = threading.Condition()
        self._closed = False

    def _enqueue(self, sock):
        with self._cond:
            if self._closed:
                raise NetworkError(f"listener {self.addr!r} is closed")
            self._pending.append(sock)
            self._cond.notify()

    def accept(self, timeout=30.0):
        """Block for the next inbound connection."""
        with self._cond:
            if not self._cond.wait_for(
                    lambda: self._pending or self._closed, timeout):
                raise NetTimeout(f"accept timed out on {self.addr!r}",
                                 op="accept", timeout=timeout)
            if self._closed and not self._pending:
                raise NetworkError(f"listener {self.addr!r} is closed")
            return self._pending.pop(0)

    def pending_count(self):
        with self._cond:
            return len(self._pending)

    def close(self):
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self.network._unbind(self.addr, self)


class Network:
    """One shared medium connecting every kernel attached to it."""

    def __init__(self):
        self._listeners = {}
        self._interposers = {}
        self._lock = threading.Lock()
        self.connections_made = 0
        #: FaultPlan propagated by Kernel.install_faults, or None
        self.faults = None
        #: EventBus attached by repro.observe.Observer, or None (a
        #: network is shared between kernels, so it is not wired up by
        #: any single kernel's constructor)
        self.observer = None

    # -- server side -------------------------------------------------------

    def listen(self, addr):
        with self._lock:
            if addr in self._listeners:
                raise NetworkError(f"address {addr!r} already in use")
            listener = Listener(self, addr)
            self._listeners[addr] = listener
            return listener

    def _unbind(self, addr, listener):
        with self._lock:
            if self._listeners.get(addr) is listener:
                del self._listeners[addr]

    # -- client side -------------------------------------------------------

    def connect(self, addr):
        """Open a connection to *addr*; returns the client endpoint.

        If an interposer is registered for *addr*, the connection is
        silently routed through it instead of reaching the listener
        directly — the client cannot tell.
        """
        with self._lock:
            interposer = self._interposers.get(addr)
            listener = self._listeners.get(addr)
        self.connections_made += 1
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.emit(NET_CONNECT, addr=addr,
                     interposed=interposer is not None)
        if self.faults is not None and \
                self.faults.fire("net_connect") is not None:
            raise NetworkError(f"connection refused (injected): {addr!r}")
        if interposer is not None:
            return interposer._client_connected(addr)
        if listener is None:
            raise NetworkError(f"connection refused: {addr!r}")
        client_end, server_end = DuplexStream.pipe_pair(addr)
        if self.faults is not None:
            client_end.faults = self.faults
            server_end.faults = self.faults
        listener._enqueue(server_end)
        return client_end

    def connect_direct(self, addr):
        """Connect bypassing any interposer (the attacker's own upstream
        path to the real server)."""
        with self._lock:
            listener = self._listeners.get(addr)
        if listener is None:
            raise NetworkError(f"connection refused: {addr!r}")
        client_end, server_end = DuplexStream.pipe_pair(addr)
        listener._enqueue(server_end)
        return client_end

    # -- the attacker's vantage point ------------------------------------------

    def interpose(self, addr, interposer):
        """Install a man-in-the-middle on *addr*.

        *interposer* must implement ``_client_connected(addr) -> socket``;
        see :class:`repro.attacks.mitm.MitmAttacker`.
        """
        with self._lock:
            self._interposers[addr] = interposer
            interposer.network = self

    def remove_interposer(self, addr):
        with self._lock:
            self._interposers.pop(addr, None)
