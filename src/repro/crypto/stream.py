"""A counter-mode stream cipher built on SHA-256.

The symmetric cipher for the TLS-like and SSH-like channels.  Keystream
block ``i`` is ``SHA256(key || nonce || i)``; encryption is XOR.  The
cipher object is *stateful* (a running byte offset), matching how a
record layer encrypts a sequence of records under one key.

Identical plaintexts at different stream positions produce different
ciphertexts; reusing a (key, nonce) pair across streams is the caller's
bug, exactly as with any CTR cipher.
"""

from __future__ import annotations

import hashlib
import struct

BLOCK = 32


class StreamCipher:
    """Stateful XOR-keystream cipher; one instance per direction."""

    def __init__(self, key, nonce=b""):
        self._key = bytes(key)
        self._nonce = bytes(nonce)
        self._offset = 0

    def _keystream(self, offset, length):
        out = bytearray()
        block_index = offset // BLOCK
        skip = offset % BLOCK
        while len(out) < skip + length:
            block = hashlib.sha256(
                self._key + self._nonce +
                struct.pack(">Q", block_index)).digest()
            out += block
            block_index += 1
        return bytes(out[skip:skip + length])

    def process(self, data):
        """Encrypt or decrypt (XOR is symmetric) at the current offset."""
        ks = self._keystream(self._offset, len(data))
        self._offset += len(data)
        return bytes(a ^ b for a, b in zip(data, ks))

    # encryption and decryption are the same operation; aliases keep the
    # protocol code readable
    encrypt = process
    decrypt = process

    def clone(self):
        """Independent cipher at the same position (tests only)."""
        other = StreamCipher(self._key, self._nonce)
        other._offset = self._offset
        return other
