"""TLS-style pseudo-random function (P_SHA256) for key derivation.

The SSL session key "is a cryptographic hash over three inputs, one of
which is random from the attacker's perspective" (paper section 5.1.1) —
this is that hash.  The master secret derives from the premaster plus the
client and server randoms; the key block expands the master secret into
MAC and cipher keys for each direction; and the Finished verify data
binds the handshake transcript.
"""

from __future__ import annotations

from repro.crypto.mac import DIGEST_SIZE, hmac_sha256


def p_sha256(secret, seed, length):
    """RFC 5246 P_hash: HMAC chaining until *length* bytes produced."""
    out = bytearray()
    a = seed
    while len(out) < length:
        a = hmac_sha256(secret, a)
        out += hmac_sha256(secret, a + seed)
    return bytes(out[:length])


def prf(secret, label, seed, length):
    """``PRF(secret, label, seed)`` — the TLS 1.2 construction."""
    if isinstance(label, str):
        label = label.encode()
    return p_sha256(secret, label + seed, length)


MASTER_SECRET_LEN = 48
MAC_KEY_LEN = DIGEST_SIZE
ENC_KEY_LEN = 32


def derive_master_secret(premaster, client_random, server_random):
    return prf(premaster, "master secret",
               client_random + server_random, MASTER_SECRET_LEN)


def derive_key_block(master, client_random, server_random):
    """Expand the master secret into per-direction MAC and cipher keys.

    Returns a dict with ``client_mac``, ``server_mac``, ``client_enc``,
    ``server_enc`` (the TLS 1.2 key-expansion order).
    """
    need = 2 * MAC_KEY_LEN + 2 * ENC_KEY_LEN
    block = prf(master, "key expansion",
                server_random + client_random, need)
    off = 0
    keys = {}
    for name, size in (("client_mac", MAC_KEY_LEN),
                       ("server_mac", MAC_KEY_LEN),
                       ("client_enc", ENC_KEY_LEN),
                       ("server_enc", ENC_KEY_LEN)):
        keys[name] = block[off:off + size]
        off += size
    return keys


def finished_verify_data(master, label, transcript_hash):
    """The 12-byte Finished payload for *label* ("client finished" or
    "server finished") over the handshake transcript hash."""
    return prf(master, label, transcript_hash, 12)
