"""HMAC-SHA256, implemented from the SHA-256 primitive.

The record layer MACs every record (paper section 5.1.2: "data injected
by the attacker will be rejected ... because the MAC will fail"), and the
TLS-style PRF is built from this HMAC.
"""

from __future__ import annotations

import hashlib

BLOCK_SIZE = 64   # SHA-256 block size
DIGEST_SIZE = 32


def hmac_sha256(key, message):
    """RFC 2104 HMAC over SHA-256."""
    if len(key) > BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(BLOCK_SIZE, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = hashlib.sha256(ipad + message).digest()
    return hashlib.sha256(opad + inner).digest()


def constant_time_eq(a, b):
    """Length-then-accumulate comparison (no early exit on mismatch)."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
