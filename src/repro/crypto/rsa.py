"""Textbook RSA with PKCS#1-v1.5-style padding, from scratch.

Provides exactly what the SSL handshake of paper section 5.1 needs:

* key generation (the server's long-lived key pair);
* ``encrypt``/``decrypt`` with randomized type-2 padding (the client
  encrypts the premaster secret under the server's public key);
* ``sign``/``verify`` with type-1 padding over a SHA-256 digest (the
  SSH host-key signature path).

Key material serialises to/from bytes so it can live in tagged memory —
the whole point of the partitioning is *where these bytes are readable*.
"""

from __future__ import annotations

import hashlib

from repro.core.errors import CryptoError
from repro.crypto.primes import (bytes_to_int, gen_prime, int_to_bytes,
                                 invmod)

PUBLIC_EXPONENT = 65537
DEFAULT_BITS = 512


class RsaPublicKey:
    """(n, e) plus the padding/encoding helpers."""

    def __init__(self, n, e=PUBLIC_EXPONENT):
        self.n = n
        self.e = e
        self.size = (n.bit_length() + 7) // 8

    # -- encryption (PKCS#1 v1.5 type 2) ------------------------------------

    def encrypt(self, message, rng):
        """Encrypt *message* with randomized padding from *rng*."""
        k = self.size
        if len(message) > k - 11:
            raise CryptoError(f"message too long for {k * 8}-bit RSA")
        pad_len = k - 3 - len(message)
        padding = bytearray()
        while len(padding) < pad_len:
            byte = rng.bytes(1)
            if byte != b"\x00":
                padding += byte
        em = b"\x00\x02" + bytes(padding) + b"\x00" + message
        return int_to_bytes(pow(bytes_to_int(em), self.e, self.n), k)

    def verify(self, message, signature):
        """True iff *signature* is a valid type-1 signature of *message*."""
        try:
            em = int_to_bytes(
                pow(bytes_to_int(signature), self.e, self.n), self.size)
        except (ValueError, OverflowError):
            return False
        expected = _pad_type1(_digest(message), self.size)
        return em == expected

    # -- serialisation -----------------------------------------------------------

    def to_bytes(self):
        n_bytes = int_to_bytes(self.n)
        e_bytes = int_to_bytes(self.e)
        return (len(n_bytes).to_bytes(2, "big") + n_bytes +
                len(e_bytes).to_bytes(2, "big") + e_bytes)

    @classmethod
    def from_bytes(cls, data):
        try:
            n_len = int.from_bytes(data[0:2], "big")
            n = bytes_to_int(data[2:2 + n_len])
            off = 2 + n_len
            e_len = int.from_bytes(data[off:off + 2], "big")
            e = bytes_to_int(data[off + 2:off + 2 + e_len])
        except (IndexError, ValueError) as exc:
            raise CryptoError("malformed RSA public key") from exc
        if n <= 0 or e <= 0:
            raise CryptoError("malformed RSA public key")
        return cls(n, e)

    def fingerprint(self):
        return hashlib.sha256(self.to_bytes()).hexdigest()[:16]

    def __eq__(self, other):
        return (isinstance(other, RsaPublicKey)
                and (self.n, self.e) == (other.n, other.e))

    def __hash__(self):
        return hash((self.n, self.e))


class RsaPrivateKey:
    """(n, d) with the CRT parameters for fast decryption."""

    def __init__(self, n, d, p, q, e=PUBLIC_EXPONENT):
        self.n = n
        self.d = d
        self.p = p
        self.q = q
        self.e = e
        self.size = (n.bit_length() + 7) // 8
        self._dp = d % (p - 1)
        self._dq = d % (q - 1)
        self._qinv = invmod(q, p)

    def public(self):
        return RsaPublicKey(self.n, self.e)

    def _crt_pow(self, c):
        m1 = pow(c % self.p, self._dp, self.p)
        m2 = pow(c % self.q, self._dq, self.q)
        h = (self._qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def decrypt(self, ciphertext):
        """Strip type-2 padding; raises CryptoError on bad padding."""
        if len(ciphertext) != self.size:
            raise CryptoError("ciphertext length mismatch")
        em = int_to_bytes(self._crt_pow(bytes_to_int(ciphertext)),
                          self.size)
        if em[0:2] != b"\x00\x02":
            raise CryptoError("bad PKCS#1 type-2 padding")
        sep = em.find(b"\x00", 2)
        if sep < 10:  # at least 8 padding bytes required
            raise CryptoError("bad PKCS#1 type-2 padding")
        return em[sep + 1:]

    def sign(self, message):
        em = _pad_type1(_digest(message), self.size)
        return int_to_bytes(self._crt_pow(bytes_to_int(em)), self.size)

    # -- serialisation (to store the key in tagged memory) -----------------------

    def to_bytes(self):
        parts = [int_to_bytes(x) for x in (self.n, self.d, self.p,
                                           self.q, self.e)]
        out = bytearray()
        for part in parts:
            out += len(part).to_bytes(2, "big") + part
        return bytes(out)

    @classmethod
    def from_bytes(cls, data):
        values = []
        off = 0
        try:
            for _ in range(5):
                length = int.from_bytes(data[off:off + 2], "big")
                values.append(bytes_to_int(data[off + 2:off + 2 + length]))
                off += 2 + length
        except (IndexError, ValueError) as exc:
            raise CryptoError("malformed RSA private key") from exc
        n, d, p, q, e = values
        return cls(n, d, p, q, e)


def generate_keypair(rng, bits=DEFAULT_BITS):
    """Generate an RSA key pair with distinct primes p, q."""
    half = bits // 2
    while True:
        p = gen_prime(half, rng)
        q = gen_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        n = p * q
        if n.bit_length() < bits - 1:
            continue
        d = invmod(PUBLIC_EXPONENT, phi)
        return RsaPrivateKey(n, d, p, q)


def _digest(message):
    return hashlib.sha256(message).digest()


def _pad_type1(digest, size):
    """PKCS#1 type-1 (signature) padding with a digest-type marker."""
    marker = b"sha256:"
    payload = marker + digest
    if len(payload) > size - 11:
        raise CryptoError("modulus too small for signature payload")
    padding = b"\xff" * (size - 3 - len(payload))
    return b"\x00\x01" + padding + b"\x00" + payload
