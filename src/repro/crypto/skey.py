"""S/Key one-time passwords: hash chains (RFC 1760 structure).

OpenSSH's third authentication callgate (paper Figure 6) implements
S/Key challenge-response: the server stores ``(sequence, seed, H^n(pw))``
per user; the client answers challenge ``n-1`` with ``H^(n-1)(pw)``; the
server verifies ``H(answer) == stored`` and steps the chain down.

The paper also recounts an S/Key information leak (a challenge returned
only for valid usernames); the Wedge sshd variant answers every username
with a plausible dummy challenge, tested in ``tests/security``.
"""

from __future__ import annotations

import hashlib

from repro.core.errors import AuthenticationFailure


def _h(data):
    return hashlib.sha256(data).digest()[:16]


def chain_value(password, seed, count):
    """``H^count(password || seed)``."""
    value = _h(password + seed)
    for _ in range(count):
        value = _h(value)
    return value


class SkeyEntry:
    """Server-side state for one user's hash chain."""

    def __init__(self, seed, sequence, top):
        self.seed = seed
        self.sequence = sequence  # the count of the stored value
        self.top = top            # H^sequence(pw || seed)

    @classmethod
    def enroll(cls, password, seed, sequence=100):
        return cls(seed, sequence, chain_value(password, seed, sequence))

    def challenge(self):
        """The (count, seed) the client must answer."""
        if self.sequence <= 1:
            raise AuthenticationFailure("S/Key chain exhausted; re-enroll")
        return self.sequence - 1, self.seed

    def verify(self, response):
        """Check H(response) against the stored value; step the chain."""
        if _h(response) != self.top:
            return False
        self.top = response
        self.sequence -= 1
        return True


def respond(password, seed, count):
    """Client side: the answer to challenge (count, seed)."""
    return chain_value(password, seed, count)
