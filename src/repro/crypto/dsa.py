"""DSA signatures, from scratch (FIPS 186 structure, small parameters).

OpenSSH's partitioning (paper section 5.2, Figure 6) has two DSA paths:
the *DSA sign* callgate signs with the server's host key, and the *DSA
auth* callgate verifies a signature made with the user's public key found
in the filesystem.  Both need real sign/verify with distinct keys, which
this module provides.

Domain parameters (p, q, g) are expensive to generate, so a module-level
default set is generated once per process from a fixed seed and shared —
exactly how ssh installations share well-known groups.
"""

from __future__ import annotations

import hashlib

from repro.core.errors import CryptoError
from repro.crypto.primes import (bytes_to_int, gen_prime, int_to_bytes,
                                 invmod, is_probable_prime)
from repro.crypto.rng import DetRNG

P_BITS = 512
Q_BITS = 160


class DsaParams:
    """The (p, q, g) domain parameters."""

    def __init__(self, p, q, g):
        self.p = p
        self.q = q
        self.g = g


def generate_params(rng, p_bits=P_BITS, q_bits=Q_BITS):
    """Generate DSA domain parameters: q | p-1, g of order q."""
    q = gen_prime(q_bits, rng)
    # search for p = k*q + 1 prime of the right size
    while True:
        k = rng.randbits(p_bits - q_bits)
        p = k * q + 1
        if p.bit_length() != p_bits:
            continue
        if is_probable_prime(p, rng):
            break
    # generator of the order-q subgroup
    while True:
        h = rng.randint(2, p - 2)
        g = pow(h, (p - 1) // q, p)
        if g > 1:
            break
    return DsaParams(p, q, g)


_default_params = None


def default_params():
    """The shared, deterministically generated domain parameters."""
    global _default_params
    if _default_params is None:
        _default_params = generate_params(DetRNG("wedge-dsa-group-v1"))
    return _default_params


class DsaPublicKey:
    def __init__(self, params, y):
        self.params = params
        self.y = y

    def verify(self, message, signature):
        """True iff *signature* = (r, s) encoded by ``encode_sig``."""
        p, q, g = self.params.p, self.params.q, self.params.g
        try:
            r, s = decode_sig(signature)
        except CryptoError:
            return False
        if not (0 < r < q and 0 < s < q):
            return False
        w = invmod(s, q)
        h = _digest_int(message, q)
        u1 = (h * w) % q
        u2 = (r * w) % q
        v = ((pow(g, u1, p) * pow(self.y, u2, p)) % p) % q
        return v == r

    def to_bytes(self):
        y = int_to_bytes(self.y)
        return len(y).to_bytes(2, "big") + y

    @classmethod
    def from_bytes(cls, data, params=None):
        params = params or default_params()
        try:
            y_len = int.from_bytes(data[0:2], "big")
            y = bytes_to_int(data[2:2 + y_len])
        except (IndexError, ValueError) as exc:
            raise CryptoError("malformed DSA public key") from exc
        if not 1 < y < params.p:
            raise CryptoError("DSA public key out of range")
        return cls(params, y)

    def fingerprint(self):
        return hashlib.sha256(self.to_bytes()).hexdigest()[:16]


class DsaPrivateKey:
    def __init__(self, params, x):
        self.params = params
        self.x = x
        self.y = pow(params.g, x, params.p)

    def public(self):
        return DsaPublicKey(self.params, self.y)

    def sign(self, message, rng):
        p, q, g = self.params.p, self.params.q, self.params.g
        h = _digest_int(message, q)
        while True:
            k = rng.randint(1, q - 1)
            r = pow(g, k, p) % q
            if r == 0:
                continue
            s = (invmod(k, q) * (h + self.x * r)) % q
            if s == 0:
                continue
            return encode_sig(r, s)

    #: serialisation magic — the moral equivalent of a PEM header, and
    #: (realistically) what memory-disclosure exploits grep for
    MAGIC = b"DSAPRIV1"

    def to_bytes(self):
        x = int_to_bytes(self.x)
        return self.MAGIC + len(x).to_bytes(2, "big") + x

    @classmethod
    def from_bytes(cls, data, params=None):
        params = params or default_params()
        if data[:len(cls.MAGIC)] != cls.MAGIC:
            raise CryptoError("malformed DSA private key")
        data = data[len(cls.MAGIC):]
        try:
            x_len = int.from_bytes(data[0:2], "big")
            x = bytes_to_int(data[2:2 + x_len])
        except (IndexError, ValueError) as exc:
            raise CryptoError("malformed DSA private key") from exc
        return cls(params, x)


def generate_keypair(rng, params=None):
    params = params or default_params()
    x = rng.randint(1, params.q - 1)
    return DsaPrivateKey(params, x)


def encode_sig(r, s):
    rb = int_to_bytes(r)
    sb = int_to_bytes(s)
    return (len(rb).to_bytes(2, "big") + rb +
            len(sb).to_bytes(2, "big") + sb)


def decode_sig(data):
    try:
        r_len = int.from_bytes(data[0:2], "big")
        r = bytes_to_int(data[2:2 + r_len])
        off = 2 + r_len
        s_len = int.from_bytes(data[off:off + 2], "big")
        s = bytes_to_int(data[off + 2:off + 2 + s_len])
        if off + 2 + s_len != len(data):
            raise ValueError("trailing bytes")
    except (IndexError, ValueError) as exc:
        raise CryptoError("malformed DSA signature") from exc
    return r, s


def _digest_int(message, q):
    digest = hashlib.sha256(message).digest()
    return bytes_to_int(digest) % q
