"""Prime generation and modular arithmetic for RSA and DSA.

Miller-Rabin with a small-prime sieve in front; parameter sizes in this
repository are deliberately small (512-bit RSA, 512/160-bit DSA) so the
full handshake benchmarks run quickly.  The *structure* of the protocols
is what the reproduction needs, not 2048-bit security.
"""

from __future__ import annotations

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107,
                 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
                 173, 179, 181, 191, 193, 197, 199]

#: Miller-Rabin rounds; 32 gives a < 2^-64 error bound for random inputs.
MR_ROUNDS = 32


def is_probable_prime(n, rng, rounds=MR_ROUNDS):
    """Miller-Rabin primality test with witnesses drawn from *rng*."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def gen_prime(bits, rng, *, condition=None):
    """Generate a *bits*-bit probable prime.

    *condition*, if given, filters candidates (e.g. ``p % q == 1`` for
    DSA's p).
    """
    if bits < 8:
        raise ValueError("prime too small to be useful")
    while True:
        candidate = rng.odd_integer(bits)
        if condition is not None and not condition(candidate):
            continue
        if is_probable_prime(candidate, rng):
            return candidate


def invmod(a, m):
    """Modular inverse via the extended Euclid algorithm."""
    g, x = _egcd(a % m, m)
    if g != 1:
        raise ValueError("inverse does not exist")
    return x % m


def _egcd(a, b):
    """Return (gcd, x) with a*x ≡ gcd (mod b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


def gcd(a, b):
    while b:
        a, b = b, a % b
    return a


def int_to_bytes(n, length=None):
    """Big-endian encoding, minimally sized unless *length* given."""
    if length is None:
        length = (n.bit_length() + 7) // 8 or 1
    return n.to_bytes(length, "big")


def bytes_to_int(data):
    return int.from_bytes(data, "big")
