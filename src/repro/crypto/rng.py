"""Deterministic random number generation for the simulation.

All randomness in the repository flows through :class:`DetRNG`, a
SHA-256-in-counter-mode generator.  Seeding it makes every handshake,
key, and nonce reproducible — which the tests and benchmarks rely on —
while the byte streams still look uniform to the protocols consuming
them.

This mirrors the role of ``/dev/urandom`` in the paper's servers; it is
NOT a hardened CSPRNG (see the security disclaimer in DESIGN.md).
"""

from __future__ import annotations

import hashlib
import struct


class DetRNG:
    """Deterministic byte/int generator: SHA-256(key, counter) stream."""

    def __init__(self, seed):
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
        elif isinstance(seed, str):
            seed = seed.encode()
        self._key = hashlib.sha256(b"wedge-rng:" + bytes(seed)).digest()
        self._counter = 0
        self._pool = b""

    def bytes(self, n):
        """Return *n* pseudo-random bytes."""
        while len(self._pool) < n:
            block = hashlib.sha256(
                self._key + struct.pack(">Q", self._counter)).digest()
            self._counter += 1
            self._pool += block
        out, self._pool = self._pool[:n], self._pool[n:]
        return out

    def randbits(self, k):
        """A uniform integer in [0, 2**k)."""
        if k <= 0:
            return 0
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.bytes(nbytes), "big")
        return value >> (nbytes * 8 - k)

    def randint(self, lo, hi):
        """A uniform integer in [lo, hi] via rejection sampling."""
        if lo > hi:
            raise ValueError("empty range")
        span = hi - lo + 1
        k = span.bit_length()
        while True:
            value = self.randbits(k)
            if value < span:
                return lo + value

    def randrange(self, stop):
        return self.randint(0, stop - 1)

    def odd_integer(self, bits):
        """A *bits*-bit odd integer with the top bit set (prime candidate)."""
        value = self.randbits(bits)
        value |= (1 << (bits - 1)) | 1
        return value

    def fork(self, label):
        """An independent child generator (namespaced re-seed)."""
        return DetRNG(self._key + b"/" + label.encode())
