"""From-scratch crypto substrate: RSA, DSA, HMAC, stream cipher, PRF, S/Key.

Everything the simulated TLS and SSH stacks need, implemented in-repo so
the partitioned applications have real key material to protect.  Small
parameters, deterministic RNG — see the security disclaimer in DESIGN.md.
"""

from repro.crypto import dsa, prf, primes, rsa, skey
from repro.crypto.mac import constant_time_eq, hmac_sha256
from repro.crypto.rng import DetRNG
from repro.crypto.stream import StreamCipher

__all__ = ["DetRNG", "StreamCipher", "constant_time_eq", "dsa",
           "hmac_sha256", "prf", "primes", "rsa", "skey"]
