"""SSH-like transport: version exchange, DH key exchange, host signature.

Simplified to the structure OpenSSH's partitioning cares about (paper
section 5.2): the server proves its identity by *signing* the key-exchange
hash with its DSA host key — the single private-key operation that the
Wedge variant pushes behind the ``dsa_sign`` callgate — and the channel
keys derive from a Diffie-Hellman exchange, so the host key never
decrypts anything.

Wire format reuses the record framing of :mod:`repro.tls.records`; after
key exchange both directions switch to sealed records.

.. code-block:: none

    Client                                  Server
    VERSION("SSH-SIM-1.0-...")       <-->   VERSION(...)
    KEXINIT(client_random, e=g^a)    --->
                                     <---   KEXREPLY(server_random, f=g^b,
                                                     host_pub, sig(H))
    [both derive H, keys; channel sealed from here]
    userauth / session messages
"""

from __future__ import annotations

import hashlib

from repro.core.errors import HandshakeFailure, ProtocolError
from repro.crypto.dsa import DsaPublicKey, default_params
from repro.crypto.prf import prf
from repro.tls.codec import pack_fields, unpack_fields
from repro.tls.records import RecordChannel

#: Frame types (disjoint from the TLS record types for clarity).
FT_VERSION = 40
FT_KEXINIT = 41
FT_KEXREPLY = 42
FT_AUTH = 43
FT_AUTH_RESULT = 44
FT_SESSION = 45

VERSION_STRING = b"SSH-SIM-1.0-wedge"
RANDOM_LEN = 32

MAC_KEY_LEN = 32
ENC_KEY_LEN = 32


def dh_group():
    """The shared DH group: the DSA domain parameters' (p, g)."""
    params = default_params()
    return params.p, params.g


def dh_public(private):
    p, g = dh_group()
    return pow(g, private, p)


def dh_shared(peer_public, private):
    p, _ = dh_group()
    if not 1 < peer_public < p - 1:
        raise HandshakeFailure("degenerate DH public value")
    return pow(peer_public, private, p)


def _int_bytes(n):
    return n.to_bytes((n.bit_length() + 7) // 8 or 1, "big")


def exchange_hash(client_random, server_random, client_pub, server_pub,
                  host_pub_bytes):
    """``H``: binds both randoms, both DH publics, and the host key."""
    material = pack_fields(client_random, server_random,
                           _int_bytes(client_pub), _int_bytes(server_pub),
                           host_pub_bytes)
    return hashlib.sha256(material).digest()


def derive_channel_keys(shared, session_hash):
    """Expand the DH shared secret into the four channel keys."""
    block = prf(_int_bytes(shared), "ssh channel keys", session_hash,
                2 * MAC_KEY_LEN + 2 * ENC_KEY_LEN)
    return {
        "c2s_mac": block[0:32],
        "s2c_mac": block[32:64],
        "c2s_enc": block[64:96],
        "s2c_enc": block[96:128],
    }


def activate_server(channel, keys):
    """Switch a server-side RecordChannel to sealed records."""
    channel.activate_recv(keys["c2s_enc"], keys["c2s_mac"])
    channel.activate_send(keys["s2c_enc"], keys["s2c_mac"])


def activate_client(channel, keys):
    channel.activate_send(keys["c2s_enc"], keys["c2s_mac"])
    channel.activate_recv(keys["s2c_enc"], keys["s2c_mac"])


# -- message packing ---------------------------------------------------------


def pack_kexinit(client_random, client_pub):
    return pack_fields(client_random, _int_bytes(client_pub))


def parse_kexinit(body):
    cr, e = unpack_fields(body, 2)
    if len(cr) != RANDOM_LEN:
        raise ProtocolError("bad client random")
    return cr, int.from_bytes(e, "big")


def pack_kexreply(server_random, server_pub, host_pub_bytes, signature):
    return pack_fields(server_random, _int_bytes(server_pub),
                       host_pub_bytes, signature)


def parse_kexreply(body):
    sr, f, host_pub, sig = unpack_fields(body, 4)
    if len(sr) != RANDOM_LEN:
        raise ProtocolError("bad server random")
    return sr, int.from_bytes(f, "big"), host_pub, sig


# -- server-side transport driver ----------------------------------------------


class ServerTransport:
    """Runs the server side of the transport handshake.

    *signer* abstracts the host-key operation: the monolithic server
    signs in-process; the Wedge variant's signer invokes the ``dsa_sign``
    callgate.  Either way this driver itself never needs the private
    key — which is what makes the callgate split natural.
    """

    def __init__(self, transport, rng, *, host_pub_bytes, signer,
                 version=VERSION_STRING):
        self.channel = RecordChannel(transport)
        self.rng = rng
        self.host_pub_bytes = host_pub_bytes
        self.signer = signer
        self.version = version
        self.session_hash = None
        self.keys = None
        self.client_version = None

    def run(self):
        channel = self.channel
        channel.send_record(FT_VERSION, self.version)
        rtype, body = channel.recv_record(expect=FT_VERSION)
        if not body.startswith(b"SSH-SIM-"):
            raise HandshakeFailure("peer is not an SSH-SIM client")
        self.client_version = body

        rtype, body = channel.recv_record(expect=FT_KEXINIT)
        client_random, client_pub = parse_kexinit(body)

        server_random = self.rng.bytes(RANDOM_LEN)
        p, _ = dh_group()
        b = self.rng.randint(2, p - 2)
        server_pub = dh_public(b)
        session_hash = exchange_hash(client_random, server_random,
                                     client_pub, server_pub,
                                     self.host_pub_bytes)
        signature = self.signer(session_hash)
        channel.send_record(FT_KEXREPLY, pack_kexreply(
            server_random, server_pub, self.host_pub_bytes, signature))

        shared = dh_shared(client_pub, b)
        self.keys = derive_channel_keys(shared, session_hash)
        self.session_hash = session_hash
        activate_server(channel, self.keys)
        return channel


class ClientTransport:
    """Client side of the transport handshake."""

    def __init__(self, transport, rng, *, expected_host_key=None,
                 version=VERSION_STRING):
        self.channel = RecordChannel(transport)
        self.rng = rng
        self.expected_host_key = expected_host_key
        self.version = version
        self.session_hash = None
        self.keys = None
        self.host_key = None

    def run(self):
        channel = self.channel
        rtype, body = channel.recv_record(expect=FT_VERSION)
        if not body.startswith(b"SSH-SIM-"):
            raise HandshakeFailure("peer is not an SSH-SIM server")
        channel.send_record(FT_VERSION, self.version)

        client_random = self.rng.bytes(RANDOM_LEN)
        p, _ = dh_group()
        a = self.rng.randint(2, p - 2)
        client_pub = dh_public(a)
        channel.send_record(FT_KEXINIT,
                            pack_kexinit(client_random, client_pub))

        rtype, body = channel.recv_record(expect=FT_KEXREPLY)
        server_random, server_pub, host_pub_bytes, sig = \
            parse_kexreply(body)
        host_key = DsaPublicKey.from_bytes(host_pub_bytes,
                                           default_params())
        if (self.expected_host_key is not None and
                host_pub_bytes != self.expected_host_key.to_bytes()):
            raise HandshakeFailure("host key mismatch (known_hosts)")
        session_hash = exchange_hash(client_random, server_random,
                                     client_pub, server_pub,
                                     host_pub_bytes)
        if not host_key.verify(session_hash, sig):
            raise HandshakeFailure("host signature verification failed")

        shared = dh_shared(server_pub, a)
        self.keys = derive_channel_keys(shared, session_hash)
        self.session_hash = session_hash
        self.host_key = host_key
        activate_client(channel, self.keys)
        return channel
