"""Post-auth session channel: exec, scp upload/download.

Minimal command set sufficient for the paper's OpenSSH evaluation
(Table 2: one login, one 10 MB scp).  Every message rides the sealed
record channel; file data is chunked so large transfers exercise the
record layer the way real scp exercises the SSH transport.
"""

from __future__ import annotations

from repro.core.errors import ProtocolError
from repro.tls.codec import pack_fields, unpack_fields

CMD_EXEC = b"exec"
CMD_SCP_UPLOAD = b"scp-up"
CMD_SCP_DOWNLOAD = b"scp-down"
CMD_DATA = b"data"
CMD_DONE = b"done"
CMD_ERROR = b"error"
CMD_EXIT = b"exit"

CHUNK = 16384


def pack_session(cmd, *fields):
    return pack_fields(cmd, *fields)


def parse_session(body):
    fields = unpack_fields(body)
    if not fields:
        raise ProtocolError("empty session message")
    return fields[0], fields[1:]


def send_file(channel, ftype, data):
    """Stream *data* as chunked DATA messages followed by DONE."""
    for off in range(0, len(data), CHUNK):
        channel.send_record(ftype,
                            pack_session(CMD_DATA, data[off:off + CHUNK]))
    channel.send_record(ftype, pack_session(CMD_DONE))


def recv_file(channel, ftype):
    """Receive a chunked stream; returns the reassembled bytes."""
    out = bytearray()
    while True:
        rtype, body = channel.recv_record(expect=ftype)
        cmd, fields = parse_session(body)
        if cmd == CMD_DATA:
            out += fields[0]
        elif cmd == CMD_DONE:
            return bytes(out)
        elif cmd == CMD_ERROR:
            raise ProtocolError(fields[0].decode(errors="replace"))
        else:
            raise ProtocolError(f"unexpected session command {cmd!r}")
