"""User authentication: messages, credential files, and check logic.

Three methods, matching the paper's Figure 6 callgates:

* ``password`` — checked against ``/etc/shadow`` (salted SHA-256);
* ``pubkey``  — DSA signature over (session hash, username), checked
  against the user's ``authorized_keys``;
* ``skey``    — S/Key challenge-response against ``/etc/skeykeys``.

The *check* functions here are pure logic over file contents; where they
run — monolithic process, privsep monitor, or Wedge callgate — is the
application's choice and is exactly what the paper varies.

Two-step flow, kept deliberately (paper section 5.2 "for ease of coding
reasons"): step 1 looks up the user (``getpwnam``), step 2 verifies the
credential.  The *information leak* the paper found in privilege-separated
OpenSSH lives in step 1: returning NULL for unknown users lets an
exploited slave probe the user database.  The Wedge password callgate
instead answers with a plausible **dummy passwd entry** —
:func:`dummy_passwd` is deterministic per username, so even repeated
probes are consistent.
"""

from __future__ import annotations

import hashlib

from repro.core.errors import AuthenticationFailure, ProtocolError
from repro.crypto import skey as skeymod
from repro.crypto.dsa import DsaPublicKey, default_params
from repro.tls.codec import pack_fields, unpack_fields

AUTH_PASSWORD = b"password"
AUTH_PUBKEY = b"pubkey"
AUTH_SKEY = b"skey"

RESULT_OK = b"ok"
RESULT_FAIL = b"fail"
RESULT_CHALLENGE = b"challenge"


# -- password file handling ---------------------------------------------------


def hash_password(salt, password):
    return hashlib.sha256(salt + b":" + password).hexdigest().encode()


def shadow_line(user, salt, password, uid, home):
    return b":".join([user.encode(), salt,
                      hash_password(salt, password),
                      str(uid).encode(), home.encode()])


def parse_shadow(data):
    """Parse shadow file bytes into {user: (salt, hash, uid, home)}."""
    entries = {}
    for line in data.splitlines():
        if not line.strip():
            continue
        try:
            user, salt, digest, uid, home = line.split(b":")
        except ValueError as exc:
            raise ProtocolError("corrupt shadow file") from exc
        entries[user.decode()] = (salt, digest, int(uid), home.decode())
    return entries


class Passwd:
    """The subset of ``struct passwd`` the session needs."""

    def __init__(self, user, uid, home):
        self.user = user
        self.uid = uid
        self.home = home

    def __eq__(self, other):
        return (isinstance(other, Passwd) and
                (self.user, self.uid, self.home) ==
                (other.user, other.uid, other.home))

    def __repr__(self):
        return f"Passwd({self.user!r}, uid={self.uid}, home={self.home!r})"


def dummy_passwd(user):
    """A plausible fake entry for unknown users (paper section 5.2).

    Deterministic in the username so repeated probes cannot distinguish
    "dummy" from "real but wrong password".
    """
    fake_uid = 20000 + int.from_bytes(
        hashlib.sha256(user.encode()).digest()[:2], "big")
    return Passwd(user, fake_uid, f"/home/{user}")


def check_password(shadow_entries, user, password):
    """True iff *password* matches; unknown users simply fail."""
    entry = shadow_entries.get(user)
    if entry is None:
        return False
    salt, digest, _, _ = entry
    return hash_password(salt, bytes(password)) == digest


def lookup_passwd(shadow_entries, user):
    entry = shadow_entries.get(user)
    if entry is None:
        return None
    _, _, uid, home = entry
    return Passwd(user, uid, home)


# -- authorized_keys (DSA pubkey auth) -----------------------------------------


def authorized_keys_line(pub):
    return b"ssh-dsa " + pub.to_bytes().hex().encode()


def parse_authorized_keys(data):
    keys = []
    for line in data.splitlines():
        if not line.startswith(b"ssh-dsa "):
            continue
        try:
            keys.append(DsaPublicKey.from_bytes(
                bytes.fromhex(line.split(b" ", 1)[1].decode()),
                default_params()))
        except (ValueError, ProtocolError):
            continue
    return keys


def pubkey_sign_payload(session_hash, user):
    """What the client signs to prove key possession for this session."""
    return pack_fields(session_hash, user.encode())


def check_pubkey(authorized, session_hash, user, pub_bytes, signature):
    """Is *pub_bytes* an authorized key that signed this session?"""
    try:
        offered = DsaPublicKey.from_bytes(pub_bytes, default_params())
    except Exception:
        return False
    if not any(k.y == offered.y for k in authorized):
        return False
    return offered.verify(pubkey_sign_payload(session_hash, user),
                          signature)


# -- S/Key database ---------------------------------------------------------------


def skey_db_line(user, entry):
    return b":".join([user.encode(), entry.seed,
                      str(entry.sequence).encode(), entry.top.hex().encode()])


def parse_skey_db(data):
    entries = {}
    for line in data.splitlines():
        if not line.strip():
            continue
        user, seed, seq, top = line.split(b":")
        entries[user.decode()] = skeymod.SkeyEntry(
            seed, int(seq), bytes.fromhex(top.decode()))
    return entries


def serialize_skey_db(entries):
    return b"\n".join(skey_db_line(u, e) for u, e in
                      sorted(entries.items())) + b"\n"


def dummy_skey_challenge(user):
    """A plausible, deterministic challenge for unknown users.

    The fix for the S/Key leak of paper reference [14]: a challenge is
    always returned, so an attacker cannot use its presence to confirm a
    username.
    """
    digest = hashlib.sha256(b"skey-dummy:" + user.encode()).digest()
    count = 40 + digest[0] % 50
    seed = digest[1:9].hex().encode()
    return count, seed


# -- auth messages -------------------------------------------------------------------


def pack_auth_request(method, user, payload=b""):
    return pack_fields(method, user.encode(), payload)


def parse_auth_request(body):
    method, user, payload = unpack_fields(body, 3)
    try:
        return method, user.decode(), payload
    except UnicodeDecodeError as exc:
        raise ProtocolError("bad username encoding") from exc


def pack_auth_result(result, detail=b""):
    return pack_fields(result, detail)


def parse_auth_result(body):
    result, detail = unpack_fields(body, 2)
    return result, detail


def require_auth_ok(result, detail):
    if result != RESULT_OK:
        raise AuthenticationFailure(
            f"authentication failed: {detail.decode(errors='replace')}")
