"""Simplified SSH: DH transport with DSA host signature, userauth, scp."""

from repro.sshlib import channel, transport, userauth
from repro.sshlib.client import SshClient, SshConnection
from repro.sshlib.server import AuthOutcome, KernelSessionOps, ServerSession

__all__ = ["AuthOutcome", "KernelSessionOps", "ServerSession", "SshClient",
           "SshConnection", "channel", "transport", "userauth"]
