"""The shared server-side SSH session driver.

One driver serves all three sshd variants; what differs is *where the
privileged operations run*, injected as three small strategy objects:

* ``signer(session_hash) -> signature`` — the host-key operation
  (in-process for monolithic; the ``dsa_sign`` callgate under Wedge);
* ``auth_backend.handle(method, user, payload, session_hash)`` — the
  credential check (in-process; monitor IPC under privsep; the
  password / dsa_auth / skey callgates under Wedge).  On success the
  backend is responsible for any uid/root transition of the worker;
* ``session_ops`` — filesystem access for exec/scp, which runs with
  whatever uid/root the worker holds *after* authentication.

This mirrors how little of OpenSSH the paper had to touch (564 lines):
the bulk of the daemon is method-agnostic plumbing like this driver.
"""

from __future__ import annotations

from repro.core.errors import ProtocolError, VfsError, WedgeError
from repro.sshlib import channel as chanmod
from repro.sshlib import userauth
from repro.sshlib.transport import (FT_AUTH, FT_AUTH_RESULT, FT_SESSION,
                                    ServerTransport)

MAX_AUTH_ATTEMPTS = 6


class AuthOutcome:
    """What an auth backend decided."""

    def __init__(self, result, detail=b"", passwd=None):
        self.result = result
        self.detail = detail
        self.passwd = passwd

    @classmethod
    def ok(cls, passwd):
        return cls(userauth.RESULT_OK,
                   f"uid={passwd.uid}".encode(), passwd)

    @classmethod
    def fail(cls, detail=b"authentication failed"):
        return cls(userauth.RESULT_FAIL, detail)

    @classmethod
    def challenge(cls, detail):
        return cls(userauth.RESULT_CHALLENGE, detail)


class ServerSession:
    """Drives one connection: transport, auth loop, session loop."""

    def __init__(self, transport, rng, *, host_pub_bytes, signer,
                 auth_backend, session_ops, exploit_hook=None):
        self.transport_driver = ServerTransport(
            transport, rng, host_pub_bytes=host_pub_bytes, signer=signer)
        self.auth_backend = auth_backend
        self.session_ops = session_ops
        #: called on every untrusted auth payload — the variant wires the
        #: simulated vulnerability (and its context) through this
        self.exploit_hook = exploit_hook
        self.authenticated = None
        self.commands_served = 0

    def run(self):
        channel = self.transport_driver.run()
        session_hash = self.transport_driver.session_hash
        self._auth_loop(channel, session_hash)
        if self.authenticated is None:
            return "auth-failed"
        self._session_loop(channel)
        return "session-closed"

    # -- authentication ------------------------------------------------------

    def _auth_loop(self, channel, session_hash):
        for _ in range(MAX_AUTH_ATTEMPTS):
            rtype, body = channel.recv_record(expect=FT_AUTH)
            method, user, payload = userauth.parse_auth_request(body)
            if self.exploit_hook is not None:
                self.exploit_hook(payload, {"phase": "pre-auth",
                                            "user": user})
            outcome = self.auth_backend.handle(method, user, payload,
                                               session_hash)
            channel.send_record(FT_AUTH_RESULT, userauth.pack_auth_result(
                outcome.result, outcome.detail))
            if outcome.result == userauth.RESULT_OK:
                self.authenticated = outcome.passwd
                return

    # -- session ------------------------------------------------------------------

    def _session_loop(self, channel):
        while True:
            try:
                rtype, body = channel.recv_record(expect=FT_SESSION)
            except WedgeError:
                return
            cmd, fields = chanmod.parse_session(body)
            if cmd == chanmod.CMD_EXIT:
                return
            try:
                self._dispatch(channel, cmd, fields)
                self.commands_served += 1
            except (ProtocolError, VfsError) as exc:
                channel.send_record(FT_SESSION, chanmod.pack_session(
                    chanmod.CMD_ERROR, str(exc).encode()))

    def _dispatch(self, channel, cmd, fields):
        ops = self.session_ops
        if cmd == chanmod.CMD_EXEC:
            output = ops.exec_command(fields[0].decode(errors="replace"),
                                      self.authenticated)
            channel.send_record(FT_SESSION, chanmod.pack_session(
                chanmod.CMD_DATA, output))
            channel.send_record(FT_SESSION, chanmod.pack_session(
                chanmod.CMD_DONE))
        elif cmd == chanmod.CMD_SCP_UPLOAD:
            path = fields[0].decode(errors="replace")
            data = chanmod.recv_file(channel, FT_SESSION)
            ops.write_file(path, data)
            channel.send_record(FT_SESSION,
                                chanmod.pack_session(chanmod.CMD_DONE))
        elif cmd == chanmod.CMD_SCP_DOWNLOAD:
            path = fields[0].decode(errors="replace")
            data = ops.read_file(path)
            chanmod.send_file(channel, FT_SESSION, data)
        else:
            raise ProtocolError(f"unknown session command {cmd!r}")


class KernelSessionOps:
    """exec/scp over the simulated VFS, as the *current* compartment.

    Runs with the worker's uid and filesystem root, so the post-auth
    promotion is what actually unlocks the user's files.
    """

    def __init__(self, kernel):
        self.kernel = kernel

    def exec_command(self, cmdline, passwd):
        kernel = self.kernel
        parts = cmdline.split()
        if not parts:
            raise ProtocolError("empty command")
        if parts[0] == "whoami":
            return (f"{passwd.user} uid={kernel.getuid()} "
                    f"root={kernel.current().root}").encode()
        if parts[0] == "cat" and len(parts) == 2:
            return self.read_file(parts[1])
        if parts[0] == "echo":
            return cmdline[5:].encode()
        raise ProtocolError(f"command not found: {parts[0]}")

    def read_file(self, path):
        fd = self.kernel.open(path, "r")
        try:
            out = bytearray()
            while True:
                chunk = self.kernel.read(fd, 65536)
                if not chunk:
                    return bytes(out)
                out += chunk
        finally:
            self.kernel.close(fd)

    def write_file(self, path, data):
        fd = self.kernel.open(path, "w")
        try:
            self.kernel.write(fd, data)
        finally:
            self.kernel.close(fd)
